//! Table 1: fix rate on VerilogEval-syntax across prompting strategy,
//! RAG, feedback quality and LLM capability.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use serde::Serialize;

use rtlfixer_agent::{RtlFixerBuilder, Strategy};
use rtlfixer_compilers::CompilerKind;
use rtlfixer_dataset::SyntaxBenchEntry;
use rtlfixer_llm::{Capability, ResilientModel, SimulatedLlm};

use crate::metrics::fix_rate;
use crate::runner::{episode_grid, run_episodes, RunStats};

/// Configuration for fix-rate experiments.
#[derive(Debug, Clone, Copy)]
pub struct FixRateConfig {
    /// Cap on dataset entries (`None` = all 212).
    pub max_entries: Option<usize>,
    /// Repeats per entry (the paper uses 10).
    pub repeats: usize,
    /// Seed for the dataset build.
    pub dataset_seed: u64,
    /// Base seed for episode randomness.
    pub base_seed: u64,
    /// Worker threads for episode execution (`0` = available parallelism).
    /// Results are identical for every value; this only changes wall-clock.
    pub jobs: usize,
}

impl Default for FixRateConfig {
    fn default() -> Self {
        FixRateConfig { max_entries: None, repeats: 10, dataset_seed: 7, base_seed: 1, jobs: 0 }
    }
}

/// One Table 1 cell result.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Cell {
    /// "One-shot" or "ReAct".
    pub strategy: String,
    /// RAG on/off.
    pub rag: bool,
    /// Feedback source.
    pub compiler: String,
    /// LLM capability label.
    pub llm: String,
    /// Measured fix rate.
    pub fix_rate: f64,
    /// The paper's reported value for this cell, for comparison.
    pub paper: f64,
    /// Wall-clock statistics for this cell's episodes.
    pub stats: RunStats,
}

/// The paper's Table 1 values, as (strategy, rag, compiler, llm, value).
pub const PAPER_TABLE1: &[(&str, bool, &str, &str, f64)] = &[
    ("One-shot", false, "Simple", "GPT-3.5", 0.414),
    ("One-shot", false, "iverilog", "GPT-3.5", 0.536),
    ("One-shot", false, "Quartus", "GPT-3.5", 0.587),
    ("One-shot", true, "iverilog", "GPT-3.5", 0.800),
    ("One-shot", true, "Quartus", "GPT-3.5", 0.899),
    ("ReAct", false, "Simple", "GPT-3.5", 0.671),
    ("ReAct", false, "iverilog", "GPT-3.5", 0.731),
    ("ReAct", false, "Quartus", "GPT-3.5", 0.799),
    ("ReAct", true, "iverilog", "GPT-3.5", 0.820),
    ("ReAct", true, "Quartus", "GPT-3.5", 0.985),
    ("One-shot", false, "Quartus", "GPT-4", 0.91),
    ("One-shot", true, "Quartus", "GPT-4", 0.98),
    ("ReAct", false, "Quartus", "GPT-4", 0.92),
    ("ReAct", true, "Quartus", "GPT-4", 0.99),
];

fn compiler_from_label(label: &str) -> CompilerKind {
    match label {
        "Simple" => CompilerKind::Simple,
        "iverilog" => CompilerKind::Iverilog,
        _ => CompilerKind::Quartus,
    }
}

fn capability_from_label(label: &str) -> Capability {
    if label == "GPT-4" {
        Capability::Gpt4Class
    } else {
        Capability::Gpt35Class
    }
}

/// Runs one Table 1 cell over `entries`, returning the fix rate plus
/// wall-clock stats.
///
/// Episodes execute on the [`runner`] pool; per-episode seeds come from the
/// canonical [`runner::episode_seed`] grid, so results are bit-identical
/// for every `config.jobs` value.
pub fn run_cell_timed(
    entries: &[SyntaxBenchEntry],
    strategy: Strategy,
    compiler: CompilerKind,
    rag: bool,
    capability: Capability,
    config: &FixRateConfig,
    cell_index: u64,
) -> (f64, RunStats) {
    let specs = episode_grid(config.base_seed, cell_index, entries.len(), config.repeats);
    let (successes, stats) = run_episodes(config.jobs, &specs, |spec| {
        let entry = &entries[spec.entry];
        // The resilient transport and the compiler fault stream are both
        // seeded from the episode seed: with `RTLFIXER_FAULTS` unset they
        // are inert pass-throughs, and with a spec set the injected faults
        // are identical at every worker count.
        let llm = ResilientModel::new(SimulatedLlm::new(capability, spec.seed), spec.seed);
        let mut fixer = RtlFixerBuilder::new()
            .compiler(compiler)
            .strategy(strategy)
            .with_rag(rag)
            .fault_seed(spec.seed)
            .build(llm);
        fixer.fix_problem(&entry.description, &entry.code).success
    });
    // Grid order is entry-major, so fixed counts fold back per entry.
    let per_problem: Vec<(usize, usize)> = successes
        .chunks(config.repeats.max(1))
        .map(|repeats| (repeats.iter().filter(|s| **s).count(), repeats.len()))
        .collect();
    (fix_rate(&per_problem), stats)
}

/// Runs one Table 1 cell over `entries` and returns the fix rate.
pub fn run_cell(
    entries: &[SyntaxBenchEntry],
    strategy: Strategy,
    compiler: CompilerKind,
    rag: bool,
    capability: Capability,
    config: &FixRateConfig,
    cell_index: u64,
) -> f64 {
    run_cell_timed(entries, strategy, compiler, rag, capability, config, cell_index).0
}

/// Loads the dataset (possibly capped) for fix-rate experiments.
///
/// Cached per `(dataset_seed, max_entries)` behind an `Arc`: every
/// experiment binary calls this (table1, ablations, figure7, …), and a
/// multi-experiment run must build each dataset view exactly once.
pub fn load_entries(config: &FixRateConfig) -> Arc<Vec<SyntaxBenchEntry>> {
    type Key = (u64, Option<usize>);
    static CACHE: OnceLock<Mutex<HashMap<Key, Arc<Vec<SyntaxBenchEntry>>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let key = (config.dataset_seed, config.max_entries);
    if let Some(hit) = cache.lock().expect("entries cache lock").get(&key) {
        return Arc::clone(hit);
    }
    let full = rtlfixer_dataset::verilog_eval_syntax_shared(config.dataset_seed);
    let view = match config.max_entries {
        Some(cap) if cap < full.len() => Arc::new(full[..cap].to_vec()),
        // Uncapped (or over-sized cap): alias the dataset crate's own Arc.
        _ => full,
    };
    Arc::clone(cache.lock().expect("entries cache lock").entry(key).or_insert(view))
}

/// Reproduces the full Table 1 grid (14 cells).
pub fn table1(config: &FixRateConfig) -> Vec<Table1Cell> {
    let entries = load_entries(config);
    PAPER_TABLE1
        .iter()
        .enumerate()
        .map(|(cell_index, &(strategy_label, rag, compiler_label, llm_label, paper))| {
            let strategy = if strategy_label == "One-shot" {
                Strategy::OneShot
            } else {
                Strategy::React { max_iterations: 10 }
            };
            let (measured, stats) = run_cell_timed(
                &entries,
                strategy,
                compiler_from_label(compiler_label),
                rag,
                capability_from_label(llm_label),
                config,
                cell_index as u64,
            );
            Table1Cell {
                strategy: strategy_label.to_owned(),
                rag,
                compiler: compiler_label.to_owned(),
                llm: llm_label.to_owned(),
                fix_rate: measured,
                paper,
                stats,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> FixRateConfig {
        FixRateConfig {
            max_entries: Some(30),
            repeats: 3,
            dataset_seed: 7,
            base_seed: 1,
            jobs: 1,
        }
    }

    #[test]
    fn react_quartus_rag_beats_one_shot_simple() {
        // The qualitative corner-to-corner ordering of Table 1.
        let config = small_config();
        let entries = load_entries(&config);
        let worst = run_cell(
            &entries,
            Strategy::OneShot,
            CompilerKind::Simple,
            false,
            Capability::Gpt35Class,
            &config,
            0,
        );
        let best = run_cell(
            &entries,
            Strategy::React { max_iterations: 10 },
            CompilerKind::Quartus,
            true,
            Capability::Gpt35Class,
            &config,
            1,
        );
        assert!(best > worst + 0.15, "best {best} vs worst {worst}");
        assert!(best > 0.8, "best cell should be high: {best}");
    }

    #[test]
    fn rag_improves_react_quartus() {
        let config = small_config();
        let entries = load_entries(&config);
        let without = run_cell(
            &entries,
            Strategy::React { max_iterations: 10 },
            CompilerKind::Quartus,
            false,
            Capability::Gpt35Class,
            &config,
            2,
        );
        let with = run_cell(
            &entries,
            Strategy::React { max_iterations: 10 },
            CompilerKind::Quartus,
            true,
            Capability::Gpt35Class,
            &config,
            3,
        );
        assert!(with > without, "with {with} vs without {without}");
    }

    #[test]
    fn results_are_deterministic() {
        let config = FixRateConfig { max_entries: Some(10), repeats: 2, ..Default::default() };
        let entries = load_entries(&config);
        let a = run_cell(
            &entries,
            Strategy::OneShot,
            CompilerKind::Quartus,
            true,
            Capability::Gpt35Class,
            &config,
            4,
        );
        let b = run_cell(
            &entries,
            Strategy::OneShot,
            CompilerKind::Quartus,
            true,
            Capability::Gpt35Class,
            &config,
            4,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_results_match_serial_byte_for_byte() {
        // The parallel engine's core guarantee: a --quick Table 1 cell
        // produces byte-identical fix rates at jobs = 1, 2 and 8.
        let base = FixRateConfig {
            max_entries: Some(20),
            repeats: 2,
            dataset_seed: 7,
            base_seed: 1,
            jobs: 1,
        };
        let entries = load_entries(&base);
        let run = |jobs: usize| {
            let config = FixRateConfig { jobs, ..base };
            let rate = run_cell(
                &entries,
                Strategy::React { max_iterations: 10 },
                CompilerKind::Quartus,
                true,
                Capability::Gpt35Class,
                &config,
                9,
            );
            // Byte-level comparison through the serialised representation,
            // the form results tables and JSON artifacts are built from.
            format!("{rate:.17}")
        };
        let serial = run(1);
        assert_eq!(run(2), serial, "jobs=2 must match jobs=1");
        assert_eq!(run(8), serial, "jobs=8 must match jobs=1");
    }

    #[test]
    fn load_entries_shares_one_build_per_view() {
        let config = small_config();
        let a = load_entries(&config);
        let b = load_entries(&config);
        assert!(Arc::ptr_eq(&a, &b), "same (seed, cap) must share one Vec");
        assert_eq!(a.len(), 30);
        let uncapped = FixRateConfig { max_entries: None, ..config };
        let full = load_entries(&uncapped);
        assert_eq!(full.len(), rtlfixer_dataset::SYNTAX_BENCH_COUNT);
        assert!(full[..30].iter().zip(a.iter()).all(|(x, y)| x.code == y.code));
    }
}
