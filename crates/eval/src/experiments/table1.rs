//! Table 1: fix rate on VerilogEval-syntax across prompting strategy,
//! RAG, feedback quality and LLM capability.

use serde::Serialize;

use rtlfixer_agent::{RtlFixerBuilder, Strategy};
use rtlfixer_compilers::CompilerKind;
use rtlfixer_dataset::SyntaxBenchEntry;
use rtlfixer_llm::{Capability, SimulatedLlm};

use crate::metrics::fix_rate;

/// Configuration for fix-rate experiments.
#[derive(Debug, Clone, Copy)]
pub struct FixRateConfig {
    /// Cap on dataset entries (`None` = all 212).
    pub max_entries: Option<usize>,
    /// Repeats per entry (the paper uses 10).
    pub repeats: usize,
    /// Seed for the dataset build.
    pub dataset_seed: u64,
    /// Base seed for episode randomness.
    pub base_seed: u64,
}

impl Default for FixRateConfig {
    fn default() -> Self {
        FixRateConfig { max_entries: None, repeats: 10, dataset_seed: 7, base_seed: 1 }
    }
}

/// One Table 1 cell result.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Cell {
    /// "One-shot" or "ReAct".
    pub strategy: String,
    /// RAG on/off.
    pub rag: bool,
    /// Feedback source.
    pub compiler: String,
    /// LLM capability label.
    pub llm: String,
    /// Measured fix rate.
    pub fix_rate: f64,
    /// The paper's reported value for this cell, for comparison.
    pub paper: f64,
}

/// The paper's Table 1 values, as (strategy, rag, compiler, llm, value).
pub const PAPER_TABLE1: &[(&str, bool, &str, &str, f64)] = &[
    ("One-shot", false, "Simple", "GPT-3.5", 0.414),
    ("One-shot", false, "iverilog", "GPT-3.5", 0.536),
    ("One-shot", false, "Quartus", "GPT-3.5", 0.587),
    ("One-shot", true, "iverilog", "GPT-3.5", 0.800),
    ("One-shot", true, "Quartus", "GPT-3.5", 0.899),
    ("ReAct", false, "Simple", "GPT-3.5", 0.671),
    ("ReAct", false, "iverilog", "GPT-3.5", 0.731),
    ("ReAct", false, "Quartus", "GPT-3.5", 0.799),
    ("ReAct", true, "iverilog", "GPT-3.5", 0.820),
    ("ReAct", true, "Quartus", "GPT-3.5", 0.985),
    ("One-shot", false, "Quartus", "GPT-4", 0.91),
    ("One-shot", true, "Quartus", "GPT-4", 0.98),
    ("ReAct", false, "Quartus", "GPT-4", 0.92),
    ("ReAct", true, "Quartus", "GPT-4", 0.99),
];

fn compiler_from_label(label: &str) -> CompilerKind {
    match label {
        "Simple" => CompilerKind::Simple,
        "iverilog" => CompilerKind::Iverilog,
        _ => CompilerKind::Quartus,
    }
}

fn capability_from_label(label: &str) -> Capability {
    if label == "GPT-4" {
        Capability::Gpt4Class
    } else {
        Capability::Gpt35Class
    }
}

/// Deterministic episode seed from cell/entry/repeat coordinates.
fn episode_seed(base: u64, cell: u64, entry: u64, repeat: u64) -> u64 {
    base.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(cell.wrapping_mul(1_000_003))
        .wrapping_add(entry.wrapping_mul(10_007))
        .wrapping_add(repeat)
}

/// Runs one Table 1 cell over `entries` and returns the fix rate.
pub fn run_cell(
    entries: &[SyntaxBenchEntry],
    strategy: Strategy,
    compiler: CompilerKind,
    rag: bool,
    capability: Capability,
    config: &FixRateConfig,
    cell_index: u64,
) -> f64 {
    let per_problem: Vec<(usize, usize)> = entries
        .iter()
        .enumerate()
        .map(|(entry_idx, entry)| {
            let mut fixed = 0usize;
            for repeat in 0..config.repeats {
                let seed =
                    episode_seed(config.base_seed, cell_index, entry_idx as u64, repeat as u64);
                let llm = SimulatedLlm::new(capability, seed);
                let mut fixer = RtlFixerBuilder::new()
                    .compiler(compiler)
                    .strategy(strategy)
                    .with_rag(rag)
                    .build(llm);
                let outcome = fixer.fix_problem(&entry.description, &entry.code);
                if outcome.success {
                    fixed += 1;
                }
            }
            (fixed, config.repeats)
        })
        .collect();
    fix_rate(&per_problem)
}

/// Loads the dataset (possibly capped) for fix-rate experiments.
pub fn load_entries(config: &FixRateConfig) -> Vec<SyntaxBenchEntry> {
    let mut entries = rtlfixer_dataset::verilog_eval_syntax(config.dataset_seed);
    if let Some(cap) = config.max_entries {
        entries.truncate(cap);
    }
    entries
}

/// Reproduces the full Table 1 grid (14 cells).
pub fn table1(config: &FixRateConfig) -> Vec<Table1Cell> {
    let entries = load_entries(config);
    PAPER_TABLE1
        .iter()
        .enumerate()
        .map(|(cell_index, &(strategy_label, rag, compiler_label, llm_label, paper))| {
            let strategy = if strategy_label == "One-shot" {
                Strategy::OneShot
            } else {
                Strategy::React { max_iterations: 10 }
            };
            let measured = run_cell(
                &entries,
                strategy,
                compiler_from_label(compiler_label),
                rag,
                capability_from_label(llm_label),
                config,
                cell_index as u64,
            );
            Table1Cell {
                strategy: strategy_label.to_owned(),
                rag,
                compiler: compiler_label.to_owned(),
                llm: llm_label.to_owned(),
                fix_rate: measured,
                paper,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> FixRateConfig {
        FixRateConfig { max_entries: Some(30), repeats: 3, dataset_seed: 7, base_seed: 1 }
    }

    #[test]
    fn react_quartus_rag_beats_one_shot_simple() {
        // The qualitative corner-to-corner ordering of Table 1.
        let config = small_config();
        let entries = load_entries(&config);
        let worst = run_cell(
            &entries,
            Strategy::OneShot,
            CompilerKind::Simple,
            false,
            Capability::Gpt35Class,
            &config,
            0,
        );
        let best = run_cell(
            &entries,
            Strategy::React { max_iterations: 10 },
            CompilerKind::Quartus,
            true,
            Capability::Gpt35Class,
            &config,
            1,
        );
        assert!(best > worst + 0.15, "best {best} vs worst {worst}");
        assert!(best > 0.8, "best cell should be high: {best}");
    }

    #[test]
    fn rag_improves_react_quartus() {
        let config = small_config();
        let entries = load_entries(&config);
        let without = run_cell(
            &entries,
            Strategy::React { max_iterations: 10 },
            CompilerKind::Quartus,
            false,
            Capability::Gpt35Class,
            &config,
            2,
        );
        let with = run_cell(
            &entries,
            Strategy::React { max_iterations: 10 },
            CompilerKind::Quartus,
            true,
            Capability::Gpt35Class,
            &config,
            3,
        );
        assert!(with > without, "with {with} vs without {without}");
    }

    #[test]
    fn results_are_deterministic() {
        let config = FixRateConfig { max_entries: Some(10), repeats: 2, ..Default::default() };
        let entries = load_entries(&config);
        let a = run_cell(
            &entries,
            Strategy::OneShot,
            CompilerKind::Quartus,
            true,
            Capability::Gpt35Class,
            &config,
            4,
        );
        let b = run_cell(
            &entries,
            Strategy::OneShot,
            CompilerKind::Quartus,
            true,
            Capability::Gpt35Class,
            &config,
            4,
        );
        assert_eq!(a, b);
    }
}
