//! Chaos sweep: fix rate and revision cost versus injected fault rate.
//!
//! The robustness counterpart of Table 1 (DESIGN.md §3d): the same
//! fixing episodes run under a seeded fault plan that times out model
//! calls, rate-limits, truncates and malforms completions, crashes the
//! compiler and garbles its logs. The claim under test is *graceful
//! degradation* — as the fault rate climbs to 30% per call site, fix rates
//! decline smoothly (no cliff), revision costs rise, and no fault ever
//! aborts the evaluation pool.
//!
//! Every cell carries an explicit [`FaultSpec`] rather than mutating the
//! process-wide `RTLFIXER_FAULTS` state, so a chaos sweep composes with
//! other experiments (and with the test harness) in one process.

use std::sync::Arc;

use serde::Serialize;

use rtlfixer_agent::{RtlFixerBuilder, Strategy};
use rtlfixer_compilers::CompilerKind;
use rtlfixer_faults::FaultSpec;
use rtlfixer_llm::{Capability, ResilientModel, SimulatedLlm};

use super::table1::{load_entries, FixRateConfig};
use crate::metrics::fix_rate;
use crate::runner::{episode_grid, run_episodes_checked, RunStats};

/// First chaos cell in the seed namespace (see [`crate::runner`]); each
/// variant owns [`CELLS_PER_VARIANT`] consecutive cells, one per rate.
const CELL_BASE: u64 = 700;

/// Seed-namespace cells reserved per variant (bounds the rate grid).
const CELLS_PER_VARIANT: u64 = 25;

/// The default fault-rate grid: total injection probability per call site,
/// 0% (control) to 30%.
pub const DEFAULT_RATES: &[f64] = &[0.0, 0.05, 0.1, 0.2, 0.3];

/// The four agent variants the sweep crosses with the rate grid.
pub const VARIANTS: &[(&str, bool)] = &[
    ("ReAct", true),
    ("ReAct", false),
    ("One-shot", true),
    ("One-shot", false),
];

/// Configuration for the chaos sweep.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Episode-grid sizing and seeds (shared with the fix-rate grids).
    pub fix: FixRateConfig,
    /// Fault rates to sweep (site totals; capped at [`CELLS_PER_VARIANT`]).
    pub rates: Vec<f64>,
    /// When set, the very first episode of the first cell panics on
    /// purpose, demonstrating that the checked pool contains episode
    /// failures without sinking the grid.
    pub panic_probe: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            fix: FixRateConfig::default(),
            rates: DEFAULT_RATES.to_vec(),
            panic_probe: false,
        }
    }
}

/// One (variant × fault-rate) cell of the sweep.
#[derive(Debug, Clone, Serialize)]
pub struct ChaosCell {
    /// "One-shot" or "ReAct".
    pub strategy: String,
    /// RAG on/off.
    pub rag: bool,
    /// Total fault probability per call site.
    pub fault_rate: f64,
    /// Fix rate over delivered episodes (failed episodes count as misses).
    pub fix_rate: f64,
    /// Mean revisions per delivered episode.
    pub mean_revisions: f64,
    /// Episodes that saw at least one fault / degradation event.
    pub degraded_episodes: usize,
    /// Total `Fault` trace steps across the cell.
    pub fault_events: usize,
    /// Episodes that panicked and were contained by the pool.
    pub failed_episodes: usize,
    /// Wall-clock statistics.
    pub stats: RunStats,
}

/// Per-episode measurements folded into [`ChaosCell`] aggregates.
struct ChaosEpisode {
    success: bool,
    revisions: usize,
    degraded: bool,
    fault_events: usize,
}

/// Runs one chaos cell. `panic_at` is a flat grid index (entry-major) whose
/// episode panics deliberately; the pool must report it as failed and
/// finish the rest.
fn run_chaos_cell(
    entries: &[rtlfixer_dataset::SyntaxBenchEntry],
    strategy: Strategy,
    rag: bool,
    rate: f64,
    config: &FixRateConfig,
    cell: u64,
    panic_at: Option<usize>,
) -> (Vec<Option<ChaosEpisode>>, RunStats) {
    let fault_spec: Option<Arc<FaultSpec>> =
        (rate > 0.0).then(|| Arc::new(FaultSpec::uniform(rate)));
    let specs = episode_grid(config.base_seed, cell, entries.len(), config.repeats);
    let repeats = config.repeats.max(1);
    let (results, _failures, stats) = run_episodes_checked(config.jobs, &specs, |spec| {
        if panic_at == Some(spec.entry * repeats + spec.repeat) {
            panic!("chaos probe: deliberate episode panic at entry {}", spec.entry);
        }
        let entry = &entries[spec.entry];
        let llm = ResilientModel::with_spec(
            SimulatedLlm::new(Capability::Gpt35Class, spec.seed),
            fault_spec.clone(),
            spec.seed,
        );
        let mut fixer = RtlFixerBuilder::new()
            .compiler(CompilerKind::Quartus)
            .strategy(strategy)
            .with_rag(rag)
            .fault_spec(fault_spec.clone())
            .fault_seed(spec.seed)
            .build(llm);
        let outcome = fixer.fix_problem(&entry.description, &entry.code);
        ChaosEpisode {
            success: outcome.success,
            revisions: outcome.revisions,
            degraded: outcome.degraded,
            fault_events: outcome.fault_events,
        }
    });
    (results, stats)
}

/// Folds one cell's episode results into aggregates.
fn aggregate(
    strategy_label: &str,
    rag: bool,
    rate: f64,
    repeats: usize,
    results: Vec<Option<ChaosEpisode>>,
    stats: RunStats,
) -> ChaosCell {
    let per_problem: Vec<(usize, usize)> = results
        .chunks(repeats.max(1))
        .map(|chunk| {
            (
                chunk.iter().filter(|e| e.as_ref().is_some_and(|e| e.success)).count(),
                chunk.len(),
            )
        })
        .collect();
    let delivered: Vec<&ChaosEpisode> = results.iter().flatten().collect();
    let mean_revisions = if delivered.is_empty() {
        0.0
    } else {
        delivered.iter().map(|e| e.revisions).sum::<usize>() as f64 / delivered.len() as f64
    };
    ChaosCell {
        strategy: strategy_label.to_owned(),
        rag,
        fault_rate: rate,
        fix_rate: fix_rate(&per_problem),
        mean_revisions,
        degraded_episodes: delivered.iter().filter(|e| e.degraded).count(),
        fault_events: delivered.iter().map(|e| e.fault_events).sum(),
        failed_episodes: stats.failed_episodes,
        stats,
    }
}

/// Runs the full sweep: every variant crossed with every fault rate, in
/// variant-major order.
pub fn chaos(config: &ChaosConfig) -> Vec<ChaosCell> {
    let entries = load_entries(&config.fix);
    let rates: Vec<f64> =
        config.rates.iter().copied().take(CELLS_PER_VARIANT as usize).collect();
    let mut cells = Vec::with_capacity(VARIANTS.len() * rates.len());
    for (variant_index, &(strategy_label, rag)) in VARIANTS.iter().enumerate() {
        let strategy = if strategy_label == "One-shot" {
            Strategy::OneShot
        } else {
            Strategy::React { max_iterations: 10 }
        };
        for (rate_index, &rate) in rates.iter().enumerate() {
            let cell = CELL_BASE + variant_index as u64 * CELLS_PER_VARIANT + rate_index as u64;
            let panic_at =
                (config.panic_probe && variant_index == 0 && rate_index == 0).then_some(0);
            let (results, stats) = run_chaos_cell(
                &entries,
                strategy,
                rag,
                rate,
                &config.fix,
                cell,
                panic_at,
            );
            cells.push(aggregate(strategy_label, rag, rate, config.fix.repeats, results, stats));
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(rates: &[f64]) -> ChaosConfig {
        ChaosConfig {
            fix: FixRateConfig {
                max_entries: Some(16),
                repeats: 2,
                dataset_seed: 7,
                base_seed: 1,
                jobs: 1,
            },
            rates: rates.to_vec(),
            panic_probe: false,
        }
    }

    #[test]
    fn faults_degrade_gracefully_not_catastrophically() {
        // Individual 32-episode cells are noisy (reshuffled model draws can
        // locally beat the clean run), so the degradation claim is asserted
        // on the mean across all four variants.
        let cells = chaos(&small_config(&[0.0, 0.6]));
        assert_eq!(cells.len(), VARIANTS.len() * 2);
        let mean = |rate: f64| {
            let picked: Vec<&ChaosCell> =
                cells.iter().filter(|c| c.fault_rate == rate).collect();
            assert_eq!(picked.len(), VARIANTS.len());
            picked.iter().map(|c| c.fix_rate).sum::<f64>() / picked.len() as f64
        };
        let (clean, faulted) = (mean(0.0), mean(0.6));
        for cell in cells.iter().filter(|c| c.fault_rate == 0.0) {
            assert_eq!(cell.degraded_episodes, 0, "clean cells see no faults");
            assert_eq!(cell.fault_events, 0);
        }
        for cell in cells.iter().filter(|c| c.fault_rate > 0.0) {
            assert!(cell.degraded_episodes > 0, "60% faults must touch episodes");
            assert!(cell.fault_events > 0);
        }
        // Graceful: worse than clean on average, but nowhere near zero —
        // retries, salvage and kept candidates absorb most injected faults.
        assert!(faulted < clean, "clean {clean} vs faulted {faulted}");
        assert!(faulted > 0.5 * clean, "cliff: clean {clean} vs faulted {faulted}");
        // No pool aborts anywhere in the sweep.
        assert!(cells.iter().all(|c| c.failed_episodes == 0));
    }

    #[test]
    fn panic_probe_is_contained_and_reported() {
        let quietly = |f: &dyn Fn() -> Vec<ChaosCell>| {
            let hook = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {}));
            let out = f();
            std::panic::set_hook(hook);
            out
        };
        let mut config = small_config(&[0.0]);
        config.fix.max_entries = Some(6);
        config.panic_probe = true;
        let cells = quietly(&|| chaos(&config));
        assert_eq!(cells.len(), VARIANTS.len());
        assert_eq!(cells[0].failed_episodes, 1, "the probe episode is reported as failed");
        assert_eq!(cells[0].stats.failed_episodes, 1);
        // Every other cell (and the rest of the probed cell) completed.
        assert!(cells[1..].iter().all(|c| c.failed_episodes == 0));
        assert_eq!(cells[0].stats.episodes, 12);
    }

    #[test]
    fn sweep_is_jobs_invariant_at_a_fixed_fault_rate() {
        let run = |jobs: usize| {
            let mut config = small_config(&[0.2]);
            config.fix.max_entries = Some(8);
            config.fix.jobs = jobs;
            chaos(&config)
                .into_iter()
                .map(|c| (format!("{:.17}", c.fix_rate), c.degraded_episodes, c.fault_events))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(4));
    }
}
