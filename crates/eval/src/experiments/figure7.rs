//! Figure 7: distribution of ReAct iterations required to fix syntax
//! errors (the paper reports ~90% resolved in a single revision).

use serde::Serialize;

use rtlfixer_agent::Strategy;
use rtlfixer_compilers::CompilerKind;
use rtlfixer_llm::Capability;

use super::table1::{load_entries, FixRateConfig};
use crate::episode::{run_repair, RepairJob};
use crate::runner::{episode_grid, run_episodes, RunStats};

/// Seed-namespace cell for the Figure 7 grid (see [`crate::runner`]).
const CELL: u64 = 20;

/// Iteration histogram for ReAct fixing episodes.
#[derive(Debug, Clone, Serialize)]
pub struct IterationHistogram {
    /// `counts[i]` = episodes resolved in `i + 1` revisions.
    pub counts: Vec<usize>,
    /// Episodes not resolved within the budget.
    pub unresolved: usize,
    /// Total successful episodes.
    pub resolved: usize,
    /// Wall-clock statistics for the run.
    pub stats: RunStats,
}

impl IterationHistogram {
    /// Fraction of *resolved* episodes that needed exactly one revision.
    pub fn single_revision_share(&self) -> f64 {
        if self.resolved == 0 {
            return 0.0;
        }
        self.counts.first().copied().unwrap_or(0) as f64 / self.resolved as f64
    }
}

/// Runs ReAct + RAG + Quartus over the syntax dataset and histograms the
/// revisions needed per successful episode. Episodes run on the parallel
/// pool; the histogram is aggregated from per-episode outcomes afterwards,
/// so it is identical for every `config.jobs` value.
pub fn figure7(config: &FixRateConfig) -> IterationHistogram {
    let entries = load_entries(config);
    let max_iterations = 10usize;
    let specs = episode_grid(config.base_seed, CELL, entries.len(), config.repeats);
    // Per-episode outcome: Some(revisions) when resolved, None otherwise.
    let (outcomes, stats) = run_episodes(config.jobs, &specs, |spec| {
        let entry = &entries[spec.entry];
        let outcome = run_repair(&RepairJob {
            problem: &entry.description,
            code: &entry.code,
            compiler: CompilerKind::Quartus,
            strategy: Strategy::React { max_iterations },
            rag: true,
            capability: Capability::Gpt35Class,
            seed: spec.seed,
            deadline_ms: None,
            distilled: None,
        });
        outcome.success.then_some(outcome.revisions)
    });
    let mut counts = vec![0usize; max_iterations];
    let mut unresolved = 0usize;
    let mut resolved = 0usize;
    for outcome in outcomes {
        match outcome {
            Some(revisions) => {
                resolved += 1;
                counts[revisions.clamp(1, max_iterations) - 1] += 1;
            }
            None => unresolved += 1,
        }
    }
    IterationHistogram { counts, unresolved, resolved, stats }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn most_fixes_take_one_revision() {
        let config = FixRateConfig {
            max_entries: Some(40),
            repeats: 2,
            dataset_seed: 7,
            base_seed: 3,
            jobs: 1,
        };
        let histogram = figure7(&config);
        assert!(histogram.resolved > 0);
        // Paper: ~90% in one revision; allow slack on the small subset.
        assert!(
            histogram.single_revision_share() > 0.6,
            "single-revision share {}",
            histogram.single_revision_share()
        );
        // The distribution must be heavily front-loaded.
        assert!(histogram.counts[0] > histogram.counts[2..].iter().sum::<usize>());
    }

    #[test]
    fn histogram_is_jobs_invariant() {
        let serial = FixRateConfig {
            max_entries: Some(16),
            repeats: 2,
            dataset_seed: 7,
            base_seed: 3,
            jobs: 1,
        };
        let parallel = FixRateConfig { jobs: 4, ..serial };
        let a = figure7(&serial);
        let b = figure7(&parallel);
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.unresolved, b.unresolved);
        assert_eq!(a.resolved, b.resolved);
    }
}
