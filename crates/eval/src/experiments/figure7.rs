//! Figure 7: distribution of ReAct iterations required to fix syntax
//! errors (the paper reports ~90% resolved in a single revision).

use serde::Serialize;

use rtlfixer_agent::{RtlFixerBuilder, Strategy};
use rtlfixer_compilers::CompilerKind;
use rtlfixer_llm::{Capability, SimulatedLlm};

use super::table1::{load_entries, FixRateConfig};

/// Iteration histogram for ReAct fixing episodes.
#[derive(Debug, Clone, Serialize)]
pub struct IterationHistogram {
    /// `counts[i]` = episodes resolved in `i + 1` revisions.
    pub counts: Vec<usize>,
    /// Episodes not resolved within the budget.
    pub unresolved: usize,
    /// Total successful episodes.
    pub resolved: usize,
}

impl IterationHistogram {
    /// Fraction of *resolved* episodes that needed exactly one revision.
    pub fn single_revision_share(&self) -> f64 {
        if self.resolved == 0 {
            return 0.0;
        }
        self.counts.first().copied().unwrap_or(0) as f64 / self.resolved as f64
    }
}

/// Runs ReAct + RAG + Quartus over the syntax dataset and histograms the
/// revisions needed per successful episode.
pub fn figure7(config: &FixRateConfig) -> IterationHistogram {
    let entries = load_entries(config);
    let max_iterations = 10usize;
    let mut counts = vec![0usize; max_iterations];
    let mut unresolved = 0usize;
    let mut resolved = 0usize;
    for (entry_idx, entry) in entries.iter().enumerate() {
        for repeat in 0..config.repeats {
            let seed = config
                .base_seed
                .wrapping_mul(104_729)
                .wrapping_add(entry_idx as u64 * 131 + repeat as u64);
            let llm = SimulatedLlm::new(Capability::Gpt35Class, seed);
            let mut fixer = RtlFixerBuilder::new()
                .compiler(CompilerKind::Quartus)
                .strategy(Strategy::React { max_iterations })
                .with_rag(true)
                .build(llm);
            let outcome = fixer.fix_problem(&entry.description, &entry.code);
            if outcome.success {
                resolved += 1;
                let bucket = outcome.revisions.clamp(1, max_iterations) - 1;
                counts[bucket] += 1;
            } else {
                unresolved += 1;
            }
        }
    }
    IterationHistogram { counts, unresolved, resolved }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn most_fixes_take_one_revision() {
        let config = FixRateConfig {
            max_entries: Some(40),
            repeats: 2,
            dataset_seed: 7,
            base_seed: 3,
        };
        let histogram = figure7(&config);
        assert!(histogram.resolved > 0);
        // Paper: ~90% in one revision; allow slack on the small subset.
        assert!(
            histogram.single_revision_share() > 0.6,
            "single-revision share {}",
            histogram.single_revision_share()
        );
        // The distribution must be heavily front-loaded.
        assert!(histogram.counts[0] > histogram.counts[2..].iter().sum::<usize>());
    }
}
