//! Design-choice ablations beyond the paper's tables (DESIGN.md §3):
//! retriever choice, ReAct iteration budget, pre-fixer on/off, and guidance
//! database size.

use std::sync::Arc;

use serde::Serialize;

use rtlfixer_agent::{RtlFixerBuilder, Strategy};
use rtlfixer_compilers::CompilerKind;
use rtlfixer_llm::{Capability, ResilientModel, SimulatedLlm};
use rtlfixer_rag::{
    ExactTagRetriever, GuidanceDatabase, HybridRetriever, JaccardRetriever, Retriever,
    TfIdfRetriever,
};

use super::table1::{load_entries, FixRateConfig};
use crate::metrics::fix_rate;
use crate::runner::{episode_grid, run_episodes, RunStats};

/// A labelled ablation result.
#[derive(Debug, Clone, Serialize)]
pub struct AblationPoint {
    /// Variant label.
    pub variant: String,
    /// Measured fix rate.
    pub fix_rate: f64,
    /// Wall-clock statistics for this variant's episodes.
    pub stats: RunStats,
}

/// Runs one ablation variant on the episode pool. `cell` is the variant's
/// slot in the canonical seed namespace (see [`crate::runner::episode_seed`]);
/// each variant gets a distinct cell so sweeps never share episode seeds.
fn run_variant(
    entries: &[rtlfixer_dataset::SyntaxBenchEntry],
    config: &FixRateConfig,
    cell: u64,
    build: impl Fn(u64) -> rtlfixer_agent::RtlFixer<ResilientModel<SimulatedLlm>> + Sync,
) -> (f64, RunStats) {
    let specs = episode_grid(config.base_seed, cell, entries.len(), config.repeats);
    let (successes, stats) = run_episodes(config.jobs, &specs, |spec| {
        let entry = &entries[spec.entry];
        let mut fixer = build(spec.seed);
        fixer.fix_problem(&entry.description, &entry.code).success
    });
    let per_problem: Vec<(usize, usize)> = successes
        .chunks(config.repeats.max(1))
        .map(|repeats| (repeats.iter().filter(|s| **s).count(), repeats.len()))
        .collect();
    (fix_rate(&per_problem), stats)
}

fn point(
    label: String,
    entries: &[rtlfixer_dataset::SyntaxBenchEntry],
    config: &FixRateConfig,
    cell: u64,
    build: impl Fn(u64) -> rtlfixer_agent::RtlFixer<ResilientModel<SimulatedLlm>> + Sync,
) -> AblationPoint {
    let (rate, stats) = run_variant(entries, config, cell, build);
    AblationPoint { variant: label, fix_rate: rate, stats }
}

/// Retriever ablation: exact-tag vs Jaccard vs TF-IDF vs hybrid, ReAct +
/// Quartus. Seed cells 500–503.
pub fn retriever_ablation(config: &FixRateConfig) -> Vec<AblationPoint> {
    let entries = load_entries(config);
    type MakeRetriever = Box<dyn Fn() -> Box<dyn Retriever> + Send + Sync>;
    let variants: Vec<(&str, MakeRetriever)> = vec![
        ("exact-tag", Box::new(|| Box::new(ExactTagRetriever::new()))),
        ("jaccard", Box::new(|| Box::new(JaccardRetriever::new()))),
        ("tfidf", Box::new(|| Box::new(TfIdfRetriever::new()))),
        ("hybrid", Box::new(|| Box::new(HybridRetriever::new()))),
    ];
    variants
        .into_iter()
        .enumerate()
        .map(|(slot, (label, make))| {
            point(label.to_owned(), &entries, config, 500 + slot as u64, |seed| {
                RtlFixerBuilder::new()
                    .compiler(CompilerKind::Quartus)
                    .strategy(Strategy::React { max_iterations: 10 })
                    .with_rag(true)
                    .retriever(make())
                    .fault_seed(seed)
                    .build(ResilientModel::new(
                        SimulatedLlm::new(Capability::Gpt35Class, seed),
                        seed,
                    ))
            })
        })
        .collect()
}

/// Exact-tag vs hybrid on the iverilog personality, whose logs carry no
/// vendor error tags at all — the grid where lexical + category evidence
/// has to carry retrieval on its own. Seed cells 510–511.
pub fn iverilog_retriever_duel(config: &FixRateConfig) -> Vec<AblationPoint> {
    let entries = load_entries(config);
    type MakeRetriever = Box<dyn Fn() -> Box<dyn Retriever> + Send + Sync>;
    let variants: Vec<(&str, MakeRetriever)> = vec![
        ("iverilog exact-tag", Box::new(|| Box::new(ExactTagRetriever::new()))),
        ("iverilog hybrid", Box::new(|| Box::new(HybridRetriever::new()))),
    ];
    variants
        .into_iter()
        .enumerate()
        .map(|(slot, (label, make))| {
            point(label.to_owned(), &entries, config, 510 + slot as u64, |seed| {
                RtlFixerBuilder::new()
                    .compiler(CompilerKind::Iverilog)
                    .strategy(Strategy::React { max_iterations: 10 })
                    .with_rag(true)
                    .retriever(make())
                    .fault_seed(seed)
                    .build(ResilientModel::new(
                        SimulatedLlm::new(Capability::Gpt35Class, seed),
                        seed,
                    ))
            })
        })
        .collect()
}

/// Iteration-budget sweep for ReAct (n ∈ {1, 2, 3, 5, 10}). Seed cells
/// 100–104.
pub fn iteration_sweep(config: &FixRateConfig) -> Vec<AblationPoint> {
    let entries = load_entries(config);
    [1usize, 2, 3, 5, 10]
        .iter()
        .enumerate()
        .map(|(slot, &n)| {
            point(format!("n={n}"), &entries, config, 100 + slot as u64, |seed| {
                RtlFixerBuilder::new()
                    .compiler(CompilerKind::Quartus)
                    .strategy(Strategy::React { max_iterations: n })
                    .with_rag(false)
                    .fault_seed(seed)
                    .build(ResilientModel::new(
                        SimulatedLlm::new(Capability::Gpt35Class, seed),
                        seed,
                    ))
            })
        })
        .collect()
}

/// Pre-fixer on/off ablation (One-shot, so the pre-fixer's contribution is
/// visible rather than recovered by iteration). Seed cells 200–201.
pub fn prefixer_ablation(config: &FixRateConfig) -> Vec<AblationPoint> {
    let entries = load_entries(config);
    [true, false]
        .iter()
        .enumerate()
        .map(|(slot, &enabled)| {
            let label = if enabled { "prefixer on" } else { "prefixer off" };
            point(label.to_owned(), &entries, config, 200 + slot as u64, |seed| {
                RtlFixerBuilder::new()
                    .compiler(CompilerKind::Quartus)
                    .strategy(Strategy::OneShot)
                    .with_rag(true)
                    .prefixer(enabled)
                    .fault_seed(seed)
                    .build(ResilientModel::new(
                        SimulatedLlm::new(Capability::Gpt35Class, seed),
                        seed,
                    ))
            })
        })
        .collect()
}

/// Guidance-database size sweep: fraction of entries kept (per category
/// order), ReAct + Quartus + RAG. Seed cells 300–303.
pub fn database_size_sweep(config: &FixRateConfig) -> Vec<AblationPoint> {
    let entries = load_entries(config);
    [0.0f64, 0.25, 0.5, 1.0]
        .iter()
        .enumerate()
        .map(|(slot, &fraction)| {
            let full = GuidanceDatabase::quartus();
            let keep = ((full.entries.len() as f64) * fraction).round() as usize;
            // One truncated database per variant, shared across all of the
            // variant's episodes (and worker threads) behind an Arc.
            let database = Arc::new(GuidanceDatabase {
                edition: full.edition,
                entries: full.entries.into_iter().take(keep).collect(),
            });
            point(
                format!("{:.0}% of database", fraction * 100.0),
                &entries,
                config,
                300 + slot as u64,
                |seed| {
                    RtlFixerBuilder::new()
                        .compiler(CompilerKind::Quartus)
                        .strategy(Strategy::React { max_iterations: 10 })
                        .with_rag(true)
                        .shared_database(Arc::clone(&database))
                        .fault_seed(seed)
                    .build(ResilientModel::new(
                        SimulatedLlm::new(Capability::Gpt35Class, seed),
                        seed,
                    ))
                },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> FixRateConfig {
        FixRateConfig {
            max_entries: Some(24),
            repeats: 2,
            dataset_seed: 7,
            base_seed: 9,
            jobs: 1,
        }
    }

    #[test]
    fn iteration_budget_is_monotone_ish() {
        let sweep = iteration_sweep(&small_config());
        let first = sweep.first().unwrap().fix_rate;
        let last = sweep.last().unwrap().fix_rate;
        assert!(last > first, "n=10 ({last}) should beat n=1 ({first})");
    }

    #[test]
    fn bigger_database_does_not_hurt() {
        let sweep = database_size_sweep(&small_config());
        let empty = sweep.first().unwrap().fix_rate;
        let full = sweep.last().unwrap().fix_rate;
        assert!(full >= empty, "full {full} vs empty {empty}");
    }

    #[test]
    fn all_retrievers_produce_results() {
        let results = retriever_ablation(&small_config());
        assert_eq!(results.len(), 4);
        for point in &results {
            assert!(point.fix_rate > 0.3, "{point:?}");
        }
    }

    #[test]
    fn hybrid_beats_exact_tag_on_iverilog() {
        // iverilog logs carry no vendor tags, so exact-tag retrieval is
        // blind there; the hybrid's category + lexical evidence must win.
        let config = FixRateConfig {
            max_entries: Some(24),
            repeats: 3,
            dataset_seed: 7,
            base_seed: 9,
            jobs: 1,
        };
        let duel = iverilog_retriever_duel(&config);
        assert_eq!(duel.len(), 2);
        let exact = duel[0].fix_rate;
        let hybrid = duel[1].fix_rate;
        assert!(hybrid > exact, "hybrid {hybrid} vs exact-tag {exact}");
    }

    #[test]
    fn sweeps_are_jobs_invariant() {
        let serial = small_config();
        let parallel = FixRateConfig { jobs: 4, ..serial };
        let a: Vec<f64> = prefixer_ablation(&serial).iter().map(|p| p.fix_rate).collect();
        let b: Vec<f64> = prefixer_ablation(&parallel).iter().map(|p| p.fix_rate).collect();
        assert_eq!(a, b);
    }
}
