//! Design-choice ablations beyond the paper's tables (DESIGN.md §3):
//! retriever choice, ReAct iteration budget, pre-fixer on/off, and guidance
//! database size.

use serde::Serialize;

use rtlfixer_agent::{RtlFixerBuilder, Strategy};
use rtlfixer_compilers::CompilerKind;
use rtlfixer_llm::{Capability, SimulatedLlm};
use rtlfixer_rag::{
    ExactTagRetriever, GuidanceDatabase, JaccardRetriever, Retriever, TfIdfRetriever,
};

use super::table1::{load_entries, FixRateConfig};
use crate::metrics::fix_rate;

/// A labelled ablation result.
#[derive(Debug, Clone, Serialize)]
pub struct AblationPoint {
    /// Variant label.
    pub variant: String,
    /// Measured fix rate.
    pub fix_rate: f64,
}

fn run_variant(
    entries: &[rtlfixer_dataset::SyntaxBenchEntry],
    config: &FixRateConfig,
    seed_salt: u64,
    build: impl Fn(u64) -> rtlfixer_agent::RtlFixer<SimulatedLlm>,
) -> f64 {
    let per_problem: Vec<(usize, usize)> = entries
        .iter()
        .enumerate()
        .map(|(idx, entry)| {
            let mut fixed = 0usize;
            for repeat in 0..config.repeats {
                let seed = config
                    .base_seed
                    .wrapping_mul(48_271)
                    .wrapping_add(seed_salt * 7_907 + idx as u64 * 127 + repeat as u64);
                let mut fixer = build(seed);
                if fixer.fix_problem(&entry.description, &entry.code).success {
                    fixed += 1;
                }
            }
            (fixed, config.repeats)
        })
        .collect();
    fix_rate(&per_problem)
}

/// Retriever ablation: exact-tag vs Jaccard vs TF-IDF, ReAct + Quartus.
pub fn retriever_ablation(config: &FixRateConfig) -> Vec<AblationPoint> {
    let entries = load_entries(config);
    let variants: Vec<(&str, Box<dyn Fn() -> Box<dyn Retriever>>)> = vec![
        ("exact-tag", Box::new(|| Box::new(ExactTagRetriever::new()))),
        ("jaccard", Box::new(|| Box::new(JaccardRetriever::new()))),
        ("tfidf", Box::new(|| Box::new(TfIdfRetriever::new()))),
    ];
    variants
        .into_iter()
        .enumerate()
        .map(|(salt, (label, make))| AblationPoint {
            variant: label.to_owned(),
            fix_rate: run_variant(&entries, config, salt as u64, |seed| {
                RtlFixerBuilder::new()
                    .compiler(CompilerKind::Quartus)
                    .strategy(Strategy::React { max_iterations: 10 })
                    .with_rag(true)
                    .retriever(make())
                    .build(SimulatedLlm::new(Capability::Gpt35Class, seed))
            }),
        })
        .collect()
}

/// Iteration-budget sweep for ReAct (n ∈ {1, 2, 3, 5, 10}).
pub fn iteration_sweep(config: &FixRateConfig) -> Vec<AblationPoint> {
    let entries = load_entries(config);
    [1usize, 2, 3, 5, 10]
        .iter()
        .enumerate()
        .map(|(salt, &n)| AblationPoint {
            variant: format!("n={n}"),
            fix_rate: run_variant(&entries, config, 100 + salt as u64, |seed| {
                RtlFixerBuilder::new()
                    .compiler(CompilerKind::Quartus)
                    .strategy(Strategy::React { max_iterations: n })
                    .with_rag(false)
                    .build(SimulatedLlm::new(Capability::Gpt35Class, seed))
            }),
        })
        .collect()
}

/// Pre-fixer on/off ablation (One-shot, so the pre-fixer's contribution is
/// visible rather than recovered by iteration).
pub fn prefixer_ablation(config: &FixRateConfig) -> Vec<AblationPoint> {
    let entries = load_entries(config);
    [true, false]
        .iter()
        .enumerate()
        .map(|(salt, &enabled)| AblationPoint {
            variant: if enabled { "prefixer on".into() } else { "prefixer off".into() },
            fix_rate: run_variant(&entries, config, 200 + salt as u64, |seed| {
                RtlFixerBuilder::new()
                    .compiler(CompilerKind::Quartus)
                    .strategy(Strategy::OneShot)
                    .with_rag(true)
                    .prefixer(enabled)
                    .build(SimulatedLlm::new(Capability::Gpt35Class, seed))
            }),
        })
        .collect()
}

/// Guidance-database size sweep: fraction of entries kept (per category
/// order), ReAct + Quartus + RAG.
pub fn database_size_sweep(config: &FixRateConfig) -> Vec<AblationPoint> {
    let entries = load_entries(config);
    [0.0f64, 0.25, 0.5, 1.0]
        .iter()
        .enumerate()
        .map(|(salt, &fraction)| {
            let full = GuidanceDatabase::quartus();
            let keep = ((full.entries.len() as f64) * fraction).round() as usize;
            let database = GuidanceDatabase {
                edition: full.edition,
                entries: full.entries.into_iter().take(keep).collect(),
            };
            AblationPoint {
                variant: format!("{:.0}% of database", fraction * 100.0),
                fix_rate: run_variant(&entries, config, 300 + salt as u64, |seed| {
                    RtlFixerBuilder::new()
                        .compiler(CompilerKind::Quartus)
                        .strategy(Strategy::React { max_iterations: 10 })
                        .with_rag(true)
                        .database(database.clone())
                        .build(SimulatedLlm::new(Capability::Gpt35Class, seed))
                }),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> FixRateConfig {
        FixRateConfig { max_entries: Some(24), repeats: 2, dataset_seed: 7, base_seed: 9 }
    }

    #[test]
    fn iteration_budget_is_monotone_ish() {
        let sweep = iteration_sweep(&small_config());
        let first = sweep.first().unwrap().fix_rate;
        let last = sweep.last().unwrap().fix_rate;
        assert!(last > first, "n=10 ({last}) should beat n=1 ({first})");
    }

    #[test]
    fn bigger_database_does_not_hurt() {
        let sweep = database_size_sweep(&small_config());
        let empty = sweep.first().unwrap().fix_rate;
        let full = sweep.last().unwrap().fix_rate;
        assert!(full >= empty, "full {full} vs empty {empty}");
    }

    #[test]
    fn all_retrievers_produce_results() {
        let results = retriever_ablation(&small_config());
        assert_eq!(results.len(), 3);
        for point in &results {
            assert!(point.fix_rate > 0.3, "{point:?}");
        }
    }
}
