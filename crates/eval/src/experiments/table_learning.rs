//! Learning curve: fix rate vs episodes served as the distilled store
//! grows (DESIGN.md §3k).
//!
//! Each round replays the *same* episode grid (seed cell 800, iverilog +
//! ReAct ×10 + RAG, GPT-3.5-class) against a shared [`DistilledStore`].
//! Because the seeds never change, rounds differ only through the store's
//! state: a round-0 episode that succeeded after real revisions files a
//! repair brief under its initial error shape, and every later episode that
//! hits the same shape — other repeats of the same entry, or other entries
//! whose normalised log matches — retrieves it as exact guidance. The fix
//! rate climbing across rounds is therefore *pure* retrieval-loop effect,
//! not seed luck.
//!
//! Merges happen only at the per-round pool barrier, in grid index order,
//! so the curve is bit-identical at any `--jobs` value.

use std::sync::Arc;

use serde::Serialize;

use rtlfixer_agent::Strategy;
use rtlfixer_compilers::CompilerKind;
use rtlfixer_llm::Capability;
use rtlfixer_rag::DistilledStore;

use super::table1::{fix_rate_from_successes, load_entries, FixRateConfig};
use crate::episode::{run_repair, RepairJob};
use crate::runner::{episode_grid, run_episodes_planned, RunStats};
use crate::schedule::EpisodeFeatures;

/// Seed cell for every learning-curve round (see the namespace table in
/// [`crate::runner`]). One cell for all rounds is deliberate: reusing the
/// seeds is what isolates the store's contribution.
const CELL: u64 = 800;

/// Configuration for the learning-curve experiment.
#[derive(Debug, Clone, Copy)]
pub struct LearningConfig {
    /// Number of times the grid is replayed.
    pub rounds: usize,
    /// The per-round episode grid (entries, repeats, seeds, jobs).
    pub episodes: FixRateConfig,
}

impl LearningConfig {
    /// Smoke-test preset: small grid, three rounds.
    pub fn quick() -> Self {
        LearningConfig {
            rounds: 3,
            episodes: FixRateConfig {
                max_entries: Some(16),
                repeats: 2,
                dataset_seed: 7,
                base_seed: 9,
                jobs: 0,
            },
        }
    }

    /// Full preset: the whole dataset, five rounds.
    pub fn full() -> Self {
        LearningConfig {
            rounds: 5,
            episodes: FixRateConfig {
                max_entries: None,
                repeats: 3,
                dataset_seed: 7,
                base_seed: 1,
                jobs: 0,
            },
        }
    }
}

/// One round of the learning curve.
#[derive(Debug, Clone, Serialize)]
pub struct LearningPoint {
    /// 0-based round index.
    pub round: usize,
    /// Fix rate over the round's grid (paper Eq. 1).
    pub fix_rate: f64,
    /// Distilled-store size *after* this round's barrier merge.
    pub store_entries: usize,
    /// Wall-clock statistics for the round.
    pub stats: RunStats,
}

/// Runs the learning-curve experiment: `rounds` replays of the cell-800
/// grid over one growing [`DistilledStore`].
pub fn run_learning(config: &LearningConfig) -> Vec<LearningPoint> {
    let entries = load_entries(&config.episodes);
    let store = Arc::new(DistilledStore::new());
    let grid = episode_grid(
        config.episodes.base_seed,
        CELL,
        entries.len(),
        config.episodes.repeats,
    );
    let features: Vec<EpisodeFeatures> = grid
        .iter()
        .map(|spec| {
            let entry = &entries[spec.entry];
            EpisodeFeatures::of(&entry.code, entry.categories.first().map(|c| c.slug()))
        })
        .collect();

    let mut points = Vec::with_capacity(config.rounds);
    for round in 0..config.rounds {
        let (outcomes, failures, stats) =
            run_episodes_planned(config.episodes.jobs, &grid, &features, |spec| {
                let entry = &entries[spec.entry];
                run_repair(&RepairJob {
                    problem: &entry.description,
                    code: &entry.code,
                    compiler: CompilerKind::Iverilog,
                    strategy: Strategy::React { max_iterations: 10 },
                    rag: true,
                    capability: Capability::Gpt35Class,
                    seed: spec.seed,
                    deadline_ms: None,
                    distilled: Some(&store),
                })
            });
        if let Some(first) = failures.first() {
            panic!(
                "{} of {} learning episodes panicked; first at position {}: {}",
                failures.len(),
                grid.len(),
                first.index,
                first.message
            );
        }
        let successes: Vec<bool> = outcomes
            .iter()
            .map(|o| o.as_ref().is_some_and(|o| o.success))
            .collect();
        // Pool barrier: merge fresh briefs in grid index order. Episodes
        // snapshot the store at fixer build, so nothing above raced on it;
        // index-order merging makes the post-round store (and every later
        // round) identical at any worker count.
        for outcome in outcomes.iter().flatten() {
            store.merge(&outcome.distilled);
        }
        points.push(LearningPoint {
            round,
            fix_rate: fix_rate_from_successes(&successes, config.episodes.repeats),
            store_entries: store.len(),
            stats,
        });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LearningConfig {
        LearningConfig {
            rounds: 3,
            episodes: FixRateConfig {
                max_entries: Some(12),
                repeats: 2,
                dataset_seed: 7,
                base_seed: 9,
                jobs: 1,
            },
        }
    }

    #[test]
    fn curve_is_jobs_invariant() {
        let serial = tiny();
        let mut parallel = tiny();
        parallel.episodes.jobs = 4;
        let a: Vec<(f64, usize)> =
            run_learning(&serial).iter().map(|p| (p.fix_rate, p.store_entries)).collect();
        let b: Vec<(f64, usize)> =
            run_learning(&parallel).iter().map(|p| (p.fix_rate, p.store_entries)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn round_zero_matches_store_free_baseline() {
        // Round 0 starts from an empty store, and episodes snapshot the
        // store at build — so its fix rate must equal the same grid run
        // with no store wired at all (the `RTLFIXER_RAG_DISTILL=0`
        // reproduction contract, checked at the library level).
        let config = tiny();
        let points = run_learning(&config);

        let entries = load_entries(&config.episodes);
        let grid = episode_grid(
            config.episodes.base_seed,
            CELL,
            entries.len(),
            config.episodes.repeats,
        );
        let successes: Vec<bool> = grid
            .iter()
            .map(|spec| {
                let entry = &entries[spec.entry];
                run_repair(&RepairJob {
                    problem: &entry.description,
                    code: &entry.code,
                    compiler: CompilerKind::Iverilog,
                    strategy: Strategy::React { max_iterations: 10 },
                    rag: true,
                    capability: Capability::Gpt35Class,
                    seed: spec.seed,
                    deadline_ms: None,
                    distilled: None,
                })
                .success
            })
            .collect();
        let baseline = fix_rate_from_successes(&successes, config.episodes.repeats);
        assert_eq!(points[0].fix_rate, baseline);
    }

    #[test]
    fn store_grows_and_the_curve_does_not_regress() {
        let points = run_learning(&tiny());
        assert_eq!(points.len(), 3);
        assert!(
            points[0].store_entries > 0,
            "round 0 should distill something: {points:?}"
        );
        for pair in points.windows(2) {
            assert!(
                pair[1].store_entries >= pair[0].store_entries,
                "store shrank: {points:?}"
            );
            assert!(
                pair[1].fix_rate >= pair[0].fix_rate,
                "curve regressed: {points:?}"
            );
        }
        assert!(
            points.last().unwrap().fix_rate >= points[0].fix_rate,
            "no learning effect: {points:?}"
        );
    }
}
