//! §5 extension study: debugging *simulation* (logic) errors.
//!
//! The paper's §5 reports a preliminary study: feeding simulation error
//! logs — output error counts and "text-formatted waveform-like comparisons"
//! — back to the LLM agent yields only limited improvement beyond syntax
//! fixing, helping on simple problems but not on ones needing advanced
//! reasoning. This module reproduces that study:
//!
//! * [`render_sim_feedback`] builds the waveform-style mismatch report.
//! * [`SimDebugger`] runs the iterative repair loop. Its "LLM" proposes
//!   single-operator logic edits (the same operator family the generation
//!   model injects bugs from) biased by the feedback, and the testbench
//!   adjudicates — a local search whose success falls off sharply with
//!   problem complexity, matching the paper's observation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rtlfixer_dataset::{Problem, Verdict};
use rtlfixer_sim::testbench::run_testbench;
use rtlfixer_sim::value::LogicVec;

/// Renders the §5-style simulation feedback: mismatch count plus a
/// waveform-like table around the first mismatch.
pub fn render_sim_feedback(problem: &Problem, code: &str) -> Option<String> {
    let analysis = rtlfixer_verilog::compile_shared(code);
    if !analysis.is_ok() {
        return None;
    }
    let mut golden = (problem.golden)();
    let stimuli = problem.stimuli(0xC0FFEE);
    let result = match run_testbench(
        &analysis,
        &problem.top,
        golden.as_mut(),
        &stimuli,
        &problem.clocking,
    ) {
        Ok(result) => result,
        // A runtime simulation failure is itself actionable feedback: an
        // unstable design names the still-toggling nets (combinational
        // loop), which is exactly what the agent needs to see.
        Err(rtlfixer_sim::testbench::TestbenchError::Sim(e)) => {
            return Some(format!("Simulation FAILED before producing outputs: {e}."));
        }
        Err(_) => return None,
    };
    if result.passed {
        return Some("All output samples match the reference. 0 mismatches.".to_owned());
    }
    let mismatch = result.first_mismatch.as_ref()?;
    let mut out = format!(
        "Simulation FAILED: {} mismatched output sample(s) over {} cycles.\n\
         First mismatch at cycle {} on output '{}':\n",
        result.mismatch_count, result.cycles, mismatch.cycle, mismatch.port
    );
    out.push_str(&format!(
        "  cycle | {:^18} | {:^18}\n  ------+{:-^20}+{:-^20}\n",
        "yours", "expected", "", ""
    ));
    out.push_str(&format!(
        "  {:>5} | {:>18} | {:>18}\n",
        mismatch.cycle,
        truncate_vec(&mismatch.got),
        truncate_vec(&mismatch.want)
    ));
    Some(out)
}

fn truncate_vec(v: &LogicVec) -> String {
    truncate_text(&v.to_string(), 18)
}

/// Truncates to at most `max` characters, appending `…` when cut. Cuts on
/// `char` boundaries — a byte-indexed slice would panic mid-codepoint.
fn truncate_text(text: &str, max: usize) -> String {
    match text.char_indices().nth(max.saturating_sub(1)) {
        Some((byte_idx, _)) if text[byte_idx..].chars().nth(1).is_some() => {
            format!("{}…", &text[..byte_idx])
        }
        _ => text.to_owned(),
    }
}

/// Outcome of a simulation-debugging episode.
#[derive(Debug, Clone)]
pub struct SimDebugOutcome {
    /// Whether the final code passes the testbench.
    pub success: bool,
    /// The final code.
    pub final_code: String,
    /// Repair proposals evaluated.
    pub proposals: usize,
}

/// The §5 logic-error debugger: iterative propose-and-test local search
/// over single-operator edits.
#[derive(Debug)]
pub struct SimDebugger {
    rng: StdRng,
    /// Maximum repair proposals per episode.
    pub max_proposals: usize,
}

/// Candidate single-operator logic edits (the same family the generation
/// model draws functional bugs from, §DESIGN).
const EDIT_OPS: &[(&str, &str)] = &[
    (" | ", " & "),
    (" & ", " | "),
    (" & ", " ^ "),
    (" ^ ", " & "),
    (" - ", " + "),
    (" + ", " - "),
    (" <= ", " < "),
    (" < ", " <= "),
    (" >= ", " > "),
    (" > ", " >= "),
    (" != ", " == "),
    (" == ", " != "),
    ("? a : b", "? b : a"),
    ("? b : a", "? a : b"),
    ("q + 2", "q + 1"),
    ("<= 1;", "<= 0;"),
    // Insertion proposals: reintroduce a dropped inversion.
    ("= ", "= ~"),
    ("(", "(~"),
    ("~", ""),
];

impl SimDebugger {
    /// Creates a debugger with the paper's 10-iteration budget.
    pub fn new(seed: u64) -> Self {
        SimDebugger { rng: StdRng::seed_from_u64(seed), max_proposals: 10 }
    }

    /// Attempts to repair a *compiling but functionally wrong* candidate.
    pub fn debug(&mut self, problem: &Problem, code: &str) -> SimDebugOutcome {
        let mut proposals = 0usize;
        if problem.check(code) == Verdict::Pass {
            return SimDebugOutcome { success: true, final_code: code.to_owned(), proposals };
        }
        let header_end = code.find(';').map(|i| i + 1).unwrap_or(0);
        while proposals < self.max_proposals {
            proposals += 1;
            // Propose: pick an edit operator and an occurrence.
            let (pattern, replacement) = EDIT_OPS[self.rng.gen_range(0..EDIT_OPS.len())];
            let body = &code[header_end..];
            let sites: Vec<usize> = body
                .match_indices(pattern)
                .map(|(idx, _)| header_end + idx)
                .collect();
            if sites.is_empty() {
                continue;
            }
            let site = sites[self.rng.gen_range(0..sites.len())];
            let mut candidate = code.to_owned();
            candidate.replace_range(site..site + pattern.len(), replacement);
            // Test: compile + simulate (the agent's Compiler/Testbench
            // actions).
            if rtlfixer_verilog::compile_shared(&candidate).is_ok()
                && problem.check(&candidate) == Verdict::Pass
            {
                return SimDebugOutcome { success: true, final_code: candidate, proposals };
            }
        }
        SimDebugOutcome { success: false, final_code: code.to_owned(), proposals }
    }
}

/// Measures the §5 result: pass-rate improvement from simulation-error
/// debugging on functionally-wrong candidates, split by module complexity.
///
/// The paper's observation is about *problem complexity*: the agent fixes
/// logic bugs in simple modules but struggles as designs grow. The honest
/// complexity proxy for the propose-and-test search is the size of the
/// module's edit space, which scales with its source size.
#[derive(Debug, Clone, serde::Serialize)]
pub struct SimDebugStudy {
    /// Complexity bucket label.
    pub set: String,
    /// Functionally-wrong candidates attempted.
    pub attempted: usize,
    /// Candidates repaired to passing.
    pub repaired: usize,
}

impl SimDebugStudy {
    /// Fraction repaired.
    pub fn repair_rate(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.repaired as f64 / self.attempted as f64
        }
    }
}

/// Source-line threshold between "simple" and "complex" modules.
const SIMPLE_LINE_LIMIT: usize = 6;

/// Runs the study over a problem slice: inject one functional bug per
/// problem, then try to debug it back.
pub fn sim_debug_study(problems: &[Problem], seed: u64, jobs: usize) -> Vec<SimDebugStudy> {
    sim_debug_study_timed(problems, seed, jobs).0
}

/// [`sim_debug_study`] plus wall-clock stats (one episode per problem).
///
/// Each problem derives its own mutation RNG (seed cell 60) and debugger
/// seed (cell 61) from [`crate::runner::episode_seed`], so episodes are
/// independent and run on the parallel pool; the per-bucket rows are
/// aggregated afterwards and identical for every `jobs` value.
pub fn sim_debug_study_timed(
    problems: &[Problem],
    seed: u64,
    jobs: usize,
) -> (Vec<SimDebugStudy>, crate::runner::RunStats) {
    let start = std::time::Instant::now();
    // Per-problem outcome: None when the problem yielded no usable bug,
    // otherwise (is_simple, repaired).
    let outcomes: Vec<Option<(bool, bool)>> =
        crate::runner::run_indexed(jobs, problems.len(), |idx| {
            let problem = &problems[idx];
            let mut rng = StdRng::seed_from_u64(crate::runner::episode_seed(
                seed, 60, idx as u64, 0,
            ));
            let buggy = rtlfixer_dataset::mutate::inject_functional_bug(
                &problem.solution,
                &mut rng,
            )?;
            if problem.check(&buggy) == Verdict::Pass {
                return None; // mutation happened to be benign
            }
            let is_simple = problem.solution.lines().count() <= SIMPLE_LINE_LIMIT;
            let mut debugger =
                SimDebugger::new(crate::runner::episode_seed(seed, 61, idx as u64, 0));
            Some((is_simple, debugger.debug(problem, &buggy).success))
        });
    let mut rows = vec![
        SimDebugStudy { set: "simple modules".into(), attempted: 0, repaired: 0 },
        SimDebugStudy { set: "complex modules".into(), attempted: 0, repaired: 0 },
    ];
    for outcome in outcomes.iter().flatten() {
        let row = if outcome.0 { &mut rows[0] } else { &mut rows[1] };
        row.attempted += 1;
        if outcome.1 {
            row.repaired += 1;
        }
    }
    (rows, crate::runner::RunStats::new(problems.len(), start.elapsed()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlfixer_dataset::suites;

    #[test]
    fn feedback_reports_mismatch_waveform() {
        let problem = suites::find_problem("human/and8").expect("exists");
        let wrong = problem.solution.replace(" & ", " | ");
        let feedback = render_sim_feedback(&problem, &wrong).expect("renders");
        assert!(feedback.contains("Simulation FAILED"), "{feedback}");
        assert!(feedback.contains("First mismatch at cycle"), "{feedback}");
        assert!(feedback.contains("expected"), "{feedback}");
    }

    #[test]
    fn feedback_reports_success_for_correct_code() {
        let problem = suites::find_problem("human/and8").expect("exists");
        let feedback = render_sim_feedback(&problem, &problem.solution).expect("renders");
        assert!(feedback.contains("0 mismatches"));
    }

    #[test]
    fn feedback_surfaces_unstable_simulation() {
        // A combinational loop compiles but never settles; the feedback must
        // say so and name the oscillating net instead of returning None.
        let problem = suites::find_problem("human/and8").expect("exists");
        let oscillating = problem
            .solution
            .replace("endmodule", "wire osc_n;\nassign osc_n = ~osc_n;\nendmodule");
        let feedback = render_sim_feedback(&problem, &oscillating).expect("renders");
        assert!(feedback.contains("Simulation FAILED"), "{feedback}");
        assert!(feedback.contains("did not settle"), "{feedback}");
        assert!(feedback.contains("osc_n"), "{feedback}");
    }

    #[test]
    fn feedback_is_none_for_uncompilable_code() {
        let problem = suites::find_problem("human/and8").expect("exists");
        assert!(render_sim_feedback(&problem, "module m(").is_none());
    }

    #[test]
    fn truncate_respects_char_boundaries() {
        // Multi-byte codepoints near the cut: byte slicing would panic.
        let wide = "××××××××××××××××××××"; // 20 chars, 2 bytes each
        let cut = truncate_text(wide, 18);
        assert_eq!(cut.chars().count(), 18);
        assert!(cut.ends_with('…'));
        // Exactly-at-limit and short inputs pass through unchanged.
        assert_eq!(truncate_text("×".repeat(18).as_str(), 18), "×".repeat(18));
        assert_eq!(truncate_text("0101", 18), "0101");
        assert_eq!(truncate_text("", 18), "");
        // ASCII behaviour matches the old byte-indexed version.
        let long = "0".repeat(25);
        assert_eq!(truncate_text(&long, 18), format!("{}…", "0".repeat(17)));
    }

    #[test]
    fn debugger_repairs_a_simple_operator_bug() {
        let problem = suites::find_problem("human/and8").expect("exists");
        let wrong = problem.solution.replace(" & ", " | ");
        assert_ne!(problem.check(&wrong), Verdict::Pass);
        // Several seeds: the edit space for and8 is tiny, so some seed in a
        // small budget must land the fix.
        let repaired = (0..6).any(|seed| {
            SimDebugger::new(seed).debug(&problem, &wrong).success
        });
        assert!(repaired, "local search should fix a one-op bug on a tiny module");
    }

    #[test]
    fn study_is_jobs_invariant() {
        let problems: Vec<_> = suites::verilog_eval_human().into_iter().step_by(8).collect();
        let serial = sim_debug_study(&problems, 11, 1);
        let parallel = sim_debug_study(&problems, 11, 4);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.attempted, b.attempted);
            assert_eq!(a.repaired, b.repaired);
        }
    }

    #[test]
    fn study_shows_simple_over_complex_gradient() {
        // The §5 finding in miniature: simple modules get repaired more
        // often than complex ones, and the overall gain is partial.
        let problems: Vec<_> = suites::verilog_eval_human().into_iter().step_by(4).collect();
        let rows = sim_debug_study(&problems, 11, 1);
        let simple = &rows[0];
        let complex = &rows[1];
        assert!(simple.attempted > 0 && complex.attempted > 0);
        // "Limited improvements": some logic bugs get repaired, far from all.
        let total_attempted = simple.attempted + complex.attempted;
        let total_repaired = simple.repaired + complex.repaired;
        let rate = total_repaired as f64 / total_attempted as f64;
        assert!(
            (0.05..0.90).contains(&rate),
            "aggregate repair rate should be partial: {rate:.2}"
        );
    }
}
