//! Evaluation metrics: the paper's Eq. 1 (fix rate) and Eq. 2 (unbiased
//! pass@k estimator from Chen et al. 2021).

/// Expectation fix rate (Eq. 1): mean over problems of `c / n`, where `c`
/// is the number of fixed samples out of `n` attempts.
///
/// # Examples
///
/// ```
/// use rtlfixer_eval::metrics::fix_rate;
/// // Two problems: 8/10 and 10/10 fixed.
/// assert!((fix_rate(&[(8, 10), (10, 10)]) - 0.9).abs() < 1e-12);
/// ```
pub fn fix_rate(per_problem: &[(usize, usize)]) -> f64 {
    if per_problem.is_empty() {
        return 0.0;
    }
    let total: f64 = per_problem
        .iter()
        .map(|&(c, n)| if n == 0 { 0.0 } else { c as f64 / n as f64 })
        .sum();
    total / per_problem.len() as f64
}

/// Unbiased pass@k for one problem (Eq. 2):
/// `1 - C(n-c, k) / C(n, k)`, computed stably as a running product.
///
/// # Panics
///
/// Panics if `c > n`.
///
/// # Examples
///
/// ```
/// use rtlfixer_eval::metrics::pass_at_k;
/// assert_eq!(pass_at_k(20, 0, 1), 0.0);
/// assert_eq!(pass_at_k(20, 20, 1), 1.0);
/// assert!((pass_at_k(20, 10, 1) - 0.5).abs() < 1e-12);
/// ```
pub fn pass_at_k(n: usize, c: usize, k: usize) -> f64 {
    assert!(c <= n, "c = {c} exceeds n = {n}");
    if n == 0 || k == 0 {
        return 0.0;
    }
    if c == 0 {
        return 0.0;
    }
    if n - c < k {
        return 1.0;
    }
    // prod_{i=n-c+1}^{n} (1 - k / i)
    let mut product = 1.0f64;
    for i in (n - c + 1)..=n {
        product *= 1.0 - k as f64 / i as f64;
    }
    1.0 - product
}

/// Mean pass@k over problems given per-problem `(c, n)` counts.
pub fn mean_pass_at_k(per_problem: &[(usize, usize)], k: usize) -> f64 {
    if per_problem.is_empty() {
        return 0.0;
    }
    let total: f64 = per_problem.iter().map(|&(c, n)| pass_at_k(n, c, k)).sum();
    total / per_problem.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binomial(n: u64, k: u64) -> f64 {
        if k > n {
            return 0.0;
        }
        let mut result = 1.0f64;
        for i in 0..k {
            result *= (n - i) as f64 / (i + 1) as f64;
        }
        result
    }

    #[test]
    fn matches_direct_binomial_formula() {
        for n in [5usize, 10, 20] {
            for c in 0..=n {
                for k in [1usize, 5] {
                    let direct = if n - c < k {
                        1.0
                    } else {
                        1.0 - binomial((n - c) as u64, k as u64) / binomial(n as u64, k as u64)
                    };
                    let stable = pass_at_k(n, c, k);
                    assert!(
                        (direct - stable).abs() < 1e-9,
                        "n={n} c={c} k={k}: {direct} vs {stable}"
                    );
                }
            }
        }
    }

    #[test]
    fn pass_at_k_monotone_in_c() {
        for k in [1usize, 5] {
            let mut prev = 0.0;
            for c in 0..=20 {
                let value = pass_at_k(20, c, k);
                assert!(value >= prev, "k={k} c={c}");
                prev = value;
            }
        }
    }

    #[test]
    fn pass_at_k_monotone_in_k() {
        for c in [1usize, 5, 10] {
            assert!(pass_at_k(20, c, 5) >= pass_at_k(20, c, 1));
        }
    }

    #[test]
    fn edge_cases() {
        assert_eq!(pass_at_k(0, 0, 1), 0.0);
        assert_eq!(pass_at_k(10, 0, 5), 0.0);
        assert_eq!(pass_at_k(10, 10, 5), 1.0);
        assert_eq!(pass_at_k(10, 1, 10), 1.0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn c_greater_than_n_panics() {
        let _ = pass_at_k(5, 6, 1);
    }

    #[test]
    fn fix_rate_empty_and_zero_n() {
        assert_eq!(fix_rate(&[]), 0.0);
        assert_eq!(fix_rate(&[(0, 0)]), 0.0);
    }

    #[test]
    fn mean_pass_at_k_averages() {
        let per = [(20, 20), (0, 20)];
        assert!((mean_pass_at_k(&per, 1) - 0.5).abs() < 1e-12);
    }
}
