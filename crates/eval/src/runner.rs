//! Deterministic parallel episode execution.
//!
//! Every experiment in this crate is a grid of independent *episodes*
//! (one fixing/generation attempt at fixed coordinates). Episodes are pure
//! functions of their [`EpisodeSpec`] — all randomness comes from the
//! spec's seed, and all inputs (dataset, guidance database, retrieval
//! index) are shared read-only artifacts — so they can execute on any
//! thread in any order without changing results. This module provides:
//!
//! * [`episode_seed`] — the single canonical seed derivation every
//!   experiment uses (one namespace, documented below).
//! * [`run_indexed`] — a self-scheduling (work-stealing) thread pool over
//!   an index range, reassembling results in index order so parallel runs
//!   are byte-identical to `jobs = 1`.
//! * [`run_indexed_checked`] / [`run_episodes_checked`] — the same pool
//!   with per-index panic containment: a panicking episode becomes a
//!   structured [`EpisodeFailure`] instead of tearing down the run.
//! * [`episode_grid`] / [`run_episodes`] — the flattened
//!   entries × repeats grid most experiments execute, with wall-clock
//!   [`RunStats`].
//!
//! # Seed namespace
//!
//! `episode_seed(base, cell, entry, repeat)` mixes a per-config base seed
//! with three grid coordinates. The `cell` coordinate partitions the seed
//! space between experiments so no two episodes in one process ever share
//! a seed by accident:
//!
//! | cell range | experiment |
//! |-----------:|------------|
//! | 0..=13     | Table 1 grid cells (paper row order) |
//! | 20         | Figure 7 iteration histogram |
//! | 40, 41     | Table 2/3 generator and fixer episodes |
//! | 60, 61     | §5 sim-debug mutation and repair |
//! | 100..=104  | ablations: iteration-budget sweep |
//! | 200..=201  | ablations: pre-fixer on/off |
//! | 300..=303  | ablations: database-size sweep |
//! | 500..=503  | ablations: retriever choice (incl. hybrid) |
//! | 510..=511  | ablations: iverilog exact-tag vs hybrid duel |
//! | 700..=799  | chaos: fault-rate sweep (one cell per variant × rate) |
//! | 800        | learning curve (`table_learning`) — every round reuses
//! |            | this one cell, so rounds differ only via the distilled
//! |            | store's state, never via fresh seeds |

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

/// Derives the deterministic seed for one episode.
///
/// The derivation is a fixed-point contract: changing any multiplier
/// changes every experimental result in the repo. `base` is spread across
/// the 64-bit space by the golden-ratio constant; `cell`, `entry` and
/// `repeat` are spaced by primes large enough that realistic grids
/// (hundreds of entries, tens of repeats) never collide within a cell.
pub fn episode_seed(base: u64, cell: u64, entry: u64, repeat: u64) -> u64 {
    base.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(cell.wrapping_mul(1_000_003))
        .wrapping_add(entry.wrapping_mul(10_007))
        .wrapping_add(repeat)
}

/// Resolves a requested worker count: `0` means "use the machine's
/// available parallelism".
pub fn resolve_jobs(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

/// Runs `task(0..len)` across `jobs` worker threads and returns the results
/// in index order.
///
/// Scheduling is self-balancing: workers claim the next index from a shared
/// atomic cursor, so a slow episode never stalls the queue behind it
/// (work-stealing in the limit of a single shared deque). Because `task` is
/// a pure function of its index, the reassembled output is identical for
/// every `jobs` value, including the serial `jobs <= 1` fast path.
pub fn run_indexed<R, F>(jobs: usize, len: usize, task: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let (results, failures) = run_indexed_checked(jobs, len, task);
    if let Some(first) = failures.first() {
        panic!(
            "{} of {len} episodes panicked; first at index {}: {}",
            failures.len(),
            first.index,
            first.message
        );
    }
    results
        .into_iter()
        .map(|v| v.expect("no failures, so every index produced a value"))
        .collect()
}

/// One contained episode panic from [`run_indexed_checked`].
#[derive(Debug, Clone)]
pub struct EpisodeFailure {
    /// Index of the panicking task.
    pub index: usize,
    /// Rendered panic payload.
    pub message: String,
}

/// Renders a caught panic payload for an [`EpisodeFailure`].
///
/// `panic!` payloads are `&str` / `String` and render verbatim. Typed
/// payloads (`std::panic::panic_any` with an error code, an exit status, a
/// structured error) get a best-effort `Debug` rendering for the common
/// primitive types, so server logs are never blind to what actually
/// escaped an episode.
pub fn panic_message(payload: Box<dyn Any + Send>) -> String {
    macro_rules! try_debug {
        ($($ty:ty),+ $(,)?) => {
            $(if let Some(v) = payload.downcast_ref::<$ty>() {
                return format!("panic payload ({}): {:?}", stringify!($ty), v);
            })+
        };
    }
    if let Some(s) = payload.downcast_ref::<&str>() {
        return (*s).to_owned();
    }
    if let Some(s) = payload.downcast_ref::<String>() {
        return s.clone();
    }
    try_debug!(
        i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize, f32, f64, bool, char,
        Box<str>, Vec<String>, Option<String>, std::io::Error, std::fmt::Error,
    );
    format!("non-string panic payload ({:?})", (*payload).type_id())
}

/// Like [`run_indexed`], but a panicking task yields a structured
/// [`EpisodeFailure`] (and a `None` result slot) instead of aborting the
/// pool — one poisoned episode cannot sink a whole grid.
///
/// Failures are returned in index order. Determinism is preserved: panics
/// are as much a pure function of the index as results are.
pub fn run_indexed_checked<R, F>(
    jobs: usize,
    len: usize,
    task: F,
) -> (Vec<Option<R>>, Vec<EpisodeFailure>)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let jobs = resolve_jobs(jobs).min(len.max(1));
    // Each task runs inside an observability episode capture: whatever the
    // episode records (spans, counters, trace events) lands in a
    // worker-local buffer instead of the shared registry. Captures are
    // merged below *after* the pool completes, in index order, so the
    // registry contents and trace-line order are identical at every worker
    // count. With observability off the capture calls are no-op relaxed
    // loads. A contained panic still clears the thread's capture (partial
    // telemetry of a failed episode is kept — failures should be visible).
    let run_one = |index: usize| {
        rtlfixer_obs::episode_begin();
        let result = catch_unwind(AssertUnwindSafe(|| task(index)));
        let telemetry = rtlfixer_obs::episode_end();
        (result, telemetry)
    };
    type Slot<R> = (Result<R, String>, Option<rtlfixer_obs::EpisodeTelemetry>);

    let mut slots: Vec<Option<Slot<R>>> = Vec::with_capacity(len);
    if jobs <= 1 {
        for index in 0..len {
            let (result, telemetry) = run_one(index);
            slots.push(Some((result.map_err(panic_message), telemetry)));
        }
    } else {
        slots.resize_with(len, || None);
        let cursor = AtomicUsize::new(0);
        let (sender, receiver) = mpsc::channel::<(usize, Slot<R>)>();
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                let sender = sender.clone();
                let cursor = &cursor;
                let run_one = &run_one;
                scope.spawn(move || loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= len {
                        break;
                    }
                    let (result, telemetry) = run_one(index);
                    if sender.send((index, (result.map_err(panic_message), telemetry))).is_err() {
                        break;
                    }
                });
            }
            drop(sender);
            // Reassemble on the spawning thread while workers are still
            // producing; order restores determinism regardless of
            // completion order.
            for (index, value) in receiver {
                slots[index] = Some(value);
            }
        });
    }

    let mut results = Vec::with_capacity(len);
    let mut failures = Vec::new();
    for (index, slot) in slots.into_iter().enumerate() {
        let (result, telemetry) = slot.expect("worker completed every index");
        // The pool barrier: worker-local telemetry merges into the global
        // registry in index order, independent of which worker ran what.
        if let Some(telemetry) = &telemetry {
            rtlfixer_obs::merge(telemetry);
        }
        match result {
            Ok(value) => results.push(Some(value)),
            Err(message) => {
                results.push(None);
                failures.push(EpisodeFailure { index, message });
            }
        }
    }
    (results, failures)
}

/// Per-episode actuals and barrier accounting from one planned run
/// ([`run_planned_checked`]).
#[derive(Debug, Clone)]
pub struct PlannedMetrics {
    /// Measured episode duration by original index, in microseconds — the
    /// "actual" side of the cost model's predicted-vs-actual rank
    /// correlation.
    pub actual_us: Vec<u64>,
    /// Total wall time workers spent idle at the pool barrier (their own
    /// queue drained, other workers still running), in microseconds.
    /// Always `0` on the serial path, which has no barrier.
    pub barrier_idle_us: u64,
}

/// Executes a [`Plan`](crate::schedule::Plan): workers claim whole batches
/// from a shared cursor and run members back-to-back (so a batch leader's
/// compile/elaborate warms the artifact caches for its followers), then
/// flush results through one lock per worker instead of one channel send
/// per episode. Measured on the 1-core container, the legacy engine's
/// cost is oversubscription (time-sliced workers plus a receiving main
/// thread) more than the per-episode mpsc sends themselves; the caller
/// ([`run_episodes_planned`]) clamps `jobs` to the hardware for that
/// reason, while this function honours the count it is given so tests
/// can exercise specific worker configurations.
///
/// Determinism is unchanged from [`run_indexed_checked`]: results land in
/// slots by original index, and worker-local telemetry merges into the
/// registry at the barrier in index order, so outputs are bit-identical
/// for every `jobs` value and every plan over the same positions.
pub fn run_planned_checked<R, F>(
    jobs: usize,
    plan: &crate::schedule::Plan,
    task: F,
) -> (Vec<Option<R>>, Vec<EpisodeFailure>, PlannedMetrics)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let len = plan.len();
    let jobs = resolve_jobs(jobs).min(plan.batches.len().max(1));
    let run_one = |index: usize| {
        rtlfixer_obs::episode_begin();
        let start = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| task(index)));
        let micros = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        let telemetry = rtlfixer_obs::episode_end();
        (result.map_err(panic_message), telemetry, micros)
    };
    type Slot<R> = (Result<R, String>, Option<rtlfixer_obs::EpisodeTelemetry>, u64);

    let mut slots: Vec<Option<Slot<R>>> = Vec::new();
    slots.resize_with(len, || None);
    let mut barrier_idle_us = 0u64;
    if jobs <= 1 {
        for batch in &plan.batches {
            for &index in batch {
                slots[index] = Some(run_one(index));
            }
        }
    } else {
        let cursor = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, Slot<R>)>> = Mutex::new(Vec::with_capacity(len));
        let finishes: Mutex<Vec<Instant>> = Mutex::new(Vec::with_capacity(jobs));
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                let cursor = &cursor;
                let collected = &collected;
                let finishes = &finishes;
                let run_one = &run_one;
                scope.spawn(move || {
                    let mut local: Vec<(usize, Slot<R>)> = Vec::new();
                    loop {
                        let claim = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(batch) = plan.batches.get(claim) else { break };
                        for &index in batch {
                            local.push((index, run_one(index)));
                        }
                    }
                    // The worker is done before it queues for the flush
                    // locks, so lock contention does not count as idle.
                    let done = Instant::now();
                    collected
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                        .extend(local);
                    finishes
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                        .push(done);
                });
            }
        });
        for (index, slot) in
            collected.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner())
        {
            slots[index] = Some(slot);
        }
        let finishes = finishes.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some(last) = finishes.iter().max().copied() {
            barrier_idle_us = finishes
                .iter()
                .map(|f| u64::try_from(last.duration_since(*f).as_micros()).unwrap_or(u64::MAX))
                .sum();
        }
    }

    let mut results = Vec::with_capacity(len);
    let mut failures = Vec::new();
    let mut actual_us = Vec::with_capacity(len);
    for (index, slot) in slots.into_iter().enumerate() {
        let (result, telemetry, micros) =
            slot.expect("plan covered every position exactly once");
        // The pool barrier: worker-local telemetry merges in index order,
        // independent of which worker ran what, in which batch.
        if let Some(telemetry) = &telemetry {
            rtlfixer_obs::merge(telemetry);
        }
        actual_us.push(micros);
        match result {
            Ok(value) => results.push(Some(value)),
            Err(message) => {
                results.push(None);
                failures.push(EpisodeFailure { index, message });
            }
        }
    }
    (results, failures, PlannedMetrics { actual_us, barrier_idle_us })
}

/// Coordinates plus derived seed for one episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpisodeSpec {
    /// Experiment cell (see the module-level namespace table).
    pub cell: u64,
    /// Dataset entry index within the cell.
    pub entry: usize,
    /// Repeat index within the entry.
    pub repeat: usize,
    /// The derived [`episode_seed`].
    pub seed: u64,
}

/// Flattens an `entries × repeats` grid into episode specs, repeats
/// innermost (the order the sequential loops used).
pub fn episode_grid(base: u64, cell: u64, entries: usize, repeats: usize) -> Vec<EpisodeSpec> {
    let mut specs = Vec::with_capacity(entries * repeats);
    for entry in 0..entries {
        for repeat in 0..repeats {
            specs.push(EpisodeSpec {
                cell,
                entry,
                repeat,
                seed: episode_seed(base, cell, entry as u64, repeat as u64),
            });
        }
    }
    specs
}

/// Hit/miss counters of one artifact cache, in serialisable form (see
/// [`rtlfixer_cache::CacheStats`]).
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct CacheCounters {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute while the cache was enabled.
    pub misses: u64,
    /// Lookups that skipped the cache entirely (kill switch) — kept out of
    /// `misses` so `RTLFIXER_CACHE=0` runs don't read as cold caches.
    pub bypassed: u64,
    /// Entries dropped by capacity-pressure shard clears.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// `hits / (hits + misses)`, `0` with no traffic.
    pub hit_rate: f64,
}

impl From<rtlfixer_cache::CacheStats> for CacheCounters {
    fn from(stats: rtlfixer_cache::CacheStats) -> Self {
        CacheCounters {
            hits: stats.hits,
            misses: stats.misses,
            bypassed: stats.bypassed,
            evictions: stats.evictions,
            entries: stats.entries,
            hit_rate: stats.hit_rate(),
        }
    }
}

/// Point-in-time snapshot of the three process-wide artifact caches the
/// episode pool shares: frontend analyses, rendered compile outcomes, and
/// elaborated designs. Counters are cumulative since process start.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct CacheReport {
    /// Whether caching was active at snapshot time (`RTLFIXER_CACHE`).
    pub enabled: bool,
    /// `rtlfixer_verilog::compile_shared` (source → `Analysis`).
    pub analyses: CacheCounters,
    /// `Compiler::compile_cached` (personality × file × source → outcome).
    pub outcomes: CacheCounters,
    /// `rtlfixer_sim::elab::elaborate_shared` (source × top → `Design`).
    pub designs: CacheCounters,
}

/// Snapshots all three artifact caches (for throughput artifacts and logs).
pub fn cache_report() -> CacheReport {
    CacheReport {
        enabled: rtlfixer_cache::enabled(),
        analyses: rtlfixer_verilog::analysis_cache_stats().into(),
        outcomes: rtlfixer_compilers::outcome_cache_stats().into(),
        designs: rtlfixer_sim::elab::design_cache_stats().into(),
    }
}

/// Wall-clock statistics for one experiment cell / run.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct RunStats {
    /// Episodes executed.
    pub episodes: usize,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Episode throughput over *successful* episodes — a panicked episode
    /// is not completed work, so chaos runs don't inflate this number.
    pub episodes_per_sec: f64,
    /// Episodes that panicked and were contained as [`EpisodeFailure`]s
    /// (always 0 on the unchecked paths, which abort instead).
    pub failed_episodes: usize,
    /// Scheduler metadata of the run (policy, batches formed,
    /// predicted-vs-actual rank correlation, barrier idle) — `None`
    /// (serialised as `null`) for runs that never went through the
    /// planner.
    pub scheduler: Option<crate::schedule::SchedulerStats>,
}

impl RunStats {
    /// Builds stats from a measured duration.
    pub fn new(episodes: usize, wall: Duration) -> Self {
        let seconds = wall.as_secs_f64();
        RunStats {
            episodes,
            seconds,
            episodes_per_sec: if seconds > 0.0 { episodes as f64 / seconds } else { 0.0 },
            failed_episodes: 0,
            scheduler: None,
        }
    }

    /// Records contained episode failures (builder style) and recomputes
    /// throughput over the episodes that actually completed.
    pub fn with_failed(mut self, failed_episodes: usize) -> Self {
        self.failed_episodes = failed_episodes;
        let successful = self.episodes.saturating_sub(failed_episodes);
        self.episodes_per_sec =
            if self.seconds > 0.0 { successful as f64 / self.seconds } else { 0.0 };
        self
    }

    /// Attaches scheduler metadata (builder style).
    pub fn with_scheduler(mut self, scheduler: crate::schedule::SchedulerStats) -> Self {
        self.scheduler = Some(scheduler);
        self
    }

    /// Folds another run's wall-clock stats into this one (episodes and
    /// seconds add, throughput recomputes, scheduler metadata merges
    /// episode-weighted). The aggregation the multi-cell binaries and the
    /// shard-merge tool share.
    pub fn accumulate(&mut self, other: &RunStats) {
        match (&mut self.scheduler, &other.scheduler) {
            (Some(mine), Some(theirs)) => {
                mine.merge(self.episodes, theirs, other.episodes);
            }
            (slot @ None, Some(theirs)) => *slot = Some(*theirs),
            _ => {}
        }
        self.episodes += other.episodes;
        self.failed_episodes += other.failed_episodes;
        self.seconds += other.seconds;
        let successful = self.episodes.saturating_sub(self.failed_episodes);
        self.episodes_per_sec =
            if self.seconds > 0.0 { successful as f64 / self.seconds } else { 0.0 };
    }
}

/// Runs every episode of a grid through the pool, timed.
///
/// Returns per-episode results in grid order (entry-major, repeat-minor)
/// plus wall-clock stats.
pub fn run_episodes<R, F>(jobs: usize, specs: &[EpisodeSpec], episode: F) -> (Vec<R>, RunStats)
where
    R: Send,
    F: Fn(&EpisodeSpec) -> R + Sync,
{
    let start = Instant::now();
    let results = run_indexed(jobs, specs.len(), |i| episode(&specs[i]));
    (results, RunStats::new(specs.len(), start.elapsed()))
}

/// [`run_episodes`] with panic containment: a panicking episode yields a
/// `None` result and an [`EpisodeFailure`], the rest of the grid completes,
/// and the failure count lands in [`RunStats::failed_episodes`].
pub fn run_episodes_checked<R, F>(
    jobs: usize,
    specs: &[EpisodeSpec],
    episode: F,
) -> (Vec<Option<R>>, Vec<EpisodeFailure>, RunStats)
where
    R: Send,
    F: Fn(&EpisodeSpec) -> R + Sync,
{
    let start = Instant::now();
    let (results, failures) = run_indexed_checked(jobs, specs.len(), |i| episode(&specs[i]));
    let stats = RunStats::new(specs.len(), start.elapsed()).with_failed(failures.len());
    (results, failures, stats)
}

/// [`run_episodes_checked`] routed through the scheduling subsystem
/// ([`crate::schedule`]): the active policy picks the engine
/// (`RTLFIXER_SCHED=0` short-circuits to the legacy mpsc pool), the plan
/// orders the claim queue (LPT + fingerprint batching by default), and the
/// returned [`RunStats`] carries the run's
/// [`SchedulerStats`](crate::schedule::SchedulerStats) for
/// `results/bench_eval.json`. Results and failures are by original grid
/// position under every policy — scheduling is invisible in the outputs.
pub fn run_episodes_planned<R, F>(
    jobs: usize,
    specs: &[EpisodeSpec],
    features: &[crate::schedule::EpisodeFeatures],
    episode: F,
) -> (Vec<Option<R>>, Vec<EpisodeFailure>, RunStats)
where
    R: Send,
    F: Fn(&EpisodeSpec) -> R + Sync,
{
    use crate::schedule::{self, Policy, SchedulerStats};
    assert_eq!(specs.len(), features.len(), "one feature set per spec");
    let policy = schedule::policy();
    if policy == Policy::Legacy {
        let (results, failures, stats) = run_episodes_checked(jobs, specs, episode);
        let stats = stats.with_scheduler(SchedulerStats::legacy(specs.len()));
        return (results, failures, stats);
    }
    let model = schedule::CostModel::from_telemetry();
    let plan = schedule::Plan::for_policy(policy, features, &model);
    // Episodes are CPU-bound, so workers beyond the machine's parallelism
    // only add context-switch and cache-thrash overhead. The planner clamps
    // the pool to the hardware (results are jobs-invariant by construction,
    // so this is pure wall-time); the legacy engine keeps the requested
    // count, preserving the pre-scheduler behaviour under the kill switch.
    let hardware = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(usize::MAX);
    let jobs = resolve_jobs(jobs).min(hardware);
    let start = Instant::now();
    let (results, failures, metrics) = run_planned_checked(jobs, &plan, |i| episode(&specs[i]));
    let rank_correlation = if plan.predicted.is_empty() {
        0.0
    } else {
        schedule::spearman(&plan.predicted, &metrics.actual_us)
    };
    let stats = RunStats::new(specs.len(), start.elapsed())
        .with_failed(failures.len())
        .with_scheduler(SchedulerStats {
            policy: plan.policy.name(),
            batches: plan.batches.len(),
            coalesced: plan.coalesced(),
            rank_correlation,
            barrier_idle_us: metrics.barrier_idle_us,
        });
    (results, failures, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_derivation_is_stable() {
        // The published contract: these exact values are what every
        // experiment's RNG streams derive from.
        assert_eq!(episode_seed(1, 0, 0, 0), 0x9E37_79B9_7F4A_7C15);
        assert_eq!(
            episode_seed(1, 2, 3, 4),
            0x9E37_79B9_7F4A_7C15u64
                .wrapping_add(2 * 1_000_003)
                .wrapping_add(3 * 10_007)
                .wrapping_add(4)
        );
    }

    #[test]
    fn seeds_unique_within_realistic_grids() {
        let mut seen = std::collections::HashSet::new();
        for cell in
            [0u64, 1, 13, 20, 40, 41, 60, 61, 100, 104, 200, 300, 500, 503, 510, 511, 800]
        {
            for entry in 0..250u64 {
                for repeat in 0..12u64 {
                    assert!(
                        seen.insert(episode_seed(7, cell, entry, repeat)),
                        "collision at cell {cell} entry {entry} repeat {repeat}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let work = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9).rotate_left(i as u32 % 64);
        let serial = run_indexed(1, 500, work);
        for jobs in [2, 3, 8] {
            assert_eq!(run_indexed(jobs, 500, work), serial, "jobs = {jobs}");
        }
    }

    #[test]
    fn empty_and_tiny_ranges() {
        assert_eq!(run_indexed(8, 0, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(8, 1, |i| i * 2), vec![0]);
    }

    #[test]
    fn grid_order_is_entry_major() {
        let specs = episode_grid(1, 5, 2, 3);
        let coords: Vec<(usize, usize)> = specs.iter().map(|s| (s.entry, s.repeat)).collect();
        assert_eq!(coords, vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]);
        for spec in &specs {
            assert_eq!(
                spec.seed,
                episode_seed(1, 5, spec.entry as u64, spec.repeat as u64)
            );
        }
    }

    #[test]
    fn run_episodes_reports_stats() {
        let specs = episode_grid(1, 0, 4, 2);
        let (results, stats) = run_episodes(2, &specs, |s| s.seed);
        assert_eq!(results.len(), 8);
        assert_eq!(stats.episodes, 8);
        assert!(stats.seconds >= 0.0);
    }

    #[test]
    fn resolve_jobs_zero_is_auto() {
        assert!(resolve_jobs(0) >= 1);
        assert_eq!(resolve_jobs(4), 4);
    }

    /// Runs `f` with the default panic hook suppressed so contained panics
    /// don't spam the test log.
    fn quietly<T>(f: impl FnOnce() -> T) -> T {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(hook);
        out
    }

    #[test]
    fn checked_pool_contains_panics() {
        for jobs in [1, 4] {
            let (results, failures) = quietly(|| {
                run_indexed_checked(jobs, 20, |i| {
                    if i == 7 || i == 13 {
                        panic!("episode {i} fell over");
                    }
                    i * 2
                })
            });
            assert_eq!(results.len(), 20, "jobs = {jobs}");
            assert_eq!(results[6], Some(12));
            assert_eq!(results[7], None);
            assert_eq!(results[13], None);
            let indices: Vec<usize> = failures.iter().map(|f| f.index).collect();
            assert_eq!(indices, vec![7, 13], "jobs = {jobs}");
            assert!(failures[0].message.contains("episode 7 fell over"));
        }
    }

    #[test]
    fn non_string_panic_payloads_render_debug() {
        // Regression: `panic_any` with a typed payload (an errno, an exit
        // status, a structured error) used to collapse to the blind
        // "non-string panic payload" — server logs need the value.
        let (results, failures) = quietly(|| {
            run_indexed_checked(2, 4, |i| {
                match i {
                    1 => std::panic::panic_any(42i32),
                    2 => std::panic::panic_any(Some("poisoned".to_owned())),
                    _ => {}
                }
                i
            })
        });
        assert_eq!(results[0], Some(0));
        assert_eq!(failures.len(), 2);
        assert!(failures[0].message.contains("i32") && failures[0].message.contains("42"),
            "{}", failures[0].message);
        assert!(failures[1].message.contains("poisoned"), "{}", failures[1].message);
        // Truly opaque payloads still identify themselves by type id.
        struct Opaque;
        let message = panic_message(Box::new(Opaque));
        assert!(message.contains("non-string panic payload (TypeId"), "{message}");
    }

    #[test]
    fn unchecked_pool_reports_structured_panic() {
        let caught = quietly(|| {
            catch_unwind(AssertUnwindSafe(|| {
                run_indexed(2, 10, |i| {
                    if i == 3 {
                        panic!("boom at {i}");
                    }
                    i
                })
            }))
        });
        let message = panic_message(caught.expect_err("must propagate"));
        assert!(message.contains("1 of 10 episodes panicked"), "{message}");
        assert!(message.contains("index 3"), "{message}");
        assert!(message.contains("boom at 3"), "{message}");
    }

    #[test]
    fn failed_episodes_do_not_count_toward_throughput() {
        // Regression: panicked episodes are not completed work; throughput
        // under chaos must be computed over successes only.
        let stats = RunStats::new(10, Duration::from_secs(2)).with_failed(4);
        assert_eq!(stats.episodes, 10);
        assert_eq!(stats.failed_episodes, 4);
        assert!((stats.episodes_per_sec - 3.0).abs() < 1e-12, "{stats:?}");
        let all_failed = RunStats::new(5, Duration::from_secs(1)).with_failed(5);
        assert_eq!(all_failed.episodes_per_sec, 0.0, "{all_failed:?}");
        let clean = RunStats::new(6, Duration::from_secs(2)).with_failed(0);
        assert!((clean.episodes_per_sec - 3.0).abs() < 1e-12, "{clean:?}");
    }

    #[test]
    fn pool_telemetry_merges_identically_at_any_jobs() {
        // Worker-local episode telemetry merges at the pool barrier in
        // index order, so the registry aggregate is a pure function of the
        // episode set — independent of worker count and scheduling. Only
        // `test.`-prefixed keys are compared: other tests in this binary
        // may record telemetry concurrently while the flag is on.
        rtlfixer_obs::set_telemetry(true);
        let ours = |snap: &rtlfixer_obs::Snapshot| {
            let counters: Vec<(String, u64)> = snap
                .counters
                .iter()
                .filter(|(k, _)| k.starts_with("test."))
                .map(|(k, v)| (k.clone(), *v))
                .collect();
            let hists: Vec<(String, rtlfixer_obs::Histogram)> = snap
                .hists
                .iter()
                .filter(|(k, _)| k.starts_with("test."))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            (counters, hists)
        };
        let run = |jobs: usize| {
            rtlfixer_obs::reset();
            let _ = run_indexed(jobs, 40, |i| {
                rtlfixer_obs::counter_add("test.episodes", 1);
                rtlfixer_obs::counter_add(&format!("test.mod.{}", i % 3), 1);
                rtlfixer_obs::observe("test.value", (i as u64) * 7 % 100);
                i
            });
            ours(&rtlfixer_obs::snapshot())
        };
        let serial = run(1);
        assert!(serial.0.iter().any(|(k, v)| k == "test.episodes" && *v == 40), "{serial:?}");
        for jobs in [2, 4] {
            assert_eq!(run(jobs), serial, "jobs = {jobs}");
        }
        rtlfixer_obs::set_telemetry(false);
        rtlfixer_obs::reset();
    }

    #[test]
    fn planned_executor_matches_legacy_pool_under_every_plan() {
        use crate::schedule::{CostModel, EpisodeFeatures, Plan};
        let work = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9).rotate_left(i as u32 % 64);
        let expected: Vec<Option<u64>> = (0..120).map(|i| Some(work(i))).collect();
        // Grid plan, LPT plan (with shared fingerprints so real batches
        // form), at several job counts: identical results in index order.
        let features: Vec<EpisodeFeatures> = (0..120)
            .map(|i| EpisodeFeatures {
                fingerprint: u128::from(i as u64 % 17),
                source_len: (i * 31) % 700,
                category: Some("syntax_error"),
            })
            .collect();
        for plan in [Plan::grid(120), Plan::lpt(&features, &CostModel::static_only())] {
            for jobs in [1, 2, 4] {
                let (results, failures, metrics) = run_planned_checked(jobs, &plan, work);
                assert_eq!(results, expected, "policy {:?} jobs {jobs}", plan.policy);
                assert!(failures.is_empty());
                assert_eq!(metrics.actual_us.len(), 120);
                if jobs == 1 {
                    assert_eq!(metrics.barrier_idle_us, 0, "no barrier when serial");
                }
            }
        }
    }

    #[test]
    fn planned_executor_contains_panics_by_original_index() {
        use crate::schedule::{CostModel, EpisodeFeatures, Plan};
        let features: Vec<EpisodeFeatures> = (0..20)
            .map(|i| EpisodeFeatures {
                fingerprint: u128::from(i as u64 / 2),
                source_len: 0,
                category: None,
            })
            .collect();
        let plan = Plan::lpt(&features, &CostModel::static_only());
        for jobs in [1, 3] {
            let (results, failures, _) = quietly(|| {
                run_planned_checked(jobs, &plan, |i| {
                    if i == 7 || i == 13 {
                        panic!("episode {i} fell over");
                    }
                    i * 2
                })
            });
            assert_eq!(results.len(), 20, "jobs = {jobs}");
            assert_eq!(results[6], Some(12));
            assert_eq!(results[7], None);
            assert_eq!(results[13], None);
            let indices: Vec<usize> = failures.iter().map(|f| f.index).collect();
            assert_eq!(indices, vec![7, 13], "failures stay in index order, jobs = {jobs}");
        }
    }

    #[test]
    fn planned_telemetry_merges_identically_to_the_legacy_pool() {
        // The registry aggregate must be a pure function of the episode
        // set under every engine and plan: per-episode telemetry merges at
        // the barrier in index order regardless of claim order.
        use crate::schedule::{CostModel, EpisodeFeatures, Plan};
        rtlfixer_obs::set_telemetry(true);
        let work = |i: usize| {
            rtlfixer_obs::counter_add("test.sched.episodes", 1);
            rtlfixer_obs::observe("test.sched.value", (i as u64) * 13 % 50);
            i
        };
        let ours = |snap: &rtlfixer_obs::Snapshot| {
            let counters: Vec<(String, u64)> = snap
                .counters
                .iter()
                .filter(|(k, _)| k.starts_with("test.sched."))
                .map(|(k, v)| (k.clone(), *v))
                .collect();
            let hists: Vec<(String, rtlfixer_obs::Histogram)> = snap
                .hists
                .iter()
                .filter(|(k, _)| k.starts_with("test.sched."))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            (counters, hists)
        };
        rtlfixer_obs::reset();
        let _ = run_indexed(1, 30, work);
        let legacy = ours(&rtlfixer_obs::snapshot());
        let features: Vec<EpisodeFeatures> = (0..30)
            .map(|i| EpisodeFeatures {
                fingerprint: u128::from(i as u64 % 5),
                source_len: i,
                category: Some("width_mismatch"),
            })
            .collect();
        let plan = Plan::lpt(&features, &CostModel::static_only());
        for jobs in [1, 4] {
            rtlfixer_obs::reset();
            let _ = run_planned_checked(jobs, &plan, work);
            assert_eq!(ours(&rtlfixer_obs::snapshot()), legacy, "jobs = {jobs}");
        }
        rtlfixer_obs::set_telemetry(false);
        rtlfixer_obs::reset();
    }

    #[test]
    fn run_stats_accumulate_folds_scheduler_metadata() {
        use crate::schedule::SchedulerStats;
        let mut total = RunStats::new(10, Duration::from_secs(1)).with_scheduler(SchedulerStats {
            policy: "lpt",
            batches: 4,
            coalesced: 6,
            rank_correlation: 1.0,
            barrier_idle_us: 10,
        });
        let other = RunStats::new(30, Duration::from_secs(3)).with_scheduler(SchedulerStats {
            policy: "lpt",
            batches: 10,
            coalesced: 20,
            rank_correlation: 0.0,
            barrier_idle_us: 30,
        });
        total.accumulate(&other);
        assert_eq!(total.episodes, 40);
        assert!((total.seconds - 4.0).abs() < 1e-12);
        assert!((total.episodes_per_sec - 10.0).abs() < 1e-12);
        let sched = total.scheduler.expect("merged scheduler stats");
        assert_eq!(sched.batches, 14);
        assert_eq!(sched.coalesced, 26);
        assert_eq!(sched.barrier_idle_us, 40);
        assert!((sched.rank_correlation - 0.25).abs() < 1e-12, "{sched:?}");
        // Folding into a scheduler-less total adopts the other side's stats.
        let mut bare = RunStats::new(5, Duration::from_secs(1));
        bare.accumulate(&other);
        assert_eq!(bare.scheduler.expect("adopted").batches, 10);
    }

    #[test]
    fn run_episodes_checked_counts_failures() {
        let specs = episode_grid(1, 0, 6, 1);
        let (results, failures, stats) = quietly(|| {
            run_episodes_checked(2, &specs, |s| {
                assert!(s.entry != 2, "deliberate failure at entry 2");
                s.seed
            })
        });
        assert_eq!(results.iter().filter(|r| r.is_some()).count(), 5);
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].index, 2);
        assert_eq!(stats.failed_episodes, 1);
        assert_eq!(stats.episodes, 6);
    }
}
