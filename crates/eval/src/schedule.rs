//! Telemetry-driven episode scheduling: cost-model ordering, fingerprint
//! batching and deterministic multi-process sharding.
//!
//! The [`runner`](crate::runner) pool treats every episode as an opaque,
//! equal-cost unit and drains specs in grid order. That leaves two kinds of
//! waste on the table: long-tail episodes (multi-turn repairs) claimed last
//! straggle at the pool barrier, and specs sharing a source redo
//! compile/elaborate admission work whenever concurrent workers race the
//! same cache miss. This module *plans* execution instead:
//!
//! * A [`CostModel`] predicts per-episode cost from static features
//!   (primary error category, source length) and — when the `--telemetry`
//!   registry has seen traffic — from the per-category episode-duration
//!   histograms `rtlfixer-obs` records (`span.episode.by_category.*.us`,
//!   read back via [`rtlfixer_obs::span_summaries`]).
//! * [`plan`] groups specs sharing a 128-bit source fingerprint into
//!   batches (one worker runs a batch back-to-back, so the leader's
//!   compile/elaborate warms the artifact caches before the rest of the
//!   batch runs — planned coalescing instead of incidental dedupe) and
//!   orders batches longest-expected-first (LPT), so stragglers start
//!   first and the barrier tail shrinks.
//! * [`Shard`] partitions a spec grid deterministically by spec index
//!   (`index % count == shard`), the unit the bench binaries' `--shard i/n`
//!   flag and `merge-shards` subcommand are built on.
//!
//! None of this may change results: episodes are pure functions of their
//! spec, results are written back by original index, and worker-local
//! telemetry still merges at the barrier in index order — so the
//! bit-identical-at-any-`--jobs` invariant holds under every policy, and
//! the scheduling invariance suite pins it. The `RTLFIXER_SCHED` kill
//! switch (`0`/`off`/`false`/`no`) restores the legacy grid-order engine;
//! `RTLFIXER_SCHED=grid` runs the planned executor without reordering
//! (isolating the ordering effect for A/B measurements).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

/// Scheduling policy for one planned run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Legacy engine: grid-order index claiming on the mpsc pool
    /// (`RTLFIXER_SCHED=0` — the kill switch, bit-identical to the
    /// pre-scheduler behaviour by construction).
    Legacy,
    /// Planned executor with singleton batches in grid order — no
    /// reordering, no coalescing. Isolates executor effects from ordering
    /// effects in A/B runs (`RTLFIXER_SCHED=grid`).
    Grid,
    /// Fingerprint batching + longest-expected-first ordering (default).
    Lpt,
}

impl Policy {
    /// Stable lowercase name recorded in `results/bench_eval.json`.
    pub fn name(self) -> &'static str {
        match self {
            Policy::Legacy => "legacy",
            Policy::Grid => "grid",
            Policy::Lpt => "lpt",
        }
    }
}

// 0 = uninitialised, 1 = Legacy, 2 = Grid, 3 = Lpt, +8 = forced override.
static POLICY: AtomicU8 = AtomicU8::new(0);

fn policy_from_env() -> Policy {
    match std::env::var("RTLFIXER_SCHED") {
        Ok(value) => match value.to_ascii_lowercase().as_str() {
            "0" | "off" | "false" | "no" => Policy::Legacy,
            "grid" => Policy::Grid,
            // Unrecognised spellings keep the default on, mirroring the
            // other RTLFIXER_* switches: a typo must not silently change
            // the engine.
            _ => Policy::Lpt,
        },
        Err(_) => Policy::Lpt,
    }
}

fn encode(policy: Policy) -> u8 {
    match policy {
        Policy::Legacy => 1,
        Policy::Grid => 2,
        Policy::Lpt => 3,
    }
}

fn decode(bits: u8) -> Policy {
    match bits & 0b111 {
        1 => Policy::Legacy,
        2 => Policy::Grid,
        _ => Policy::Lpt,
    }
}

/// The active scheduling policy: a forced override if one is set, else
/// `RTLFIXER_SCHED` (consulted once and cached).
pub fn policy() -> Policy {
    match POLICY.load(Ordering::Relaxed) {
        0 => {
            let policy = policy_from_env();
            // Keep a racing `force_policy` call's override: only replace
            // the uninitialised marker.
            let _ = POLICY.compare_exchange(
                0,
                encode(policy),
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
            decode(POLICY.load(Ordering::Relaxed))
        }
        bits => decode(bits),
    }
}

/// Overrides the scheduling policy process-wide (tests, A/B sweeps).
/// `None` returns to the `RTLFIXER_SCHED` environment setting.
pub fn force_policy(policy: Option<Policy>) {
    match policy {
        Some(policy) => POLICY.store(encode(policy) | 0b1000, Ordering::Relaxed),
        None => POLICY.store(0, Ordering::Relaxed),
    }
}

// ---- sharding -------------------------------------------------------------

/// One deterministic partition of a spec grid: spec `i` belongs to shard
/// `index` of `count` iff `i % count == index`. Striding (rather than
/// contiguous ranges) keeps every shard's workload representative — entries
/// and repeats interleave across shards the way they do across workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// This shard's index, `0 <= index < count`.
    pub index: usize,
    /// Total shards the grid is split into (`>= 1`).
    pub count: usize,
}

impl Shard {
    /// The full grid as a single shard.
    pub const FULL: Shard = Shard { index: 0, count: 1 };

    /// Parses `"i/n"` (e.g. `"0/2"`), rejecting `n = 0`, `i >= n` and
    /// malformed input with a human-readable message.
    pub fn parse(text: &str) -> Result<Shard, String> {
        let (index, count) = text
            .split_once('/')
            .ok_or_else(|| format!("--shard expects i/n (e.g. 0/2), got `{text}`"))?;
        let index: usize = index
            .trim()
            .parse()
            .map_err(|_| format!("--shard index is not a number in `{text}`"))?;
        let count: usize = count
            .trim()
            .parse()
            .map_err(|_| format!("--shard count is not a number in `{text}`"))?;
        if count == 0 {
            return Err(format!("--shard count must be >= 1, got `{text}`"));
        }
        if index >= count {
            return Err(format!(
                "--shard index must be < count, got `{text}` (index {index} of {count})"
            ));
        }
        Ok(Shard { index, count })
    }

    /// Whether spec index `i` belongs to this shard.
    pub fn owns(&self, i: usize) -> bool {
        i % self.count == self.index
    }

    /// The spec indices of `0..len` this shard owns, ascending.
    pub fn indices(&self, len: usize) -> Vec<usize> {
        (self.index..len).step_by(self.count).collect()
    }

    /// Whether this is the whole grid.
    pub fn is_full(&self) -> bool {
        self.count == 1
    }
}

impl std::fmt::Display for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

// ---- cost model -----------------------------------------------------------

/// Static, scheduler-visible features of one episode. Everything here is
/// derivable from the spec's inputs before execution; nothing depends on
/// the episode's outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpisodeFeatures {
    /// 128-bit fingerprint of the episode's source (the batching key —
    /// episodes sharing it share compile/elaborate admission work).
    pub fingerprint: u128,
    /// Source length in bytes.
    pub source_len: usize,
    /// Primary injected-error category slug (`None` when unknown, e.g.
    /// generation episodes).
    pub category: Option<&'static str>,
}

impl EpisodeFeatures {
    /// Features for an episode over `source` with an optional primary
    /// category.
    pub fn of(source: &str, category: Option<&'static str>) -> Self {
        EpisodeFeatures {
            fingerprint: rtlfixer_cache::fingerprint128(source.as_bytes()),
            source_len: source.len(),
            category,
        }
    }
}

/// Static per-category cost weight, in microsecond-scale units. These seed
/// the model before any telemetry exists; the ordering (not the absolute
/// scale) is what LPT consumes. Categories whose repairs typically take
/// more ReAct revisions (structural errors the guidance database is weak
/// on) weigh more than one-revision lexical slips.
fn static_category_us(slug: &str) -> u64 {
    match slug {
        // Structural / multi-revision repairs.
        "unbalanced_block" | "syntax_error" => 900,
        "c_style_construct" | "keyword_as_identifier" => 700,
        "port_connection_mismatch" | "unknown_module" => 650,
        // Declaration-level repairs, usually fixed in one or two turns.
        "undeclared_identifier" | "redeclaration" | "misplaced_directive" => 500,
        "illegal_procedural_lvalue" | "illegal_continuous_lvalue" | "assign_to_input" => 450,
        // Expression-level or lint-level repairs.
        "index_out_of_range" | "index_arithmetic" | "width_mismatch" => 400,
        "inferred_latch" | "case_missing_default" | "unused_signal" => 300,
        _ => 500,
    }
}

/// Minimum telemetry samples before a category's measured mean replaces
/// its static seed.
const TELEMETRY_MIN_SAMPLES: u64 = 8;

/// Predicts per-episode cost (microsecond-scale, ordering is what
/// matters). Seeded from static features; when the process has recorded
/// per-category episode histograms (a prior cell of the same run, a warm
/// `--telemetry` sweep), the measured means take over.
#[derive(Debug, Clone, Default)]
pub struct CostModel {
    /// Measured mean episode duration per category slug, from the
    /// telemetry registry.
    measured: HashMap<String, f64>,
}

impl CostModel {
    /// A purely static model (no telemetry read-back).
    pub fn static_only() -> Self {
        CostModel::default()
    }

    /// Builds the model from the current telemetry registry: every
    /// per-category episode histogram with at least
    /// [`TELEMETRY_MIN_SAMPLES`] samples contributes its measured mean.
    /// With telemetry off (or cold) this is exactly [`static_only`].
    pub fn from_telemetry() -> Self {
        Self::from_summaries(rtlfixer_obs::span_summaries("episode.by_category."))
    }

    /// [`from_telemetry`](Self::from_telemetry) over an explicit summary
    /// map (the testable seam — the registry is process-global).
    pub fn from_summaries(
        summaries: std::collections::BTreeMap<String, rtlfixer_obs::SpanSummary>,
    ) -> Self {
        let measured = summaries
            .into_iter()
            .filter(|(_, summary)| summary.count >= TELEMETRY_MIN_SAMPLES)
            .map(|(slug, summary)| (slug, summary.mean()))
            .collect();
        CostModel { measured }
    }

    /// How many categories are currently backed by measured telemetry.
    pub fn measured_categories(&self) -> usize {
        self.measured.len()
    }

    /// Predicted cost of one episode, in microsecond-scale units.
    pub fn predict(&self, features: &EpisodeFeatures) -> u64 {
        let category = match features.category {
            Some(slug) => match self.measured.get(slug) {
                Some(mean) => *mean,
                None => static_category_us(slug) as f64,
            },
            None => 500.0,
        };
        // Source length contributes linearly: longer sources parse, print
        // and prompt slower across every turn of the episode.
        (category + features.source_len as f64 / 4.0) as u64
    }
}

// ---- plans ----------------------------------------------------------------

/// One executable schedule over a spec slice: batches of positions
/// (indices into the slice), in claim order, plus the per-position
/// predicted cost the LPT ordering was derived from.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Batches in claim order; each batch is run back-to-back by one
    /// worker, members in ascending position order.
    pub batches: Vec<Vec<usize>>,
    /// Predicted cost per position (empty for grid plans — no model ran).
    pub predicted: Vec<u64>,
    /// The policy that produced this plan.
    pub policy: Policy,
}

impl Plan {
    /// The trivial grid-order plan: every position its own batch, in
    /// order. Exactly the legacy claiming sequence.
    pub fn grid(len: usize) -> Plan {
        Plan {
            batches: (0..len).map(|i| vec![i]).collect(),
            predicted: Vec::new(),
            policy: Policy::Grid,
        }
    }

    /// Builds the LPT + fingerprint-batching plan for `features`:
    /// positions sharing a fingerprint coalesce into one batch (first
    /// occurrence fixes the batch's identity, members stay in ascending
    /// position order), and batches are ordered by descending total
    /// predicted cost, ties broken by first position — fully
    /// deterministic for a given feature slice and model.
    pub fn lpt(features: &[EpisodeFeatures], model: &CostModel) -> Plan {
        let predicted: Vec<u64> = features.iter().map(|f| model.predict(f)).collect();
        let mut batch_of: HashMap<u128, usize> = HashMap::new();
        let mut batches: Vec<Vec<usize>> = Vec::new();
        for (position, feature) in features.iter().enumerate() {
            match batch_of.entry(feature.fingerprint) {
                std::collections::hash_map::Entry::Occupied(entry) => {
                    batches[*entry.get()].push(position);
                }
                std::collections::hash_map::Entry::Vacant(entry) => {
                    entry.insert(batches.len());
                    batches.push(vec![position]);
                }
            }
        }
        // Longest-expected-first; the stable tie-break keeps plans
        // deterministic when predictions collide.
        let mut keyed: Vec<(u64, usize)> = batches
            .iter()
            .enumerate()
            .map(|(b, members)| (members.iter().map(|&p| predicted[p]).sum(), b))
            .collect();
        keyed.sort_by(|a, b| b.0.cmp(&a.0).then(batches[a.1][0].cmp(&batches[b.1][0])));
        let batches: Vec<Vec<usize>> =
            keyed.into_iter().map(|(_, b)| std::mem::take(&mut batches[b])).collect();
        Plan { batches, predicted, policy: Policy::Lpt }
    }

    /// Builds the plan the active [`policy`] calls for. [`Policy::Legacy`]
    /// callers should not reach this (the runner short-circuits to the
    /// legacy engine); if one does, it gets the equivalent grid plan.
    pub fn for_policy(active: Policy, features: &[EpisodeFeatures], model: &CostModel) -> Plan {
        match active {
            Policy::Lpt => Plan::lpt(features, model),
            Policy::Grid | Policy::Legacy => Plan::grid(features.len()),
        }
    }

    /// Episodes covered by this plan.
    pub fn len(&self) -> usize {
        self.batches.iter().map(Vec::len).sum()
    }

    /// Whether the plan covers no episodes.
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }

    /// Episodes coalesced behind a batch leader (total members minus
    /// batches) — the compiles/elaborations the plan avoided racing.
    pub fn coalesced(&self) -> usize {
        self.len() - self.batches.len()
    }
}

// ---- scheduler statistics --------------------------------------------------

/// Post-run scheduler metadata, recorded into `results/bench_eval.json`
/// next to throughput (see `RunStats::scheduler`). `Copy` so `RunStats`
/// stays `Copy`.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct SchedulerStats {
    /// Policy name (`"legacy"`, `"grid"`, `"lpt"`).
    pub policy: &'static str,
    /// Batches formed by the plan.
    pub batches: usize,
    /// Episodes coalesced behind batch leaders.
    pub coalesced: usize,
    /// Spearman rank correlation between predicted and actual episode
    /// cost (`0` when the plan had no predictions).
    pub rank_correlation: f64,
    /// Total wall time workers spent idle at the pool barrier (their last
    /// task done, other workers still running), in microseconds.
    pub barrier_idle_us: u64,
}

impl SchedulerStats {
    /// Stats for a legacy (unplanned) run.
    pub fn legacy(episodes: usize) -> Self {
        SchedulerStats {
            policy: Policy::Legacy.name(),
            batches: episodes,
            coalesced: 0,
            rank_correlation: 0.0,
            barrier_idle_us: 0,
        }
    }

    /// Folds another cell's / shard's stats into this one: batches and
    /// idle add, and the rank correlation becomes the episode-weighted
    /// mean (`self` weighted by `self_episodes`, `other` by
    /// `other_episodes`).
    pub fn merge(
        &mut self,
        self_episodes: usize,
        other: &SchedulerStats,
        other_episodes: usize,
    ) {
        let total = (self_episodes + other_episodes) as f64;
        if total > 0.0 {
            self.rank_correlation = (self.rank_correlation * self_episodes as f64
                + other.rank_correlation * other_episodes as f64)
                / total;
        }
        self.batches += other.batches;
        self.coalesced += other.coalesced;
        self.barrier_idle_us += other.barrier_idle_us;
        // A merged report keeps the more interesting policy label if they
        // disagree (sharded halves must agree in practice; validated by
        // the merge tool).
        if self.policy != other.policy {
            self.policy = "mixed";
        }
    }
}

/// Spearman rank correlation between two equal-length samples: Pearson
/// correlation of their average ranks (ties share the mean rank). Returns
/// `0` for degenerate inputs (length < 2 or zero variance).
pub fn spearman(xs: &[u64], ys: &[u64]) -> f64 {
    if xs.len() != ys.len() || xs.len() < 2 {
        return 0.0;
    }
    let rx = average_ranks(xs);
    let ry = average_ranks(ys);
    let n = rx.len() as f64;
    let mean = (n + 1.0) / 2.0;
    let (mut cov, mut var_x, mut var_y) = (0.0f64, 0.0f64, 0.0f64);
    for (x, y) in rx.iter().zip(&ry) {
        let dx = x - mean;
        let dy = y - mean;
        cov += dx * dy;
        var_x += dx * dx;
        var_y += dy * dy;
    }
    if var_x == 0.0 || var_y == 0.0 {
        return 0.0;
    }
    cov / (var_x * var_y).sqrt()
}

/// Average (fractional) ranks of `values`, 1-based, ties sharing the mean
/// of the ranks they span.
fn average_ranks(values: &[u64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by_key(|&i| values[i]);
    let mut ranks = vec![0.0; values.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        // Positions i..=j hold equal values; they share the mean rank.
        let rank = (i + j) as f64 / 2.0 + 1.0;
        for &position in &order[i..=j] {
            ranks[position] = rank;
        }
        i = j + 1;
    }
    ranks
}

// ---- last-run report -------------------------------------------------------

static LAST_REPORT: Mutex<Option<SchedulerStats>> = Mutex::new(None);

/// Publishes one run's scheduler stats as the process-wide "last report"
/// (mirroring `cache_report` / `fault_report`): experiments that aggregate
/// several cells fold their per-cell stats and publish the total; the
/// bench recorder reads it back.
pub fn publish_report(stats: SchedulerStats) {
    *LAST_REPORT.lock().unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(stats);
}

/// The most recently published scheduler stats, if any run published one.
pub fn scheduler_report() -> Option<SchedulerStats> {
    *LAST_REPORT.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feature(fingerprint: u128, source_len: usize, category: Option<&'static str>) -> EpisodeFeatures {
        EpisodeFeatures { fingerprint, source_len, category }
    }

    #[test]
    fn shard_parse_accepts_valid_and_rejects_invalid() {
        assert_eq!(Shard::parse("0/2"), Ok(Shard { index: 0, count: 2 }));
        assert_eq!(Shard::parse("3/8"), Ok(Shard { index: 3, count: 8 }));
        for bad in ["2/2", "5/2", "0/0", "1/0", "x/2", "0/y", "02", "", "/", "1/2/3"] {
            assert!(Shard::parse(bad).is_err(), "`{bad}` must be rejected");
        }
        assert!(Shard::parse("2/2").unwrap_err().contains("index must be < count"));
        assert!(Shard::parse("0/0").unwrap_err().contains("count must be >= 1"));
    }

    #[test]
    fn shards_partition_exactly() {
        let len = 17;
        for count in [1usize, 2, 3, 5] {
            let mut seen = vec![0u32; len];
            for index in 0..count {
                let shard = Shard { index, count };
                for i in shard.indices(len) {
                    assert!(shard.owns(i));
                    seen[i] += 1;
                }
            }
            assert!(seen.iter().all(|&n| n == 1), "count {count}: {seen:?}");
        }
        assert!(Shard::FULL.is_full());
        assert_eq!(Shard { index: 1, count: 4 }.to_string(), "1/4");
    }

    #[test]
    fn grid_plan_is_the_identity_order() {
        let plan = Plan::grid(4);
        assert_eq!(plan.batches, vec![vec![0], vec![1], vec![2], vec![3]]);
        assert_eq!(plan.len(), 4);
        assert_eq!(plan.coalesced(), 0);
        assert!(Plan::grid(0).is_empty());
    }

    #[test]
    fn lpt_batches_by_fingerprint_and_orders_longest_first() {
        // Two specs share fingerprint 7 (a repeats pair), one long spec
        // stands alone, one short spec stands alone.
        let features = [
            feature(7, 100, Some("unused_signal")),        // cheap pair...
            feature(7, 100, Some("unused_signal")),        // ...same source
            feature(9, 4_000, Some("unbalanced_block")),   // the straggler
            feature(11, 40, Some("unused_signal")),        // cheapest
        ];
        let plan = Plan::lpt(&features, &CostModel::static_only());
        assert_eq!(plan.len(), 4);
        assert_eq!(plan.batches.len(), 3);
        assert_eq!(plan.coalesced(), 1);
        // The expensive lone spec leads; the shared-fingerprint batch
        // (2 × cheap) still outweighs the single cheapest.
        assert_eq!(plan.batches[0], vec![2]);
        assert_eq!(plan.batches[1], vec![0, 1]);
        assert_eq!(plan.batches[2], vec![3]);
    }

    #[test]
    fn lpt_plan_is_deterministic_and_covers_every_position() {
        let features: Vec<EpisodeFeatures> = (0..100)
            .map(|i| feature(u128::from(i as u64 % 33), (i * 37) % 900, Some("syntax_error")))
            .collect();
        let model = CostModel::static_only();
        let a = Plan::lpt(&features, &model);
        let b = Plan::lpt(&features, &model);
        assert_eq!(a.batches, b.batches, "plans must be deterministic");
        let mut seen: Vec<usize> = a.batches.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>(), "plan must cover every position once");
        // Within a batch, members stay in ascending position order so the
        // lowest-index member is the cache-warming leader.
        for batch in &a.batches {
            assert!(batch.windows(2).all(|w| w[0] < w[1]), "{batch:?}");
        }
    }

    #[test]
    fn cost_model_prefers_measured_telemetry_over_static_seeds() {
        let mut model = CostModel::static_only();
        let slow = feature(1, 0, Some("unused_signal"));
        let fast = feature(2, 0, Some("unbalanced_block"));
        // Statically, unbalanced_block outweighs unused_signal.
        assert!(model.predict(&fast) > model.predict(&slow));
        // Telemetry that contradicts the static seeds takes over.
        model.measured.insert("unused_signal".into(), 9_000.0);
        model.measured.insert("unbalanced_block".into(), 100.0);
        assert!(model.predict(&slow) > model.predict(&fast));
        assert_eq!(model.measured_categories(), 2);
        // Source length still contributes.
        let long = feature(3, 8_000, Some("unbalanced_block"));
        assert!(model.predict(&long) > model.predict(&fast));
    }

    #[test]
    fn cost_model_filters_summaries_by_sample_floor() {
        // The from_telemetry read-back, tested through its pure seam (the
        // registry itself is process-global and other tests record into
        // it concurrently).
        let summary = |count: u64, mean_us: u64| rtlfixer_obs::SpanSummary {
            count,
            p50: mean_us,
            p95: mean_us,
            sum: count * mean_us,
        };
        let mut summaries = std::collections::BTreeMap::new();
        // Below the sample floor: ignored. At the floor: adopted.
        summaries.insert("width_mismatch".to_owned(), summary(TELEMETRY_MIN_SAMPLES - 1, 50_000));
        summaries.insert("syntax_error".to_owned(), summary(TELEMETRY_MIN_SAMPLES, 20_000));
        let model = CostModel::from_summaries(summaries);
        assert_eq!(model.measured_categories(), 1, "{model:?}");
        let measured = feature(1, 0, Some("syntax_error"));
        let unmeasured = feature(2, 0, Some("width_mismatch"));
        assert_eq!(model.predict(&measured), 20_000);
        assert_eq!(model.predict(&unmeasured), static_category_us("width_mismatch"));
        // A cold registry (telemetry off) degrades to the static model.
        assert_eq!(CostModel::from_summaries(Default::default()).measured_categories(), 0);
    }

    #[test]
    fn spearman_matches_known_values() {
        assert_eq!(spearman(&[1, 2, 3, 4], &[10, 20, 30, 40]), 1.0);
        assert_eq!(spearman(&[1, 2, 3, 4], &[40, 30, 20, 10]), -1.0);
        assert_eq!(spearman(&[], &[]), 0.0);
        assert_eq!(spearman(&[1], &[1]), 0.0);
        assert_eq!(spearman(&[5, 5, 5], &[1, 2, 3]), 0.0, "zero variance");
        // Ties share average ranks: still perfectly monotone.
        assert!(spearman(&[1, 1, 2, 3], &[10, 10, 20, 30]) > 0.99);
        // A mixed permutation lands strictly between -1 and 1.
        let rho = spearman(&[1, 2, 3, 4, 5], &[3, 1, 4, 2, 5]);
        assert!(rho > 0.0 && rho < 1.0, "{rho}");
    }

    #[test]
    fn average_ranks_handle_ties() {
        assert_eq!(average_ranks(&[10, 20, 30]), vec![1.0, 2.0, 3.0]);
        assert_eq!(average_ranks(&[20, 10, 20]), vec![2.5, 1.0, 2.5]);
        assert_eq!(average_ranks(&[7, 7, 7, 7]), vec![2.5, 2.5, 2.5, 2.5]);
    }

    #[test]
    fn scheduler_stats_merge_weights_by_episodes() {
        let mut a = SchedulerStats {
            policy: "lpt",
            batches: 10,
            coalesced: 5,
            rank_correlation: 0.8,
            barrier_idle_us: 100,
        };
        let b = SchedulerStats {
            policy: "lpt",
            batches: 2,
            coalesced: 1,
            rank_correlation: 0.2,
            barrier_idle_us: 50,
        };
        a.merge(30, &b, 10);
        assert_eq!(a.batches, 12);
        assert_eq!(a.coalesced, 6);
        assert_eq!(a.barrier_idle_us, 150);
        assert!((a.rank_correlation - 0.65).abs() < 1e-12, "{}", a.rank_correlation);
        assert_eq!(a.policy, "lpt");
        let c = SchedulerStats { policy: "grid", ..b };
        a.merge(40, &c, 0);
        assert_eq!(a.policy, "mixed");
    }

    #[test]
    fn policy_override_wins_and_reverts() {
        force_policy(Some(Policy::Grid));
        assert_eq!(policy(), Policy::Grid);
        force_policy(Some(Policy::Legacy));
        assert_eq!(policy(), Policy::Legacy);
        force_policy(None);
        // Back on the environment (unset in the test harness → Lpt, or
        // whatever the ambient RTLFIXER_SCHED says — either way stable).
        let ambient = policy();
        assert_eq!(policy(), ambient);
        assert_eq!(Policy::Lpt.name(), "lpt");
        assert_eq!(Policy::Legacy.name(), "legacy");
    }

    #[test]
    fn published_report_reads_back() {
        let stats = SchedulerStats {
            policy: "lpt",
            batches: 3,
            coalesced: 2,
            rank_correlation: 0.5,
            barrier_idle_us: 7,
        };
        publish_report(stats);
        // Concurrent tests may publish their own runs' stats between the
        // write and the read; only the accessor contract (a report exists
        // after a publish) is stable enough to assert here.
        assert!(scheduler_report().is_some());
    }
}
