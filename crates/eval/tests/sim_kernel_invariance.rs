//! Sim-kernel invariance: the interned, event-driven simulation kernel must
//! be bit-identical to the tree-walking interpreter it replaced. Two pins,
//! both recorded against the pre-kernel implementation:
//!
//! 1. The full `table1 --quick` episode grid (14 cells x 40 entries x 3
//!    repeats) reproduces the recorded fix rates exactly, at `--jobs 1` and
//!    `--jobs 4`.
//! 2. A verdict transcript over every benchmark problem in all three suites
//!    (solution at two stimulus seeds, plus a seeded functional mutant)
//!    hashes to the recorded fingerprint. This is the part that actually
//!    drives `run_testbench` cycle-by-cycle — table1's fix loop is
//!    compile-feedback only.
//!
//! If either pin moves, the kernel changed simulation semantics; that is a
//! correctness bug, not a baseline to re-record.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rtlfixer_dataset::{mutate, rtllm, verilog_eval_human, verilog_eval_machine, Verdict};
use rtlfixer_eval::experiments::table1::{table1, FixRateConfig};

/// The `--quick` grid's fix rates, recorded before the kernel swap
/// (bit-exact: shortest-roundtrip literals parse back to the same f64).
const QUICK_GRID_RATES: [f64; 14] = [
    0.4833333333333331,
    0.5583333333333333,
    0.675,
    0.7083333333333334,
    0.8916666666666669,
    0.6833333333333333,
    0.7083333333333335,
    0.825,
    0.8166666666666668,
    0.9583333333333333,
    0.9166666666666666,
    0.9916666666666666,
    0.925,
    0.9916666666666666,
];

fn quick_grid_rates(jobs: usize) -> Vec<u64> {
    let config = FixRateConfig { max_entries: Some(40), repeats: 3, jobs, ..Default::default() };
    table1(&config).iter().map(|cell| cell.fix_rate.to_bits()).collect()
}

#[test]
fn table1_quick_grid_matches_recorded_fingerprint() {
    rtlfixer_faults::set_global_spec(None);
    let pinned: Vec<u64> = QUICK_GRID_RATES.iter().map(|r| r.to_bits()).collect();
    for jobs in [1, 4] {
        let measured = quick_grid_rates(jobs);
        assert_eq!(
            measured,
            pinned,
            "table1 --quick grid diverged from the pre-kernel recording at --jobs {jobs}: \
             {:?}",
            measured.iter().map(|bits| f64::from_bits(*bits)).collect::<Vec<_>>()
        );
    }
}

/// Verdict transcript fingerprint recorded against the pre-kernel
/// interpreter (see `verdict_transcript`).
const VERDICT_FINGERPRINT: &str = "6e1d06fe7fcb63b9fe9e51206c569f8b";

fn verdict_code(verdict: Verdict) -> char {
    match verdict {
        Verdict::CompileError => 'C',
        Verdict::SimMismatch => 'M',
        Verdict::Pass => 'P',
    }
}

/// One line per benchmark problem: the solution simulated at two stimulus
/// seeds, plus a seeded functional mutant (compiles, behaves differently) so
/// the mismatch path is exercised, not just the all-pass diagonal.
fn verdict_transcript() -> String {
    let mut transcript = String::new();
    let mut rng = StdRng::seed_from_u64(0x51D1_CAFE);
    let problems = [verilog_eval_human(), verilog_eval_machine(), rtllm()].concat();
    assert!(problems.len() > 20, "suites unexpectedly small: {}", problems.len());
    for problem in &problems {
        let gold = verdict_code(problem.check_seeded(&problem.solution, 0xC0FFEE));
        let alt = verdict_code(problem.check_seeded(&problem.solution, 12345));
        let mutant = mutate::inject_functional_bug(&problem.solution, &mut rng)
            .map_or('-', |bad| verdict_code(problem.check(&bad)));
        transcript.push_str(&format!("{}:{gold}{alt}{mutant};", problem.id));
    }
    transcript
}

#[test]
fn testbench_verdicts_match_recorded_fingerprint() {
    let transcript = verdict_transcript();
    // Non-vacuity: the transcript must exercise both the pass and the
    // mismatch paths of the simulator, not just compile errors.
    assert!(transcript.contains('P'), "no passing verdicts:\n{transcript}");
    assert!(transcript.contains('M'), "no mismatch verdicts:\n{transcript}");
    let fingerprint = format!("{:032x}", rtlfixer_cache::fingerprint128(transcript.as_bytes()));
    assert_eq!(
        fingerprint, VERDICT_FINGERPRINT,
        "simulation verdicts diverged from the pre-kernel recording; transcript:\n{transcript}"
    );
}
