//! Sim-kernel invariance: every simulation backend must be bit-identical
//! to the tree-walking interpreter the kernel replaced. The backends form
//! a four-way A/B/C/D matrix — (A) the full-sweep walker (event kernel
//! off), (B) the interned event-driven kernel, (C) the compiled
//! register-bytecode tape with its dispatch loop interpreted, (D) the same
//! tape under closure-threaded dispatch (the default) — driven through
//! `force_sim_backends` / `force_sim_threaded`. Two pins, both recorded
//! against the pre-kernel implementation:
//!
//! 1. The full `table1 --quick` episode grid (14 cells x 40 entries x 3
//!    repeats) reproduces the recorded fix rates exactly, at `--jobs 1` and
//!    `--jobs 4`, under every backend.
//! 2. A verdict transcript over every benchmark problem in all three suites
//!    (solution at two stimulus seeds, plus a seeded functional mutant)
//!    hashes to the recorded fingerprint under every backend. This is the
//!    part that actually drives `run_testbench` cycle-by-cycle — table1's
//!    fix loop is compile-feedback only.
//!
//! If either pin moves for any backend, that backend changed simulation
//! semantics; that is a correctness bug, not a baseline to re-record.

use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::SeedableRng;

use rtlfixer_dataset::{mutate, rtllm, verilog_eval_human, verilog_eval_machine, Verdict};
use rtlfixer_eval::experiments::table1::{table1, FixRateConfig};
use rtlfixer_sim::{force_sim_backends, force_sim_threaded};

/// The backend switches are process-global; tests forcing them must not
/// overlap.
static BACKEND_LOCK: Mutex<()> = Mutex::new(());

/// `(label, event kernel, tape, threaded dispatch)` per matrix point. The
/// threaded axis only exists on the tape backend (the walkers have no
/// dispatch loop to thread), so the matrix is the three kernels plus the
/// tape's interpreted twin rather than a full cross product.
const BACKENDS: [(&str, bool, bool, bool); 4] = [
    ("sweep", false, false, true),
    ("event", true, false, true),
    ("tape-interp", true, true, false),
    ("tape-threaded", true, true, true),
];

/// The `--quick` grid's fix rates, recorded before the kernel swap
/// (bit-exact: shortest-roundtrip literals parse back to the same f64).
///
/// The recording pins the *whole* pipeline, so an intentional agent-layer
/// change legitimately moves it — identically across all four backends.
/// Cell 3 (One-shot + RAG + iverilog) was re-recorded when the hybrid
/// retriever became the RAG default; every other cell is unchanged from
/// the pre-kernel recording. A divergence between backends is still a
/// simulation-correctness bug, never a baseline to re-record.
const QUICK_GRID_RATES: [f64; 14] = [
    0.4833333333333331,
    0.5583333333333333,
    0.675,
    0.6833333333333333,
    0.8916666666666669,
    0.6833333333333333,
    0.7083333333333335,
    0.825,
    0.8166666666666668,
    0.9583333333333333,
    0.9166666666666666,
    0.9916666666666666,
    0.925,
    0.9916666666666666,
];

fn quick_grid_rates(jobs: usize) -> Vec<u64> {
    let config = FixRateConfig { max_entries: Some(40), repeats: 3, jobs, ..Default::default() };
    table1(&config).iter().map(|cell| cell.fix_rate.to_bits()).collect()
}

#[test]
fn table1_quick_grid_matches_recorded_fingerprint_under_every_backend() {
    let _guard = BACKEND_LOCK.lock().unwrap();
    rtlfixer_faults::set_global_spec(None);
    let pinned: Vec<u64> = QUICK_GRID_RATES.iter().map(|r| r.to_bits()).collect();
    for (label, event, tape, threaded) in BACKENDS {
        force_sim_backends(Some(event), Some(tape));
        force_sim_threaded(Some(threaded));
        for jobs in [1, 4] {
            let measured = quick_grid_rates(jobs);
            assert_eq!(
                measured,
                pinned,
                "table1 --quick grid diverged from the pre-kernel recording on the \
                 `{label}` backend at --jobs {jobs}: {:?}",
                measured.iter().map(|bits| f64::from_bits(*bits)).collect::<Vec<_>>()
            );
        }
    }
    force_sim_backends(None, None);
    force_sim_threaded(None);
}

/// Verdict transcript fingerprint recorded against the pre-kernel
/// interpreter (see `verdict_transcript`).
const VERDICT_FINGERPRINT: &str = "6e1d06fe7fcb63b9fe9e51206c569f8b";

fn verdict_code(verdict: Verdict) -> char {
    match verdict {
        Verdict::CompileError => 'C',
        Verdict::SimMismatch => 'M',
        Verdict::Pass => 'P',
    }
}

/// One line per benchmark problem: the solution simulated at two stimulus
/// seeds, plus a seeded functional mutant (compiles, behaves differently) so
/// the mismatch path is exercised, not just the all-pass diagonal.
fn verdict_transcript() -> String {
    let mut transcript = String::new();
    let mut rng = StdRng::seed_from_u64(0x51D1_CAFE);
    let problems = [verilog_eval_human(), verilog_eval_machine(), rtllm()].concat();
    assert!(problems.len() > 20, "suites unexpectedly small: {}", problems.len());
    for problem in &problems {
        let gold = verdict_code(problem.check_seeded(&problem.solution, 0xC0FFEE));
        let alt = verdict_code(problem.check_seeded(&problem.solution, 12345));
        let mutant = mutate::inject_functional_bug(&problem.solution, &mut rng)
            .map_or('-', |bad| verdict_code(problem.check(&bad)));
        transcript.push_str(&format!("{}:{gold}{alt}{mutant};", problem.id));
    }
    transcript
}

/// `render_sim_feedback` quotes `SimError::Unstable` verbatim to the
/// repair agent, so the still-toggling net names it reports must not
/// depend on which kernel is enabled — otherwise agent transcripts (and
/// anything fingerprinted over them) would fork per backend.
#[test]
fn unstable_feedback_is_identical_under_every_backend() {
    let _guard = BACKEND_LOCK.lock().unwrap();
    let problem = rtlfixer_dataset::suites::find_problem("human/and8").expect("exists");
    let oscillating = problem
        .solution
        .replace("endmodule", "wire osc_n;\nassign osc_n = ~osc_n;\nendmodule");
    let mut rendered = Vec::new();
    for (label, event, tape, threaded) in BACKENDS {
        force_sim_backends(Some(event), Some(tape));
        force_sim_threaded(Some(threaded));
        let feedback = rtlfixer_eval::sim_debug::render_sim_feedback(&problem, &oscillating)
            .expect("unstable designs still render feedback");
        assert!(feedback.contains("osc_n"), "`{label}`: {feedback}");
        rendered.push((label, feedback));
    }
    force_sim_backends(None, None);
    force_sim_threaded(None);
    let (baseline_label, baseline) = &rendered[0];
    for (label, feedback) in &rendered[1..] {
        assert_eq!(
            feedback, baseline,
            "unstable feedback diverged between `{baseline_label}` and `{label}`"
        );
    }
}

#[test]
fn testbench_verdicts_match_recorded_fingerprint_under_every_backend() {
    let _guard = BACKEND_LOCK.lock().unwrap();
    for (label, event, tape, threaded) in BACKENDS {
        force_sim_backends(Some(event), Some(tape));
        force_sim_threaded(Some(threaded));
        let transcript = verdict_transcript();
        // Non-vacuity: the transcript must exercise both the pass and the
        // mismatch paths of the simulator, not just compile errors.
        assert!(transcript.contains('P'), "no passing verdicts:\n{transcript}");
        assert!(transcript.contains('M'), "no mismatch verdicts:\n{transcript}");
        let fingerprint =
            format!("{:032x}", rtlfixer_cache::fingerprint128(transcript.as_bytes()));
        assert_eq!(
            fingerprint, VERDICT_FINGERPRINT,
            "simulation verdicts diverged from the pre-kernel recording on the \
             `{label}` backend; transcript:\n{transcript}"
        );
    }
    force_sim_backends(None, None);
    force_sim_threaded(None);
}
