//! Scheduling invariance: episode results are a pure function of the spec,
//! so the scheduler may only change *when* an episode runs — never its
//! verdict. The planned executor (grid and LPT policies), every worker
//! count, and the sharded multi-process path must all reproduce the legacy
//! mpsc pool's verdict fingerprint bit-for-bit. If any point of the matrix
//! moves, the scheduler changed results, which is a correctness bug — not
//! a baseline to re-record.

use std::sync::Mutex;

use rtlfixer_eval::experiments::table1::{
    merge_table1_verdicts, table1_merged, table1_verdicts, FixRateConfig,
};
use rtlfixer_eval::{schedule, Policy, Shard};

/// `force_policy` is process-global; tests driving it must not overlap.
static POLICY_LOCK: Mutex<()> = Mutex::new(());

fn quick_config(jobs: usize) -> FixRateConfig {
    FixRateConfig { max_entries: Some(8), repeats: 2, jobs, ..Default::default() }
}

/// The `--quick`-shaped grid's verdict fingerprint and fix-rate bits under
/// one policy/jobs point.
fn grid_outputs(policy: Policy, jobs: usize) -> (u128, Vec<u64>) {
    schedule::force_policy(Some(policy));
    let merged = table1_merged(&quick_config(jobs));
    schedule::force_policy(None);
    let rates = merged.cells.iter().map(|cell| cell.fix_rate.to_bits()).collect();
    (merged.verdict_fingerprint, rates)
}

#[test]
fn every_policy_and_worker_count_reproduces_the_legacy_verdicts() {
    let _guard = POLICY_LOCK.lock().unwrap();
    // Reference semantics: the pre-scheduler engine, serial.
    let reference = grid_outputs(Policy::Legacy, 1);
    assert_ne!(reference.0, 0, "degenerate fingerprint");
    for policy in [Policy::Legacy, Policy::Grid, Policy::Lpt] {
        for jobs in [1, 4] {
            let measured = grid_outputs(policy, jobs);
            assert_eq!(
                measured, reference,
                "verdicts diverged from the legacy pool at {policy:?} --jobs {jobs}"
            );
        }
    }
}

#[test]
fn sharded_halves_merge_to_the_unsharded_fingerprint() {
    let _guard = POLICY_LOCK.lock().unwrap();
    schedule::force_policy(Some(Policy::Lpt));
    let config = quick_config(4);
    let unsharded = table1_merged(&config);
    // Two half-shards, run as separate grids (as two processes would),
    // merged back through the shared fold.
    let halves: Vec<_> = (0..2)
        .map(|index| table1_verdicts(&config, Shard { index, count: 2 }))
        .collect();
    let merged = merge_table1_verdicts(&config, &halves).expect("complete partition");
    schedule::force_policy(None);
    assert_eq!(
        merged.verdict_fingerprint, unsharded.verdict_fingerprint,
        "sharded merge fingerprint diverged from the unsharded run"
    );
    let merged_rates: Vec<u64> = merged.cells.iter().map(|c| c.fix_rate.to_bits()).collect();
    let unsharded_rates: Vec<u64> =
        unsharded.cells.iter().map(|c| c.fix_rate.to_bits()).collect();
    assert_eq!(merged_rates, unsharded_rates, "sharded merge fix rates diverged");
}
