//! Fault injection must be deterministic and, when off, invisible: with a
//! fixed spec the experiment outputs are bit-identical at any worker count,
//! and with the kill switch thrown they match the faultless reference
//! exactly. These tests toggle the process-wide spec directly, so they live
//! in their own integration-test binary (sharing a process with tests that
//! assert exact fault counters would race).

use rtlfixer_agent::Strategy;
use rtlfixer_compilers::CompilerKind;
use rtlfixer_eval::experiments::table1::{load_entries, run_cell_timed, FixRateConfig};
use rtlfixer_faults::FaultSpec;
use rtlfixer_llm::Capability;

/// Fix rates for a representative pair of Table 1 cells: the heaviest
/// pipeline (ReAct + RAG + Quartus) and the lightest (One-shot + Simple).
/// Bit patterns, not values: invariance means *bit-identical*.
fn fix_rates(jobs: usize) -> Vec<u64> {
    let config = FixRateConfig { max_entries: Some(12), repeats: 2, jobs, ..Default::default() };
    let entries = load_entries(&config);
    [
        (Strategy::React { max_iterations: 10 }, CompilerKind::Quartus, true),
        (Strategy::OneShot, CompilerKind::Simple, false),
    ]
    .into_iter()
    .enumerate()
    .map(|(cell, (strategy, compiler, rag))| {
        let (rate, _) = run_cell_timed(
            &entries,
            strategy,
            compiler,
            rag,
            Capability::Gpt35Class,
            &config,
            cell as u64,
        );
        rate.to_bits()
    })
    .collect()
}

#[test]
fn outputs_identical_at_any_jobs_with_or_without_faults() {
    // Reference semantics: faults off, serial.
    rtlfixer_faults::set_global_spec(None);
    let off = fix_rates(1);
    assert_eq!(fix_rates(4), off, "fix rates diverged (faults off, jobs 4)");

    // An all-zero spec never draws, so it must be indistinguishable from
    // the kill switch.
    rtlfixer_faults::set_global_spec(Some(FaultSpec::none()));
    assert_eq!(fix_rates(1), off, "all-zero spec diverged from faults-off");

    // A fixed fault spec: fault placement derives from episode seeds, so
    // results stay bit-identical across worker counts and schedules.
    rtlfixer_faults::set_global_spec(Some(FaultSpec::uniform(0.2)));
    rtlfixer_faults::reset_counters();
    let faulted = fix_rates(1);
    for jobs in [2, 4] {
        assert_eq!(fix_rates(jobs), faulted, "fix rates diverged (20% faults, jobs {jobs})");
    }

    // The faulted runs actually injected and recovered (this is an
    // invariance test, not a vacuous one).
    let report = rtlfixer_faults::fault_report();
    assert!(report.injected > 0, "no faults injected at 20%: {report:?}");
    assert!(report.recovered > 0, "nothing recovered at 20%: {report:?}");

    rtlfixer_faults::set_global_spec(None);
    rtlfixer_faults::reset_counters();
}
