//! Observability must be out-of-band: turning the telemetry registry and
//! the JSONL trace sink on or off leaves experiment outputs bit-identical
//! at any worker count, while the aggregated counters themselves are a
//! pure function of the episode set (independent of scheduling). These
//! tests toggle process-wide observability state directly, so they live in
//! their own integration-test binary.

use rtlfixer_agent::Strategy;
use rtlfixer_compilers::CompilerKind;
use rtlfixer_eval::experiments::table1::{load_entries, run_cell_timed, FixRateConfig};
use rtlfixer_llm::Capability;

/// Fix rates for a representative pair of Table 1 cells (the heaviest and
/// the lightest pipeline), as bit patterns: invariance means
/// *bit-identical*, not approximately equal.
fn fix_rates(jobs: usize) -> Vec<u64> {
    let config = FixRateConfig { max_entries: Some(12), repeats: 2, jobs, ..Default::default() };
    let entries = load_entries(&config);
    [
        (Strategy::React { max_iterations: 10 }, CompilerKind::Quartus, true),
        (Strategy::OneShot, CompilerKind::Simple, false),
    ]
    .into_iter()
    .enumerate()
    .map(|(cell, (strategy, compiler, rag))| {
        let (rate, _) = run_cell_timed(
            &entries,
            strategy,
            compiler,
            rag,
            Capability::Gpt35Class,
            &config,
            cell as u64,
        );
        rate.to_bits()
    })
    .collect()
}

/// The scheduling-independent projection of a registry snapshot: counters
/// only. Histograms of wall-clock timings legitimately differ run to run;
/// counters may not.
fn counters() -> Vec<(String, u64)> {
    rtlfixer_obs::snapshot().counters.into_iter().collect()
}

#[test]
fn outputs_identical_with_observability_on_or_off() {
    // Reference semantics: observability fully off, serial.
    rtlfixer_obs::set_telemetry(false);
    rtlfixer_obs::set_trace_path(None);
    let off = fix_rates(1);
    assert_eq!(fix_rates(4), off, "fix rates diverged (obs off, jobs 4)");

    // Telemetry registry + JSONL sink on: outputs stay bit-identical at
    // every worker count.
    let trace_path = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("obs_invariance.jsonl");
    let _ = std::fs::remove_file(&trace_path);
    rtlfixer_obs::set_telemetry(true);
    rtlfixer_obs::set_trace_path(Some(&trace_path));
    rtlfixer_obs::reset();
    let serial = fix_rates(1);
    assert_eq!(serial, off, "fix rates diverged when observability came on");
    let serial_counters = counters();
    for jobs in [2, 4] {
        rtlfixer_obs::reset();
        assert_eq!(fix_rates(jobs), off, "fix rates diverged (obs on, jobs {jobs})");
        // The merged worker-local telemetry is a pure function of the
        // episode set: counters match the serial run exactly.
        assert_eq!(counters(), serial_counters, "counters diverged at jobs {jobs}");
    }

    // The instrumentation actually recorded (not a vacuous invariance):
    // episodes ran, turns were spanned, compiles counted.
    let recorded: std::collections::BTreeMap<String, u64> =
        serial_counters.iter().cloned().collect();
    assert!(recorded.get("agent.episodes").copied().unwrap_or(0) > 0, "{recorded:?}");
    assert!(recorded.get("agent.compiles").copied().unwrap_or(0) > 0, "{recorded:?}");
    assert!(recorded.get("span.turn.count").copied().unwrap_or(0) > 0, "{recorded:?}");

    // The trace file holds parseable JSONL with per-episode summaries.
    rtlfixer_obs::set_trace_path(None); // flush + close before reading
    let text = std::fs::read_to_string(&trace_path).expect("trace file written");
    assert!(!text.is_empty(), "trace file is empty");
    for line in text.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}') && line.contains("\"ev\":"),
            "bad JSONL line: {line}"
        );
    }
    assert!(text.contains("\"ev\":\"episode\""), "no episode summaries in trace");

    rtlfixer_obs::set_telemetry(false);
    rtlfixer_obs::reset();
}
