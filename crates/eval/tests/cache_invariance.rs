//! The artifact caches must be behaviorally invisible: every experiment
//! output is bit-identical with caching enabled or disabled, at any worker
//! count. These tests toggle the process-wide switch directly, so they live
//! in their own integration-test binary (each toggle would race with tests
//! asserting exact hit/miss counts if they shared a process).

use rtlfixer_agent::Strategy;
use rtlfixer_compilers::CompilerKind;
use rtlfixer_eval::experiments::table1::{load_entries, run_cell_timed, FixRateConfig};
use rtlfixer_eval::sim_debug::sim_debug_study;
use rtlfixer_llm::Capability;

/// Fix rates for a representative pair of Table 1 cells: the heaviest
/// pipeline (ReAct + RAG + Quartus) and the lightest (One-shot + Simple).
fn fix_rates(jobs: usize) -> Vec<u64> {
    let config = FixRateConfig { max_entries: Some(12), repeats: 2, jobs, ..Default::default() };
    let entries = load_entries(&config);
    [
        (Strategy::React { max_iterations: 10 }, CompilerKind::Quartus, true),
        (Strategy::OneShot, CompilerKind::Simple, false),
    ]
    .into_iter()
    .enumerate()
    .map(|(cell, (strategy, compiler, rag))| {
        let (rate, _) = run_cell_timed(
            &entries,
            strategy,
            compiler,
            rag,
            Capability::Gpt35Class,
            &config,
            cell as u64,
        );
        // Bit pattern, not value: invariance means *bit-identical*.
        rate.to_bits()
    })
    .collect()
}

/// The §5 study rows, as exact counters.
fn study_rows(jobs: usize) -> Vec<(String, usize, usize)> {
    let problems: Vec<_> =
        rtlfixer_dataset::suites::verilog_eval_human().into_iter().step_by(12).collect();
    sim_debug_study(&problems, 11, jobs)
        .into_iter()
        .map(|row| (row.set, row.attempted, row.repaired))
        .collect()
}

#[test]
fn outputs_identical_with_cache_on_or_off_at_any_jobs() {
    // Baseline: caches off, serial — the reference semantics.
    rtlfixer_cache::set_enabled(false);
    let rates_off = fix_rates(1);
    let rows_off = study_rows(1);

    rtlfixer_cache::set_enabled(true);
    for jobs in [1, 4] {
        assert_eq!(fix_rates(jobs), rates_off, "fix rates diverged (cache on, jobs {jobs})");
        assert_eq!(study_rows(jobs), rows_off, "§5 study diverged (cache on, jobs {jobs})");
    }
    // And the off/parallel corner: disabling must also be invisible.
    rtlfixer_cache::set_enabled(false);
    assert_eq!(fix_rates(4), rates_off, "fix rates diverged (cache off, jobs 4)");

    // The warm runs actually exercised the caches (this is an invariance
    // test, not a vacuous one).
    rtlfixer_cache::set_enabled(true);
    let report = rtlfixer_eval::cache_report();
    assert!(report.outcomes.hits > 0, "no outcome-cache traffic: {report:?}");
    assert!(report.analyses.hits > 0, "no analysis-cache traffic: {report:?}");
}
