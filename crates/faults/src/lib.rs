//! # rtlfixer-faults
//!
//! Deterministic fault injection for the agent's two unreliable externals:
//! the LLM API and the EDA compiler. A production RTLFixer deployment sees
//! timeouts, rate limits, truncated or malformed completions, compiler
//! crashes and garbled logs; this crate lets the reproduction *rehearse*
//! those failures without giving up bit-identical results.
//!
//! The design mirrors `rtlfixer-cache` (DESIGN.md §3c):
//!
//! * [`FaultSpec`] — per-kind injection rates, parsed from the
//!   `RTLFIXER_FAULTS` environment variable (`off` / unset is the kill
//!   switch) or set programmatically with [`set_global_spec`].
//! * [`FaultPlan`] — a *seeded* per-episode draw stream. Plans derive from
//!   the episode seed (one salt per injection site), so whether an episode
//!   hits a fault is a pure function of its grid coordinates: parallel runs
//!   at any `--jobs` value stay bit-identical, faults included.
//! * Atomic injected / recovered / exhausted counters, exported as a serde
//!   [`FaultReport`] next to the cache counters in throughput artifacts.
//!
//! With no spec (the default), plans draw nothing and consume no
//! randomness, so a faults-off run is bit-identical to a build without the
//! layer.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An injection site: one class of unreliable boundary the fixer crosses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Site {
    /// The LLM transport / decode path.
    Llm,
    /// The EDA compiler subprocess.
    Compiler,
    /// The serving layer (`rtlfixer-serve`): sockets, queues, admission.
    Server,
}

impl Site {
    /// All sites, in [`FaultKind::ALL`] grouping order.
    pub const ALL: [Site; 3] = [Site::Llm, Site::Compiler, Site::Server];
}

/// Every injectable fault. The first six strike the LLM transport / decode
/// path; the next two strike the compiler; the last three strike the
/// serving layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The API call times out; no completion is delivered.
    Timeout,
    /// HTTP 429; no completion is delivered.
    RateLimited,
    /// A completion arrives cut off mid-stream (missing `endmodule`).
    TruncatedCompletion,
    /// A completion arrives wrapped in prose and stray markdown fences.
    MalformedOutput,
    /// A completion arrives with empty content.
    EmptyCompletion,
    /// HTTP 5xx; no completion is delivered.
    TransientServerError,
    /// The compiler process crashes; no log is produced.
    CompilerCrash,
    /// The compiler produces a corrupted, tag-less log.
    GarbledLog,
    /// A client trickles its request line in byte by byte, pinning a
    /// connection slot (slow-loris).
    SlowLorisRequest,
    /// The client socket drops mid-response; streamed trace events after
    /// the disconnect go nowhere.
    MidStreamDisconnect,
    /// A synthetic admission storm: the queue reports full even though
    /// real occupancy is lower, forcing a shed decision.
    QueueFullStorm,
}

impl FaultKind {
    /// All kinds, grouped by site — LLM first, then compiler, then server
    /// (the order of [`FaultSpec`] rates).
    pub const ALL: [FaultKind; 11] = [
        FaultKind::Timeout,
        FaultKind::RateLimited,
        FaultKind::TruncatedCompletion,
        FaultKind::MalformedOutput,
        FaultKind::EmptyCompletion,
        FaultKind::TransientServerError,
        FaultKind::CompilerCrash,
        FaultKind::GarbledLog,
        FaultKind::SlowLorisRequest,
        FaultKind::MidStreamDisconnect,
        FaultKind::QueueFullStorm,
    ];

    /// Stable kebab-case identifier (spec syntax, reports, trace steps).
    pub fn slug(self) -> &'static str {
        match self {
            FaultKind::Timeout => "timeout",
            FaultKind::RateLimited => "rate-limited",
            FaultKind::TruncatedCompletion => "truncated-completion",
            FaultKind::MalformedOutput => "malformed-output",
            FaultKind::EmptyCompletion => "empty-completion",
            FaultKind::TransientServerError => "transient-server-error",
            FaultKind::CompilerCrash => "compiler-crash",
            FaultKind::GarbledLog => "garbled-log",
            FaultKind::SlowLorisRequest => "slow-loris",
            FaultKind::MidStreamDisconnect => "mid-stream-disconnect",
            FaultKind::QueueFullStorm => "queue-full-storm",
        }
    }

    /// Parses a spec-syntax slug.
    pub fn from_slug(slug: &str) -> Option<FaultKind> {
        FaultKind::ALL.into_iter().find(|k| k.slug() == slug)
    }

    /// The call site this kind strikes.
    pub fn site(self) -> Site {
        match self {
            FaultKind::CompilerCrash | FaultKind::GarbledLog => Site::Compiler,
            FaultKind::SlowLorisRequest
            | FaultKind::MidStreamDisconnect
            | FaultKind::QueueFullStorm => Site::Server,
            _ => Site::Llm,
        }
    }

    /// Whether this kind strikes the LLM call site (vs the compiler or the
    /// serving layer).
    pub fn is_llm_side(self) -> bool {
        self.site() == Site::Llm
    }

    fn index(self) -> usize {
        FaultKind::ALL.iter().position(|k| *k == self).expect("kind in ALL")
    }
}

/// Per-kind injection rates in `[0, 1]`, indexed as [`FaultKind::ALL`].
///
/// Each *call site* (one LLM request, one compile run) draws at most one
/// fault; a site's total injection probability is the sum of its kinds'
/// rates, capped at 1.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    rates: [f64; 11],
}

impl FaultSpec {
    /// A spec injecting nothing (useful as a parse base).
    pub fn none() -> Self {
        FaultSpec { rates: [0.0; 11] }
    }

    /// A spec where every call site faults with total probability `rate`,
    /// split evenly across that site's kinds — the chaos sweep's single
    /// knob. Each site splits independently, so batch runs (which never
    /// open a server-site plan) draw identically whether or not the
    /// serving kinds exist.
    pub fn uniform(rate: f64) -> Self {
        let rate = rate.clamp(0.0, 1.0);
        let mut spec = FaultSpec::none();
        for kind in FaultKind::ALL {
            let share = FaultKind::ALL.iter().filter(|k| k.site() == kind.site()).count();
            spec.rates[kind.index()] = rate / share as f64;
        }
        spec
    }

    /// Sets one kind's rate (builder style).
    pub fn with_rate(mut self, kind: FaultKind, rate: f64) -> Self {
        self.rates[kind.index()] = rate.clamp(0.0, 1.0);
        self
    }

    /// This kind's injection rate.
    pub fn rate(&self, kind: FaultKind) -> f64 {
        self.rates[kind.index()]
    }

    /// Total injection probability at one call site (capped at 1).
    pub fn site_total(&self, llm_side: bool) -> f64 {
        self.site_rate(if llm_side { Site::Llm } else { Site::Compiler })
    }

    /// Total injection probability at one [`Site`] (capped at 1).
    pub fn site_rate(&self, site: Site) -> f64 {
        FaultKind::ALL
            .iter()
            .filter(|k| k.site() == site)
            .map(|k| self.rates[k.index()])
            .sum::<f64>()
            .min(1.0)
    }

    /// Whether the spec injects anything at all.
    pub fn is_active(&self) -> bool {
        self.rates.iter().any(|r| *r > 0.0)
    }

    /// Parses the `RTLFIXER_FAULTS` spec syntax. `None` means faults off.
    ///
    /// * `off`, `0`, `false`, `no`, empty — kill switch.
    /// * a bare number, e.g. `0.15` — [`FaultSpec::uniform`] at that rate.
    /// * comma-separated `slug=rate` pairs, e.g.
    ///   `timeout=0.1,garbled-log=0.05` — per-kind rates (unnamed kinds 0).
    pub fn parse(text: &str) -> Result<Option<FaultSpec>, String> {
        let text = text.trim();
        if matches!(text.to_ascii_lowercase().as_str(), "" | "off" | "0" | "false" | "no") {
            return Ok(None);
        }
        if let Ok(rate) = text.parse::<f64>() {
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("fault rate {rate} outside [0, 1]"));
            }
            let spec = FaultSpec::uniform(rate);
            return Ok(spec.is_active().then_some(spec));
        }
        let mut spec = FaultSpec::none();
        for pair in text.split(',') {
            let pair = pair.trim();
            let (slug, rate) = pair
                .split_once('=')
                .ok_or_else(|| format!("expected slug=rate, got `{pair}`"))?;
            let kind = FaultKind::from_slug(slug.trim())
                .ok_or_else(|| format!("unknown fault kind `{}`", slug.trim()))?;
            let rate: f64 = rate
                .trim()
                .parse()
                .map_err(|_| format!("bad rate `{}` for {}", rate.trim(), kind.slug()))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("rate {rate} for {} outside [0, 1]", kind.slug()));
            }
            spec = spec.with_rate(kind, rate);
        }
        Ok(spec.is_active().then_some(spec))
    }
}

// Outer None = uninitialised (read RTLFIXER_FAULTS lazily); inner None =
// faults off.
#[allow(clippy::type_complexity)]
static GLOBAL_SPEC: Mutex<Option<Option<Arc<FaultSpec>>>> = Mutex::new(None);

/// The process-wide fault spec: `RTLFIXER_FAULTS` read lazily, overridable
/// with [`set_global_spec`]. `None` = faults off (the default).
///
/// A malformed environment spec disables faults rather than aborting —
/// benchmark runs must not die to a typo in a tuning variable.
pub fn global_spec() -> Option<Arc<FaultSpec>> {
    let mut guard = GLOBAL_SPEC.lock().expect("fault spec lock");
    guard
        .get_or_insert_with(|| {
            std::env::var("RTLFIXER_FAULTS")
                .ok()
                .and_then(|text| FaultSpec::parse(&text).unwrap_or(None))
                .map(Arc::new)
        })
        .clone()
}

/// Overrides the process-wide spec (tests, the chaos harness). `None`
/// turns faults off regardless of the environment.
pub fn set_global_spec(spec: Option<FaultSpec>) {
    *GLOBAL_SPEC.lock().expect("fault spec lock") = Some(spec.map(Arc::new));
}

/// Whether any fault injection is active process-wide.
pub fn enabled() -> bool {
    global_spec().is_some()
}

// Seed salts: one per injection site, so the LLM and compiler draw streams
// of one episode are independent (and independent of the episode's own
// model randomness, which mixes nothing in).
const LLM_SALT: u64 = 0xFA17_5EED_11C0_DE01;
const COMPILER_SALT: u64 = 0xFA17_5EED_C0DE_C0DE;
const SERVER_SALT: u64 = 0xFA17_5EED_5E12_7E00;

/// The per-episode fault draw stream for one injection site.
///
/// A plan is a pure function of `(spec, episode seed, site)`: every draw
/// comes from its own seeded RNG, so fault placement is reproducible
/// across runs, worker counts and thread schedules. With no spec the plan
/// draws nothing and consumes no randomness.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    spec: Option<Arc<FaultSpec>>,
    site: Site,
    rng: StdRng,
}

impl FaultPlan {
    /// The LLM-site plan for an episode, under the [`global_spec`].
    pub fn llm(episode_seed: u64) -> Self {
        Self::llm_with(global_spec(), episode_seed)
    }

    /// The compiler-site plan for an episode, under the [`global_spec`].
    pub fn compiler(episode_seed: u64) -> Self {
        Self::compiler_with(global_spec(), episode_seed)
    }

    /// The server-site plan for a request, under the [`global_spec`].
    /// Seeded by the request fingerprint rather than an episode seed, so a
    /// request's serving-layer faults are as reproducible as its repairs.
    pub fn server(request_seed: u64) -> Self {
        Self::server_with(global_spec(), request_seed)
    }

    /// The LLM-site plan under an explicit spec (chaos harness, tests —
    /// avoids mutating process-wide state).
    pub fn llm_with(spec: Option<Arc<FaultSpec>>, episode_seed: u64) -> Self {
        FaultPlan {
            spec,
            site: Site::Llm,
            rng: StdRng::seed_from_u64(episode_seed ^ LLM_SALT),
        }
    }

    /// The compiler-site plan under an explicit spec.
    pub fn compiler_with(spec: Option<Arc<FaultSpec>>, episode_seed: u64) -> Self {
        FaultPlan {
            spec,
            site: Site::Compiler,
            rng: StdRng::seed_from_u64(episode_seed ^ COMPILER_SALT),
        }
    }

    /// The server-site plan under an explicit spec.
    pub fn server_with(spec: Option<Arc<FaultSpec>>, request_seed: u64) -> Self {
        FaultPlan {
            spec,
            site: Site::Server,
            rng: StdRng::seed_from_u64(request_seed ^ SERVER_SALT),
        }
    }

    /// A plan that never injects (faults disabled).
    pub fn inert() -> Self {
        FaultPlan { spec: None, site: Site::Llm, rng: StdRng::seed_from_u64(0) }
    }

    /// Whether this plan can inject anything.
    pub fn is_active(&self) -> bool {
        self.spec.as_ref().is_some_and(|s| s.site_rate(self.site) > 0.0)
    }

    /// Draws the fault (if any) for the next call at this plan's site.
    /// Consumes exactly one RNG value when active, none otherwise.
    pub fn draw(&mut self) -> Option<FaultKind> {
        let spec = self.spec.as_ref()?;
        let total = spec.site_rate(self.site);
        if total <= 0.0 {
            return None;
        }
        let x: f64 = self.rng.gen_range(0.0..1.0);
        let mut cumulative = 0.0;
        for kind in FaultKind::ALL {
            if kind.site() != self.site {
                continue;
            }
            cumulative += spec.rate(kind);
            if x < cumulative.min(1.0) {
                record_injected(kind);
                return Some(kind);
            }
        }
        None
    }

    /// A seeded jitter draw in `0..=spread` milliseconds (exponential
    /// backoff decorrelation).
    pub fn jitter_ms(&mut self, spread: u64) -> u64 {
        if spread == 0 {
            return 0;
        }
        self.rng.gen_range(0..=spread)
    }

    /// Cuts a completion off mid-stream: keeps a seeded 30–70% prefix,
    /// respecting char boundaries.
    pub fn truncate_completion(&mut self, code: &str) -> String {
        if code.is_empty() {
            return String::new();
        }
        let percent = self.rng.gen_range(30..70u64);
        let mut cut = (code.len() as u64 * percent / 100) as usize;
        while cut < code.len() && !code.is_char_boundary(cut) {
            cut += 1;
        }
        code[..cut].to_owned()
    }

    /// Corrupts a compiler log: seeded character noise that destroys the
    /// numeric error tags exact-match retrieval keys on.
    pub fn garble_log(&mut self, log: &str) -> String {
        const NOISE: [char; 6] = ['#', '@', '%', '~', '?', '*'];
        let mut out = String::with_capacity(log.len());
        for ch in log.chars() {
            // Digits always garble (tags must not survive); other
            // non-whitespace garbles at ~25%.
            let garble = ch.is_ascii_digit()
                || (!ch.is_whitespace() && self.rng.gen_bool(0.25));
            if garble {
                out.push(NOISE[self.rng.gen_range(0..NOISE.len())]);
            } else {
                out.push(ch);
            }
        }
        out
    }
}

/// The log text a crashed compiler run leaves behind.
pub fn crash_log() -> &'static str {
    "Internal Error: Sub-system: VRFX, File: /quartus/synth/vrfx/vrfx_verilog_elaborate.cpp\n\
     Stack Trace: (signal 11, segmentation violation)\n\
     Quartus Prime Compiler was unsuccessful. 0 errors, 0 warnings"
}

/// Wraps a completion in prose plus a decoy fenced block — the classic
/// "chatty model" malformation the pre-fixer must salvage.
pub fn malform_completion(code: &str) -> String {
    format!(
        "Sure! Let me outline the approach first:\n```\n1. inspect the error\n2. patch the \
         offending line\n```\nAnd here is the corrected implementation:\n```verilog\n{code}\n```\n\
         Hope this helps — let me know if anything else breaks!"
    )
}

// --- counters ------------------------------------------------------------

const KINDS: usize = FaultKind::ALL.len();

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
static INJECTED: [AtomicU64; KINDS] = [ZERO; KINDS];
static RECOVERED: [AtomicU64; KINDS] = [ZERO; KINDS];
static EXHAUSTED: [AtomicU64; KINDS] = [ZERO; KINDS];

/// Counts one injected fault (called by [`FaultPlan::draw`]).
pub fn record_injected(kind: FaultKind) {
    INJECTED[kind.index()].fetch_add(1, Ordering::Relaxed);
    rtlfixer_obs::counter_add("faults.injected", 1);
    rtlfixer_obs::counter_add(&format!("faults.injected.{}", kind.slug()), 1);
}

/// Counts a fault the retry / degrade machinery fully absorbed.
pub fn record_recovered(kind: FaultKind) {
    RECOVERED[kind.index()].fetch_add(1, Ordering::Relaxed);
    rtlfixer_obs::counter_add("faults.recovered", 1);
    rtlfixer_obs::counter_add(&format!("faults.recovered.{}", kind.slug()), 1);
}

/// Counts a fault that survived every retry (the turn was lost).
pub fn record_exhausted(kind: FaultKind) {
    EXHAUSTED[kind.index()].fetch_add(1, Ordering::Relaxed);
    rtlfixer_obs::counter_add("faults.exhausted", 1);
    rtlfixer_obs::counter_add(&format!("faults.exhausted.{}", kind.slug()), 1);
}

/// Resets all counters (A/B sweeps, tests).
pub fn reset_counters() {
    for i in 0..KINDS {
        INJECTED[i].store(0, Ordering::Relaxed);
        RECOVERED[i].store(0, Ordering::Relaxed);
        EXHAUSTED[i].store(0, Ordering::Relaxed);
    }
}

/// Per-kind counter row of a [`FaultReport`].
#[derive(Debug, Clone, serde::Serialize)]
pub struct FaultKindStats {
    /// The kind's [`FaultKind::slug`].
    pub kind: &'static str,
    /// Faults injected.
    pub injected: u64,
    /// Faults absorbed by retry / salvage / degrade.
    pub recovered: u64,
    /// Faults that cost their turn.
    pub exhausted: u64,
}

/// Point-in-time snapshot of the process-wide fault counters, exported
/// next to [`rtlfixer-cache`]'s `CacheReport` in throughput artifacts.
#[derive(Debug, Clone, serde::Serialize)]
pub struct FaultReport {
    /// Whether injection was active at snapshot time.
    pub enabled: bool,
    /// Total faults injected since process start (or last reset).
    pub injected: u64,
    /// Total faults recovered.
    pub recovered: u64,
    /// Total faults exhausted.
    pub exhausted: u64,
    /// Non-zero per-kind rows.
    pub by_kind: Vec<FaultKindStats>,
}

/// Snapshots the fault counters.
pub fn fault_report() -> FaultReport {
    let by_kind: Vec<FaultKindStats> = FaultKind::ALL
        .into_iter()
        .map(|kind| FaultKindStats {
            kind: kind.slug(),
            injected: INJECTED[kind.index()].load(Ordering::Relaxed),
            recovered: RECOVERED[kind.index()].load(Ordering::Relaxed),
            exhausted: EXHAUSTED[kind.index()].load(Ordering::Relaxed),
        })
        .filter(|row| row.injected + row.recovered + row.exhausted > 0)
        .collect();
    FaultReport {
        enabled: enabled(),
        injected: by_kind.iter().map(|r| r.injected).sum(),
        recovered: by_kind.iter().map(|r| r.recovered).sum(),
        exhausted: by_kind.iter().map(|r| r.exhausted).sum(),
        by_kind,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slugs_round_trip() {
        for kind in FaultKind::ALL {
            assert_eq!(FaultKind::from_slug(kind.slug()), Some(kind));
        }
        assert_eq!(FaultKind::from_slug("nope"), None);
    }

    #[test]
    fn spec_parsing() {
        assert_eq!(FaultSpec::parse("off").unwrap(), None);
        assert_eq!(FaultSpec::parse("").unwrap(), None);
        assert_eq!(FaultSpec::parse("0").unwrap(), None);
        let uniform = FaultSpec::parse("0.3").unwrap().expect("active");
        assert!((uniform.site_total(true) - 0.3).abs() < 1e-12);
        assert!((uniform.site_total(false) - 0.3).abs() < 1e-12);
        let pairs = FaultSpec::parse("timeout=0.1, garbled-log=0.05").unwrap().expect("active");
        assert_eq!(pairs.rate(FaultKind::Timeout), 0.1);
        assert_eq!(pairs.rate(FaultKind::GarbledLog), 0.05);
        assert_eq!(pairs.rate(FaultKind::RateLimited), 0.0);
        assert!(FaultSpec::parse("bogus=0.1").is_err());
        assert!(FaultSpec::parse("timeout=2.0").is_err());
        assert!(FaultSpec::parse("1.5").is_err());
    }

    #[test]
    fn plans_are_deterministic_and_site_independent() {
        let spec = Some(Arc::new(FaultSpec::uniform(0.5)));
        let draw_all = |mut plan: FaultPlan| -> Vec<Option<FaultKind>> {
            (0..64).map(|_| plan.draw()).collect()
        };
        let a = draw_all(FaultPlan::llm_with(spec.clone(), 42));
        let b = draw_all(FaultPlan::llm_with(spec.clone(), 42));
        assert_eq!(a, b, "same seed, same stream");
        let c = draw_all(FaultPlan::llm_with(spec.clone(), 43));
        assert_ne!(a, c, "different seed, different stream");
        let d = draw_all(FaultPlan::compiler_with(spec, 42));
        assert_ne!(a, d, "sites draw independent streams");
        assert!(a.iter().flatten().all(|k| k.is_llm_side()));
        assert!(d.iter().flatten().all(|k| !k.is_llm_side()));
        assert!(a.iter().any(|f| f.is_some()) && a.iter().any(|f| f.is_none()));
    }

    #[test]
    fn server_site_draws_only_server_kinds() {
        let spec = Arc::new(FaultSpec::uniform(0.5));
        for site in Site::ALL {
            assert!((spec.site_rate(site) - 0.5).abs() < 1e-12, "{site:?}");
        }
        let draw_all = |mut plan: FaultPlan| -> Vec<Option<FaultKind>> {
            (0..64).map(|_| plan.draw()).collect()
        };
        let a = draw_all(FaultPlan::server_with(Some(spec.clone()), 42));
        let b = draw_all(FaultPlan::server_with(Some(spec.clone()), 42));
        assert_eq!(a, b, "same seed, same stream");
        assert!(a.iter().flatten().all(|k| k.site() == Site::Server));
        assert!(a.iter().flatten().all(|k| !k.is_llm_side()));
        assert!(a.iter().any(|f| f.is_some()) && a.iter().any(|f| f.is_none()));
        let llm = draw_all(FaultPlan::llm_with(Some(spec), 42));
        assert_ne!(a, llm, "sites draw independent streams");
    }

    #[test]
    fn server_spec_pairs_parse() {
        let spec = FaultSpec::parse("slow-loris=0.1,queue-full-storm=0.2")
            .unwrap()
            .expect("active");
        assert_eq!(spec.rate(FaultKind::SlowLorisRequest), 0.1);
        assert_eq!(spec.rate(FaultKind::QueueFullStorm), 0.2);
        assert!((spec.site_rate(Site::Server) - 0.3).abs() < 1e-12);
        assert_eq!(spec.site_rate(Site::Llm), 0.0);
        assert_eq!(spec.site_rate(Site::Compiler), 0.0);
    }

    #[test]
    fn inactive_plans_draw_nothing() {
        let mut inert = FaultPlan::inert();
        assert!(!inert.is_active());
        assert_eq!(inert.draw(), None);
        let mut zero = FaultPlan::llm_with(Some(Arc::new(FaultSpec::uniform(0.0))), 7);
        assert!(!zero.is_active());
        assert_eq!(zero.draw(), None);
    }

    #[test]
    fn draw_rate_tracks_spec() {
        let spec = Some(Arc::new(FaultSpec::uniform(0.25)));
        let mut plan = FaultPlan::llm_with(spec, 9);
        let hits = (0..4000).filter(|_| plan.draw().is_some()).count();
        assert!((800..1200).contains(&hits), "{hits} injections at rate 0.25");
    }

    #[test]
    fn garbled_logs_lose_tags() {
        let mut plan = FaultPlan::compiler_with(Some(Arc::new(FaultSpec::uniform(0.1))), 3);
        let garbled = plan.garble_log("Error (10161): object \"clk\" is not declared");
        assert!(!garbled.contains("10161"), "{garbled}");
        assert_eq!(garbled.chars().count(), "Error (10161): object \"clk\" is not declared".chars().count());
    }

    #[test]
    fn truncation_keeps_a_proper_prefix() {
        let mut plan = FaultPlan::llm_with(Some(Arc::new(FaultSpec::uniform(0.1))), 5);
        let code = "module m(input a, output y);\nassign y = a;\nendmodule\n";
        let cut = plan.truncate_completion(code);
        assert!(code.starts_with(&cut));
        assert!(cut.len() < code.len());
        assert!(!cut.contains("endmodule"));
        assert_eq!(plan.truncate_completion(""), "");
    }

    #[test]
    fn malformed_wrapper_contains_decoy_block() {
        let wrapped = malform_completion("module m; endmodule");
        let first_fence = wrapped.find("```").unwrap();
        let code_fence = wrapped.find("```verilog").unwrap();
        assert!(first_fence < code_fence, "decoy block must come first");
        assert!(wrapped.contains("module m; endmodule"));
    }

    #[test]
    fn counters_aggregate_by_kind() {
        reset_counters();
        record_injected(FaultKind::Timeout);
        record_injected(FaultKind::Timeout);
        record_recovered(FaultKind::Timeout);
        record_exhausted(FaultKind::GarbledLog);
        let report = fault_report();
        assert!(report.injected >= 2);
        assert!(report.recovered >= 1);
        assert!(report.exhausted >= 1);
        assert!(report.by_kind.iter().any(|r| r.kind == "timeout" && r.injected >= 2));
        reset_counters();
    }
}
