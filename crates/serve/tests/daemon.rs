//! End-to-end daemon tests over real TCP connections.
//!
//! The daemon records into process-global observability and fault state,
//! so every test serializes on one lock and resets that state up front.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use serde::Deserialize;

use rtlfixer_serve::{Daemon, ServeConfig};

/// The missing-`clk` archetype the episode-path tests use: broken as
/// written, fixable by the simulated GPT-3.5-class model.
const BROKEN: &str = "module m(input [7:0] in, output reg [7:0] out);\n\
                      always @(posedge clk) out <= in;\nendmodule";

static LOCK: Mutex<()> = Mutex::new(());

fn setup() -> MutexGuard<'static, ()> {
    let guard = LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    rtlfixer_faults::set_global_spec(None);
    rtlfixer_obs::set_trace_path(None);
    rtlfixer_obs::set_telemetry(true);
    guard
}

/// The superset of response-event fields the assertions look at; unknown
/// fields on a line are ignored.
#[derive(Debug, Deserialize)]
struct Event {
    ev: String,
    fp: Option<String>,
    reason: Option<String>,
    detail: Option<String>,
    success: Option<bool>,
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(port: u16) -> Client {
        let stream = TcpStream::connect(("127.0.0.1", port)).expect("connect to daemon");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("set read timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client { reader, writer: stream }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("send request line");
        self.writer.flush().expect("flush request line");
    }

    /// Reads the next event line (raw bytes + parsed form).
    fn recv(&mut self) -> (String, Event) {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response line");
        assert!(n > 0, "connection closed while awaiting an event");
        let line = line.trim_end().to_owned();
        let event: Event = serde_json::from_str(&line)
            .unwrap_or_else(|err| panic!("unparseable event `{line}`: {err}"));
        (line, event)
    }
}

fn fix_line(code: &str, extra: &str) -> String {
    format!("{{\"op\":\"fix\",\"code\":{}{extra}}}", rtlfixer_obs::json_string(code))
}

fn config(workers: usize, queue_limit: usize, min_service_ms: u64) -> ServeConfig {
    ServeConfig {
        workers,
        queue_limit,
        min_service_us: min_service_ms * 1000,
        ..ServeConfig::default()
    }
}

#[test]
fn fix_round_trip_streams_trace_then_result() {
    let _guard = setup();
    let daemon = Daemon::start(config(2, 16, 0)).expect("daemon starts");
    let mut client = Client::connect(daemon.port());
    client.send("{\"op\":\"ping\"}");
    assert_eq!(client.recv().1.ev, "pong");
    client.send(&fix_line(BROKEN, ",\"problem\":\"register the input\",\"seed\":3"));
    let mut saw_accepted = false;
    let mut trace_steps = 0usize;
    let fp = loop {
        let (_, event) = client.recv();
        match event.ev.as_str() {
            "accepted" => saw_accepted = true,
            "trace" => trace_steps += 1,
            "result" => {
                assert_eq!(event.success, Some(true), "archetype must fix");
                break event.fp.expect("result carries the fingerprint");
            }
            other => panic!("unexpected event `{other}`"),
        }
    };
    assert!(saw_accepted, "accepted precedes the stream");
    assert!(trace_steps > 0, "the ReAct trace is streamed step by step");
    assert_eq!(fp.len(), 32);
    daemon.drain();
}

/// A successful repair that took real revisions leaves a distilled brief
/// behind, shared across all of the daemon's later requests.
#[test]
fn served_repairs_grow_the_distilled_store() {
    let _guard = setup();
    let daemon = Daemon::start(config(2, 16, 0)).expect("daemon starts");
    assert_eq!(daemon.distilled_entries(), 0);
    let mut client = Client::connect(daemon.port());
    client.send(&fix_line(BROKEN, ",\"problem\":\"register the input\",\"seed\":3"));
    loop {
        let (_, event) = client.recv();
        if event.ev == "result" {
            assert_eq!(event.success, Some(true), "archetype must fix");
            break;
        }
    }
    // The worker merges before fanning the result out, so by the time the
    // client sees `result` the store is populated.
    assert_eq!(daemon.distilled_entries(), 1);
    daemon.drain();
}

/// Satellite: N concurrent identical requests coalesce onto one episode —
/// every client gets a byte-identical response stream, and the telemetry
/// trace shows exactly one episode span.
#[test]
fn concurrent_identical_requests_coalesce_to_one_episode() {
    let _guard = setup();
    let trace_path = std::env::temp_dir().join(format!("serve-coalesce-{}.jsonl", std::process::id()));
    rtlfixer_obs::set_trace_path(Some(&trace_path));
    // One worker and a 500 ms service floor: the first request holds the
    // in-flight slot long enough that every duplicate joins it.
    let daemon = Daemon::start(config(1, 16, 500)).expect("daemon starts");
    let port = daemon.port();
    let clients = 4;
    let streams: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(port);
                    client.send(&fix_line(BROKEN, ",\"problem\":\"register the input\""));
                    let mut lines = Vec::new();
                    loop {
                        let (line, event) = client.recv();
                        let done = event.ev == "result";
                        lines.push(line);
                        if done {
                            break;
                        }
                    }
                    lines
                })
            })
            .collect();
        handles.into_iter().map(|handle| handle.join().expect("client thread")).collect()
    });
    daemon.drain();
    for stream in &streams[1..] {
        assert_eq!(stream, &streams[0], "coalesced responses must be byte-identical");
    }
    assert!(streams[0].len() >= 2, "stream has trace steps and a result");
    let trace = std::fs::read_to_string(&trace_path).expect("trace file");
    rtlfixer_obs::set_trace_path(None);
    let _ = std::fs::remove_file(&trace_path);
    let episode_spans = trace
        .lines()
        .filter(|line| line.contains("\"ev\":\"span\"") && line.contains("\"kind\":\"episode\""))
        .count();
    assert_eq!(episode_spans, 1, "one episode executed for {clients} requests");
}

#[test]
fn full_queue_rejects_with_429_and_serves_the_rest() {
    let _guard = setup();
    let daemon = Daemon::start(config(1, 1, 300)).expect("daemon starts");
    let mut client = Client::connect(daemon.port());
    let requests = 4;
    for index in 0..requests {
        // Unique sources: no coalescing, every request wants the queue.
        let code = BROKEN.replace("module m(", &format!("module m{index}("));
        client.send(&fix_line(&code, ""));
    }
    let (mut accepted, mut rejected, mut results) = (0usize, 0usize, 0usize);
    while accepted + rejected < requests || results < accepted {
        let (_, event) = client.recv();
        match event.ev.as_str() {
            "accepted" => accepted += 1,
            "rejected" => {
                assert_eq!(event.reason.as_deref(), Some("queue-full"), "{event:?}");
                rejected += 1;
            }
            "trace" => {}
            "result" => {
                assert_eq!(event.success, Some(true));
                results += 1;
            }
            other => panic!("unexpected event `{other}`"),
        }
    }
    assert!(rejected >= 1, "a 1-deep queue under 4 instant requests must reject");
    assert_eq!(accepted + rejected, requests);
    daemon.drain();
}

#[test]
fn exhausted_token_bucket_rejects_with_quota_reason() {
    let _guard = setup();
    let mut config = config(1, 16, 0);
    // Burst of 1 and no refill: the second request must be over quota.
    config.quota = rtlfixer_serve::QuotaSpec::parse("default=0/1").expect("quota parses");
    let daemon = Daemon::start(config).expect("daemon starts");
    let mut client = Client::connect(daemon.port());
    client.send(&fix_line(BROKEN, ""));
    let other = BROKEN.replace("module m(", "module quota_probe(");
    client.send(&fix_line(&other, ""));
    let (mut accepted, mut quota_rejects) = (0usize, 0usize);
    while accepted + quota_rejects < 2 {
        let (_, event) = client.recv();
        match event.ev.as_str() {
            "accepted" => accepted += 1,
            "rejected" => {
                assert_eq!(event.reason.as_deref(), Some("quota-exceeded"), "{event:?}");
                quota_rejects += 1;
            }
            "trace" | "result" => {}
            other => panic!("unexpected event `{other}`"),
        }
    }
    assert_eq!((accepted, quota_rejects), (1, 1));
    daemon.drain();
}

#[test]
fn deadline_expired_in_queue_is_shed_not_executed() {
    let _guard = setup();
    let daemon = Daemon::start(config(1, 16, 300)).expect("daemon starts");
    let mut client = Client::connect(daemon.port());
    // The first request occupies the single worker for ≥300 ms; the
    // second's 50 ms deadline lapses while it waits.
    client.send(&fix_line(BROKEN, ""));
    let hopeless = BROKEN.replace("module m(", "module hopeless(");
    client.send(&fix_line(&hopeless, ",\"deadline_ms\":50"));
    let (mut results, mut sheds) = (0usize, 0usize);
    while results + sheds < 2 {
        let (_, event) = client.recv();
        match event.ev.as_str() {
            "accepted" | "trace" => {}
            "result" => results += 1,
            "shed" => {
                assert_eq!(event.reason.as_deref(), Some("deadline-exceeded"), "{event:?}");
                sheds += 1;
            }
            other => panic!("unexpected event `{other}`"),
        }
    }
    assert_eq!((results, sheds), (1, 1));
    daemon.drain();
}

#[test]
fn shutdown_op_drains_gracefully() {
    let _guard = setup();
    let daemon = Daemon::start(config(1, 16, 300)).expect("daemon starts");
    let mut client = Client::connect(daemon.port());
    client.send(&fix_line(BROKEN, ""));
    client.send("{\"op\":\"shutdown\"}");
    let late = BROKEN.replace("module m(", "module late(");
    client.send(&fix_line(&late, ""));
    let (mut acked, mut drain_rejects, mut results) = (false, 0usize, 0usize);
    while !acked || drain_rejects < 1 || results < 1 {
        let (_, event) = client.recv();
        match event.ev.as_str() {
            "accepted" | "trace" => {}
            "shutdown-ack" => acked = true,
            "rejected" => {
                assert_eq!(event.reason.as_deref(), Some("draining"), "{event:?}");
                drain_rejects += 1;
            }
            "result" => {
                // The in-flight episode completes even though the daemon
                // stopped admitting: graceful, not abrupt.
                assert_eq!(event.success, Some(true));
                results += 1;
            }
            other => panic!("unexpected event `{other}`"),
        }
    }
    assert!(daemon.is_draining());
    daemon.drain();
}

#[test]
fn malformed_lines_get_bad_request_not_a_hangup() {
    let _guard = setup();
    let daemon = Daemon::start(config(1, 16, 0)).expect("daemon starts");
    let mut client = Client::connect(daemon.port());
    client.send("this is not json");
    let (_, event) = client.recv();
    assert_eq!(event.ev, "rejected");
    assert_eq!(event.reason.as_deref(), Some("bad-request"));
    client.send("{\"op\":\"fix\"}");
    let (_, event) = client.recv();
    assert_eq!(event.reason.as_deref(), Some("bad-request"));
    assert!(event.detail.expect("detail names the field").contains("code"));
    // The connection survives both rejects.
    client.send("{\"op\":\"ping\"}");
    assert_eq!(client.recv().1.ev, "pong");
    daemon.drain();
}
