//! The wire protocol: line-delimited JSON, one request object per line in,
//! a stream of event objects back out.
//!
//! Requests carry an `op` (`fix`, `ping`, `shutdown`) plus the fix
//! parameters; responses are event lines tagged with an `ev` field. Fix
//! responses are correlated by the request's content-addressed fingerprint
//! (`fp`), **not** a per-connection id: identical requests produce
//! byte-identical response streams, which is what lets the daemon coalesce
//! concurrent duplicates into one episode and fan the same bytes out to
//! every waiter.

use serde::Deserialize;

use rtlfixer_agent::{Action, FixOutcome, Strategy};
use rtlfixer_compilers::CompilerKind;
use rtlfixer_eval::RepairJob;
use rtlfixer_llm::Capability;

/// Rejection reason: the bounded admission queue is full.
pub const REJECT_QUEUE_FULL: &str = "queue-full";
/// Rejection reason: the tenant's token bucket is empty.
pub const REJECT_QUOTA: &str = "quota-exceeded";
/// Rejection reason: the daemon is draining and admits nothing new.
pub const REJECT_DRAINING: &str = "draining";
/// Rejection reason: the request is malformed.
pub const REJECT_BAD_REQUEST: &str = "bad-request";
/// Shed reason: the request's deadline passed while it waited in queue.
pub const SHED_DEADLINE: &str = "deadline-exceeded";

/// One parsed request line. Unknown ops are rejected; missing optional
/// fields take the documented defaults.
#[derive(Debug, Clone, Deserialize)]
pub struct Request {
    /// `fix`, `ping` or `shutdown`.
    pub op: String,
    /// The broken RTL source (required for `fix`).
    pub code: Option<String>,
    /// Natural-language problem description.
    pub problem: Option<String>,
    /// Compiler personality: `simple`, `iverilog` or `quartus` (default).
    pub compiler: Option<String>,
    /// Strategy: `oneshot` or `react` (default, 10 iterations).
    pub strategy: Option<String>,
    /// Retrieval-augmented guidance (default true).
    pub rag: Option<bool>,
    /// Simulated model capability: `gpt-3.5` (default) or `gpt-4`.
    pub capability: Option<String>,
    /// Episode seed; derived from the source fingerprint when omitted, so
    /// identical sources replay identical episodes.
    pub seed: Option<u64>,
    /// Tenant id for quota / fairness accounting (default `"anon"`).
    pub tenant: Option<String>,
    /// Deadline in ms: bounds queue wait (wall clock) and is propagated
    /// into the retry budget (simulated clock).
    pub deadline_ms: Option<u64>,
}

/// Everything that determines a fix request's outcome, owned — the job an
/// admitted request carries through the queue. Mirrors
/// [`rtlfixer_eval::RepairJob`] field for field.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Natural-language problem description.
    pub problem: String,
    /// The broken RTL source.
    pub code: String,
    /// Compiler personality.
    pub compiler: CompilerKind,
    /// Fixing strategy.
    pub strategy: Strategy,
    /// Retrieval-augmented guidance on/off.
    pub rag: bool,
    /// Simulated model capability.
    pub capability: Capability,
    /// Episode seed.
    pub seed: u64,
    /// Deadline propagated into the retry budget, in ms.
    pub deadline_ms: Option<u64>,
}

/// A bad `fix` request, with the field that failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadRequest(pub String);

impl JobSpec {
    /// Validates a parsed [`Request`] into a job. `default_deadline_ms`
    /// applies when the request names none.
    pub fn from_request(
        request: &Request,
        default_deadline_ms: Option<u64>,
    ) -> Result<JobSpec, BadRequest> {
        let code = match request.code.as_deref() {
            Some(code) if !code.trim().is_empty() => code.to_owned(),
            _ => return Err(BadRequest("fix requires a non-empty `code`".to_owned())),
        };
        let compiler = match request.compiler.as_deref() {
            None => CompilerKind::Quartus,
            Some(label) => match label.to_ascii_lowercase().as_str() {
                "simple" => CompilerKind::Simple,
                "iverilog" => CompilerKind::Iverilog,
                "quartus" => CompilerKind::Quartus,
                other => return Err(BadRequest(format!("unknown compiler `{other}`"))),
            },
        };
        let strategy = match request.strategy.as_deref() {
            None => Strategy::React { max_iterations: 10 },
            Some(label) => match label.to_ascii_lowercase().as_str() {
                "oneshot" | "one-shot" => Strategy::OneShot,
                "react" => Strategy::React { max_iterations: 10 },
                other => return Err(BadRequest(format!("unknown strategy `{other}`"))),
            },
        };
        let capability = match request.capability.as_deref() {
            None => Capability::Gpt35Class,
            Some(label) => match label.to_ascii_lowercase().as_str() {
                "gpt-3.5" | "gpt3.5" | "gpt35" => Capability::Gpt35Class,
                "gpt-4" | "gpt4" => Capability::Gpt4Class,
                other => return Err(BadRequest(format!("unknown capability `{other}`"))),
            },
        };
        let deadline_ms = request.deadline_ms.or(default_deadline_ms);
        let mut spec = JobSpec {
            problem: request.problem.clone().unwrap_or_default(),
            code,
            compiler,
            strategy,
            rag: request.rag.unwrap_or(true),
            capability,
            seed: 0,
            deadline_ms,
        };
        // With no explicit seed, derive one from the job content so equal
        // sources replay equal episodes (and coalesce).
        spec.seed = request.seed.unwrap_or_else(|| spec.fingerprint() as u64);
        Ok(spec)
    }

    /// The job's content-addressed fingerprint: a pure function of every
    /// outcome-determining field. Equal fingerprints ⇒ equal responses,
    /// the invariant request coalescing rests on.
    pub fn fingerprint(&self) -> u128 {
        let mut canonical = String::new();
        let compiler = match self.compiler {
            CompilerKind::Simple => "simple",
            CompilerKind::Iverilog => "iverilog",
            CompilerKind::Quartus => "quartus",
        };
        let strategy = match self.strategy {
            Strategy::OneShot => "oneshot".to_owned(),
            Strategy::React { max_iterations } => format!("react{max_iterations}"),
        };
        let capability = match self.capability {
            Capability::Gpt35Class => "gpt35",
            Capability::Gpt4Class => "gpt4",
        };
        // Length-prefixed fields: no concatenation ambiguity.
        for field in [
            compiler,
            &strategy,
            capability,
            if self.rag { "rag" } else { "norag" },
            &self.seed.to_string(),
            &self.deadline_ms.map(|d| d.to_string()).unwrap_or_default(),
            &self.problem,
            &self.code,
        ] {
            canonical.push_str(&field.len().to_string());
            canonical.push(':');
            canonical.push_str(field);
        }
        rtlfixer_cache::fingerprint128(canonical.as_bytes())
    }

    /// The fingerprint as the 32-hex-char `fp` wire token.
    pub fn fp_hex(&self) -> String {
        format!("{:032x}", self.fingerprint())
    }

    /// Borrows this spec as the canonical episode-path job.
    pub fn as_repair_job(&self) -> RepairJob<'_> {
        RepairJob {
            problem: &self.problem,
            code: &self.code,
            compiler: self.compiler,
            strategy: self.strategy,
            rag: self.rag,
            capability: self.capability,
            seed: self.seed,
            deadline_ms: self.deadline_ms,
            distilled: None,
        }
    }
}

// ---- response events ----------------------------------------------------
//
// Rendered by hand (the vendored serde_derive cannot derive Serialize for
// lifetime-generic structs); `json_string` handles escaping. Field order
// is fixed, so equal events render to equal bytes — the byte-identity
// contract coalesced fan-out relies on.

use rtlfixer_obs::json_string;

/// The daemon's startup announcement (stdout, not the socket).
pub fn listening_line(port: u16) -> String {
    format!("{{\"ev\":\"listening\",\"port\":{port}}}")
}

/// A request was admitted (or coalesced onto an in-flight episode — the
/// line is identical either way, by design).
pub fn accepted_line(fp: &str) -> String {
    format!("{{\"ev\":\"accepted\",\"fp\":{}}}", json_string(fp))
}

/// A request was refused at admission; 429-style, never silent.
pub fn rejected_line(reason: &str, detail: &str) -> String {
    format!(
        "{{\"ev\":\"rejected\",\"code\":429,\"reason\":{},\"detail\":{}}}",
        json_string(reason),
        json_string(detail)
    )
}

/// An admitted request was dropped before execution (deadline passed in
/// queue).
pub fn shed_line(fp: &str, reason: &str) -> String {
    format!("{{\"ev\":\"shed\",\"fp\":{},\"reason\":{}}}", json_string(fp), json_string(reason))
}

/// `pong`.
pub fn pong_line() -> String {
    "{\"ev\":\"pong\"}".to_owned()
}

/// Acknowledges a `shutdown` op; the daemon drains after sending it.
pub fn shutdown_ack_line() -> String {
    "{\"ev\":\"shutdown-ack\"}".to_owned()
}

/// An episode escaped containment (panicked); the daemon survives and
/// reports the payload.
pub fn error_line(fp: &str, detail: &str) -> String {
    format!("{{\"ev\":\"error\",\"fp\":{},\"detail\":{}}}", json_string(fp), json_string(detail))
}

/// Renders a finished episode as its response stream: one `trace` line per
/// ReAct step, then the `result` line. A pure function of `(fp, outcome)`
/// — the byte-identity contract for coalesced fan-out.
pub fn outcome_lines(fp: &str, outcome: &FixOutcome) -> Vec<String> {
    let mut lines = Vec::with_capacity(outcome.trace.steps.len() + 1);
    for (index, step) in outcome.trace.steps.iter().enumerate() {
        let action = match &step.action {
            Action::Rag { .. } => "rag".to_owned(),
            other => format!("{other}").to_ascii_lowercase(),
        };
        lines.push(format!(
            "{{\"ev\":\"trace\",\"fp\":{},\"step\":{},\"action\":{},\"thought\":{},\"observation\":{}}}",
            json_string(fp),
            index + 1,
            json_string(&action),
            json_string(&step.thought),
            json_string(&step.observation),
        ));
    }
    lines.push(format!(
        "{{\"ev\":\"result\",\"fp\":{},\"success\":{},\"revisions\":{},\"degraded\":{},\"fault_events\":{},\"code\":{}}}",
        json_string(fp),
        outcome.success,
        outcome.revisions,
        outcome.degraded,
        outcome.fault_events,
        json_string(&outcome.final_code),
    ));
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fix_request(code: &str) -> Request {
        serde_json::from_str(&format!(
            "{{\"op\":\"fix\",\"code\":{}}}",
            rtlfixer_obs::json_string(code)
        ))
        .expect("parses")
    }

    #[test]
    fn defaults_mirror_the_batch_episode_path() {
        let spec = JobSpec::from_request(&fix_request("module m; endmodule"), None).unwrap();
        assert_eq!(spec.compiler, CompilerKind::Quartus);
        assert_eq!(spec.strategy, Strategy::React { max_iterations: 10 });
        assert!(spec.rag);
        assert_eq!(spec.capability, Capability::Gpt35Class);
        assert_eq!(spec.deadline_ms, None);
    }

    #[test]
    fn equal_requests_share_a_fingerprint_and_seed() {
        let a = JobSpec::from_request(&fix_request("module m; endmodule"), None).unwrap();
        let b = JobSpec::from_request(&fix_request("module m; endmodule"), None).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.seed, b.seed);
        let c = JobSpec::from_request(&fix_request("module n; endmodule"), None).unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(a.fp_hex().len(), 32);
    }

    #[test]
    fn fingerprint_covers_every_outcome_determining_field() {
        let base = JobSpec::from_request(&fix_request("module m; endmodule"), None).unwrap();
        let variants = [
            JobSpec { compiler: CompilerKind::Iverilog, ..base.clone() },
            JobSpec { strategy: Strategy::OneShot, ..base.clone() },
            JobSpec { rag: false, ..base.clone() },
            JobSpec { capability: Capability::Gpt4Class, ..base.clone() },
            JobSpec { seed: base.seed ^ 1, ..base.clone() },
            JobSpec { deadline_ms: Some(5), ..base.clone() },
            JobSpec { problem: "different".to_owned(), ..base.clone() },
        ];
        for variant in variants {
            assert_ne!(variant.fingerprint(), base.fingerprint(), "{variant:?}");
        }
    }

    #[test]
    fn bad_requests_are_named() {
        let mut request = fix_request("module m; endmodule");
        request.code = Some("   ".to_owned());
        assert!(JobSpec::from_request(&request, None).is_err());
        let mut request = fix_request("module m; endmodule");
        request.compiler = Some("vivado".to_owned());
        let err = JobSpec::from_request(&request, None).unwrap_err();
        assert!(err.0.contains("vivado"));
    }

    #[test]
    fn outcome_lines_end_in_the_result() {
        use rtlfixer_agent::FixTrace;
        let mut trace = FixTrace::new();
        trace.push("compile it", Action::Compiler, "error: x");
        trace.push("done", Action::Finish, "");
        let outcome = FixOutcome {
            success: true,
            final_code: "module m; endmodule".to_owned(),
            revisions: 1,
            initial_categories: vec![],
            remaining_categories: vec![],
            degraded: false,
            fault_events: 0,
            distilled: vec![],
            trace,
        };
        let lines = outcome_lines("00ff", &outcome);
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"ev\":\"trace\"") && lines[0].contains("\"step\":1"));
        assert!(lines[0].contains("\"action\":\"compiler\""));
        assert!(lines[2].contains("\"ev\":\"result\"") && lines[2].contains("\"success\":true"));
        // Deterministic rendering: the same outcome yields the same bytes.
        assert_eq!(lines, outcome_lines("00ff", &outcome));
    }
}
