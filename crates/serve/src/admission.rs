//! Admission control: the bounded queue, per-tenant token buckets,
//! weighted fair dequeue and request coalescing.
//!
//! Every decision point is explicit and observable:
//!
//! * **Bounded queue** — at most `queue_limit` jobs wait, across all
//!   tenants. A full queue rejects (`429 queue-full`); it never grows
//!   unbounded.
//! * **Token buckets** — each tenant refills at `rate` tokens/second up to
//!   `burst`; a fix request costs one token. An empty bucket rejects
//!   (`429 quota-exceeded`) without touching the queue.
//! * **Weighted fair dequeue** — tenants hold separate FIFO queues and
//!   workers pick across them round-robin, `weight` jobs per visit, so one
//!   flooding tenant cannot starve the rest.
//! * **Coalescing** — a fix whose fingerprint matches an in-flight episode
//!   joins that episode's waiter list instead of queueing: one execution,
//!   the same bytes fanned out to every waiter.
//! * **Draining** — once draining starts nothing is admitted
//!   (`429 draining`); workers finish the backlog and exit.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use crate::protocol::{JobSpec, REJECT_DRAINING, REJECT_QUEUE_FULL, REJECT_QUOTA};
use crate::server::Delivery;

/// One tenant's token-bucket configuration plus its fair-share weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketCfg {
    /// Tokens added per second.
    pub rate: f64,
    /// Bucket capacity (burst size).
    pub burst: f64,
    /// Jobs dequeued per round-robin visit (fair-share weight, ≥ 1).
    pub weight: u32,
}

/// Per-tenant quota table parsed from `RTLFIXER_SERVE_QUOTA`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QuotaSpec {
    /// Bucket for tenants without an explicit row (`None` = unlimited).
    pub default: Option<BucketCfg>,
    /// Explicit per-tenant rows.
    pub tenants: Vec<(String, BucketCfg)>,
}

impl QuotaSpec {
    /// Parses the `RTLFIXER_SERVE_QUOTA` syntax. `None` means quotas off.
    ///
    /// * `off`, `0`, `false`, `no`, empty — kill switch (unlimited).
    /// * comma-separated `tenant=rate/burst` or `tenant=rate/burst/weight`
    ///   rows; the pseudo-tenant `default` covers everyone unnamed, e.g.
    ///   `default=5/10,acme=100/200/4`.
    pub fn parse(text: &str) -> Result<Option<QuotaSpec>, String> {
        let text = text.trim();
        if matches!(text.to_ascii_lowercase().as_str(), "" | "off" | "0" | "false" | "no") {
            return Ok(None);
        }
        let mut spec = QuotaSpec::default();
        for row in text.split(',') {
            let row = row.trim();
            let (tenant, cfg) = row
                .split_once('=')
                .ok_or_else(|| format!("expected tenant=rate/burst, got `{row}`"))?;
            let mut parts = cfg.split('/');
            let rate: f64 = parts
                .next()
                .unwrap_or_default()
                .trim()
                .parse()
                .map_err(|_| format!("bad rate in `{row}`"))?;
            let burst: f64 = parts
                .next()
                .ok_or_else(|| format!("missing burst in `{row}`"))?
                .trim()
                .parse()
                .map_err(|_| format!("bad burst in `{row}`"))?;
            let weight: u32 = match parts.next() {
                None => 1,
                Some(w) => w.trim().parse().map_err(|_| format!("bad weight in `{row}`"))?,
            };
            if rate < 0.0 || burst < 1.0 || weight < 1 {
                return Err(format!("`{row}`: need rate ≥ 0, burst ≥ 1, weight ≥ 1"));
            }
            let cfg = BucketCfg { rate, burst, weight };
            if tenant.trim() == "default" {
                spec.default = Some(cfg);
            } else {
                spec.tenants.push((tenant.trim().to_owned(), cfg));
            }
        }
        Ok(Some(spec))
    }

    fn for_tenant(&self, tenant: &str) -> Option<BucketCfg> {
        self.tenants
            .iter()
            .find(|(name, _)| name == tenant)
            .map(|(_, cfg)| *cfg)
            .or(self.default)
    }
}

/// A live token bucket.
#[derive(Debug)]
struct TokenBucket {
    cfg: BucketCfg,
    tokens: f64,
    refilled: Instant,
}

impl TokenBucket {
    fn new(cfg: BucketCfg) -> Self {
        TokenBucket { cfg, tokens: cfg.burst, refilled: Instant::now() }
    }

    fn try_take(&mut self, now: Instant) -> bool {
        let dt = now.saturating_duration_since(self.refilled).as_secs_f64();
        self.tokens = (self.tokens + dt * self.cfg.rate).min(self.cfg.burst);
        self.refilled = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// One admitted job waiting for (or joined to) execution.
#[derive(Debug)]
pub struct QueuedJob {
    /// The fingerprint hex token correlating responses.
    pub fp: String,
    /// The job itself.
    pub spec: JobSpec,
    /// Owning tenant (latency attribution).
    pub tenant: String,
    /// Admission instant — queue-wait deadlines count from here.
    pub admitted: Instant,
}

/// One response consumer of an in-flight episode.
pub struct Waiter {
    /// The connection's writer channel.
    pub sender: Sender<Delivery>,
    /// Injected mid-stream disconnect: deliver one line, then hang up.
    pub truncate: bool,
}

struct TenantState {
    queue: VecDeque<QueuedJob>,
    bucket: Option<TokenBucket>,
    weight: u32,
}

struct State {
    draining: bool,
    queued_total: usize,
    tenants: HashMap<String, TenantState>,
    /// Round-robin rotation: tenant names in first-seen order.
    order: Vec<String>,
    cursor: usize,
    /// Dequeues left for the tenant at `cursor` this visit.
    credit: u32,
    /// fp → waiters of the episode currently queued or executing.
    inflight: HashMap<String, Vec<Waiter>>,
}

/// Why (or how) an admission attempt resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admit {
    /// The job was queued; a worker will execute it.
    Queued,
    /// An identical episode is in flight; the caller joined its waiters.
    Coalesced,
    /// Refused: reason slug (`queue-full`, `quota-exceeded`, `draining`)
    /// plus a human detail.
    Rejected {
        /// Protocol reason slug.
        reason: &'static str,
        /// Human-readable detail for the response line.
        detail: String,
    },
}

/// The admission state machine shared by connections and workers.
pub struct Admission {
    queue_limit: usize,
    quota: Option<QuotaSpec>,
    state: Mutex<State>,
    work_ready: Condvar,
}

impl Admission {
    /// Creates the admission controller.
    pub fn new(queue_limit: usize, quota: Option<QuotaSpec>) -> Self {
        Admission {
            queue_limit: queue_limit.max(1),
            quota,
            state: Mutex::new(State {
                draining: false,
                queued_total: 0,
                tenants: HashMap::new(),
                order: Vec::new(),
                cursor: 0,
                credit: 0,
                inflight: HashMap::new(),
            }),
            work_ready: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Tries to admit one fix request. Checks, in order: draining, the
    /// tenant's token bucket, coalescing, then queue capacity. Counters
    /// fire for every path, so the overload story is always visible.
    ///
    /// On `Queued`/`Coalesced` the `ack` line is delivered to the waiter's
    /// channel *while the admission lock is held*. Workers can only reach
    /// this waiter through [`Admission::complete`], which takes the same
    /// lock — so the ack is ordered before any fan-out line even when the
    /// episode finishes before the admitting thread is scheduled again.
    pub fn admit(&self, job: QueuedJob, waiter: Waiter, ack: String) -> Admit {
        let mut state = self.lock();
        if state.draining {
            rtlfixer_obs::counter_add("serve.rejected.draining", 1);
            return Admit::Rejected {
                reason: REJECT_DRAINING,
                detail: "daemon is draining".to_owned(),
            };
        }
        // Quota: charged per request, coalesced or not — a duplicate still
        // consumed admission work, and free duplicates would let a tenant
        // launder unlimited traffic through one hot source.
        if let Some(quota) = &self.quota {
            let tenant = job.tenant.clone();
            let cfg = quota.for_tenant(&tenant);
            let tenant_state = ensure_tenant(&mut state, &tenant, cfg);
            if let Some(bucket) = tenant_state.bucket.as_mut() {
                if !bucket.try_take(Instant::now()) {
                    drop(state);
                    rtlfixer_obs::counter_add("serve.rejected.quota", 1);
                    return Admit::Rejected {
                        reason: REJECT_QUOTA,
                        detail: format!("tenant `{tenant}` is out of quota"),
                    };
                }
            }
        }
        if let Some(waiters) = state.inflight.get_mut(&job.fp) {
            let _ = waiter.sender.send(Delivery::Own(vec![ack]));
            waiters.push(waiter);
            rtlfixer_obs::counter_add("serve.coalesced", 1);
            return Admit::Coalesced;
        }
        if state.queued_total >= self.queue_limit {
            rtlfixer_obs::counter_add("serve.rejected.queue_full", 1);
            return Admit::Rejected {
                reason: REJECT_QUEUE_FULL,
                detail: format!("queue limit {} reached", self.queue_limit),
            };
        }
        let tenant = job.tenant.clone();
        let _ = waiter.sender.send(Delivery::Own(vec![ack]));
        state.inflight.insert(job.fp.clone(), vec![waiter]);
        let cfg = self.quota.as_ref().and_then(|q| q.for_tenant(&tenant));
        ensure_tenant(&mut state, &tenant, cfg).queue.push_back(job);
        state.queued_total += 1;
        rtlfixer_obs::counter_add("serve.admitted", 1);
        rtlfixer_obs::gauge_set("serve.queue_depth", state.queued_total as i64);
        drop(state);
        self.work_ready.notify_one();
        Admit::Queued
    }

    /// Worker side: blocks until a job is available (weighted fair pick)
    /// or the daemon is draining with an empty backlog (`None` — the
    /// worker exits).
    pub fn dequeue_blocking(&self) -> Option<QueuedJob> {
        let mut state = self.lock();
        loop {
            if state.queued_total > 0 {
                let job = fair_pick(&mut state);
                rtlfixer_obs::gauge_set("serve.queue_depth", state.queued_total as i64);
                return Some(job);
            }
            if state.draining {
                return None;
            }
            state = self
                .work_ready
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Completes an episode: removes its in-flight entry and returns the
    /// waiters to fan the response out to. Requests arriving after this
    /// start a fresh episode.
    pub fn complete(&self, fp: &str) -> Vec<Waiter> {
        self.lock().inflight.remove(fp).unwrap_or_default()
    }

    /// Stops admitting; wakes every worker so the backlog drains and idle
    /// workers exit.
    pub fn begin_drain(&self) {
        self.lock().draining = true;
        self.work_ready.notify_all();
    }

    /// Whether draining has started.
    pub fn draining(&self) -> bool {
        self.lock().draining
    }

    /// Jobs currently waiting (not executing).
    pub fn queue_depth(&self) -> usize {
        self.lock().queued_total
    }
}

fn ensure_tenant<'a>(
    state: &'a mut State,
    tenant: &str,
    cfg: Option<BucketCfg>,
) -> &'a mut TenantState {
    if !state.tenants.contains_key(tenant) {
        state.order.push(tenant.to_owned());
        state.tenants.insert(
            tenant.to_owned(),
            TenantState {
                queue: VecDeque::new(),
                bucket: cfg.map(TokenBucket::new),
                weight: cfg.map_or(1, |c| c.weight.max(1)),
            },
        );
    }
    state.tenants.get_mut(tenant).expect("tenant just ensured")
}

/// Weighted round-robin pick: visit tenants in first-seen rotation order,
/// serving up to `weight` queued jobs per visit. Caller guarantees
/// `queued_total > 0`.
fn fair_pick(state: &mut State) -> QueuedJob {
    let tenants = state.order.len();
    for _ in 0..=tenants {
        let cursor = state.cursor % tenants.max(1);
        let name = state.order[cursor].clone();
        let (credit, weight) = {
            let tenant = state.tenants.get_mut(&name).expect("ordered tenant exists");
            (state.credit, tenant.weight)
        };
        let tenant = state.tenants.get_mut(&name).expect("ordered tenant exists");
        if tenant.queue.is_empty() {
            state.cursor = (cursor + 1) % tenants;
            state.credit = 0;
            continue;
        }
        let mut credit = if credit == 0 { weight } else { credit };
        let job = tenant.queue.pop_front().expect("non-empty queue");
        credit -= 1;
        state.queued_total -= 1;
        if credit == 0 || tenant.queue.is_empty() {
            state.cursor = (cursor + 1) % tenants;
            state.credit = 0;
        } else {
            state.cursor = cursor;
            state.credit = credit;
        }
        return job;
    }
    unreachable!("queued_total > 0 but no tenant had work");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    fn job(fp: &str, tenant: &str) -> QueuedJob {
        let request: crate::protocol::Request = serde_json::from_str(&format!(
            "{{\"op\":\"fix\",\"code\":\"module {fp}; endmodule\"}}"
        ))
        .unwrap();
        let spec = JobSpec::from_request(&request, None).unwrap();
        QueuedJob {
            fp: fp.to_owned(),
            spec,
            tenant: tenant.to_owned(),
            admitted: Instant::now(),
        }
    }

    fn waiter() -> Waiter {
        let (sender, receiver) = channel();
        std::mem::forget(receiver); // keep the channel open for the test
        Waiter { sender, truncate: false }
    }

    #[test]
    fn queue_bound_is_explicit_reject() {
        let admission = Admission::new(2, None);
        assert_eq!(admission.admit(job("a", "t"), waiter(), String::new()), Admit::Queued);
        assert_eq!(admission.admit(job("b", "t"), waiter(), String::new()), Admit::Queued);
        match admission.admit(job("c", "t"), waiter(), String::new()) {
            Admit::Rejected { reason, .. } => assert_eq!(reason, REJECT_QUEUE_FULL),
            other => panic!("expected queue-full, got {other:?}"),
        }
        assert_eq!(admission.queue_depth(), 2);
    }

    #[test]
    fn identical_fingerprints_coalesce_without_queueing() {
        let admission = Admission::new(1, None);
        assert_eq!(admission.admit(job("same", "t"), waiter(), String::new()), Admit::Queued);
        // The queue is full (limit 1), yet the duplicate still joins.
        assert_eq!(admission.admit(job("same", "t"), waiter(), String::new()), Admit::Coalesced);
        assert_eq!(admission.queue_depth(), 1);
        assert_eq!(admission.complete("same").len(), 2);
    }

    #[test]
    fn empty_bucket_rejects_with_quota_reason() {
        let quota = QuotaSpec::parse("default=0/2").unwrap();
        let admission = Admission::new(16, quota);
        assert_eq!(admission.admit(job("a", "t"), waiter(), String::new()), Admit::Queued);
        assert_eq!(admission.admit(job("b", "t"), waiter(), String::new()), Admit::Queued);
        match admission.admit(job("c", "t"), waiter(), String::new()) {
            Admit::Rejected { reason, .. } => assert_eq!(reason, REJECT_QUOTA),
            other => panic!("expected quota-exceeded, got {other:?}"),
        }
    }

    #[test]
    fn draining_rejects_everything_new() {
        let admission = Admission::new(16, None);
        admission.begin_drain();
        match admission.admit(job("a", "t"), waiter(), String::new()) {
            Admit::Rejected { reason, .. } => assert_eq!(reason, REJECT_DRAINING),
            other => panic!("expected draining, got {other:?}"),
        }
        // Draining with an empty backlog releases workers immediately.
        assert_eq!(admission.dequeue_blocking().map(|j| j.fp), None);
    }

    #[test]
    fn weighted_fair_dequeue_interleaves_tenants() {
        let quota = QuotaSpec::parse("heavy=1000/1000/2,light=1000/1000").unwrap();
        let admission = Admission::new(64, quota);
        for i in 0..6 {
            assert_eq!(admission.admit(job(&format!("h{i}"), "heavy"), waiter(), String::new()), Admit::Queued);
        }
        for i in 0..3 {
            assert_eq!(admission.admit(job(&format!("l{i}"), "light"), waiter(), String::new()), Admit::Queued);
        }
        let order: Vec<String> =
            (0..9).map(|_| admission.dequeue_blocking().expect("job").fp).collect();
        // heavy (weight 2) gets two slots per visit, light one: a flood of
        // heavy jobs cannot starve light.
        assert_eq!(order, vec!["h0", "h1", "l0", "h2", "h3", "l1", "h4", "h5", "l2"]);
    }

    #[test]
    fn quota_spec_parsing() {
        assert_eq!(QuotaSpec::parse("off").unwrap(), None);
        assert_eq!(QuotaSpec::parse("").unwrap(), None);
        let spec = QuotaSpec::parse("default=5/10,acme=100/200/4").unwrap().unwrap();
        assert_eq!(spec.default, Some(BucketCfg { rate: 5.0, burst: 10.0, weight: 1 }));
        assert_eq!(
            spec.for_tenant("acme"),
            Some(BucketCfg { rate: 100.0, burst: 200.0, weight: 4 })
        );
        assert_eq!(spec.for_tenant("anyone"), spec.default);
        assert!(QuotaSpec::parse("acme").is_err());
        assert!(QuotaSpec::parse("acme=5").is_err());
        assert!(QuotaSpec::parse("acme=5/0").is_err());
    }

    #[test]
    fn bucket_refills_over_time() {
        let cfg = BucketCfg { rate: 1000.0, burst: 2.0, weight: 1 };
        let mut bucket = TokenBucket::new(cfg);
        let now = Instant::now();
        assert!(bucket.try_take(now));
        assert!(bucket.try_take(now));
        assert!(!bucket.try_take(now), "burst of 2 is spent");
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(bucket.try_take(Instant::now()), "1000/s refills within 5 ms");
    }
}
