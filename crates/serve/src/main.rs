//! `rtlfixer-serve`: the repair-as-a-service daemon binary. All the
//! behaviour lives in [`rtlfixer_serve::daemon_main`] so the bench
//! crate's subprocess tests can reuse it verbatim.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(err) = rtlfixer_serve::daemon_main(&args) {
        eprintln!("rtlfixer-serve: {err}");
        std::process::exit(2);
    }
}
