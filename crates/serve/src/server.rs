//! The daemon itself: TCP accept loop, per-connection reader/writer
//! threads, and the worker pool that executes admitted episodes.
//!
//! Threading model:
//!
//! * one **accept** thread (non-blocking listener, polled every 2 ms) that
//!   keeps accepting during drain so late requests get an explicit
//!   `draining` reject instead of a connection refusal;
//! * per connection, a **reader** thread (parses request lines, runs
//!   admission) and a **writer** thread (owns the socket's write half,
//!   fed over a channel — workers fan results out by sending into it);
//! * `workers` **worker** threads looping
//!   `dequeue → shed-if-expired → execute under catch_unwind → fan out`.
//!
//! A panicking episode is contained by the worker (`catch_unwind` +
//! [`rtlfixer_eval::panic_message`]) and reported to its waiters as an
//! `error` event; the daemon keeps serving.

use std::io::Write;
use std::io::{BufRead, BufReader};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use rtlfixer_eval::panic_message;
use rtlfixer_faults::{record_recovered, FaultKind, FaultPlan};
use rtlfixer_obs as obs;
use rtlfixer_rag::DistilledStore;

use crate::admission::{Admission, Admit, QueuedJob, QuotaSpec, Waiter};
use crate::protocol::{
    accepted_line, error_line, outcome_lines, pong_line, rejected_line, shed_line,
    shutdown_ack_line, JobSpec, Request, REJECT_BAD_REQUEST, REJECT_QUEUE_FULL, SHED_DEADLINE,
};

/// Daemon configuration; [`ServeConfig::from_env`] reads the
/// `RTLFIXER_SERVE_*` environment, CLI flags override on top.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads executing episodes.
    pub workers: usize,
    /// Bounded admission-queue capacity (`RTLFIXER_SERVE_QUEUE`).
    pub queue_limit: usize,
    /// Per-tenant quotas (`RTLFIXER_SERVE_QUOTA`; `None` = unlimited).
    pub quota: Option<QuotaSpec>,
    /// Load-shaping floor added to every episode's service time, in µs.
    /// Simulated episodes finish in microseconds; a floor emulates real
    /// LLM latency, making overload (and the coalescing window)
    /// reachable in tests and benchmarks.
    pub min_service_us: u64,
    /// Deadline applied to requests that name none.
    pub default_deadline_ms: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            queue_limit: 64,
            quota: None,
            min_service_us: 0,
            default_deadline_ms: None,
        }
    }
}

fn parse_env<T: std::str::FromStr>(name: &str, text: &str) -> Result<T, String> {
    text.trim().parse().map_err(|_| format!("{name}: cannot parse `{text}`"))
}

impl ServeConfig {
    /// Builds a config from the `RTLFIXER_SERVE_*` environment variables
    /// (each falls back to the default when unset).
    pub fn from_env() -> Result<ServeConfig, String> {
        let mut config = ServeConfig::default();
        if let Ok(text) = std::env::var("RTLFIXER_SERVE_QUEUE") {
            config.queue_limit = parse_env("RTLFIXER_SERVE_QUEUE", &text)?;
        }
        if let Ok(text) = std::env::var("RTLFIXER_SERVE_QUOTA") {
            config.quota = QuotaSpec::parse(&text).map_err(|e| format!("RTLFIXER_SERVE_QUOTA: {e}"))?;
        }
        if let Ok(text) = std::env::var("RTLFIXER_SERVE_WORKERS") {
            config.workers = parse_env("RTLFIXER_SERVE_WORKERS", &text)?;
        }
        if let Ok(text) = std::env::var("RTLFIXER_SERVE_MIN_SERVICE_MS") {
            let ms: u64 = parse_env("RTLFIXER_SERVE_MIN_SERVICE_MS", &text)?;
            config.min_service_us = ms * 1000;
        }
        if let Ok(text) = std::env::var("RTLFIXER_SERVE_DEADLINE_MS") {
            config.default_deadline_ms = Some(parse_env("RTLFIXER_SERVE_DEADLINE_MS", &text)?);
        }
        Ok(config)
    }
}

/// What a connection's writer thread is asked to deliver.
pub enum Delivery {
    /// Connection-private lines (accept/reject/pong).
    Own(Vec<String>),
    /// A finished episode's response stream, shared across coalesced
    /// waiters — the same bytes for everyone.
    Shared(Arc<Vec<String>>),
    /// Injected mid-stream disconnect: deliver a prefix, then hang up.
    Truncated(Arc<Vec<String>>),
    /// The reader is gone; stop writing.
    Close,
}

/// A running daemon. Dropping it does **not** stop the threads — call
/// [`Daemon::drain`] for an orderly shutdown.
pub struct Daemon {
    port: u16,
    admission: Arc<Admission>,
    distilled: Arc<DistilledStore>,
    workers: Vec<JoinHandle<()>>,
    accept: Option<JoinHandle<()>>,
    stop_accept: Arc<AtomicBool>,
}

impl Daemon {
    /// Binds, spawns the worker pool and the accept loop, and returns.
    pub fn start(config: ServeConfig) -> std::io::Result<Daemon> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let port = listener.local_addr()?.port();
        let admission = Arc::new(Admission::new(config.queue_limit, config.quota.clone()));
        // One distilled store per daemon: every successful repair that took
        // real revisions files a brief, and every later request that hits
        // the same (normalised) error shape retrieves it — the daemon gets
        // better at the traffic it actually serves. `RTLFIXER_RAG_DISTILL=0`
        // turns the loop off (the fixer builder ignores the store).
        let distilled = Arc::new(DistilledStore::new());
        let mut workers = Vec::with_capacity(config.workers.max(1));
        for index in 0..config.workers.max(1) {
            let admission = Arc::clone(&admission);
            let distilled = Arc::clone(&distilled);
            let min_service_us = config.min_service_us;
            workers.push(
                thread::Builder::new()
                    .name(format!("serve-worker-{index}"))
                    .spawn(move || worker_loop(&admission, &distilled, min_service_us))
                    .expect("spawn serve worker"),
            );
        }
        let stop_accept = Arc::new(AtomicBool::new(false));
        let accept = {
            let admission = Arc::clone(&admission);
            let stop = Arc::clone(&stop_accept);
            let default_deadline_ms = config.default_deadline_ms;
            thread::Builder::new()
                .name("serve-accept".to_owned())
                .spawn(move || accept_loop(&listener, &admission, &stop, default_deadline_ms))
                .expect("spawn serve accept loop")
        };
        obs::trace_event(
            "serve-start",
            &[
                ("port", port.to_string()),
                ("workers", config.workers.max(1).to_string()),
                ("queue_limit", config.queue_limit.to_string()),
            ],
        );
        Ok(Daemon { port, admission, distilled, workers, accept: Some(accept), stop_accept })
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Repair briefs distilled from served episodes so far.
    pub fn distilled_entries(&self) -> usize {
        self.distilled.len()
    }

    /// Stops admitting new work (idempotent). Workers keep draining the
    /// backlog; the accept loop keeps rejecting with `draining`.
    pub fn begin_drain(&self) {
        self.admission.begin_drain();
    }

    /// Whether draining has started (via [`Daemon::begin_drain`] or a
    /// client `shutdown` op).
    pub fn is_draining(&self) -> bool {
        self.admission.draining()
    }

    /// Jobs waiting in the admission queue.
    pub fn queue_depth(&self) -> usize {
        self.admission.queue_depth()
    }

    /// Graceful shutdown: stop admitting, let the workers finish (or
    /// deadline-shed) every queued job, then stop accepting connections.
    pub fn drain(mut self) {
        self.admission.begin_drain();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.stop_accept.store(true, Ordering::Relaxed);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        obs::trace_event("serve-drained", &[]);
    }
}

fn accept_loop(
    listener: &TcpListener,
    admission: &Arc<Admission>,
    stop: &AtomicBool,
    default_deadline_ms: Option<u64>,
) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let admission = Arc::clone(admission);
                let _ = thread::Builder::new()
                    .name("serve-conn".to_owned())
                    .spawn(move || handle_connection(stream, &admission, default_deadline_ms));
            }
            Err(_would_block_or_transient) => thread::sleep(Duration::from_millis(2)),
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    admission: &Admission,
    default_deadline_ms: Option<u64>,
) {
    // Accepted sockets must block: the reader parks in `lines()`. Nagle
    // off: response events are small writes and latency is the product.
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else { return };
    let (tx, rx) = channel::<Delivery>();
    let Ok(writer) = thread::Builder::new()
        .name("serve-conn-writer".to_owned())
        .spawn(move || writer_loop(write_half, &rx))
    else {
        return;
    };
    for line in BufReader::new(stream).lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        if dispatch_line(&line, admission, default_deadline_ms, &tx).is_err() {
            break;
        }
    }
    let _ = tx.send(Delivery::Close);
    let _ = writer.join();
}

/// Parses and dispatches one request line. `Err(())` means the writer is
/// gone and the connection should wind down.
fn dispatch_line(
    line: &str,
    admission: &Admission,
    default_deadline_ms: Option<u64>,
    tx: &Sender<Delivery>,
) -> Result<(), ()> {
    let send = |lines: Vec<String>| tx.send(Delivery::Own(lines)).map_err(|_| ());
    let request: Request = match serde_json::from_str(line) {
        Ok(request) => request,
        Err(err) => {
            obs::counter_add("serve.rejected.bad_request", 1);
            return send(vec![rejected_line(REJECT_BAD_REQUEST, &format!("unparseable request: {err}"))]);
        }
    };
    match request.op.as_str() {
        "ping" => send(vec![pong_line()]),
        "shutdown" => {
            obs::counter_add("serve.shutdown_requests", 1);
            admission.begin_drain();
            send(vec![shutdown_ack_line()])
        }
        "fix" => {
            let spec = match JobSpec::from_request(&request, default_deadline_ms) {
                Ok(spec) => spec,
                Err(bad) => {
                    obs::counter_add("serve.rejected.bad_request", 1);
                    return send(vec![rejected_line(REJECT_BAD_REQUEST, &bad.0)]);
                }
            };
            let fp = spec.fp_hex();
            let mut truncate = false;
            match FaultPlan::server(spec.seed).draw() {
                Some(FaultKind::SlowLorisRequest) => {
                    // A dribbling client stalls only its own reader thread;
                    // the pause proves the daemon keeps serving around it.
                    thread::sleep(Duration::from_millis(2));
                    record_recovered(FaultKind::SlowLorisRequest);
                }
                Some(FaultKind::QueueFullStorm) => {
                    // Synthetic admission pressure: the client sees the
                    // same explicit 429 a genuinely full queue produces.
                    record_recovered(FaultKind::QueueFullStorm);
                    obs::counter_add("serve.rejected.queue_full", 1);
                    return send(vec![rejected_line(
                        REJECT_QUEUE_FULL,
                        "queue-full storm (injected)",
                    )]);
                }
                Some(FaultKind::MidStreamDisconnect) => {
                    // The writer will hang up partway through the response.
                    truncate = true;
                    record_recovered(FaultKind::MidStreamDisconnect);
                }
                _ => {}
            }
            let tenant = request.tenant.clone().unwrap_or_else(|| "anon".to_owned());
            let job = QueuedJob { fp: fp.clone(), spec, tenant, admitted: Instant::now() };
            let waiter = Waiter { sender: tx.clone(), truncate };
            // The ack is emitted by `admit` under the admission lock so it
            // always precedes the episode's fan-out on this channel.
            match admission.admit(job, waiter, accepted_line(&fp)) {
                Admit::Queued | Admit::Coalesced => Ok(()),
                Admit::Rejected { reason, detail } => send(vec![rejected_line(reason, &detail)]),
            }
        }
        other => {
            obs::counter_add("serve.rejected.bad_request", 1);
            send(vec![rejected_line(REJECT_BAD_REQUEST, &format!("unknown op `{other}`"))])
        }
    }
}

fn write_lines(stream: &mut TcpStream, lines: &[String]) -> std::io::Result<()> {
    let mut buffer = String::new();
    for line in lines {
        buffer.push_str(line);
        buffer.push('\n');
    }
    stream.write_all(buffer.as_bytes())?;
    stream.flush()
}

fn writer_loop(mut stream: TcpStream, rx: &Receiver<Delivery>) {
    while let Ok(delivery) = rx.recv() {
        let ok = match delivery {
            Delivery::Own(lines) => write_lines(&mut stream, &lines).is_ok(),
            Delivery::Shared(lines) => write_lines(&mut stream, &lines).is_ok(),
            Delivery::Truncated(lines) => {
                let keep = (lines.len() / 2).max(1);
                let _ = write_lines(&mut stream, &lines[..keep]);
                false
            }
            Delivery::Close => false,
        };
        if !ok {
            break;
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

fn fan_out(waiters: Vec<Waiter>, lines: &Arc<Vec<String>>) {
    for waiter in waiters {
        let delivery = if waiter.truncate {
            Delivery::Truncated(Arc::clone(lines))
        } else {
            Delivery::Shared(Arc::clone(lines))
        };
        // A send failure means the client already hung up.
        let _ = waiter.sender.send(delivery);
    }
}

fn worker_loop(admission: &Admission, distilled: &Arc<DistilledStore>, min_service_us: u64) {
    while let Some(job) = admission.dequeue_blocking() {
        let _request_span = obs::span(obs::kind::REQUEST);
        // Wall-clock deadline: work whose deadline expired while queued is
        // shed, not executed — under overload the daemon spends cycles
        // only on requests that can still be answered in time.
        if let Some(deadline_ms) = job.spec.deadline_ms {
            if job.admitted.elapsed() >= Duration::from_millis(deadline_ms) {
                obs::counter_add("serve.shed", 1);
                let lines = Arc::new(vec![shed_line(&job.fp, SHED_DEADLINE)]);
                fan_out(admission.complete(&job.fp), &lines);
                continue;
            }
        }
        obs::episode_begin();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut repair = job.spec.as_repair_job();
            repair.distilled = Some(distilled);
            rtlfixer_eval::run_repair(&repair)
        }));
        if let Some(telemetry) = obs::episode_end() {
            obs::merge(&telemetry);
        }
        if min_service_us > 0 {
            thread::sleep(Duration::from_micros(min_service_us));
        }
        let lines = match outcome {
            Ok(outcome) => {
                obs::counter_add("serve.completed", 1);
                if outcome.success {
                    obs::counter_add("serve.fixed", 1);
                }
                // A serve worker's episode completion IS its pool barrier:
                // the episode ran on a build-time snapshot, so merging here
                // never races a running fixer.
                if distilled.merge(&outcome.distilled) > 0 {
                    obs::gauge_set("serve.distilled.entries", distilled.len() as i64);
                }
                outcome_lines(&job.fp, &outcome)
            }
            Err(payload) => {
                obs::counter_add("serve.episode_panics", 1);
                vec![error_line(&job.fp, &panic_message(payload))]
            }
        };
        let lines = Arc::new(lines);
        fan_out(admission.complete(&job.fp), &lines);
        let latency_us = job.admitted.elapsed().as_micros() as u64;
        obs::observe("serve.latency_us", latency_us);
        obs::observe(&format!("serve.latency_us.tenant.{}", job.tenant), latency_us);
        obs::gauge_set("serve.queue_depth", admission.queue_depth() as i64);
    }
}
