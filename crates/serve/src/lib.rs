//! Repair-as-a-service: a long-running daemon that accepts repair
//! requests over line-delimited JSON on TCP and runs them through the
//! same episode path (`rtlfixer_eval::run_repair`) the batch experiments
//! use — one fix rate, two front ends.
//!
//! The robustness machinery lives in two layers:
//!
//! * [`admission`] — bounded queue with explicit 429-style rejects,
//!   per-tenant token buckets with weighted fair dequeue, and
//!   content-addressed request coalescing;
//! * [`server`] — the accept loop, per-connection reader/writer threads,
//!   worker pool with per-request `catch_unwind` containment, deadline
//!   shedding, and graceful drain (SIGTERM or a `shutdown` op).
//!
//! Overload degrades smoothly by construction: the queue never grows past
//! its bound, excess requests get an immediate `rejected` line, admitted
//! requests whose deadline lapses in queue are shed before execution, and
//! everything else completes at its uncontended fix rate. DESIGN.md §3i
//! documents the request lifecycle and the overload-shedding contract.

pub mod admission;
pub mod protocol;
pub mod server;

pub use admission::{Admission, Admit, BucketCfg, QueuedJob, QuotaSpec, Waiter};
pub use protocol::{JobSpec, Request};
pub use server::{Daemon, Delivery, ServeConfig};

use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

static TERM: AtomicBool = AtomicBool::new(false);

/// SIGTERM on Linux.
const SIGTERM: i32 = 15;

extern "C" fn handle_term(_signum: i32) {
    TERM.store(true, Ordering::SeqCst);
}

extern "C" {
    // libc is always linked; declaring `signal` directly keeps the crate
    // dependency-free. The handler only flips an AtomicBool (async-signal
    // safe); the poll loop below does the actual draining.
    fn signal(signum: i32, handler: usize) -> usize;
}

/// The `rtlfixer-serve` entry point, also reachable as `servebench
/// --daemon` (cargo only exposes `CARGO_BIN_EXE_*` for the package under
/// test, so bench's subprocess tests re-enter the daemon through their own
/// binary).
///
/// Flags (each overrides its `RTLFIXER_SERVE_*` counterpart):
/// `--addr HOST:PORT`, `--port N`, `--workers N`, `--queue N`,
/// `--quota SPEC`, `--min-service-ms N`, `--deadline-ms N`.
///
/// Prints the `listening` line (with the bound port) to stdout, then
/// serves until SIGTERM or a client `shutdown` op, drains, and returns.
pub fn daemon_main(args: &[String]) -> Result<(), String> {
    let mut config = ServeConfig::from_env()?;
    let mut index = 0;
    while index < args.len() {
        let arg = args[index].as_str();
        let value = args
            .get(index + 1)
            .ok_or_else(|| format!("`{arg}` needs a value"))
            .map(|v| v.as_str());
        match arg {
            "--addr" => config.addr = value?.to_owned(),
            "--port" => config.addr = format!("127.0.0.1:{}", value?),
            "--workers" => {
                config.workers = value?.parse().map_err(|_| "bad --workers value".to_string())?;
            }
            "--queue" => {
                config.queue_limit = value?.parse().map_err(|_| "bad --queue value".to_string())?;
            }
            "--quota" => config.quota = QuotaSpec::parse(value?)?,
            "--min-service-ms" => {
                let ms: u64 = value?.parse().map_err(|_| "bad --min-service-ms value".to_string())?;
                config.min_service_us = ms * 1000;
            }
            "--deadline-ms" => {
                config.default_deadline_ms =
                    Some(value?.parse().map_err(|_| "bad --deadline-ms value".to_string())?);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
        index += 2;
    }
    unsafe {
        signal(SIGTERM, handle_term as extern "C" fn(i32) as usize);
    }
    let daemon = Daemon::start(config).map_err(|err| format!("bind failed: {err}"))?;
    println!("{}", protocol::listening_line(daemon.port()));
    let _ = std::io::stdout().flush();
    loop {
        if TERM.load(Ordering::SeqCst) {
            daemon.begin_drain();
        }
        if daemon.is_draining() {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    daemon.drain();
    Ok(())
}
