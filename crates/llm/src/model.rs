//! The language-model interface the agent talks to, and the request /
//! response types that cross it.
//!
//! The agent never hands the model structured diagnostics — only what a real
//! deployment would have: the code, the rendered feedback log (whose
//! information content varies by compiler personality), and any retrieved
//! guidance text. Everything else the model "knows" it must derive from the
//! code itself.

use rtlfixer_verilog::diag::ErrorCategory;

/// Feedback shown to the model for one repair turn. Mirrors what the
/// prompt template of Figure 2a carries.
#[derive(Debug, Clone, Default)]
pub struct Feedback {
    /// The rendered compiler log (or the Simple instruction, or empty).
    pub log: String,
    /// Error categories the log makes identifiable. (A bare `syntax error`
    /// line identifies nothing; a Quartus `Error (10161)` identifies the
    /// undeclared-identifier category.)
    pub identified: Vec<ErrorCategory>,
    /// Informativeness of the feedback source in `[0, 1]`.
    pub informativeness: f64,
}

/// One retrieved guidance snippet included in the prompt.
#[derive(Debug, Clone, PartialEq)]
pub struct GuidanceSnippet {
    /// The error category the guidance covers.
    pub category: ErrorCategory,
    /// The rendered guidance text (a full repair brief when the entry
    /// carries one: diagnostics, grammar hints, repair strategy, avoid).
    pub text: String,
    /// Optional demonstration code.
    pub demonstration: Option<String>,
    /// Whether the snippet came from an exact retrieval hit (an error-tag
    /// match, or a distilled-store fingerprint match). Fuzzy fallback hits
    /// are uncertain matches and count as family-level guidance at best.
    pub exact_retrieval: bool,
    /// The brief's explicit anti-patterns block ("Avoid" section). Empty
    /// for legacy guidance without a brief.
    pub anti_patterns: Vec<String>,
}

/// Prompting style for a repair turn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromptStyle {
    /// One-shot: a single feedback turn, no decomposed reasoning.
    OneShot,
    /// ReAct: interleaved Thought/Action/Observation, iterative.
    React,
}

/// A request for the model to revise erroneous code.
#[derive(Debug, Clone)]
pub struct RepairRequest {
    /// The current (erroneous) source code.
    pub code: String,
    /// The problem description, included in the prompt template.
    pub problem: String,
    /// Compiler (or Simple) feedback.
    pub feedback: Feedback,
    /// Retrieved guidance snippets (empty when RAG is off or retrieval
    /// missed).
    pub guidance: Vec<GuidanceSnippet>,
    /// Prompting style.
    pub style: PromptStyle,
    /// 0-based attempt number within the episode.
    pub attempt: usize,
}

/// The model's revision.
#[derive(Debug, Clone)]
pub struct RepairResponse {
    /// The revised source code.
    pub code: String,
    /// The model's (simulated) reasoning trace for this turn — rendered in
    /// ReAct transcripts.
    pub thought: String,
}

/// A language model that can revise Verilog code.
///
/// The production system would implement this over an LLM API; the
/// reproduction provides [`crate::SimulatedLlm`].
pub trait LanguageModel: Send {
    /// Model name for reports (`gpt-3.5-turbo-16k-0613` analogue).
    fn name(&self) -> &str;

    /// Starts a fresh debugging episode (resets per-episode latent state).
    fn begin_episode(&mut self);

    /// Proposes a revision of the code in `request`.
    fn propose_repair(&mut self, request: &RepairRequest) -> RepairResponse;

    /// Proposes a revision with transport-level outcome reporting.
    ///
    /// The default wraps [`propose_repair`](Self::propose_repair) as a
    /// clean, fault-free turn; [`crate::ResilientModel`] overrides it with
    /// retry / backoff / circuit-breaker semantics so the agent can react
    /// to degraded turns (salvage malformed completions, keep the previous
    /// candidate on exhaustion).
    fn propose_repair_turn(&mut self, request: &RepairRequest) -> crate::resilient::RepairTurn {
        crate::resilient::RepairTurn::clean(self.propose_repair(request))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feedback_default_is_empty() {
        let f = Feedback::default();
        assert!(f.log.is_empty());
        assert!(f.identified.is_empty());
        assert_eq!(f.informativeness, 0.0);
    }

    #[test]
    fn prompt_style_distinction() {
        assert_ne!(PromptStyle::OneShot, PromptStyle::React);
    }
}
