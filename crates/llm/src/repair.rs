//! Repair operators: deterministic source-level transformations that fix a
//! diagnosed error.
//!
//! These model the *edit* a competent engineer (or LLM that understood the
//! problem) would make — one operator per error category, mirroring the
//! guidance in the retrieval database. Whether the simulated model *finds*
//! the right operator on a given attempt is decided separately by the
//! [`crate::competence`] model; the operators themselves are exact.
//!
//! Every operator takes the original source plus one structured
//! [`Diagnostic`] (re-derived by the simulated model's own reading of the
//! code) and returns the revised source, or `None` when no mechanical fix
//! exists (e.g. positional port-arity mismatches).

use rtlfixer_verilog::diag::{DiagData, Diagnostic};
use rtlfixer_verilog::sema::ModuleSymbols;
use rtlfixer_verilog::span::Span;
use rtlfixer_verilog::Analysis;

/// Applies the repair operator for `diag` to `source`.
///
/// Returns the revised source, or `None` if this category has no mechanical
/// repair (the attempt then counts as failed).
pub fn repair(source: &str, diag: &Diagnostic, analysis: &Analysis) -> Option<String> {
    match &diag.data {
        DiagData::Undeclared { name } => repair_undeclared(source, name, diag.span, analysis),
        DiagData::IndexOob { target, index, msb, lsb, from_arithmetic } => {
            repair_index(source, diag.span, target, *index, *msb, *lsb, *from_arithmetic)
        }
        DiagData::BadProceduralLvalue { name } => {
            let symbols = symbols_at(analysis, diag.span)?;
            repair_to_reg(source, name, symbols)
        }
        DiagData::BadContinuousLvalue { name } => {
            let symbols = symbols_at(analysis, diag.span)?;
            repair_to_wire(source, name, symbols)
        }
        DiagData::InputAssigned { name } => {
            let symbols = symbols_at(analysis, diag.span)?;
            repair_input_direction(source, name, symbols)
        }
        DiagData::PortMismatch { module, port: Some(port), .. } => {
            repair_port_name(source, diag.span, module, port, analysis)
        }
        DiagData::PortMismatch { port: None, expected, found, .. } => {
            repair_port_arity(source, diag.span, *expected, *found)
        }
        DiagData::ModuleNotFound { .. } => Some(delete_span(source, diag.span)),
        DiagData::Redeclared { .. } => Some(delete_line(source, diag.span.start)),
        DiagData::Syntax { found, expected } => repair_syntax(source, diag.span, found, expected),
        DiagData::Unbalanced { construct } => repair_unbalanced(source, diag.span, construct),
        DiagData::CStyle { construct } => repair_c_style(source, diag.span, construct),
        DiagData::Directive { .. } => Some(delete_line(source, diag.span.start)),
        DiagData::KeywordAsId { keyword } => repair_keyword_ident(source, keyword),
        // Warning-level findings never need repair.
        DiagData::Width { .. }
        | DiagData::Latch { .. }
        | DiagData::NoDefault
        | DiagData::Unused { .. } => None,
    }
}

fn symbols_at(analysis: &Analysis, span: Span) -> Option<&ModuleSymbols> {
    let module = analysis
        .file
        .modules
        .iter()
        .find(|m| m.span.start <= span.start && span.end <= m.span.end)
        .or_else(|| analysis.file.modules.first())?;
    analysis.symbols_for(&module.name)
}

fn replace_span(source: &str, span: Span, new_text: &str) -> String {
    let mut out = String::with_capacity(source.len() + new_text.len());
    out.push_str(&source[..span.start as usize]);
    out.push_str(new_text);
    out.push_str(&source[span.end as usize..]);
    out
}

fn delete_span(source: &str, span: Span) -> String {
    replace_span(source, span, "")
}

fn delete_line(source: &str, pos: u32) -> String {
    let pos = (pos as usize).min(source.len());
    let start = source[..pos].rfind('\n').map_or(0, |i| i + 1);
    let end = source[pos..].find('\n').map_or(source.len(), |i| pos + i + 1);
    format!("{}{}", &source[..start], &source[end..])
}

fn is_word_boundary(source: &[u8], idx: usize) -> bool {
    idx == 0
        || idx >= source.len()
        || !(source[idx].is_ascii_alphanumeric() || source[idx] == b'_')
}

/// Finds whole-word occurrences of `word` in `source`.
fn word_positions(source: &str, word: &str) -> Vec<usize> {
    let bytes = source.as_bytes();
    let mut positions = Vec::new();
    let mut start = 0;
    while let Some(rel) = source[start..].find(word) {
        let idx = start + rel;
        let before_ok = idx == 0 || is_word_boundary(bytes, idx - 1) && {
            let prev = bytes[idx - 1];
            !(prev.is_ascii_alphanumeric() || prev == b'_')
        };
        let after_ok = is_word_boundary(bytes, idx + word.len());
        if before_ok && after_ok {
            positions.push(idx);
        }
        start = idx + word.len().max(1);
    }
    positions
}

// ---- per-category operators -------------------------------------------------

/// Undeclared identifier: if the name appears only under `posedge`/`negedge`
/// (the classic phantom `clk`), rewrite the sensitivity to `@(*)` per the
/// Figure 3 guidance; otherwise declare the signal after the header of the
/// module that *uses* it (multi-module files must not get the declaration
/// in the wrong module).
fn repair_undeclared(
    source: &str,
    name: &str,
    span: Span,
    analysis: &Analysis,
) -> Option<String> {
    let edge_pattern_pos = format!("posedge {name}");
    let edge_pattern_neg = format!("negedge {name}");
    let uses = word_positions(source, name);
    let edge_uses = source.matches(&edge_pattern_pos).count()
        + source.matches(&edge_pattern_neg).count();
    if edge_uses > 0 && uses.len() == edge_uses {
        // Used exclusively as a phantom clock: make the block combinational.
        let mut out = source.to_owned();
        for pattern in [&edge_pattern_pos, &edge_pattern_neg] {
            while let Some(idx) = out.find(pattern.as_str()) {
                out.replace_range(idx..idx + pattern.len(), "*");
            }
        }
        // `@(* or foo)` fragments from multi-edge lists: collapse crudely.
        let out = out.replace("(* or ", "(*) // (");
        return Some(out);
    }
    // Otherwise declare it. reg if procedurally assigned, wire otherwise.
    let procedural = uses.iter().any(|&idx| {
        let tail = &source[idx + name.len()..];
        let trimmed = tail.trim_start();
        let assigned =
            trimmed.starts_with("<=") || (trimmed.starts_with('=') && !trimmed.starts_with("=="));
        if !assigned {
            return false;
        }
        // An `=` driven by a continuous `assign` keeps the net a wire.
        let stmt_start = source[..idx].rfind([';', '\n']).map_or(0, |i| i + 1);
        !source[stmt_start..idx].contains("assign")
    });
    let indexed = uses.iter().any(|&idx| {
        source[idx + name.len()..].trim_start().starts_with('[')
    });
    let kind = if procedural { "reg" } else { "wire" };
    let range = if indexed { " [31:0]" } else { "" };
    // Insert after the header of the module enclosing the use site.
    let header_end = analysis
        .file
        .modules
        .iter()
        .find(|m| m.span.start <= span.start && span.end <= m.span.end)
        .map(|m| m.header_span.end as usize)
        .or_else(|| source.find(';').map(|i| i + 1))?;
    let mut out = source.to_owned();
    out.insert_str(header_end.min(out.len()), &format!("\n{kind}{range} {name};"));
    Some(out)
}

/// Out-of-range index. Literal indices are clamped to the nearest bound;
/// arithmetic indices get a modulo wrap (the toroidal-neighbourhood fix the
/// guidance database demonstrates).
fn repair_index(
    source: &str,
    span: Span,
    _target: &str,
    index: i64,
    msb: i64,
    lsb: i64,
    from_arithmetic: bool,
) -> Option<String> {
    let text = source.get(span.start as usize..span.end as usize)?;
    let open = text.find('[')?;
    let close = text.rfind(']')?;
    if close <= open {
        return None;
    }
    let index_text = &text[open + 1..close];
    let (lo, hi) = if msb >= lsb { (lsb, msb) } else { (msb, lsb) };
    let new_index = if from_arithmetic {
        let n = hi - lo + 1;
        if lo == 0 {
            format!("((({index_text}) % {n} + {n}) % {n})")
        } else {
            format!("({lo} + ((({index_text}) - {lo}) % {n} + {n}) % {n})")
        }
    } else {
        // Clamp the literal to the violated bound.
        let clamped = if index > hi { hi } else { lo };
        let needle = index.to_string();
        let replaced = index_text.replacen(&needle, &clamped.to_string(), 1);
        if replaced == index_text {
            return None;
        }
        replaced
    };
    let new_text = format!("{}[{}]{}", &text[..open], new_index, &text[close + 1..]);
    Some(replace_span(source, span, &new_text))
}

/// Finds the declaration region of `name` and returns (window_start, text).
fn decl_window<'a>(source: &'a str, name: &str, symbols: &ModuleSymbols) -> Option<(usize, &'a str)> {
    let info = symbols.signal(name)?;
    let decl_end = (info.span.end as usize).min(source.len());
    let window_start = (info.span.start as usize).saturating_sub(160);
    Some((window_start, &source[window_start..decl_end]))
}

/// Replaces the last whole-word `from` before the declared name with `to`.
fn rewrite_decl_keyword(
    source: &str,
    name: &str,
    symbols: &ModuleSymbols,
    from: &str,
    to: &str,
) -> Option<String> {
    let (window_start, window) = decl_window(source, name, symbols)?;
    let pos = word_positions(window, from).into_iter().next_back()?;
    let abs = window_start + pos;
    let mut out = source.to_owned();
    out.replace_range(abs..abs + from.len(), to);
    Some(out)
}

/// wire → reg (procedural l-value fix). Handles `wire y`, `output y`,
/// `output wire y`.
fn repair_to_reg(source: &str, name: &str, symbols: &ModuleSymbols) -> Option<String> {
    if let Some(fixed) = rewrite_decl_keyword(source, name, symbols, "wire", "reg") {
        return Some(fixed);
    }
    // `output y` / `input y` with no kind keyword: insert `reg` after the
    // direction.
    for dir in ["output", "inout"] {
        let (window_start, window) = decl_window(source, name, symbols)?;
        if let Some(pos) = word_positions(window, dir).into_iter().next_back() {
            let abs = window_start + pos + dir.len();
            let mut out = source.to_owned();
            out.insert_str(abs, " reg");
            return Some(out);
        }
    }
    None
}

/// reg → wire (continuous l-value fix), unless the signal is also written
/// procedurally — then the `assign` is converted to an `always @(*)` block
/// instead, as the guidance recommends.
fn repair_to_wire(source: &str, name: &str, symbols: &ModuleSymbols) -> Option<String> {
    let has_procedural_write = word_positions(source, name).iter().any(|&idx| {
        source[idx + name.len()..].trim_start().starts_with("<=")
    });
    if !has_procedural_write {
        if let Some(fixed) = rewrite_decl_keyword(source, name, symbols, "reg", "wire") {
            // `output wire wire` style double keywords cannot happen because
            // we replace the single `reg` token.
            return Some(fixed.replace("output wire", "output"));
        }
    }
    // Convert the offending assign into an always block.
    let assign_pat = format!("assign {name}");
    let idx = source.find(&assign_pat)?;
    let semi = source[idx..].find(';')? + idx;
    let stmt = &source[idx + "assign ".len()..=semi];
    let mut out = source.to_owned();
    out.replace_range(idx..=semi, &format!("always @(*) {stmt}"));
    Some(out)
}

/// input → output when an input port is assigned inside the module.
fn repair_input_direction(source: &str, name: &str, symbols: &ModuleSymbols) -> Option<String> {
    rewrite_decl_keyword(source, name, symbols, "input", "output")
}

/// Renames a bad named-port connection to the closest real port.
fn repair_port_name(
    source: &str,
    span: Span,
    module: &str,
    bad_port: &str,
    analysis: &Analysis,
) -> Option<String> {
    let target = analysis.file.module(module)?;
    let best = target
        .ports
        .iter()
        .map(|p| (&p.name, name_similarity(bad_port, &p.name)))
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))?
        .0
        .clone();
    let text = source.get(span.start as usize..span.end as usize)?;
    let pattern = format!(".{bad_port}");
    let idx = text.find(&pattern)?;
    let new_text = format!("{}.{}{}", &text[..idx], best, &text[idx + pattern.len()..]);
    Some(replace_span(source, span, &new_text))
}

/// Fixes a positional-connection arity mismatch: surplus connections are
/// dropped, missing ones padded with a zero constant (compiles; whether the
/// result is functionally right is the simulator's verdict to make).
fn repair_port_arity(source: &str, span: Span, expected: usize, found: usize) -> Option<String> {
    let text = source.get(span.start as usize..span.end as usize)?;
    // The connection list is the last top-level parenthesised group.
    let open = text.rfind('(')?;
    // Walk back to the matching outer '(' of the connection list: the last
    // '(' is only correct when connections are plain identifiers; handle
    // nesting by scanning forward from the instance-name side instead.
    let open = {
        let mut depth = 0usize;
        let mut first_open = None;
        for (idx, c) in text.char_indices() {
            match c {
                '(' => {
                    if depth == 0 {
                        first_open = Some(idx);
                    }
                    depth += 1;
                }
                ')' => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
        // For an instance `mod name(a, b);` the *last* top-level group is
        // the connection list; `first_open` is fine when there is exactly
        // one group (no parameter list in positional instances we emit).
        first_open.unwrap_or(open)
    };
    let close = text.rfind(')')?;
    if close <= open {
        return None;
    }
    let list = &text[open + 1..close];
    // Split at top-level commas.
    let mut parts: Vec<String> = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    for c in list.chars() {
        match c {
            '(' | '{' | '[' => {
                depth += 1;
                current.push(c);
            }
            ')' | '}' | ']' => {
                depth = depth.saturating_sub(1);
                current.push(c);
            }
            ',' if depth == 0 => parts.push(std::mem::take(&mut current)),
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        parts.push(current);
    }
    if parts.len() != found {
        return None; // diagnosis and text disagree; bail out
    }
    if found > expected {
        parts.truncate(expected);
    } else {
        for _ in found..expected {
            parts.push(" 1'b0".to_owned());
        }
    }
    let new_list = parts.join(",");
    let new_text = format!("{}({}{}", &text[..open], new_list, &text[close..]);
    Some(replace_span(source, span, &new_text))
}

/// Cheap bigram similarity for port-name matching.
fn name_similarity(a: &str, b: &str) -> f64 {
    let bigrams = |s: &str| -> Vec<(char, char)> {
        let chars: Vec<char> = s.chars().collect();
        chars.windows(2).map(|w| (w[0], w[1])).collect()
    };
    let ba = bigrams(&a.to_lowercase());
    let bb = bigrams(&b.to_lowercase());
    if ba.is_empty() || bb.is_empty() {
        return if a.eq_ignore_ascii_case(b) { 1.0 } else { 0.1 };
    }
    let inter = ba.iter().filter(|g| bb.contains(g)).count();
    (2 * inter) as f64 / (ba.len() + bb.len()) as f64
}

/// Generic syntax repairs driven by the parser's expectation.
fn repair_syntax(source: &str, span: Span, found: &str, expected: &str) -> Option<String> {
    // A module-item keyword in statement position with more `begin`s than
    // `end`s is the classic dropped-`end` cascade: close the block right
    // before the offending item.
    let item_keyword = matches!(found, "assign" | "always" | "wire" | "reg" | "endmodule");
    if item_keyword && (expected.contains("expression") || expected.contains("statement")) {
        let begins = word_positions(source, "begin").len();
        let ends = word_positions(source, "end").len();
        if begins > ends {
            let mut out = source.to_owned();
            out.insert_str(span.start as usize, "end\n");
            return Some(out);
        }
    }
    if expected.contains("';'") {
        // Missing semicolon: insert after the last non-whitespace character
        // before the unexpected token.
        let upto = &source[..span.start as usize];
        let insert_at = upto.rfind(|c: char| !c.is_whitespace()).map(|i| i + 1)?;
        let mut out = source.to_owned();
        out.insert(insert_at, ';');
        return Some(out);
    }
    if expected.contains("'@'") {
        // `always begin` without a sensitivity list: span starts at `always`.
        let text = &source[span.start as usize..];
        if text.starts_with("always") {
            let mut out = source.to_owned();
            out.insert_str(span.start as usize + "always".len(), " @(*)");
            return Some(out);
        }
    }
    None
}

/// Inserts the missing block terminator.
fn repair_unbalanced(source: &str, span: Span, construct: &str) -> Option<String> {
    match construct {
        "endmodule" => Some(format!("{}\nendmodule\n", source.trim_end())),
        "end" | "endcase" | "endgenerate" | "endfunction" => {
            let mut out = source.to_owned();
            let at = (span.start as usize).min(out.len());
            out.insert_str(at, &format!("{construct}\n"));
            Some(out)
        }
        _ => None,
    }
}

/// Rewrites C-style operators into Verilog arithmetic.
fn repair_c_style(source: &str, span: Span, construct: &str) -> Option<String> {
    let op_start = span.start as usize;
    let op_end = span.end as usize;
    // Identifier immediately before the operator (whitespace may intervene:
    // `s += a`).
    let before = source[..op_start].trim_end();
    let ident_start = before
        .rfind(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .map(|i| i + 1)
        .unwrap_or(0);
    let name = &before[ident_start..];
    if name.is_empty() {
        // Prefix form `++i`: identifier follows the operator.
        let after = &source[op_end..];
        let ident_end = after
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == ' '))
            .unwrap_or(after.len());
        let name = after[..ident_end].trim();
        if name.is_empty() {
            return None;
        }
        let op = if construct.starts_with('-') { "-" } else { "+" };
        let mut out = source.to_owned();
        out.replace_range(op_start..op_end + ident_end, &format!("{name} = {name} {op} 1"));
        return Some(out);
    }
    match construct {
        "++" | "--" => {
            let op = if construct == "--" { "-" } else { "+" };
            let mut out = source.to_owned();
            out.replace_range(ident_start..op_end, &format!("{name} = {name} {op} 1"));
            Some(out)
        }
        "+=" | "-=" | "*=" | "/=" => {
            let op = &construct[..1];
            let after = &source[op_end..];
            let stmt_end = after.find([';', ')'])?;
            let rhs = after[..stmt_end].trim();
            let mut out = source.to_owned();
            out.replace_range(
                ident_start..op_end + stmt_end,
                &format!("{name} = {name} {op} ({rhs})"),
            );
            Some(out)
        }
        _ => None,
    }
}

/// Renames a reserved word used as an identifier (whole-word, everywhere).
fn repair_keyword_ident(source: &str, keyword: &str) -> Option<String> {
    let positions = word_positions(source, keyword);
    if positions.is_empty() {
        return None;
    }
    let replacement = format!("{keyword}_sig");
    let mut out = String::with_capacity(source.len() + positions.len() * 4);
    let mut last = 0;
    for pos in positions {
        out.push_str(&source[last..pos]);
        out.push_str(&replacement);
        last = pos + keyword.len();
    }
    out.push_str(&source[last..]);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlfixer_verilog::compile;
    use rtlfixer_verilog::diag::ErrorCategory;

    /// Applies the operator for the first error and asserts that category
    /// is gone afterwards.
    fn fix_first(source: &str) -> (String, Vec<ErrorCategory>) {
        let analysis = compile(source);
        let diag = analysis
            .errors()
            .first()
            .copied()
            .cloned()
            .expect("input must have an error");
        let fixed = repair(source, &diag, &analysis).expect("operator exists");
        let after = compile(&fixed);
        let cats: Vec<ErrorCategory> = after.errors().iter().map(|d| d.category).collect();
        (fixed, cats)
    }

    #[test]
    fn fixes_phantom_clk_via_sensitivity() {
        let (fixed, cats) = fix_first(
            "module top_module(input [7:0] in, output reg [7:0] out);\n\
             always @(posedge clk) out <= in;\nendmodule",
        );
        assert!(fixed.contains("@(*"), "{fixed}");
        assert!(!cats.contains(&ErrorCategory::UndeclaredIdentifier), "{cats:?}");
    }

    #[test]
    fn declares_missing_intermediate_wire() {
        let (fixed, cats) = fix_first(
            "module m(input [7:0] a, output [7:0] y);\n\
             assign y = a & mask;\nassign mask = 8'h0F;\nendmodule",
        );
        assert!(fixed.contains("wire"), "{fixed}");
        assert!(!cats.contains(&ErrorCategory::UndeclaredIdentifier), "{cats:?}");
    }

    #[test]
    fn clamps_literal_index() {
        let (fixed, cats) = fix_first(
            "module m(input [7:0] in, output [7:0] out);\n\
             assign out[8] = in[0];\nendmodule",
        );
        assert!(fixed.contains("out[7]"), "{fixed}");
        assert!(!cats.contains(&ErrorCategory::IndexOutOfRange), "{cats:?}");
    }

    #[test]
    fn wraps_arithmetic_index_with_modulo() {
        let src = "module m(input [255:0] q, output [255:0] n);\n\
             genvar i, j;\ngenerate\n\
             for (i = 0; i < 16; i = i + 1) begin : r\n\
             for (j = 0; j < 16; j = j + 1) begin : c\n\
             assign n[i*16 + j] = q[(i-1)*16 + (j-1)];\nend\nend\nendgenerate\nendmodule";
        let (fixed, cats) = fix_first(src);
        assert!(fixed.contains('%'), "{fixed}");
        assert!(!cats.contains(&ErrorCategory::IndexArithmetic), "{cats:?}");
    }

    #[test]
    fn wire_to_reg_for_procedural_write() {
        let (fixed, cats) = fix_first(
            "module m(input a, output y);\nalways @(a) y = a;\nendmodule",
        );
        assert!(fixed.contains("output reg y"), "{fixed}");
        assert!(!cats.contains(&ErrorCategory::IllegalProceduralLvalue), "{cats:?}");
    }

    #[test]
    fn declared_wire_to_reg() {
        let (fixed, cats) = fix_first(
            "module m(input a, output y);\nwire t;\nalways @(a) t = a;\nassign y = t;\nendmodule",
        );
        assert!(fixed.contains("reg t"), "{fixed}");
        assert!(!cats.contains(&ErrorCategory::IllegalProceduralLvalue), "{cats:?}");
    }

    #[test]
    fn reg_to_wire_for_assign() {
        let (fixed, cats) = fix_first(
            "module m(input a, output reg y);\nassign y = a;\nendmodule",
        );
        assert!(!cats.contains(&ErrorCategory::IllegalContinuousLvalue), "{cats:?}");
        assert!(fixed.contains("output y") || fixed.contains("always"), "{fixed}");
    }

    #[test]
    fn input_direction_flip() {
        let (fixed, cats) = fix_first(
            "module m(input a, input b, output y);\nassign b = ~a;\nassign y = b;\nendmodule",
        );
        assert!(fixed.contains("output b"), "{fixed}");
        assert!(!cats.contains(&ErrorCategory::AssignToInput), "{cats:?}");
    }

    #[test]
    fn renames_bad_port_connection() {
        let (fixed, cats) = fix_first(
            "module child(input data_in, output data_out); assign data_out = data_in; endmodule\n\
             module top(input x, output z);\nchild c(.data_i(x), .data_out(z));\nendmodule",
        );
        assert!(fixed.contains(".data_in(x)"), "{fixed}");
        assert!(!cats.contains(&ErrorCategory::PortConnectionMismatch), "{cats:?}");
    }

    #[test]
    fn removes_unknown_module_instance() {
        let (_, cats) = fix_first(
            "module top(input a, output y);\nghost g(.p(a), .q(y));\nassign y = a;\nendmodule",
        );
        assert!(!cats.contains(&ErrorCategory::UnknownModule), "{cats:?}");
    }

    #[test]
    fn deletes_duplicate_declaration() {
        let (fixed, cats) = fix_first(
            "module m(input a, output y);\nwire t;\nwire t;\nassign t = a;\nassign y = t;\nendmodule",
        );
        assert_eq!(fixed.matches("wire t;").count(), 1, "{fixed}");
        assert!(!cats.contains(&ErrorCategory::Redeclaration), "{cats:?}");
    }

    #[test]
    fn inserts_missing_semicolon() {
        let (fixed, cats) = fix_first(
            "module m(input a, output y);\nassign y = a\nendmodule",
        );
        assert!(fixed.contains("assign y = a;"), "{fixed}");
        assert!(!cats.contains(&ErrorCategory::SyntaxError), "{cats:?}");
    }

    #[test]
    fn adds_sensitivity_to_bare_always() {
        let (fixed, cats) = fix_first(
            "module m(input a, output reg y);\nalways begin y = a; end\nendmodule",
        );
        assert!(fixed.contains("always @(*)"), "{fixed}");
        assert!(!cats.contains(&ErrorCategory::SyntaxError), "{cats:?}");
    }

    #[test]
    fn appends_missing_endmodule() {
        let (fixed, cats) = fix_first("module m(input a, output y);\nassign y = a;\n");
        assert!(fixed.trim_end().ends_with("endmodule"), "{fixed}");
        assert!(!cats.contains(&ErrorCategory::UnbalancedBlock), "{cats:?}");
    }

    #[test]
    fn inserts_missing_end() {
        let (_, cats) = fix_first(
            "module m(input a, output reg y);\nalways @(a) begin\ny = a;\nendmodule",
        );
        assert!(!cats.contains(&ErrorCategory::UnbalancedBlock), "{cats:?}");
    }

    #[test]
    fn rewrites_postfix_increment() {
        let (fixed, cats) = fix_first(
            "module m(input [7:0] a, output reg [7:0] y);\n\
             integer i;\nalways @* begin\n\
             for (i = 0; i < 8; i++) y[i] = a[i];\nend\nendmodule",
        );
        assert!(fixed.contains("i = i + 1"), "{fixed}");
        assert!(!cats.contains(&ErrorCategory::CStyleConstruct), "{cats:?}");
    }

    #[test]
    fn rewrites_compound_assignment() {
        let (fixed, cats) = fix_first(
            "module m(input [7:0] a, output reg [7:0] s);\n\
             always @* begin\ns = 0;\ns += a;\nend\nendmodule",
        );
        assert!(fixed.contains("s = s + (a)"), "{fixed}");
        assert!(!cats.contains(&ErrorCategory::CStyleConstruct), "{cats:?}");
    }

    #[test]
    fn removes_misplaced_timescale() {
        let (fixed, cats) = fix_first(
            "module m(input a, output y);\n`timescale 1ns/1ps\nassign y = a;\nendmodule",
        );
        assert!(!fixed.contains("timescale"), "{fixed}");
        assert!(!cats.contains(&ErrorCategory::MisplacedDirective), "{cats:?}");
    }

    #[test]
    fn renames_keyword_identifier() {
        let (fixed, cats) = fix_first(
            "module m(input a, output y);\nwire force;\nassign force = a;\nassign y = force;\nendmodule",
        );
        assert!(fixed.contains("force_sig"), "{fixed}");
        assert!(!cats.contains(&ErrorCategory::KeywordAsIdentifier), "{cats:?}");
    }

    #[test]
    fn word_positions_respects_boundaries() {
        let positions = word_positions("clk clkx xclk clk_y (clk)", "clk");
        assert_eq!(positions.len(), 2);
    }

    #[test]
    fn pads_missing_positional_connection() {
        let (fixed, cats) = fix_first(
            "module child(input a, input b, output y); assign y = a & b; endmodule\n\
             module top(input x, output z);\nchild c(x, z);\nendmodule",
        );
        assert!(fixed.contains("1'b0"), "{fixed}");
        assert!(!cats.contains(&ErrorCategory::PortConnectionMismatch), "{cats:?}");
    }

    #[test]
    fn drops_surplus_positional_connection() {
        let (fixed, cats) = fix_first(
            "module child(input a, output y); assign y = ~a; endmodule\n\
             module top(input x, input w, output z);\nchild c(x, w, z);\nendmodule",
        );
        assert!(!fixed.contains("w, z"), "surplus connection kept: {fixed}");
        assert!(!cats.contains(&ErrorCategory::PortConnectionMismatch), "{cats:?}");
    }
}
