//! # rtlfixer-llm
//!
//! The language-model subsystem of the RTLFixer reproduction.
//!
//! The original system calls OpenAI's `gpt-3.5-turbo` / GPT-4; this
//! reproduction substitutes a **simulated model** (see DESIGN.md §1):
//!
//! * [`repair`] — deterministic, category-keyed repair operators: the exact
//!   source edit a competent engineer would make for each diagnosed error
//!   (declare the missing signal, clamp/wrap the index, wire→reg, rename
//!   the port, rewrite `i++`, …).
//! * [`competence`] — a calibrated stochastic model of *whether* the LLM
//!   finds that edit, conditioned on feedback quality, retrieved guidance,
//!   error category and capability class (GPT-3.5 vs GPT-4).
//! * [`SimulatedLlm`] — ties the two together behind the [`LanguageModel`]
//!   trait the agent talks to.
//! * [`ResilientModel`] — the production transport layer over any model:
//!   seeded fault injection, bounded retries with simulated-clock backoff,
//!   a per-episode circuit breaker and a retry-budget ledger (DESIGN.md
//!   §3d).
//!
//! The split keeps the reproduction honest: everything mechanical is real
//! code; only the model's hit/miss behaviour is stochastic, with its
//! parameters calibrated once against the paper's Table 1.

#![warn(missing_docs)]

pub mod competence;
pub mod model;
pub mod repair;
pub mod resilient;
pub mod simulated;

pub use competence::{AttemptContext, Capability, Competence, GuidanceLevel};
pub use model::{
    Feedback, GuidanceSnippet, LanguageModel, PromptStyle, RepairRequest, RepairResponse,
};
pub use resilient::{RepairTurn, ResilientModel, RetryLedger, RetryPolicy, TurnEvent};
pub use simulated::SimulatedLlm;
