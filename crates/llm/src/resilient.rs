//! The resilient transport layer over any [`LanguageModel`].
//!
//! A production RTLFixer talks to an LLM API that times out, rate-limits,
//! truncates and malforms. [`ResilientModel`] wraps any inner model with
//! the client-side machinery a deployment needs:
//!
//! * **Bounded retries** with exponential backoff and seeded jitter on a
//!   *simulated clock* — no real sleeping, so evaluation stays fast and
//!   bit-identical while backoff arithmetic stays realistic.
//! * A **per-episode circuit breaker**: after enough consecutive failed
//!   calls the episode stops hammering the API and degrades.
//! * A **retry-budget ledger** charging retries to wall-clock and token
//!   budgets that are *distinct* from the agent's ReAct revision budget —
//!   retries buy reliability, not extra reasoning turns.
//!
//! Faults come from a seeded [`FaultPlan`], so whether (and when) a call
//! fails is a pure function of the episode seed: parallel runs at any
//! worker count reproduce the same faults. With faults off the wrapper is
//! pure delegation — bit-identical to the unwrapped model.

use std::sync::Arc;

use rtlfixer_faults::{self as faults, FaultKind, FaultPlan, FaultSpec};

use crate::model::{LanguageModel, RepairRequest, RepairResponse};

/// One observable resilience event within a repair turn, in order of
/// occurrence. The agent replays these into its ReAct trace so degraded
/// episodes stay auditable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TurnEvent {
    /// A fault struck the call (attempt is 0-based within the turn).
    Fault {
        /// The injected fault kind.
        kind: FaultKind,
        /// 0-based call attempt within this turn.
        attempt: usize,
    },
    /// The client backed off and retried.
    Retry {
        /// 0-based attempt that failed and is being retried.
        attempt: usize,
        /// Simulated backoff charged to the retry ledger, in ms.
        backoff_ms: u64,
    },
    /// The per-episode circuit breaker is (now) open; no call was made.
    CircuitOpen,
}

/// The result of one repair turn through the resilient transport.
#[derive(Debug, Clone)]
pub struct RepairTurn {
    /// The delivered revision, or `None` when every retry was exhausted
    /// (the agent keeps its previous candidate).
    pub response: Option<RepairResponse>,
    /// Resilience events, in order.
    pub events: Vec<TurnEvent>,
    /// Whether the delivered completion is malformed (prose-wrapped) and
    /// needs salvage through the pre-fixer.
    pub malformed: bool,
}

impl RepairTurn {
    /// A clean, fault-free turn.
    pub fn clean(response: RepairResponse) -> Self {
        RepairTurn { response: Some(response), events: Vec::new(), malformed: false }
    }

    /// Whether anything went wrong this turn.
    pub fn is_degraded(&self) -> bool {
        !self.events.is_empty() || self.response.is_none()
    }
}

/// Retry and degradation policy for [`ResilientModel`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Maximum retries per turn (on top of the initial call).
    pub max_retries: usize,
    /// First backoff step, in simulated ms (doubles per retry).
    pub base_backoff_ms: u64,
    /// Backoff ceiling, in simulated ms.
    pub max_backoff_ms: u64,
    /// Per-episode simulated wall-clock budget for backoff, in ms.
    pub retry_budget_ms: u64,
    /// Per-episode token budget for wasted (faulted) completions.
    pub retry_token_budget: u64,
    /// Consecutive failed calls that open the circuit breaker.
    pub breaker_threshold: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_backoff_ms: 250,
            max_backoff_ms: 4_000,
            retry_budget_ms: 30_000,
            retry_token_budget: 20_000,
            breaker_threshold: 12,
        }
    }
}

/// What resilience has cost this episode so far. Charged separately from
/// the agent's revision budget.
#[derive(Debug, Clone, Copy, Default)]
pub struct RetryLedger {
    /// Simulated backoff wall-clock spent, in ms.
    pub wall_ms: u64,
    /// Tokens burned on faulted (discarded) completions.
    pub tokens: u64,
    /// Retries performed.
    pub retries: u64,
}

/// A [`LanguageModel`] wrapper adding retries, backoff, circuit breaking
/// and budget accounting. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct ResilientModel<L> {
    inner: L,
    plan: FaultPlan,
    policy: RetryPolicy,
    ledger: RetryLedger,
    deadline_ms: Option<u64>,
    consecutive_failures: u32,
    breaker_open: bool,
}

/// Rough token estimate for a discarded completion (chars / 4, the usual
/// English-plus-code heuristic).
fn estimate_tokens(text: &str) -> u64 {
    (text.len() as u64).div_ceil(4)
}

impl<L: LanguageModel> ResilientModel<L> {
    /// Wraps `inner` under the process-wide fault spec, with the fault
    /// stream derived from `episode_seed`.
    pub fn new(inner: L, episode_seed: u64) -> Self {
        Self::with_plan(inner, FaultPlan::llm(episode_seed))
    }

    /// Wraps `inner` under an explicit spec (chaos harness, tests).
    pub fn with_spec(inner: L, spec: Option<Arc<FaultSpec>>, episode_seed: u64) -> Self {
        Self::with_plan(inner, FaultPlan::llm_with(spec, episode_seed))
    }

    fn with_plan(inner: L, plan: FaultPlan) -> Self {
        ResilientModel {
            inner,
            plan,
            policy: RetryPolicy::default(),
            ledger: RetryLedger::default(),
            deadline_ms: None,
            consecutive_failures: 0,
            breaker_open: false,
        }
    }

    /// Overrides the retry policy (builder style).
    pub fn policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Caps the episode's *total* simulated retry wall-clock at an
    /// external deadline (builder style). The retry budget becomes
    /// `min(retry_budget_ms, deadline_ms)`: a served request stops
    /// retrying at its deadline instead of exhausting the full backoff
    /// schedule. `0` forbids retries entirely.
    pub fn with_deadline(mut self, deadline_ms: u64) -> Self {
        self.deadline_ms = Some(deadline_ms);
        self
    }

    /// The external deadline cap, if any.
    pub fn deadline_ms(&self) -> Option<u64> {
        self.deadline_ms
    }

    /// The effective simulated wall-clock budget for retries this
    /// episode: the policy budget, clipped by the deadline when set.
    pub fn effective_retry_budget_ms(&self) -> u64 {
        match self.deadline_ms {
            Some(deadline) => self.policy.retry_budget_ms.min(deadline),
            None => self.policy.retry_budget_ms,
        }
    }

    /// The episode's resilience spend so far.
    pub fn ledger(&self) -> RetryLedger {
        self.ledger
    }

    /// Whether the circuit breaker has tripped this episode.
    pub fn breaker_open(&self) -> bool {
        self.breaker_open
    }

    /// A reference to the wrapped model.
    pub fn inner(&self) -> &L {
        &self.inner
    }

    /// Exponential backoff with seeded jitter: `base * 2^attempt` capped
    /// at the ceiling, plus up to 25% decorrelating jitter.
    fn backoff_ms(&mut self, attempt: usize) -> u64 {
        let shift = attempt.min(16) as u32;
        let base = self
            .policy
            .base_backoff_ms
            .saturating_mul(1u64 << shift)
            .min(self.policy.max_backoff_ms);
        base + self.plan.jitter_ms(base / 4)
    }

    /// Notes a failed call; returns `true` if the breaker just opened.
    fn note_failure(&mut self) -> bool {
        self.consecutive_failures += 1;
        if self.consecutive_failures >= self.policy.breaker_threshold {
            self.breaker_open = true;
        }
        self.breaker_open
    }

    /// Runs one repair turn: inject faults per the plan, retry transient
    /// ones under the budget, deliver degraded completions for the agent
    /// to salvage, or report exhaustion.
    pub fn turn(&mut self, request: &RepairRequest) -> RepairTurn {
        let mut events = Vec::new();
        if self.breaker_open {
            events.push(TurnEvent::CircuitOpen);
            return RepairTurn { response: None, events, malformed: false };
        }

        let mut faulted_kinds: Vec<FaultKind> = Vec::new();
        let mut attempt = 0usize;
        loop {
            let Some(kind) = self.plan.draw() else {
                // Clean call: the inner model answers.
                let response = self.inner.propose_repair(request);
                for kind in faulted_kinds {
                    faults::record_recovered(kind);
                }
                self.consecutive_failures = 0;
                rtlfixer_obs::counter_add(
                    "llm.completion_tokens",
                    estimate_tokens(&response.code),
                );
                return RepairTurn { response: Some(response), events, malformed: false };
            };

            events.push(TurnEvent::Fault { kind, attempt });
            if kind == FaultKind::MalformedOutput {
                // The completion *is* delivered, just wrapped in prose.
                // Recovery (salvage via the pre-fixer) is the agent's call.
                let inner_response = self.inner.propose_repair(request);
                for kind in faulted_kinds {
                    faults::record_recovered(kind);
                }
                self.consecutive_failures = 0;
                return RepairTurn {
                    response: Some(RepairResponse {
                        code: faults::malform_completion(&inner_response.code),
                        thought: inner_response.thought,
                    }),
                    events,
                    malformed: true,
                };
            }

            // Transport faults deliver nothing; truncated / empty
            // completions fail client-side validation (no `endmodule` /
            // no content) — all are retried. Truncated and empty
            // completions still cost their tokens.
            faulted_kinds.push(kind);
            if matches!(kind, FaultKind::TruncatedCompletion | FaultKind::EmptyCompletion) {
                let wasted = estimate_tokens(&request.code);
                self.ledger.tokens += wasted;
                rtlfixer_obs::counter_add("llm.wasted_tokens", wasted);
            }
            if self.note_failure() {
                faults::record_exhausted(kind);
                events.push(TurnEvent::CircuitOpen);
                return RepairTurn { response: None, events, malformed: false };
            }
            let over_budget = self.ledger.tokens > self.policy.retry_token_budget;
            if attempt >= self.policy.max_retries || over_budget {
                faults::record_exhausted(kind);
                return RepairTurn { response: None, events, malformed: false };
            }
            let backoff = self.backoff_ms(attempt);
            if self.ledger.wall_ms + backoff > self.effective_retry_budget_ms() {
                faults::record_exhausted(kind);
                return RepairTurn { response: None, events, malformed: false };
            }
            self.ledger.wall_ms += backoff;
            self.ledger.retries += 1;
            rtlfixer_obs::counter_add("llm.retries", 1);
            rtlfixer_obs::record_span_simulated(
                rtlfixer_obs::kind::RETRY,
                backoff.saturating_mul(1_000),
            );
            events.push(TurnEvent::Retry { attempt, backoff_ms: backoff });
            attempt += 1;
        }
    }
}

impl<L: LanguageModel> LanguageModel for ResilientModel<L> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn begin_episode(&mut self) {
        self.ledger = RetryLedger::default();
        self.consecutive_failures = 0;
        self.breaker_open = false;
        self.inner.begin_episode();
    }

    fn propose_repair(&mut self, request: &RepairRequest) -> RepairResponse {
        // Plain-API callers still get graceful degradation: an exhausted
        // turn returns the code unchanged.
        self.turn(request).response.unwrap_or_else(|| RepairResponse {
            code: request.code.clone(),
            thought: "The model API was unavailable after exhausting retries; the code is \
                      unchanged this turn."
                .to_owned(),
        })
    }

    fn propose_repair_turn(&mut self, request: &RepairRequest) -> RepairTurn {
        self.turn(request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Feedback, PromptStyle};
    use crate::simulated::SimulatedLlm;
    use crate::Capability;

    const BROKEN: &str = "module m(input [7:0] in, output reg [7:0] out);\n\
                          always @(posedge clk) out <= in;\nendmodule";

    fn request() -> RepairRequest {
        RepairRequest {
            code: BROKEN.to_owned(),
            problem: String::new(),
            feedback: Feedback {
                log: String::new(),
                identified: vec![],
                informativeness: 0.85,
            },
            guidance: Vec::new(),
            style: PromptStyle::React,
            attempt: 0,
        }
    }

    fn spec(rate: f64) -> Option<Arc<FaultSpec>> {
        Some(Arc::new(FaultSpec::uniform(rate)))
    }

    #[test]
    fn no_spec_is_pure_delegation() {
        let mut bare = SimulatedLlm::new(Capability::Gpt4Class, 11);
        let mut wrapped = ResilientModel::with_spec(SimulatedLlm::new(Capability::Gpt4Class, 11), None, 11);
        bare.begin_episode();
        wrapped.begin_episode();
        let req = request();
        let a = bare.propose_repair(&req);
        let turn = wrapped.propose_repair_turn(&req);
        assert!(!turn.is_degraded());
        let b = turn.response.expect("delivered");
        assert_eq!(a.code, b.code);
        assert_eq!(a.thought, b.thought);
        assert_eq!(wrapped.ledger().retries, 0);
    }

    #[test]
    fn transient_faults_recover_to_the_same_completion() {
        // Transport faults never consume the inner model's randomness, so
        // a recovered turn delivers exactly what a fault-free turn would.
        let req = request();
        let mut reference = SimulatedLlm::new(Capability::Gpt4Class, 3);
        reference.begin_episode();
        let expected = reference.propose_repair(&req);

        let only_timeouts = Some(Arc::new(
            FaultSpec::none().with_rate(FaultKind::Timeout, 0.45),
        ));
        // Find a seed whose first turn faults at least once yet recovers.
        for seed in 0..200u64 {
            let mut model = ResilientModel::with_spec(
                SimulatedLlm::new(Capability::Gpt4Class, 3),
                only_timeouts.clone(),
                seed,
            );
            model.begin_episode();
            let turn = model.propose_repair_turn(&req);
            let faults =
                turn.events.iter().filter(|e| matches!(e, TurnEvent::Fault { .. })).count();
            if faults > 0 {
                if let Some(response) = turn.response {
                    assert_eq!(response.code, expected.code, "seed {seed}");
                    assert!(model.ledger().retries >= 1);
                    assert!(model.ledger().wall_ms > 0);
                    return;
                }
            }
        }
        panic!("no seed produced a recovered faulted turn at rate 0.45");
    }

    #[test]
    fn certain_faults_exhaust_within_retry_bound() {
        let always = Some(Arc::new(FaultSpec::none().with_rate(FaultKind::Timeout, 1.0)));
        let mut model =
            ResilientModel::with_spec(SimulatedLlm::new(Capability::Gpt4Class, 5), always, 5);
        model.begin_episode();
        let turn = model.propose_repair_turn(&request());
        assert!(turn.response.is_none(), "certain timeouts must exhaust");
        let policy = RetryPolicy::default();
        let faults = turn.events.iter().filter(|e| matches!(e, TurnEvent::Fault { .. })).count();
        assert!(faults <= policy.max_retries + 1);
        assert!(faults >= 2, "at least one retry was attempted");
    }

    #[test]
    fn breaker_opens_and_fast_fails_subsequent_turns() {
        let always = Some(Arc::new(FaultSpec::none().with_rate(FaultKind::RateLimited, 1.0)));
        let mut model = ResilientModel::with_spec(
            SimulatedLlm::new(Capability::Gpt4Class, 7),
            always,
            7,
        );
        model.begin_episode();
        let req = request();
        for _ in 0..8 {
            let _ = model.propose_repair_turn(&req);
            if model.breaker_open() {
                break;
            }
        }
        assert!(model.breaker_open(), "certain faults must trip the breaker");
        let turn = model.propose_repair_turn(&req);
        assert_eq!(turn.events, vec![TurnEvent::CircuitOpen]);
        assert!(turn.response.is_none());
        // A new episode resets the breaker.
        model.begin_episode();
        assert!(!model.breaker_open());
        assert_eq!(model.ledger().retries, 0);
    }

    #[test]
    fn malformed_output_is_delivered_for_salvage() {
        let malformed = Some(Arc::new(FaultSpec::none().with_rate(FaultKind::MalformedOutput, 1.0)));
        let mut model = ResilientModel::with_spec(
            SimulatedLlm::new(Capability::Gpt4Class, 9),
            malformed,
            9,
        );
        model.begin_episode();
        let turn = model.propose_repair_turn(&request());
        assert!(turn.malformed);
        let response = turn.response.expect("malformed completions are delivered");
        assert!(response.code.contains("```verilog"), "{}", response.code);
        assert!(response.code.contains("Hope this helps"));
    }

    #[test]
    fn backoff_grows_and_respects_budget() {
        let always = Some(Arc::new(FaultSpec::none().with_rate(FaultKind::TransientServerError, 1.0)));
        let mut model = ResilientModel::with_spec(
            SimulatedLlm::new(Capability::Gpt4Class, 13),
            always,
            13,
        )
        .policy(RetryPolicy { retry_budget_ms: 700, ..RetryPolicy::default() });
        model.begin_episode();
        let turn = model.propose_repair_turn(&request());
        assert!(turn.response.is_none());
        // 250 + 500 would pass 700 only after the second backoff; the
        // ledger never exceeds the budget.
        assert!(model.ledger().wall_ms <= 700, "{:?}", model.ledger());
        let backoffs: Vec<u64> = turn
            .events
            .iter()
            .filter_map(|e| match e {
                TurnEvent::Retry { backoff_ms, .. } => Some(*backoff_ms),
                _ => None,
            })
            .collect();
        for pair in backoffs.windows(2) {
            assert!(pair[1] >= pair[0], "backoff must not shrink: {backoffs:?}");
        }
    }

    #[test]
    fn deadline_stops_retries_before_full_backoff_schedule() {
        let always = Some(Arc::new(FaultSpec::none().with_rate(FaultKind::Timeout, 1.0)));
        let run = |deadline: Option<u64>| {
            let mut model = ResilientModel::with_spec(
                SimulatedLlm::new(Capability::Gpt4Class, 23),
                always.clone(),
                23,
            );
            if let Some(ms) = deadline {
                model = model.with_deadline(ms);
            }
            model.begin_episode();
            let _ = model.propose_repair_turn(&request());
            model.ledger()
        };

        // Without a deadline, certain faults walk the whole backoff
        // schedule (250 + 500 + 1000 + 2000 plus jitter > 3750 ms).
        let free = run(None);
        assert!(free.retries >= 3, "{free:?}");
        assert!(free.wall_ms > 3_000, "{free:?}");

        // A 600 ms deadline stops the schedule after the first backoff
        // step or two — never past the deadline.
        let capped = run(Some(600));
        assert!(capped.wall_ms <= 600, "{capped:?}");
        assert!(capped.retries < free.retries, "{capped:?} vs {free:?}");

        // A zero deadline forbids retries entirely.
        let none = run(Some(0));
        assert_eq!(none.retries, 0, "{none:?}");
        assert_eq!(none.wall_ms, 0, "{none:?}");
    }

    #[test]
    fn plain_api_degrades_to_unchanged_code() {
        let always = Some(Arc::new(FaultSpec::none().with_rate(FaultKind::Timeout, 1.0)));
        let mut model = ResilientModel::with_spec(
            SimulatedLlm::new(Capability::Gpt4Class, 17),
            always,
            17,
        );
        model.begin_episode();
        let req = request();
        let response = model.propose_repair(&req);
        assert_eq!(response.code, req.code, "exhausted turn keeps the code");
        assert!(response.thought.contains("unavailable"));
    }

    #[test]
    fn fault_stream_is_reproducible() {
        let run = || {
            let mut model = ResilientModel::with_spec(
                SimulatedLlm::new(Capability::Gpt35Class, 21),
                spec(0.4),
                21,
            );
            model.begin_episode();
            let req = request();
            let mut shape = Vec::new();
            for _ in 0..6 {
                let turn = model.propose_repair_turn(&req);
                shape.push((turn.events.len(), turn.response.is_some(), turn.malformed));
            }
            shape
        };
        assert_eq!(run(), run());
    }
}
