//! The simulated language model: reads the code like an engineer would
//! (via the frontend), decides per error whether it *understands* it (the
//! competence model), and applies the corresponding real repair operator on
//! success.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rtlfixer_verilog::diag::{Diagnostic, ErrorCategory};

use crate::competence::{AttemptContext, Capability, Competence, GuidanceLevel};
use crate::model::{Feedback, GuidanceSnippet, LanguageModel, RepairRequest, RepairResponse};
use crate::repair;

/// Maximum errors fixed within one revision response (an LLM rewrites the
/// whole module once per turn, typically addressing everything it noticed).
const MAX_EDITS_PER_TURN: usize = 6;

/// The simulated LLM. See the [module docs](self) and DESIGN.md §1.
///
/// # Examples
///
/// ```
/// use rtlfixer_llm::{Capability, SimulatedLlm, LanguageModel};
/// let mut llm = SimulatedLlm::new(Capability::Gpt4Class, 7);
/// llm.begin_episode();
/// assert_eq!(llm.name(), "sim-gpt-4-class");
/// ```
#[derive(Debug, Clone)]
pub struct SimulatedLlm {
    competence: Competence,
    rng: StdRng,
    /// Latent per-episode understanding, keyed by error identity.
    episode: HashMap<String, bool>,
    name: String,
}

impl SimulatedLlm {
    /// Creates a simulated model of the given capability, seeded
    /// deterministically.
    pub fn new(capability: Capability, seed: u64) -> Self {
        SimulatedLlm {
            competence: Competence::new(capability),
            rng: StdRng::seed_from_u64(seed),
            episode: HashMap::new(),
            name: match capability {
                Capability::Gpt35Class => "sim-gpt-3.5-class".to_owned(),
                Capability::Gpt4Class => "sim-gpt-4-class".to_owned(),
            },
        }
    }

    /// The capability class this model simulates.
    pub fn capability(&self) -> Capability {
        self.competence.capability
    }

    /// Stable identity for an error instance, so retries within an episode
    /// reuse the latent understanding (a model that misunderstood an error
    /// does not suddenly understand it on attempt 5).
    fn error_key(diag: &Diagnostic) -> String {
        format!("{}:{:?}", diag.category.slug(), diag.data)
    }

    fn guidance_level(guidance: &[GuidanceSnippet], category: ErrorCategory) -> GuidanceLevel {
        let category_match = |g: &GuidanceSnippet| {
            g.category == category
                // Both index classes share the Quartus 10232 tag.
                || (matches!(
                    g.category,
                    ErrorCategory::IndexOutOfRange | ErrorCategory::IndexArithmetic
                ) && matches!(
                    category,
                    ErrorCategory::IndexOutOfRange | ErrorCategory::IndexArithmetic
                ))
        };
        // An exact-tag retrieval hit on the right category is authoritative;
        // a fuzzy hit on the right category is only family-level confidence.
        if guidance.iter().any(|g| g.exact_retrieval && category_match(g)) {
            return GuidanceLevel::Exact;
        }
        if guidance.iter().any(category_match) {
            return GuidanceLevel::Family;
        }
        // Generic syntax guidance (all the iverilog database offers for the
        // syntax subfamily) helps, but far less than category-exact advice.
        if guidance.iter().any(|g| {
            g.category == ErrorCategory::SyntaxError
                && matches!(
                    category,
                    ErrorCategory::CStyleConstruct
                        | ErrorCategory::UnbalancedBlock
                        | ErrorCategory::KeywordAsIdentifier
                )
        }) {
            return GuidanceLevel::Family;
        }
        // The reverse direction of the rule above, unlocked by repair
        // briefs: a C-style-construct brief whose explicit anti-patterns
        // block names the constructs (`++`, `+=`, `bool`) tells the model
        // what a bare `syntax error` log hides.
        if guidance.iter().any(|g| {
            g.category == ErrorCategory::CStyleConstruct
                && !g.anti_patterns.is_empty()
                && category == ErrorCategory::SyntaxError
        }) {
            return GuidanceLevel::Family;
        }
        GuidanceLevel::None
    }

    fn attempt_context(
        &self,
        diag: &Diagnostic,
        feedback: &Feedback,
        guidance: GuidanceLevel,
    ) -> AttemptContext {
        AttemptContext {
            category: diag.category,
            identified: feedback.identified.contains(&diag.category),
            informativeness: feedback.informativeness,
            guidance,
            style: crate::model::PromptStyle::React,
        }
    }

    fn thought_for(diag: &Diagnostic, fixed: bool) -> String {
        if fixed {
            format!(
                "The compiler reports: {}. I will revise the code accordingly and re-run \
                 the compilation.",
                diag.headline()
            )
        } else {
            format!(
                "The error ({}) persists; my revision did not address the root cause.",
                diag.headline()
            )
        }
    }
}

impl LanguageModel for SimulatedLlm {
    fn name(&self) -> &str {
        &self.name
    }

    fn begin_episode(&mut self) {
        self.episode.clear();
    }

    fn propose_repair(&mut self, request: &RepairRequest) -> RepairResponse {
        let mut code = request.code.clone();
        let mut thoughts: Vec<String> = Vec::new();

        for _ in 0..MAX_EDITS_PER_TURN {
            // The model re-reads its current draft (its "comprehension" is
            // modelled by the real frontend).
            let analysis = rtlfixer_verilog::compile(&code);
            let errors: Vec<Diagnostic> =
                analysis.errors().into_iter().cloned().collect();
            if errors.is_empty() {
                break;
            }
            let mut edited = false;
            for diag in &errors {
                let guidance = Self::guidance_level(&request.guidance, diag.category);
                let ctx = self.attempt_context(diag, &request.feedback, guidance);
                let key = Self::error_key(diag);
                let understands = match self.episode.get(&key) {
                    Some(&known) => known,
                    None => {
                        let u = self.competence.understand_probability(&ctx);
                        let drawn = self.rng.gen_bool(u);
                        self.episode.insert(key.clone(), drawn);
                        drawn
                    }
                };
                if !understands {
                    thoughts.push(Self::thought_for(diag, false));
                    continue;
                }
                let r = self.competence.attempt_probability(&ctx);
                if !self.rng.gen_bool(r) {
                    thoughts.push(Self::thought_for(diag, false));
                    continue;
                }
                if let Some(revised) = repair::repair(&code, diag, &analysis) {
                    thoughts.push(Self::thought_for(diag, true));
                    code = revised;
                    edited = true;
                    break; // spans shifted; re-read before the next edit
                }
                thoughts.push(Self::thought_for(diag, false));
            }
            if !edited {
                break;
            }
        }

        if thoughts.is_empty() {
            thoughts.push("The code compiles cleanly; returning it unchanged.".to_owned());
        }
        RepairResponse { code, thought: thoughts.join("\n") }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PromptStyle;

    fn request(code: &str, identified: Vec<ErrorCategory>, informativeness: f64) -> RepairRequest {
        RepairRequest {
            code: code.to_owned(),
            problem: "test".to_owned(),
            feedback: Feedback { log: String::new(), identified, informativeness },
            guidance: Vec::new(),
            style: PromptStyle::React,
            attempt: 0,
        }
    }

    const BROKEN: &str = "module m(input [7:0] in, output reg [7:0] out);\n\
                          always @(posedge clk) out <= in;\nendmodule";

    #[test]
    fn gpt4_fixes_easy_error_quickly() {
        // With near-1 probabilities, almost every episode must succeed (a
        // small residual stays stuck by design: the understanding latent is
        // sticky within an episode).
        let req = request(BROKEN, vec![ErrorCategory::UndeclaredIdentifier], 0.85);
        let mut fixed_episodes = 0;
        let episodes = 10;
        for seed in 0..episodes {
            let mut llm = SimulatedLlm::new(Capability::Gpt4Class, seed);
            llm.begin_episode();
            let mut code = BROKEN.to_owned();
            for attempt in 0..10 {
                let mut r = req.clone();
                r.code = code.clone();
                r.attempt = attempt;
                code = llm.propose_repair(&r).code;
                if rtlfixer_verilog::compile(&code).is_ok() {
                    fixed_episodes += 1;
                    break;
                }
            }
        }
        assert!(fixed_episodes >= 8, "only {fixed_episodes}/{episodes} episodes fixed");
    }

    #[test]
    fn latent_understanding_is_sticky_within_episode() {
        // Seeds where the first draw fails must keep failing for the same
        // error in the same episode.
        for seed in 0..50u64 {
            let mut llm = SimulatedLlm::new(Capability::Gpt35Class, seed);
            llm.begin_episode();
            let req = request(BROKEN, vec![], 0.0); // Simple feedback
            let first = llm.propose_repair(&req);
            let first_fixed = rtlfixer_verilog::compile(&first.code).is_ok();
            if first_fixed {
                continue;
            }
            // Same latent key: the episode map must contain a false entry.
            let stuck = llm.episode.values().any(|&v| !v);
            if stuck {
                // 10 more attempts; if the model never understood, the code
                // must still fail (attempt accuracy never applies).
                let mut code = first.code;
                for _ in 0..10 {
                    let mut r = req.clone();
                    r.code = code.clone();
                    code = llm.propose_repair(&r).code;
                }
                assert!(
                    !rtlfixer_verilog::compile(&code).is_ok(),
                    "seed {seed}: stuck latent must stay stuck"
                );
                return; // found and verified one sticky case
            }
        }
        panic!("no seed produced a not-understood latent — u too high for Simple feedback?");
    }

    #[test]
    fn episode_reset_redraws_latents() {
        let mut llm = SimulatedLlm::new(Capability::Gpt35Class, 3);
        llm.begin_episode();
        let req = request(BROKEN, vec![ErrorCategory::UndeclaredIdentifier], 0.85);
        let _ = llm.propose_repair(&req);
        assert!(!llm.episode.is_empty());
        llm.begin_episode();
        assert!(llm.episode.is_empty());
    }

    #[test]
    fn clean_code_returned_unchanged() {
        let mut llm = SimulatedLlm::new(Capability::Gpt35Class, 5);
        llm.begin_episode();
        let clean = "module m(input a, output y); assign y = a; endmodule";
        let resp = llm.propose_repair(&request(clean, vec![], 0.85));
        assert_eq!(resp.code, clean);
        assert!(resp.thought.contains("compiles cleanly"));
    }

    #[test]
    fn guidance_matching_covers_index_family() {
        let snippets = vec![GuidanceSnippet {
            category: ErrorCategory::IndexOutOfRange,
            text: String::new(),
            demonstration: None,
            exact_retrieval: true,
            anti_patterns: Vec::new(),
        }];
        assert_eq!(
            SimulatedLlm::guidance_level(&snippets, ErrorCategory::IndexArithmetic),
            GuidanceLevel::Exact
        );
        assert_eq!(
            SimulatedLlm::guidance_level(&snippets, ErrorCategory::IndexOutOfRange),
            GuidanceLevel::Exact
        );
        assert_eq!(
            SimulatedLlm::guidance_level(&snippets, ErrorCategory::Redeclaration),
            GuidanceLevel::None
        );
        let syntax = vec![GuidanceSnippet {
            category: ErrorCategory::SyntaxError,
            text: String::new(),
            demonstration: None,
            exact_retrieval: true,
            anti_patterns: Vec::new(),
        }];
        assert_eq!(
            SimulatedLlm::guidance_level(&syntax, ErrorCategory::CStyleConstruct),
            GuidanceLevel::Family
        );
    }

    #[test]
    fn anti_pattern_briefs_cover_bare_syntax_errors() {
        // A C-style brief *with* an anti-patterns block helps a generic
        // syntax diagnostic (the brief names the constructs the log hides);
        // the same guidance without the block does not.
        let brief = |anti_patterns: Vec<String>| {
            vec![GuidanceSnippet {
                category: ErrorCategory::CStyleConstruct,
                text: String::new(),
                demonstration: None,
                exact_retrieval: false,
                anti_patterns,
            }]
        };
        assert_eq!(
            SimulatedLlm::guidance_level(
                &brief(vec!["C-style increments (i++)".to_owned()]),
                ErrorCategory::SyntaxError
            ),
            GuidanceLevel::Family
        );
        assert_eq!(
            SimulatedLlm::guidance_level(&brief(Vec::new()), ErrorCategory::SyntaxError),
            GuidanceLevel::None
        );
    }

    #[test]
    fn multi_error_sample_can_be_fully_fixed_in_one_turn() {
        // Two easy errors; GPT-4 should usually clear both in one response.
        let code = "module m(input a, output y);\nwire t\nassign y = t & clk;\nendmodule";
        let mut fixed_count = 0;
        for seed in 0..20 {
            let mut llm = SimulatedLlm::new(Capability::Gpt4Class, seed);
            llm.begin_episode();
            let resp = llm.propose_repair(&request(
                code,
                vec![ErrorCategory::SyntaxError, ErrorCategory::UndeclaredIdentifier],
                0.85,
            ));
            if rtlfixer_verilog::compile(&resp.code).is_ok() {
                fixed_count += 1;
            }
        }
        assert!(fixed_count >= 15, "only {fixed_count}/20 fixed");
    }
}
