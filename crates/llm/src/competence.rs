//! The stochastic competence model of the simulated LLM.
//!
//! This is the one deliberately *modelled* (rather than rebuilt) component
//! of the reproduction — see DESIGN.md §1. The paper's claims are about how
//! feedback quality, retrieved guidance and iterative interaction change the
//! probability that an error gets fixed; this module encodes that
//! probability surface with two quantities per error instance:
//!
//! * **`u` — understanding**: the probability that the model grasps the
//!   error at all. Drawn **once per error instance per episode** — a model
//!   that is confidently wrong about C-style syntax (§5) stays wrong no
//!   matter how many times it retries. This latent is what creates the
//!   ReAct plateaus in Table 1 (ReAct with 10 iterations converges to `u`).
//! * **`r` — revision accuracy**: the per-attempt probability that an
//!   understood error is repaired correctly. One-shot success ≈ `u·r`;
//!   ReAct success ≈ `u·(1-(1-r)^n)`.
//!
//! Both depend on the error category (Figure 6's index-arithmetic class is
//! nearly unsolvable), on whether the feedback log *identifies* the
//! category (bare `syntax error` lines do not), on the log's
//! informativeness (§4.3.1), and on whether relevant expert guidance was
//! retrieved (§3.3). The constants below were calibrated once against
//! Table 1 and are used unchanged for every other experiment.

use rtlfixer_verilog::diag::ErrorCategory;

use crate::model::PromptStyle;

/// How well the retrieved guidance matches the error being attempted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum GuidanceLevel {
    /// No relevant guidance retrieved.
    None,
    /// Related-family guidance only (e.g. generic syntax guidance covering
    /// a C-style construct — all the iverilog database can offer there).
    Family,
    /// Category-exact guidance.
    Exact,
}

/// Model capability class (§4.3.2's GPT-3.5 vs GPT-4 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Capability {
    /// `gpt-3.5-turbo-16k-0613` analogue.
    Gpt35Class,
    /// GPT-4 analogue: near-saturated one-shot repair.
    Gpt4Class,
}

impl Capability {
    /// Display label used in result tables.
    pub fn label(self) -> &'static str {
        match self {
            Capability::Gpt35Class => "GPT-3.5",
            Capability::Gpt4Class => "GPT-4",
        }
    }
}

/// Everything the competence model conditions on for one error attempt.
#[derive(Debug, Clone, Copy)]
pub struct AttemptContext {
    /// Error category of the diagnostic being attempted.
    pub category: ErrorCategory,
    /// Whether the feedback log identifies this category.
    pub identified: bool,
    /// Feedback informativeness in `[0,1]` (Simple 0, iverilog .55,
    /// Quartus .85).
    pub informativeness: f64,
    /// Strength of the retrieved guidance in the prompt.
    pub guidance: GuidanceLevel,
    /// Prompting style (kept for extensions; iteration count is what
    /// actually separates the styles).
    pub style: PromptStyle,
}

/// The competence model. See the [module docs](self).
#[derive(Debug, Clone, Copy)]
pub struct Competence {
    /// Capability class.
    pub capability: Capability,
}

impl Competence {
    /// Creates the model for a capability class.
    pub fn new(capability: Capability) -> Self {
        Competence { capability }
    }

    /// Base understanding probability per category (GPT-3.5 class, fully
    /// identified feedback, no guidance).
    fn base_understanding(category: ErrorCategory) -> f64 {
        use ErrorCategory::*;
        match category {
            UndeclaredIdentifier => 0.93,
            IndexOutOfRange => 0.86,
            // Figure 6: arithmetic index reasoning is the canonical failure.
            IndexArithmetic => 0.10,
            IllegalProceduralLvalue => 0.94,
            IllegalContinuousLvalue => 0.92,
            AssignToInput => 0.90,
            PortConnectionMismatch => 0.86,
            UnknownModule => 0.78,
            Redeclaration => 0.94,
            SyntaxError => 0.90,
            UnbalancedBlock => 0.93,
            // §5: "confident in incorrect syntax, possibly due to it being
            // accepted in C/C++".
            CStyleConstruct => 0.52,
            MisplacedDirective => 0.97,
            KeywordAsIdentifier => 0.80,
            // Warning-level lints never gate compilation; treat as trivial.
            WidthMismatch | InferredLatch | CaseMissingDefault | UnusedSignal => 0.99,
        }
    }

    /// Fraction of not-understood cases that relevant guidance flips.
    fn guidance_gain(category: ErrorCategory) -> f64 {
        use ErrorCategory::*;
        match category {
            // Guidance helps little when arithmetic reasoning is missing.
            IndexArithmetic => 0.30,
            CStyleConstruct => 0.90,
            _ => 0.95,
        }
    }

    /// Base per-attempt revision accuracy per category.
    fn base_revision(category: ErrorCategory) -> f64 {
        use ErrorCategory::*;
        match category {
            IndexArithmetic => 0.50,
            CStyleConstruct => 0.70,
            PortConnectionMismatch => 0.82,
            UnknownModule => 0.75,
            _ => 0.90,
        }
    }

    /// Probability the model understands this error (drawn once per error
    /// instance per episode).
    pub fn understand_probability(&self, ctx: &AttemptContext) -> f64 {
        let base = Self::base_understanding(ctx.category);
        // How much of the log's information reaches the model. Calibrated
        // against the ReAct rows of Table 1 (ReAct@10 ≈ E[u]): Simple
        // 0.671, iverilog 0.731, Quartus 0.799.
        let info = if ctx.identified {
            0.72 + 0.21 * ctx.informativeness
        } else {
            // The model must self-diagnose from the code alone.
            0.75
        };
        let mut u = (base * info.min(1.0)).min(1.0);
        match ctx.guidance {
            GuidanceLevel::Exact => u += (1.0 - u) * Self::guidance_gain(ctx.category),
            GuidanceLevel::Family => {
                u += (1.0 - u) * Self::guidance_gain(ctx.category) * 0.45;
            }
            GuidanceLevel::None => {}
        }
        if self.capability == Capability::Gpt4Class {
            u += (1.0 - u) * 0.72;
        }
        u.clamp(0.0, 1.0)
    }

    /// Per-attempt probability that an understood error is revised
    /// correctly.
    ///
    /// Calibrated against the One-shot/ReAct *ratios* of Table 1 — the
    /// paper's ratios are ≈0.73 for both compilers without RAG (0.587/0.799
    /// and 0.536/0.731), ≈0.62 for Simple, and ≈0.91 with RAG on Quartus.
    pub fn attempt_probability(&self, ctx: &AttemptContext) -> f64 {
        let base = Self::base_revision(ctx.category);
        let info = if ctx.identified { 0.81 } else { 0.57 };
        let mut r = (base * info).min(1.0);
        // Guidance lifts revision accuracy strongly. Note the calibration
        // oddity inherited from the paper: with RAG the One-shot/ReAct ratio
        // is *higher* for iverilog (0.800/0.820 ≈ 0.98) than for Quartus
        // (0.899/0.985 ≈ 0.91) — i.e. once any guidance lands on a tag-less
        // log, the revision that follows almost always sticks. The Family
        // flip is therefore larger than the Exact flip.
        match ctx.guidance {
            GuidanceLevel::Exact => r += (1.0 - r) * 0.70,
            GuidanceLevel::Family => r += (1.0 - r) * 0.97,
            GuidanceLevel::None => {}
        }
        if self.capability == Capability::Gpt4Class {
            r += (1.0 - r) * 0.959;
        }
        r.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(
        category: ErrorCategory,
        identified: bool,
        informativeness: f64,
        guidance: bool,
    ) -> AttemptContext {
        AttemptContext {
            category,
            identified,
            informativeness,
            guidance: if guidance { GuidanceLevel::Exact } else { GuidanceLevel::None },
            style: PromptStyle::React,
        }
    }

    #[test]
    fn better_feedback_raises_probabilities() {
        let c = Competence::new(Capability::Gpt35Class);
        let simple = ctx(ErrorCategory::UndeclaredIdentifier, false, 0.0, false);
        let iv = ctx(ErrorCategory::UndeclaredIdentifier, true, 0.55, false);
        let qt = ctx(ErrorCategory::UndeclaredIdentifier, true, 0.85, false);
        assert!(c.understand_probability(&simple) < c.understand_probability(&iv));
        assert!(c.understand_probability(&iv) < c.understand_probability(&qt));
        assert!(c.attempt_probability(&simple) < c.attempt_probability(&qt));
    }

    #[test]
    fn guidance_raises_probabilities() {
        let c = Competence::new(Capability::Gpt35Class);
        for cat in ErrorCategory::ALL {
            let without = ctx(cat, true, 0.85, false);
            let with = ctx(cat, true, 0.85, true);
            assert!(
                c.understand_probability(&with) > c.understand_probability(&without),
                "{cat:?}"
            );
        }
    }

    #[test]
    fn index_arithmetic_stays_hard_even_with_guidance() {
        // The Figure 6 plateau: guidance plus the best compiler still leaves
        // this class mostly unsolved.
        let c = Competence::new(Capability::Gpt35Class);
        let best = ctx(ErrorCategory::IndexArithmetic, true, 0.85, true);
        assert!(c.understand_probability(&best) < 0.45, "{}", c.understand_probability(&best));
    }

    #[test]
    fn gpt4_dominates_gpt35() {
        let g35 = Competence::new(Capability::Gpt35Class);
        let g4 = Competence::new(Capability::Gpt4Class);
        for cat in ErrorCategory::ALL {
            let context = ctx(cat, true, 0.85, false);
            assert!(
                g4.understand_probability(&context) >= g35.understand_probability(&context),
                "{cat:?}"
            );
            assert!(
                g4.attempt_probability(&context) >= g35.attempt_probability(&context),
                "{cat:?}"
            );
        }
    }

    #[test]
    fn probabilities_are_valid() {
        for capability in [Capability::Gpt35Class, Capability::Gpt4Class] {
            let c = Competence::new(capability);
            for cat in ErrorCategory::ALL {
                for identified in [false, true] {
                    for guidance in [false, true] {
                        for info in [0.0, 0.55, 0.85] {
                            let context = ctx(cat, identified, info, guidance);
                            let u = c.understand_probability(&context);
                            let r = c.attempt_probability(&context);
                            assert!((0.0..=1.0).contains(&u));
                            assert!((0.0..=1.0).contains(&r));
                        }
                    }
                }
            }
        }
    }
}
