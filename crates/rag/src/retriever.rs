//! Retrievers over the guidance database.
//!
//! §3.3: *"common retrievers such as pattern-matching, fuzzy search, or
//! similarity search with a vector database are suitable. In our
//! experiments, we opted for an exact match to error tags for simplicity."*
//!
//! All three options are implemented:
//!
//! * [`ExactTagRetriever`] — the paper's choice: match on numeric error
//!   tags parsed from the log. Only works when the log carries tags
//!   (Quartus), which is the mechanism behind RAG helping Quartus more than
//!   iverilog in Table 1.
//! * [`JaccardRetriever`] — fuzzy token-set matching, the fallback that
//!   still works on tag-less iverilog logs.
//! * [`TfIdfRetriever`] — cosine similarity over a TF-IDF index, the
//!   "vector database" stand-in.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use rtlfixer_verilog::diag::ErrorCategory;

use crate::database::{GuidanceDatabase, GuidanceEntry};
use crate::text::{jaccard_similarity, TfIdfIndex};

/// A retrieval request: the compiler log (the `RAG[logs]` action input in
/// Figure 2b) plus any structured hints the caller has.
#[derive(Debug, Clone, Default)]
pub struct RetrievalQuery {
    /// The raw compiler log text.
    pub log: String,
    /// Error categories the caller's feedback layer already identified in
    /// the log (empty when the caller has no structured view). The hybrid
    /// retriever uses these as category evidence; tag and lexical
    /// retrievers ignore them.
    pub identified: Vec<ErrorCategory>,
}

impl RetrievalQuery {
    /// Builds a query from a log string.
    pub fn from_log(log: impl Into<String>) -> Self {
        RetrievalQuery { log: log.into(), identified: Vec::new() }
    }

    /// Attaches the caller's identified error categories.
    pub fn with_identified(mut self, identified: Vec<ErrorCategory>) -> Self {
        self.identified = identified;
        self
    }

    /// Numeric error tags found in the log (`Error (10161): …`), in order
    /// of first occurrence.
    ///
    /// A tag is 4–6 digits between parentheses: real Quartus message IDs
    /// are in that band, parenthesised line numbers (`main.sv(2)`) are
    /// shorter, and anything longer is a timestamp or address that must
    /// not alias to a tag.
    pub fn tags(&self) -> Vec<u32> {
        const MIN_TAG_DIGITS: usize = 4;
        const MAX_TAG_DIGITS: usize = 6;
        let mut tags = Vec::new();
        let bytes = self.log.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] != b'(' {
                i += 1;
                continue;
            }
            let mut j = i + 1;
            let mut value: u32 = 0;
            let mut digits = 0;
            while j < bytes.len() && bytes[j].is_ascii_digit() {
                // Past the cap the run is already disqualified; stop
                // accumulating (a 10+-digit run would overflow `u32`) but
                // keep consuming so `j` lands past the whole run.
                if digits < MAX_TAG_DIGITS {
                    value = value * 10 + u32::from(bytes[j] - b'0');
                }
                digits += 1;
                j += 1;
            }
            if (MIN_TAG_DIGITS..=MAX_TAG_DIGITS).contains(&digits)
                && j < bytes.len()
                && bytes[j] == b')'
                && !tags.contains(&value)
            {
                tags.push(value);
            }
            // Resume *at* `j`, never past it: when the digit scan consumed
            // nothing, `bytes[j]` is the byte right after `(` and may itself
            // open a tag (`"((10161):"`); the old `i = j; i += 1` skipped it.
            i = j.max(i + 1);
        }
        tags
    }
}

/// The strongest kind of evidence backing a retrieval hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Evidence {
    /// Numeric error tag in the log matched the entry's tag.
    Exact,
    /// The caller's identified error categories cover the entry's category.
    Category,
    /// Token-level similarity (Jaccard or TF-IDF cosine) only.
    Lexical,
    /// Fingerprint hit in the distilled store (a previously successful
    /// repair of the same error shape).
    Distilled,
}

impl Evidence {
    /// Stable slug for counters and reports.
    pub fn slug(self) -> &'static str {
        match self {
            Evidence::Exact => "exact",
            Evidence::Category => "category",
            Evidence::Lexical => "lexical",
            Evidence::Distilled => "distilled",
        }
    }
}

/// A retrieved entry with its match score.
#[derive(Debug, Clone, PartialEq)]
pub struct Retrieved<'a> {
    /// The matched database entry.
    pub entry: &'a GuidanceEntry,
    /// Retriever-specific score (1.0 for exact tag matches).
    pub score: f64,
    /// Whether this hit came from an exact error-tag match. Fuzzy and
    /// vector hits set `false`; downstream consumers must branch on this
    /// flag, never on a score sentinel (fuzzy scores can legitimately
    /// reach 1.0 on degenerate logs).
    pub exact: bool,
    /// The strongest evidence kind behind the hit (for telemetry).
    pub evidence: Evidence,
}

/// Object-safe retriever interface.
pub trait Retriever: Send + Sync {
    /// Name for reports.
    fn name(&self) -> &str;

    /// Returns matching entries, best first.
    fn retrieve<'a>(
        &self,
        db: &'a GuidanceDatabase,
        query: &RetrievalQuery,
    ) -> Vec<Retrieved<'a>>;
}

/// The paper's retriever: exact match on compiler error tags.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactTagRetriever {
    _private: (),
}

impl ExactTagRetriever {
    /// Creates the retriever.
    pub fn new() -> Self {
        ExactTagRetriever { _private: () }
    }
}

impl Retriever for ExactTagRetriever {
    fn name(&self) -> &str {
        "exact-tag"
    }

    fn retrieve<'a>(
        &self,
        db: &'a GuidanceDatabase,
        query: &RetrievalQuery,
    ) -> Vec<Retrieved<'a>> {
        let tags = query.tags();
        if tags.is_empty() {
            return Vec::new();
        }
        // Order hits by their tag's first occurrence in the log so the
        // prompt leads with the first-reported (usually root-cause)
        // diagnostic, not with whichever entry sits earliest in the
        // database. Stable sort keeps database order within one tag.
        let mut hits: Vec<(usize, &GuidanceEntry)> = db
            .entries
            .iter()
            .filter_map(|e| {
                let tag = e.error_tag?;
                let rank = tags.iter().position(|&t| t == tag)?;
                Some((rank, e))
            })
            .collect();
        hits.sort_by_key(|&(rank, _)| rank);
        hits.into_iter()
            .map(|(_, entry)| Retrieved {
                entry,
                score: 1.0,
                exact: true,
                evidence: Evidence::Exact,
            })
            .collect()
    }
}

/// Fuzzy retriever: Jaccard similarity between the query log and each
/// entry's stored log exemplar.
#[derive(Debug, Clone, Copy)]
pub struct JaccardRetriever {
    /// Minimum similarity to count as a match.
    pub threshold: f64,
    /// Maximum entries returned.
    pub top_k: usize,
}

impl Default for JaccardRetriever {
    fn default() -> Self {
        JaccardRetriever { threshold: 0.12, top_k: 3 }
    }
}

impl JaccardRetriever {
    /// Creates a retriever with the default threshold (0.12) and top-k (3).
    pub fn new() -> Self {
        Self::default()
    }
}

impl Retriever for JaccardRetriever {
    fn name(&self) -> &str {
        "jaccard"
    }

    fn retrieve<'a>(
        &self,
        db: &'a GuidanceDatabase,
        query: &RetrievalQuery,
    ) -> Vec<Retrieved<'a>> {
        let mut scored: Vec<Retrieved<'a>> = db
            .entries
            .iter()
            .map(|entry| Retrieved {
                entry,
                score: jaccard_similarity(&query.log, &entry.log_exemplar),
                exact: false,
                evidence: Evidence::Lexical,
            })
            .filter(|r| r.score >= self.threshold)
            .collect();
        scored.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(self.top_k);
        scored
    }
}

/// Vector-similarity retriever: TF-IDF cosine over entry log exemplars
/// plus guidance text.
#[derive(Debug, Clone)]
pub struct TfIdfRetriever {
    /// Minimum cosine similarity to count as a match.
    pub threshold: f64,
    /// Maximum entries returned.
    pub top_k: usize,
}

impl Default for TfIdfRetriever {
    fn default() -> Self {
        TfIdfRetriever { threshold: 0.08, top_k: 3 }
    }
}

impl TfIdfRetriever {
    /// Creates a retriever with default threshold and top-k.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Builds the TF-IDF corpus for a guidance database (one document per
/// entry: log exemplar plus guidance text).
pub fn tfidf_corpus(db: &GuidanceDatabase) -> Vec<String> {
    db.entries
        .iter()
        .map(|e| format!("{} {}", e.log_exemplar, e.guidance))
        .collect()
}

/// Returns the process-wide shared TF-IDF index for `db`, building it on
/// first use.
///
/// Indexing tokenises every entry and computes document frequencies —
/// far too expensive to redo per retrieval call when a ReAct experiment
/// issues one retrieval per compile failure. The cache is keyed by
/// [`GuidanceDatabase::fingerprint`], so equal-content databases (clones,
/// the shared editions, truncated ablation copies) share one immutable
/// index across threads.
pub fn shared_tfidf_index(db: &GuidanceDatabase) -> Arc<TfIdfIndex> {
    static CACHE: OnceLock<Mutex<HashMap<u64, Arc<TfIdfIndex>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let key = db.fingerprint();
    if let Some(hit) = cache.lock().expect("tfidf cache lock").get(&key) {
        return Arc::clone(hit);
    }
    // Build outside the lock so concurrent first-queries of *different*
    // databases don't serialise; a racing duplicate build of the same
    // database is harmless (last insert wins, both results are identical).
    let index = Arc::new(TfIdfIndex::new(&tfidf_corpus(db)));
    cache
        .lock()
        .expect("tfidf cache lock")
        .entry(key)
        .or_insert(index)
        .clone()
}

impl Retriever for TfIdfRetriever {
    fn name(&self) -> &str {
        "tfidf"
    }

    fn retrieve<'a>(
        &self,
        db: &'a GuidanceDatabase,
        query: &RetrievalQuery,
    ) -> Vec<Retrieved<'a>> {
        let index = shared_tfidf_index(db);
        index
            .top_k(&query.log, self.top_k)
            .into_iter()
            .filter(|(_, score)| *score >= self.threshold)
            .map(|(i, score)| Retrieved {
                entry: &db.entries[i],
                score,
                exact: false,
                evidence: Evidence::Lexical,
            })
            .collect()
    }
}

/// Retrieval 2.0 (DESIGN.md §3k): blends exact-tag ≻ category ≻ lexical
/// evidence into one ranked list with calibrated weights.
///
/// Every entry is scored `w_exact·[tag match] + w_cat·[category match] +
/// w_lex·cosine`; the weights are calibrated so any exact hit (1.0)
/// outranks the best possible non-exact blend (0.45 + 0.35 = 0.8), and a
/// category-confirmed entry outranks a lexical-only one. Exact hits keep
/// the first-reported-tag ordering of [`ExactTagRetriever`] and are never
/// truncated; at most `top_k_fuzzy` non-exact hits are appended. On
/// tag-less logs (iverilog) the category evidence carried by
/// [`RetrievalQuery::identified`] is what the exact path never had — this
/// is the mechanism that closes the Table 1 RAG gap between Quartus and
/// iverilog.
#[derive(Debug, Clone, Copy)]
pub struct HybridRetriever {
    /// Weight of an exact tag match.
    pub exact_weight: f64,
    /// Weight of a category match against the query's identified set.
    pub category_weight: f64,
    /// Weight multiplying the TF-IDF cosine similarity.
    pub lexical_weight: f64,
    /// Minimum cosine for lexical evidence to contribute at all.
    pub lexical_threshold: f64,
    /// Maximum non-exact hits appended after the exact ones.
    pub top_k_fuzzy: usize,
}

impl Default for HybridRetriever {
    fn default() -> Self {
        HybridRetriever {
            exact_weight: 1.0,
            category_weight: 0.45,
            lexical_weight: 0.35,
            lexical_threshold: 0.08,
            top_k_fuzzy: 3,
        }
    }
}

impl HybridRetriever {
    /// Creates the retriever with the calibrated default weights.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Retriever for HybridRetriever {
    fn name(&self) -> &str {
        "hybrid"
    }

    fn retrieve<'a>(
        &self,
        db: &'a GuidanceDatabase,
        query: &RetrievalQuery,
    ) -> Vec<Retrieved<'a>> {
        let tags = query.tags();
        // One ranked pass over the whole database; the shared index makes
        // the lexical leg a lookup, not a rebuild.
        let index = shared_tfidf_index(db);
        let mut cosine = vec![0.0f64; db.entries.len()];
        for (i, score) in index.top_k(&query.log, db.entries.len()) {
            cosine[i] = score;
        }
        struct Candidate<'a> {
            hit: Retrieved<'a>,
            tag_rank: usize,
            db_index: usize,
        }
        let mut candidates: Vec<Candidate<'a>> = Vec::new();
        for (db_index, entry) in db.entries.iter().enumerate() {
            let tag_rank = entry
                .error_tag
                .and_then(|tag| tags.iter().position(|&t| t == tag));
            let exact = tag_rank.is_some();
            let category = query.identified.contains(&entry.category.0);
            let lexical =
                if cosine[db_index] >= self.lexical_threshold { cosine[db_index] } else { 0.0 };
            let score = self.exact_weight * f64::from(u8::from(exact))
                + self.category_weight * f64::from(u8::from(category))
                + self.lexical_weight * lexical;
            if score <= 0.0 {
                continue;
            }
            let evidence = if exact {
                Evidence::Exact
            } else if category {
                Evidence::Category
            } else {
                Evidence::Lexical
            };
            candidates.push(Candidate {
                hit: Retrieved { entry, score, exact, evidence },
                tag_rank: tag_rank.unwrap_or(usize::MAX),
                db_index,
            });
        }
        // Exact hits first in first-reported-tag order (the root-cause
        // contract of `ExactTagRetriever`); non-exact hits by blended score,
        // with the database index as the deterministic tiebreak.
        candidates.sort_by(|a, b| {
            b.hit
                .exact
                .cmp(&a.hit.exact)
                .then(a.tag_rank.cmp(&b.tag_rank))
                .then(b.hit.score.partial_cmp(&a.hit.score).unwrap_or(std::cmp::Ordering::Equal))
                .then(a.db_index.cmp(&b.db_index))
        });
        let exact_count = candidates.iter().filter(|c| c.hit.exact).count();
        candidates.truncate(exact_count + self.top_k_fuzzy);
        candidates.into_iter().map(|c| c.hit).collect()
    }
}

/// Whether a `RTLFIXER_RAG_*` switch is on. Unset and unrecognised
/// spellings keep the default on (a typo must not silently change the
/// engine, mirroring the other `RTLFIXER_*` switches); `0`/`off`/`false`/
/// `no` turn it off.
pub(crate) fn rag_switch_on(name: &str) -> bool {
    match std::env::var(name) {
        Ok(value) => {
            !matches!(value.to_ascii_lowercase().as_str(), "0" | "off" | "false" | "no")
        }
        Err(_) => true,
    }
}

/// Whether the hybrid retriever is the process default
/// (`RTLFIXER_RAG_HYBRID` kill switch; on unless explicitly disabled).
pub fn hybrid_enabled() -> bool {
    rag_switch_on("RTLFIXER_RAG_HYBRID")
}

/// The paper's composite strategy: exact tag match when the log carries
/// tags, Jaccard fuzzy fallback otherwise.
#[derive(Debug, Clone, Default)]
pub struct DefaultRetriever {
    exact: ExactTagRetriever,
    fuzzy: JaccardRetriever,
}

impl DefaultRetriever {
    /// Creates the composite retriever.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Retriever for DefaultRetriever {
    fn name(&self) -> &str {
        "exact-tag+jaccard-fallback"
    }

    fn retrieve<'a>(
        &self,
        db: &'a GuidanceDatabase,
        query: &RetrievalQuery,
    ) -> Vec<Retrieved<'a>> {
        let exact = self.exact.retrieve(db, query);
        if !exact.is_empty() {
            return exact;
        }
        self.fuzzy.retrieve(db, query)
    }
}

/// Convenience: the error categories covered by a retrieval result.
pub fn retrieved_categories(results: &[Retrieved<'_>]) -> Vec<ErrorCategory> {
    let mut cats: Vec<ErrorCategory> = results.iter().map(|r| r.entry.category.0).collect();
    cats.sort_by_key(|c| *c as u8);
    cats.dedup();
    cats
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUARTUS_LOG: &str = "Error (10161): Verilog HDL error at main.sv(2): object \"clk\" \
                               is not declared. Verify the object name is correct.";
    const IVERILOG_LOG: &str =
        "main.v:2: error: Unable to bind wire/reg/memory 'clk' in 'top_module'";

    #[test]
    fn tag_parsing() {
        let q = RetrievalQuery::from_log(QUARTUS_LOG);
        assert_eq!(q.tags(), vec![10161]);
        let q2 = RetrievalQuery::from_log("Error (10232): ... Error (10161): ... Error (10232):");
        assert_eq!(q2.tags(), vec![10232, 10161]);
        // Short parenthesised numbers (line numbers) are not tags.
        let q3 = RetrievalQuery::from_log("error at main.sv(2): something");
        assert!(q3.tags().is_empty());
    }

    #[test]
    fn tag_parsing_reexamines_paren_after_failed_scan() {
        // Regression: the old parser advanced past the byte after a failed
        // digit scan, so a `(` immediately following another `(` was never
        // examined and these logs silently lost their tags.
        let doubled = RetrievalQuery::from_log("((10161): object \"clk\" is not declared");
        assert_eq!(doubled.tags(), vec![10161]);
        let nested = RetrievalQuery::from_log("(see (10161)) for details");
        assert_eq!(nested.tags(), vec![10161]);
        // A non-digit, non-paren byte after `(` must still be stepped over.
        let prose = RetrievalQuery::from_log("(note (10232)) and (also(10161))");
        assert_eq!(prose.tags(), vec![10232, 10161]);
        // A tag run ending right before another tag's opening paren.
        let adjacent = RetrievalQuery::from_log("(123(10161)");
        assert_eq!(adjacent.tags(), vec![10161]);
    }

    #[test]
    fn tag_parsing_caps_digit_runs() {
        // Quartus tags are 4–6 digits; longer runs (timestamps, addresses)
        // must neither alias to a tag nor overflow the accumulator.
        let q = RetrievalQuery::from_log("(12345678901234567890) then (1234567) then (10161)");
        assert_eq!(q.tags(), vec![10161]);
        let six = RetrievalQuery::from_log("(123456): six digits is still a tag");
        assert_eq!(six.tags(), vec![123_456]);
    }

    #[test]
    fn exact_hits_ordered_by_first_tag_occurrence() {
        // The log reports the index error first; database order would lead
        // with the undeclared-identifier entries (they sit earliest in the
        // Quartus database). The prompt must lead with the first-reported
        // diagnostic instead.
        let db = GuidanceDatabase::quartus();
        let log = "Error (10232): index 8 out of range ... Error (10161): object \"x\" \
                   is not declared";
        let results = ExactTagRetriever::new().retrieve(&db, &RetrievalQuery::from_log(log));
        assert!(!results.is_empty());
        let first_undeclared = results
            .iter()
            .position(|r| r.entry.category.0 == ErrorCategory::UndeclaredIdentifier)
            .expect("undeclared entries retrieved");
        let last_index = results
            .iter()
            .rposition(|r| {
                matches!(
                    r.entry.category.0,
                    ErrorCategory::IndexOutOfRange | ErrorCategory::IndexArithmetic
                )
            })
            .expect("index entries retrieved");
        assert!(
            last_index < first_undeclared,
            "index-family hits (first-reported tag) must precede undeclared hits"
        );
    }

    #[test]
    fn hybrid_exact_hits_lead_and_keep_tag_order() {
        let db = GuidanceDatabase::quartus();
        let log = "Error (10232): index 8 out of range ... Error (10161): object \"x\" \
                   is not declared";
        let results = HybridRetriever::new().retrieve(&db, &RetrievalQuery::from_log(log));
        let exact: Vec<_> = results.iter().take_while(|r| r.exact).collect();
        assert!(!exact.is_empty(), "exact hits must lead the ranked list");
        // All exact hits precede all non-exact ones, in first-tag order.
        assert!(results.iter().skip(exact.len()).all(|r| !r.exact));
        assert!(matches!(
            exact[0].entry.category.0,
            ErrorCategory::IndexOutOfRange | ErrorCategory::IndexArithmetic
        ));
        // Exact hits are never truncated by the fuzzy top-k.
        let plain = ExactTagRetriever::new().retrieve(&db, &RetrievalQuery::from_log(log));
        assert_eq!(exact.len(), plain.len());
    }

    #[test]
    fn hybrid_uses_category_evidence_on_tagless_logs() {
        // The iverilog log carries no tags; with the caller's identified
        // categories attached, the hybrid retriever must surface the right
        // category with `Category` evidence (never claiming exactness).
        let db = GuidanceDatabase::iverilog();
        let query = RetrievalQuery::from_log(IVERILOG_LOG)
            .with_identified(vec![ErrorCategory::UndeclaredIdentifier]);
        let results = HybridRetriever::new().retrieve(&db, &query);
        assert!(!results.is_empty());
        assert_eq!(results[0].entry.category.0, ErrorCategory::UndeclaredIdentifier);
        assert!(results.iter().all(|r| !r.exact), "no tags in the log, no exact hits");
        assert!(results
            .iter()
            .any(|r| r.evidence == Evidence::Category || r.evidence == Evidence::Distilled));
        // Without identified categories it degrades to lexical-only and
        // still retrieves (the Jaccard/TF-IDF behaviour).
        let lexical_only =
            HybridRetriever::new().retrieve(&db, &RetrievalQuery::from_log(IVERILOG_LOG));
        assert!(lexical_only.iter().all(|r| r.evidence == Evidence::Lexical));
    }

    #[test]
    fn hybrid_scores_rank_category_above_lexical_only() {
        let db = GuidanceDatabase::iverilog();
        let query = RetrievalQuery::from_log(IVERILOG_LOG)
            .with_identified(vec![ErrorCategory::UndeclaredIdentifier]);
        let results = HybridRetriever::new().retrieve(&db, &query);
        let first_lexical = results.iter().position(|r| r.evidence == Evidence::Lexical);
        let last_category = results.iter().rposition(|r| r.evidence == Evidence::Category);
        if let (Some(lex), Some(cat)) = (first_lexical, last_category) {
            assert!(cat < lex, "category-confirmed hits must outrank lexical-only ones");
        }
        for pair in results.windows(2) {
            assert!(pair[0].score >= pair[1].score, "one ranked list, best first");
        }
    }

    #[test]
    fn exact_tag_hits_on_quartus_log() {
        let db = GuidanceDatabase::quartus();
        let results =
            ExactTagRetriever::new().retrieve(&db, &RetrievalQuery::from_log(QUARTUS_LOG));
        assert!(!results.is_empty());
        assert!(results
            .iter()
            .all(|r| r.entry.category.0 == ErrorCategory::UndeclaredIdentifier));
    }

    #[test]
    fn exact_tag_misses_on_iverilog_log() {
        // The mechanism behind RAG+iverilog < RAG+Quartus in Table 1.
        let db = GuidanceDatabase::iverilog();
        let results =
            ExactTagRetriever::new().retrieve(&db, &RetrievalQuery::from_log(IVERILOG_LOG));
        assert!(results.is_empty());
    }

    #[test]
    fn jaccard_recovers_iverilog_match() {
        let db = GuidanceDatabase::iverilog();
        let results =
            JaccardRetriever::new().retrieve(&db, &RetrievalQuery::from_log(IVERILOG_LOG));
        assert!(!results.is_empty());
        assert_eq!(results[0].entry.category.0, ErrorCategory::UndeclaredIdentifier);
    }

    #[test]
    fn default_retriever_falls_back() {
        let db = GuidanceDatabase::iverilog();
        let retriever = DefaultRetriever::new();
        let results = retriever.retrieve(&db, &RetrievalQuery::from_log(IVERILOG_LOG));
        assert!(!results.is_empty(), "fuzzy fallback should fire");
        let db_q = GuidanceDatabase::quartus();
        let results_q = retriever.retrieve(&db_q, &RetrievalQuery::from_log(QUARTUS_LOG));
        assert!(results_q.iter().all(|r| r.exact), "exact path should win");
        assert!(results.iter().all(|r| !r.exact), "fuzzy hits must not claim exactness");
    }

    #[test]
    fn tfidf_finds_index_entries() {
        let db = GuidanceDatabase::quartus();
        let log = "Error (10232): index 8 cannot fall outside the declared range [7:0] \
                   for vector \"out\"";
        let results = TfIdfRetriever::new().retrieve(&db, &RetrievalQuery::from_log(log));
        assert!(!results.is_empty());
        let cats = retrieved_categories(&results);
        assert!(
            cats.contains(&ErrorCategory::IndexOutOfRange)
                || cats.contains(&ErrorCategory::IndexArithmetic),
            "{cats:?}"
        );
    }

    #[test]
    fn scores_sorted_descending() {
        let db = GuidanceDatabase::quartus();
        let results = JaccardRetriever { threshold: 0.0, top_k: 10 }
            .retrieve(&db, &RetrievalQuery::from_log(QUARTUS_LOG));
        for pair in results.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }

    #[test]
    fn empty_log_retrieves_nothing_exact() {
        let db = GuidanceDatabase::quartus();
        assert!(ExactTagRetriever::new()
            .retrieve(&db, &RetrievalQuery::default())
            .is_empty());
    }

    #[test]
    fn shared_index_is_reused_per_database() {
        let db = GuidanceDatabase::quartus();
        let first = shared_tfidf_index(&db);
        let again = shared_tfidf_index(&db);
        assert!(Arc::ptr_eq(&first, &again), "same database must share one index");
        // An equal-content clone hits the same cache slot.
        let clone = db.clone();
        assert!(Arc::ptr_eq(&first, &shared_tfidf_index(&clone)));
        // A different database gets its own index.
        let other = shared_tfidf_index(&GuidanceDatabase::iverilog());
        assert!(!Arc::ptr_eq(&first, &other));
        assert_eq!(other.len(), 30);
    }

    #[test]
    fn cached_retrieval_matches_cold_index() {
        let db = GuidanceDatabase::quartus();
        let query = RetrievalQuery::from_log(QUARTUS_LOG);
        let retriever = TfIdfRetriever::new();
        let cached: Vec<(String, f64)> = retriever
            .retrieve(&db, &query)
            .into_iter()
            .map(|r| (r.entry.id.clone(), r.score))
            .collect();
        let cold_index = TfIdfIndex::new(&tfidf_corpus(&db));
        let cold: Vec<(String, f64)> = cold_index
            .top_k(&query.log, retriever.top_k)
            .into_iter()
            .filter(|(_, s)| *s >= retriever.threshold)
            .map(|(i, s)| (db.entries[i].id.clone(), s))
            .collect();
        assert_eq!(cached, cold);
    }
}
