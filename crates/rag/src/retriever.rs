//! Retrievers over the guidance database.
//!
//! §3.3: *"common retrievers such as pattern-matching, fuzzy search, or
//! similarity search with a vector database are suitable. In our
//! experiments, we opted for an exact match to error tags for simplicity."*
//!
//! All three options are implemented:
//!
//! * [`ExactTagRetriever`] — the paper's choice: match on numeric error
//!   tags parsed from the log. Only works when the log carries tags
//!   (Quartus), which is the mechanism behind RAG helping Quartus more than
//!   iverilog in Table 1.
//! * [`JaccardRetriever`] — fuzzy token-set matching, the fallback that
//!   still works on tag-less iverilog logs.
//! * [`TfIdfRetriever`] — cosine similarity over a TF-IDF index, the
//!   "vector database" stand-in.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use rtlfixer_verilog::diag::ErrorCategory;

use crate::database::{GuidanceDatabase, GuidanceEntry};
use crate::text::{jaccard_similarity, TfIdfIndex};

/// A retrieval request: the compiler log (the `RAG[logs]` action input in
/// Figure 2b) plus any structured hints the caller has.
#[derive(Debug, Clone, Default)]
pub struct RetrievalQuery {
    /// The raw compiler log text.
    pub log: String,
}

impl RetrievalQuery {
    /// Builds a query from a log string.
    pub fn from_log(log: impl Into<String>) -> Self {
        RetrievalQuery { log: log.into() }
    }

    /// Numeric error tags found in the log (`Error (10161): …`).
    pub fn tags(&self) -> Vec<u32> {
        let mut tags = Vec::new();
        let bytes = self.log.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] == b'(' {
                let mut j = i + 1;
                let mut value: u32 = 0;
                let mut digits = 0;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    value = value.saturating_mul(10) + u32::from(bytes[j] - b'0');
                    digits += 1;
                    j += 1;
                }
                if digits >= 4 && j < bytes.len() && bytes[j] == b')' && !tags.contains(&value) {
                    tags.push(value);
                }
                i = j;
            }
            i += 1;
        }
        tags
    }
}

/// A retrieved entry with its match score.
#[derive(Debug, Clone, PartialEq)]
pub struct Retrieved<'a> {
    /// The matched database entry.
    pub entry: &'a GuidanceEntry,
    /// Retriever-specific score (1.0 for exact tag matches).
    pub score: f64,
    /// Whether this hit came from an exact error-tag match. Fuzzy and
    /// vector hits set `false`; downstream consumers must branch on this
    /// flag, never on a score sentinel (fuzzy scores can legitimately
    /// reach 1.0 on degenerate logs).
    pub exact: bool,
}

/// Object-safe retriever interface.
pub trait Retriever: Send + Sync {
    /// Name for reports.
    fn name(&self) -> &str;

    /// Returns matching entries, best first.
    fn retrieve<'a>(
        &self,
        db: &'a GuidanceDatabase,
        query: &RetrievalQuery,
    ) -> Vec<Retrieved<'a>>;
}

/// The paper's retriever: exact match on compiler error tags.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactTagRetriever {
    _private: (),
}

impl ExactTagRetriever {
    /// Creates the retriever.
    pub fn new() -> Self {
        ExactTagRetriever { _private: () }
    }
}

impl Retriever for ExactTagRetriever {
    fn name(&self) -> &str {
        "exact-tag"
    }

    fn retrieve<'a>(
        &self,
        db: &'a GuidanceDatabase,
        query: &RetrievalQuery,
    ) -> Vec<Retrieved<'a>> {
        let tags = query.tags();
        if tags.is_empty() {
            return Vec::new();
        }
        db.entries
            .iter()
            .filter(|e| e.error_tag.is_some_and(|t| tags.contains(&t)))
            .map(|entry| Retrieved { entry, score: 1.0, exact: true })
            .collect()
    }
}

/// Fuzzy retriever: Jaccard similarity between the query log and each
/// entry's stored log exemplar.
#[derive(Debug, Clone, Copy)]
pub struct JaccardRetriever {
    /// Minimum similarity to count as a match.
    pub threshold: f64,
    /// Maximum entries returned.
    pub top_k: usize,
}

impl Default for JaccardRetriever {
    fn default() -> Self {
        JaccardRetriever { threshold: 0.12, top_k: 3 }
    }
}

impl JaccardRetriever {
    /// Creates a retriever with the default threshold (0.12) and top-k (3).
    pub fn new() -> Self {
        Self::default()
    }
}

impl Retriever for JaccardRetriever {
    fn name(&self) -> &str {
        "jaccard"
    }

    fn retrieve<'a>(
        &self,
        db: &'a GuidanceDatabase,
        query: &RetrievalQuery,
    ) -> Vec<Retrieved<'a>> {
        let mut scored: Vec<Retrieved<'a>> = db
            .entries
            .iter()
            .map(|entry| Retrieved {
                entry,
                score: jaccard_similarity(&query.log, &entry.log_exemplar),
                exact: false,
            })
            .filter(|r| r.score >= self.threshold)
            .collect();
        scored.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(self.top_k);
        scored
    }
}

/// Vector-similarity retriever: TF-IDF cosine over entry log exemplars
/// plus guidance text.
#[derive(Debug, Clone)]
pub struct TfIdfRetriever {
    /// Minimum cosine similarity to count as a match.
    pub threshold: f64,
    /// Maximum entries returned.
    pub top_k: usize,
}

impl Default for TfIdfRetriever {
    fn default() -> Self {
        TfIdfRetriever { threshold: 0.08, top_k: 3 }
    }
}

impl TfIdfRetriever {
    /// Creates a retriever with default threshold and top-k.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Builds the TF-IDF corpus for a guidance database (one document per
/// entry: log exemplar plus guidance text).
pub fn tfidf_corpus(db: &GuidanceDatabase) -> Vec<String> {
    db.entries
        .iter()
        .map(|e| format!("{} {}", e.log_exemplar, e.guidance))
        .collect()
}

/// Returns the process-wide shared TF-IDF index for `db`, building it on
/// first use.
///
/// Indexing tokenises every entry and computes document frequencies —
/// far too expensive to redo per retrieval call when a ReAct experiment
/// issues one retrieval per compile failure. The cache is keyed by
/// [`GuidanceDatabase::fingerprint`], so equal-content databases (clones,
/// the shared editions, truncated ablation copies) share one immutable
/// index across threads.
pub fn shared_tfidf_index(db: &GuidanceDatabase) -> Arc<TfIdfIndex> {
    static CACHE: OnceLock<Mutex<HashMap<u64, Arc<TfIdfIndex>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let key = db.fingerprint();
    if let Some(hit) = cache.lock().expect("tfidf cache lock").get(&key) {
        return Arc::clone(hit);
    }
    // Build outside the lock so concurrent first-queries of *different*
    // databases don't serialise; a racing duplicate build of the same
    // database is harmless (last insert wins, both results are identical).
    let index = Arc::new(TfIdfIndex::new(&tfidf_corpus(db)));
    cache
        .lock()
        .expect("tfidf cache lock")
        .entry(key)
        .or_insert(index)
        .clone()
}

impl Retriever for TfIdfRetriever {
    fn name(&self) -> &str {
        "tfidf"
    }

    fn retrieve<'a>(
        &self,
        db: &'a GuidanceDatabase,
        query: &RetrievalQuery,
    ) -> Vec<Retrieved<'a>> {
        let index = shared_tfidf_index(db);
        index
            .top_k(&query.log, self.top_k)
            .into_iter()
            .filter(|(_, score)| *score >= self.threshold)
            .map(|(i, score)| Retrieved { entry: &db.entries[i], score, exact: false })
            .collect()
    }
}

/// The paper's composite strategy: exact tag match when the log carries
/// tags, Jaccard fuzzy fallback otherwise.
#[derive(Debug, Clone, Default)]
pub struct DefaultRetriever {
    exact: ExactTagRetriever,
    fuzzy: JaccardRetriever,
}

impl DefaultRetriever {
    /// Creates the composite retriever.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Retriever for DefaultRetriever {
    fn name(&self) -> &str {
        "exact-tag+jaccard-fallback"
    }

    fn retrieve<'a>(
        &self,
        db: &'a GuidanceDatabase,
        query: &RetrievalQuery,
    ) -> Vec<Retrieved<'a>> {
        let exact = self.exact.retrieve(db, query);
        if !exact.is_empty() {
            return exact;
        }
        self.fuzzy.retrieve(db, query)
    }
}

/// Convenience: the error categories covered by a retrieval result.
pub fn retrieved_categories(results: &[Retrieved<'_>]) -> Vec<ErrorCategory> {
    let mut cats: Vec<ErrorCategory> = results.iter().map(|r| r.entry.category.0).collect();
    cats.sort_by_key(|c| *c as u8);
    cats.dedup();
    cats
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUARTUS_LOG: &str = "Error (10161): Verilog HDL error at main.sv(2): object \"clk\" \
                               is not declared. Verify the object name is correct.";
    const IVERILOG_LOG: &str =
        "main.v:2: error: Unable to bind wire/reg/memory 'clk' in 'top_module'";

    #[test]
    fn tag_parsing() {
        let q = RetrievalQuery::from_log(QUARTUS_LOG);
        assert_eq!(q.tags(), vec![10161]);
        let q2 = RetrievalQuery::from_log("Error (10232): ... Error (10161): ... Error (10232):");
        assert_eq!(q2.tags(), vec![10232, 10161]);
        // Short parenthesised numbers (line numbers) are not tags.
        let q3 = RetrievalQuery::from_log("error at main.sv(2): something");
        assert!(q3.tags().is_empty());
    }

    #[test]
    fn exact_tag_hits_on_quartus_log() {
        let db = GuidanceDatabase::quartus();
        let results =
            ExactTagRetriever::new().retrieve(&db, &RetrievalQuery::from_log(QUARTUS_LOG));
        assert!(!results.is_empty());
        assert!(results
            .iter()
            .all(|r| r.entry.category.0 == ErrorCategory::UndeclaredIdentifier));
    }

    #[test]
    fn exact_tag_misses_on_iverilog_log() {
        // The mechanism behind RAG+iverilog < RAG+Quartus in Table 1.
        let db = GuidanceDatabase::iverilog();
        let results =
            ExactTagRetriever::new().retrieve(&db, &RetrievalQuery::from_log(IVERILOG_LOG));
        assert!(results.is_empty());
    }

    #[test]
    fn jaccard_recovers_iverilog_match() {
        let db = GuidanceDatabase::iverilog();
        let results =
            JaccardRetriever::new().retrieve(&db, &RetrievalQuery::from_log(IVERILOG_LOG));
        assert!(!results.is_empty());
        assert_eq!(results[0].entry.category.0, ErrorCategory::UndeclaredIdentifier);
    }

    #[test]
    fn default_retriever_falls_back() {
        let db = GuidanceDatabase::iverilog();
        let retriever = DefaultRetriever::new();
        let results = retriever.retrieve(&db, &RetrievalQuery::from_log(IVERILOG_LOG));
        assert!(!results.is_empty(), "fuzzy fallback should fire");
        let db_q = GuidanceDatabase::quartus();
        let results_q = retriever.retrieve(&db_q, &RetrievalQuery::from_log(QUARTUS_LOG));
        assert!(results_q.iter().all(|r| r.exact), "exact path should win");
        assert!(results.iter().all(|r| !r.exact), "fuzzy hits must not claim exactness");
    }

    #[test]
    fn tfidf_finds_index_entries() {
        let db = GuidanceDatabase::quartus();
        let log = "Error (10232): index 8 cannot fall outside the declared range [7:0] \
                   for vector \"out\"";
        let results = TfIdfRetriever::new().retrieve(&db, &RetrievalQuery::from_log(log));
        assert!(!results.is_empty());
        let cats = retrieved_categories(&results);
        assert!(
            cats.contains(&ErrorCategory::IndexOutOfRange)
                || cats.contains(&ErrorCategory::IndexArithmetic),
            "{cats:?}"
        );
    }

    #[test]
    fn scores_sorted_descending() {
        let db = GuidanceDatabase::quartus();
        let results = JaccardRetriever { threshold: 0.0, top_k: 10 }
            .retrieve(&db, &RetrievalQuery::from_log(QUARTUS_LOG));
        for pair in results.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }

    #[test]
    fn empty_log_retrieves_nothing_exact() {
        let db = GuidanceDatabase::quartus();
        assert!(ExactTagRetriever::new()
            .retrieve(&db, &RetrievalQuery::default())
            .is_empty());
    }

    #[test]
    fn shared_index_is_reused_per_database() {
        let db = GuidanceDatabase::quartus();
        let first = shared_tfidf_index(&db);
        let again = shared_tfidf_index(&db);
        assert!(Arc::ptr_eq(&first, &again), "same database must share one index");
        // An equal-content clone hits the same cache slot.
        let clone = db.clone();
        assert!(Arc::ptr_eq(&first, &shared_tfidf_index(&clone)));
        // A different database gets its own index.
        let other = shared_tfidf_index(&GuidanceDatabase::iverilog());
        assert!(!Arc::ptr_eq(&first, &other));
        assert_eq!(other.len(), 30);
    }

    #[test]
    fn cached_retrieval_matches_cold_index() {
        let db = GuidanceDatabase::quartus();
        let query = RetrievalQuery::from_log(QUARTUS_LOG);
        let retriever = TfIdfRetriever::new();
        let cached: Vec<(String, f64)> = retriever
            .retrieve(&db, &query)
            .into_iter()
            .map(|r| (r.entry.id.clone(), r.score))
            .collect();
        let cold_index = TfIdfIndex::new(&tfidf_corpus(&db));
        let cold: Vec<(String, f64)> = cold_index
            .top_k(&query.log, retriever.top_k)
            .into_iter()
            .filter(|(_, s)| *s >= retriever.threshold)
            .map(|(i, s)| (db.entries[i].id.clone(), s))
            .collect();
        assert_eq!(cached, cold);
    }
}
