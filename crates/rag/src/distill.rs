//! The self-extending guidance store (DESIGN.md §3k).
//!
//! Successful episodes distill `(error fingerprint → fix delta → guidance)`
//! entries into a [`DistilledStore`]. The store is read through immutable
//! [`DistilledSnapshot`]s: an episode captures one snapshot when its fixer
//! is built and never observes concurrent merges, so a pool of episodes
//! stays bit-identical at any `--jobs` as long as merges happen only at the
//! pool barrier (which is where the eval runner and the learning-curve
//! experiment put them — in grid index order). The serve daemon shares one
//! process-wide store across requests, which is the cross-request caching
//! headroom PR 8 left open: a diagnostic any tenant fixed once upgrades
//! every later request that hits the same error shape.
//!
//! Two read paths consume the store:
//!
//! * **Exact fingerprint lookup** — the agent fingerprints the current
//!   compiler log ([`log_fingerprint`]) and a hit returns authoritative
//!   (exact-retrieval) guidance, the distilled analogue of a tag match.
//! * **The merged database** — [`DistilledStore::merged_database`] appends
//!   the distilled entries to a base [`GuidanceDatabase`] so the lexical
//!   and category legs of the hybrid retriever see them too. The merged
//!   database has a new content fingerprint, which re-keys
//!   [`crate::retriever::shared_tfidf_index`] — the index cache invalidates
//!   by construction when the distill loop extends the database.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

use rtlfixer_verilog::diag::ErrorCategory;

use crate::database::{category_brief, ErrorCategorySlug, GuidanceDatabase, GuidanceEntry};
use crate::retriever::rag_switch_on;

/// Hard cap on distilled entries: the store is a cache of repair shapes,
/// not an unbounded log. Beyond the cap new shapes are dropped (counted by
/// the caller's telemetry), keeping long-running daemons bounded.
pub const MAX_DISTILLED: usize = 1024;

/// Whether episodes read and feed the distilled store
/// (`RTLFIXER_RAG_DISTILL` kill switch; on unless explicitly disabled —
/// though batch experiments only participate when they wire a store in,
/// so the paper grids reproduce bit-for-bit either way).
pub fn distill_enabled() -> bool {
    rag_switch_on("RTLFIXER_RAG_DISTILL")
}

/// Fingerprint of a compiler log's error *shape*: digit runs collapse to
/// `#` and quoted names to `~`, so the same diagnostic at a different line
/// number or signal name maps to the same distilled entry.
pub fn log_fingerprint(log: &str) -> u128 {
    let mut normalized = String::with_capacity(log.len());
    let mut chars = log.chars().peekable();
    while let Some(c) = chars.next() {
        if c.is_ascii_digit() {
            while chars.peek().is_some_and(char::is_ascii_digit) {
                chars.next();
            }
            normalized.push('#');
        } else if c == '"' || c == '\'' {
            let quote = c;
            while let Some(&next) = chars.peek() {
                chars.next();
                if next == quote {
                    break;
                }
            }
            normalized.push('~');
        } else {
            normalized.push(c);
        }
    }
    rtlfixer_cache::fingerprint128(normalized.as_bytes())
}

/// One distilled repair brief: the error shape it covers, the exemplar log
/// it was distilled from, and the fix-delta guidance a successful episode
/// wrote back.
#[derive(Debug, Clone, PartialEq)]
pub struct DistilledEntry {
    /// [`log_fingerprint`] of the originating compiler log.
    pub fingerprint: u128,
    /// Error category of the first-reported diagnostic the episode fixed.
    pub category: ErrorCategorySlug,
    /// The originating log (truncated), kept as the lexical exemplar.
    pub log_exemplar: String,
    /// The distilled fix-delta guidance.
    pub guidance: String,
}

impl DistilledEntry {
    /// Distills a successful episode: the initial failing log, the
    /// first-reported category, and the observed fix effort become a
    /// repair brief for the next episode that hits the same error shape.
    pub fn from_episode(
        initial_log: &str,
        category: ErrorCategory,
        revisions: usize,
        lines_changed: usize,
    ) -> DistilledEntry {
        const MAX_EXEMPLAR: usize = 240;
        let mut log_exemplar = initial_log.to_owned();
        if log_exemplar.len() > MAX_EXEMPLAR {
            let cut = (0..=MAX_EXEMPLAR)
                .rev()
                .find(|&i| log_exemplar.is_char_boundary(i))
                .unwrap_or(0);
            log_exemplar.truncate(cut);
        }
        let guidance = format!(
            "A previous repair cleared this exact error shape ({}) in {} revision(s), \
             changing {} line(s). Apply the category's standard repair directly: {}",
            category.slug(),
            revisions,
            lines_changed,
            category_brief(category).0,
        );
        DistilledEntry {
            fingerprint: log_fingerprint(initial_log),
            category: ErrorCategorySlug(category),
            log_exemplar,
            guidance,
        }
    }

    /// Materialises the entry as a database row (for the merged database).
    fn as_guidance_entry(&self) -> GuidanceEntry {
        let (grammar_hint, anti_patterns) = category_brief(self.category.0);
        GuidanceEntry {
            id: format!("distilled-{:032x}", self.fingerprint),
            category: self.category,
            error_tag: None,
            log_exemplar: self.log_exemplar.clone(),
            guidance: self.guidance.clone(),
            demonstration: None,
            grammar_hint: grammar_hint.to_owned(),
            anti_patterns: anti_patterns.iter().map(|s| (*s).to_owned()).collect(),
        }
    }
}

/// An immutable view of the store at one generation. Episodes hold a
/// snapshot for their whole lifetime; merges build new snapshots.
#[derive(Debug, Default)]
pub struct DistilledSnapshot {
    entries: BTreeMap<u128, DistilledEntry>,
    generation: u64,
}

impl DistilledSnapshot {
    /// Looks up the distilled entry for a compiler log, if one exists.
    pub fn lookup(&self, log: &str) -> Option<&DistilledEntry> {
        self.entries.get(&log_fingerprint(log))
    }

    /// Number of distilled entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Monotone generation counter (bumps once per inserting merge).
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

/// The sharable, growable store. All mutation goes through [`merge`]
/// (copy-on-write: readers keep their snapshot); reads go through
/// [`snapshot`].
///
/// [`merge`]: DistilledStore::merge
/// [`snapshot`]: DistilledStore::snapshot
#[derive(Debug, Default)]
pub struct DistilledStore {
    current: Mutex<Arc<DistilledSnapshot>>,
    /// Merged-database cache, keyed by (base fingerprint, generation).
    /// Only the current generation is retained.
    merged: Mutex<HashMap<(u64, u64), Arc<GuidanceDatabase>>>,
}

impl DistilledStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current immutable snapshot.
    pub fn snapshot(&self) -> Arc<DistilledSnapshot> {
        Arc::clone(&self.current.lock().expect("distill store lock"))
    }

    /// Number of distilled entries in the current snapshot.
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// Whether the current snapshot holds no entries.
    pub fn is_empty(&self) -> bool {
        self.snapshot().is_empty()
    }

    /// Merges distilled entries, first-wins per fingerprint, capped at
    /// [`MAX_DISTILLED`]. Returns how many entries were actually inserted;
    /// the generation bumps only when that is non-zero, so repeat merges
    /// of known shapes are free (no snapshot churn, no index rebuilds).
    ///
    /// Determinism contract: with a fixed call order (the eval runner
    /// merges at the pool barrier in grid index order) the resulting
    /// snapshot is a pure function of the episode results, independent of
    /// `--jobs`.
    pub fn merge(&self, entries: &[DistilledEntry]) -> usize {
        if entries.is_empty() {
            return 0;
        }
        let mut current = self.current.lock().expect("distill store lock");
        let novel: Vec<&DistilledEntry> = entries
            .iter()
            .filter(|e| !current.entries.contains_key(&e.fingerprint))
            .collect();
        if novel.is_empty() {
            return 0;
        }
        let mut next = DistilledSnapshot {
            entries: current.entries.clone(),
            generation: current.generation + 1,
        };
        let mut inserted = 0;
        for entry in novel {
            if next.entries.len() >= MAX_DISTILLED {
                break;
            }
            if next.entries.insert(entry.fingerprint, entry.clone()).is_none() {
                inserted += 1;
            }
        }
        if inserted == 0 {
            return 0;
        }
        *current = Arc::new(next);
        inserted
    }

    /// The base database extended with the current distilled entries (in
    /// fingerprint order), cached per (base, generation) so thousands of
    /// episodes share one materialisation. An empty store aliases the base
    /// `Arc` — zero cost until the first successful distillation.
    pub fn merged_database(&self, base: &Arc<GuidanceDatabase>) -> Arc<GuidanceDatabase> {
        let snapshot = self.snapshot();
        if snapshot.is_empty() {
            return Arc::clone(base);
        }
        let key = (base.fingerprint(), snapshot.generation());
        let mut cache = self.merged.lock().expect("distill merge cache lock");
        if let Some(hit) = cache.get(&key) {
            return Arc::clone(hit);
        }
        let mut db = GuidanceDatabase {
            edition: base.edition,
            entries: base.entries.clone(),
        };
        db.entries.extend(snapshot.entries.values().map(DistilledEntry::as_guidance_entry));
        // Older generations are dead: every new episode snapshots the
        // current one, so retaining only it bounds the cache.
        cache.retain(|&(_, generation), _| generation == snapshot.generation());
        Arc::clone(cache.entry(key).or_insert_with(|| Arc::new(db)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(tag: u8) -> DistilledEntry {
        DistilledEntry::from_episode(
            &format!("error: object 'sig_{tag}' is not declared at line {tag}"),
            ErrorCategory::UndeclaredIdentifier,
            2,
            1,
        )
    }

    #[test]
    fn fingerprint_normalises_numbers_and_names() {
        let a = log_fingerprint("main.sv(2): object \"clk\" is not declared");
        let b = log_fingerprint("main.sv(17): object \"reset_n\" is not declared");
        assert_eq!(a, b, "line numbers and quoted names must not split shapes");
        let c = log_fingerprint("main.sv(2): index 8 out of range");
        assert_ne!(a, c, "different messages are different shapes");
    }

    #[test]
    fn merge_is_first_wins_and_generation_bumps_only_on_insert() {
        // Quoted names normalise to the same shape: entry(1) and entry(2)
        // share a fingerprint, so only one of them lands.
        let store = DistilledStore::new();
        assert_eq!(store.merge(&[entry(1), entry(2)]), 1);
        let a = DistilledEntry::from_episode("alpha error", ErrorCategory::SyntaxError, 1, 1);
        let b = DistilledEntry::from_episode("beta error", ErrorCategory::SyntaxError, 1, 1);
        let store = DistilledStore::new();
        assert_eq!(store.snapshot().generation(), 0);
        assert_eq!(store.merge(&[a.clone(), b.clone()]), 2);
        assert_eq!(store.snapshot().generation(), 1);
        // Re-merging known shapes is a no-op: no generation churn.
        assert_eq!(store.merge(std::slice::from_ref(&a)), 0);
        assert_eq!(store.snapshot().generation(), 1);
        // First-wins: a different payload under the same fingerprint loses.
        let mut rewrite = a.clone();
        rewrite.guidance = "different".into();
        store.merge(&[rewrite]);
        assert_eq!(store.snapshot().lookup("alpha error").unwrap().guidance, a.guidance);
    }

    #[test]
    fn snapshots_are_immutable_views() {
        let store = DistilledStore::new();
        let before = store.snapshot();
        store.merge(&[DistilledEntry::from_episode("gamma", ErrorCategory::SyntaxError, 1, 1)]);
        assert!(before.is_empty(), "pre-merge snapshot must not change");
        assert_eq!(store.snapshot().len(), 1);
    }

    #[test]
    fn merged_database_extends_and_rekeys() {
        let base = GuidanceDatabase::iverilog_shared();
        let store = DistilledStore::new();
        // Empty store: alias, not copy.
        assert!(Arc::ptr_eq(&store.merged_database(&base), &base));
        store.merge(&[DistilledEntry::from_episode("delta", ErrorCategory::SyntaxError, 1, 1)]);
        let merged = store.merged_database(&base);
        assert_eq!(merged.entries.len(), base.entries.len() + 1);
        assert_ne!(merged.fingerprint(), base.fingerprint(), "extension must re-key caches");
        // Same generation: one shared materialisation.
        assert!(Arc::ptr_eq(&merged, &store.merged_database(&base)));
    }

    #[test]
    fn cap_bounds_the_store() {
        let store = DistilledStore::new();
        let entries: Vec<DistilledEntry> = (0..MAX_DISTILLED + 10)
            .map(|i| {
                // Letters, not digits: digits normalise away.
                let shape: String =
                    format!("{i:04}").chars().map(|c| (b'a' + (c as u8 - b'0')) as char).collect();
                DistilledEntry::from_episode(&shape, ErrorCategory::SyntaxError, 1, 1)
            })
            .collect();
        store.merge(&entries);
        assert_eq!(store.len(), MAX_DISTILLED);
    }
}
