//! # rtlfixer-rag
//!
//! The Retrieval-Augmented Generation subsystem of the RTLFixer
//! reproduction: a curated database of error-category → human-expert
//! guidance ([`database::GuidanceDatabase`]) and the retrievers that match
//! compiler logs against it ([`retriever`]).
//!
//! Database shapes follow §3.3 of the paper exactly: 7 categories / 30
//! entries for iverilog, 11 categories / 45 entries for Quartus. The default
//! retrieval strategy is the paper's: exact match on compiler error tags,
//! with a Jaccard fuzzy fallback for tag-less logs.
//!
//! ## Example
//!
//! ```
//! use rtlfixer_rag::{GuidanceDatabase, RetrievalQuery, Retriever, DefaultRetriever};
//!
//! let db = GuidanceDatabase::quartus();
//! let query = RetrievalQuery::from_log(
//!     "Error (10161): object \"clk\" is not declared.",
//! );
//! let hits = DefaultRetriever::new().retrieve(&db, &query);
//! assert!(hits[0].entry.guidance.contains("clk"));
//! ```

#![warn(missing_docs)]

pub mod database;
pub mod retriever;
pub mod text;

pub use database::{DatabaseEdition, GuidanceDatabase, GuidanceEntry};
pub use retriever::{
    shared_tfidf_index, tfidf_corpus, DefaultRetriever, ExactTagRetriever, JaccardRetriever,
    Retrieved, RetrievalQuery, Retriever, TfIdfRetriever,
};
