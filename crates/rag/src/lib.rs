//! # rtlfixer-rag
//!
//! The Retrieval-Augmented Generation subsystem of the RTLFixer
//! reproduction: a curated database of error-category → human-expert
//! guidance ([`database::GuidanceDatabase`]) and the retrievers that match
//! compiler logs against it ([`retriever`]).
//!
//! Database shapes follow §3.3 of the paper exactly: 7 categories / 30
//! entries for iverilog, 11 categories / 45 entries for Quartus. The
//! paper's retrieval strategy — exact match on compiler error tags with a
//! Jaccard fuzzy fallback for tag-less logs — is [`DefaultRetriever`];
//! the process default is the Retrieval 2.0 [`HybridRetriever`]
//! (exact-tag ≻ category ≻ lexical evidence blended into one ranked
//! list; `RTLFIXER_RAG_HYBRID=0` restores the paper's strategy).
//! Successful episodes feed the self-extending [`distill::DistilledStore`]
//! (`RTLFIXER_RAG_DISTILL` kill switch).
//!
//! ## Example
//!
//! ```
//! use rtlfixer_rag::{GuidanceDatabase, RetrievalQuery, Retriever, DefaultRetriever};
//!
//! let db = GuidanceDatabase::quartus();
//! let query = RetrievalQuery::from_log(
//!     "Error (10161): object \"clk\" is not declared.",
//! );
//! let hits = DefaultRetriever::new().retrieve(&db, &query);
//! assert!(hits[0].entry.guidance.contains("clk"));
//! ```

#![warn(missing_docs)]

pub mod database;
pub mod distill;
pub mod retriever;
pub mod text;

pub use database::{category_brief, DatabaseEdition, GuidanceDatabase, GuidanceEntry};
pub use distill::{
    distill_enabled, log_fingerprint, DistilledEntry, DistilledSnapshot, DistilledStore,
};
pub use retriever::{
    hybrid_enabled, shared_tfidf_index, tfidf_corpus, DefaultRetriever, Evidence,
    ExactTagRetriever, HybridRetriever, JaccardRetriever, Retrieved, RetrievalQuery, Retriever,
    TfIdfRetriever,
};
