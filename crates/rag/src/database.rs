//! The curated human-expert guidance database.
//!
//! §3.3 of the paper: errors are grouped by compiler error tags; for each
//! group human experts wrote explanations and demonstrations, which are
//! stored alongside the compiler logs. The paper's databases hold **7
//! common error categories with 30 entries for iverilog** and **11
//! categories with 45 entries for Quartus** — those exact shapes are
//! reproduced here (and asserted by tests).
//!
//! The two entries of the paper's Figure 3 (undeclared `clk`, index out of
//! range) appear verbatim-adjacent in [`GuidanceDatabase::quartus`].

use std::sync::{Arc, OnceLock};

use serde::{Deserialize, Serialize};

use rtlfixer_verilog::diag::ErrorCategory;

/// Which compiler's log style a database was curated against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatabaseEdition {
    /// Curated against iverilog logs (no numeric tags).
    Iverilog,
    /// Curated against Quartus logs (numeric tags present).
    Quartus,
}

/// One database entry: a stored compiler log exemplar, the error category it
/// was grouped under, and the human expert guidance (plus an optional code
/// demonstration).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GuidanceEntry {
    /// Stable id, unique within an edition.
    pub id: String,
    /// Error group.
    pub category: ErrorCategorySlug,
    /// Numeric compiler tag, when the edition's logs carry one.
    pub error_tag: Option<u32>,
    /// A representative compiler log fragment this entry was curated from.
    pub log_exemplar: String,
    /// The human expert guidance text.
    pub guidance: String,
    /// Optional before/after demonstration.
    pub demonstration: Option<String>,
    /// One-line grammar reminder for the error group (the "Grammar hints"
    /// section of the rendered repair brief).
    pub grammar_hint: String,
    /// Constructs to avoid while repairing this error group (the "Avoid"
    /// section of the rendered brief; §5 notes LLMs are often confident in
    /// exactly these).
    pub anti_patterns: Vec<String>,
}

impl GuidanceEntry {
    /// Renders the entry as a full repair brief — the prompt block the
    /// agent splices into the model's context. Sections follow the
    /// auto-repair task template (diagnostics, grammar hints, repair
    /// strategy, an explicit anti-patterns block, and the demonstration
    /// when one exists).
    pub fn render_brief(&self) -> String {
        let mut brief = String::with_capacity(256);
        brief.push_str("## Diagnostics\n");
        brief.push_str(&self.log_exemplar);
        brief.push_str("\n## Grammar hints\n");
        brief.push_str(&self.grammar_hint);
        brief.push_str("\n## Repair strategy\n");
        brief.push_str(&self.guidance);
        if !self.anti_patterns.is_empty() {
            brief.push_str("\n## Avoid\n");
            for pattern in &self.anti_patterns {
                brief.push_str("- ");
                brief.push_str(pattern);
                brief.push('\n');
            }
        }
        if let Some(demo) = &self.demonstration {
            brief.push_str("## Demonstration\n");
            brief.push_str(demo);
            brief.push('\n');
        }
        brief
    }
}

/// The per-category grammar hint and anti-pattern block shared by every
/// entry of that group (and by entries the distill loop synthesises).
pub fn category_brief(category: ErrorCategory) -> (&'static str, &'static [&'static str]) {
    use ErrorCategory::*;
    match category {
        UndeclaredIdentifier => (
            "Every identifier must be declared (port, wire, reg, genvar or integer) before use.",
            &[
                "Inventing new ports that the module header does not declare.",
                "Renaming existing ports instead of fixing the use site.",
            ],
        ),
        IndexOutOfRange => (
            "A vector declared [N-1:0] has valid indices 0 through N-1.",
            &[
                "Using the declared width N as an index (one past the end).",
                "Widening the vector declaration to absorb a wrong index.",
            ],
        ),
        IndexArithmetic => (
            "Index expressions must stay in range at the smallest and largest loop values.",
            &[
                "Testing the index expression only at a mid-range loop value.",
                "Removing the arithmetic instead of guarding or wrapping it.",
            ],
        ),
        IllegalProceduralLvalue => (
            "Anything assigned under always/initial must be a variable (reg), not a net.",
            &[
                "Keeping the wire declaration and wrapping the assign in an always block.",
                "Duplicating the driver as both assign and always.",
            ],
        ),
        IllegalContinuousLvalue => (
            "A continuous assign drives nets (wire), never variables (reg).",
            &[
                "Adding a second procedural driver instead of changing the declaration.",
            ],
        ),
        AssignToInput => (
            "Input ports are read-only inside the module.",
            &[
                "Re-declaring an input as output to silence the error.",
                "Assigning to the input from an always block instead.",
            ],
        ),
        PortConnectionMismatch => (
            "Named connections must use the instantiated module's exact port names and arity.",
            &[
                "Adding ports to the instantiated module to match a wrong connection list.",
                "Switching to positional connections to bypass a name mismatch.",
            ],
        ),
        UnknownModule => (
            "Every instantiated module must be defined (or its definition included) in the source.",
            &[
                "Stubbing the missing module with an empty definition that drops its outputs.",
            ],
        ),
        Redeclaration => (
            "A name may be declared once per scope; ports are already declarations.",
            &[
                "Renaming one of the duplicates when a single declaration is what's intended.",
            ],
        ),
        SyntaxError => (
            "Statements end with ';'; blocks pair begin/end; modules end with endmodule.",
            &[
                "Deleting the offending line instead of completing its syntax.",
                "Rewriting unrelated lines the parser never complained about.",
            ],
        ),
        UnbalancedBlock => (
            "Every begin needs its end; every module/case needs endmodule/endcase.",
            &[
                "Closing the imbalance at the end of file instead of at the owning block.",
            ],
        ),
        CStyleConstruct => (
            "Verilog has no ++, --, += or bool; use i = i + 1 and reg/wire types.",
            &[
                "C-style increments and compound assignments (i++, x += y).",
                "C types (bool, int main-style declarations) in module scope.",
            ],
        ),
        MisplacedDirective => (
            "Compiler directives like `timescale belong outside the module body.",
            &[
                "Commenting the directive out instead of moving it above the module.",
            ],
        ),
        // Warning-level lints (width mismatch, inferred latch, missing
        // default, unused signal): no curated entries exist for these, but
        // the distill loop may synthesise briefs for any category.
        _ => (
            "Re-read the reported line against the declared widths and drivers.",
            &["Suppressing the warning instead of addressing its cause."],
        ),
    }
}

/// Serializable wrapper around [`ErrorCategory`] (stored as its slug).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ErrorCategorySlug(pub ErrorCategory);

impl Serialize for ErrorCategorySlug {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self.0.slug())
    }
}

impl<'de> Deserialize<'de> for ErrorCategorySlug {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let slug = String::deserialize(d)?;
        ErrorCategory::from_slug(&slug)
            .map(ErrorCategorySlug)
            .ok_or_else(|| serde::de::Error::custom(format!("unknown category slug '{slug}'")))
    }
}

/// The guidance database for one compiler edition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GuidanceDatabase {
    /// Which compiler this database was curated against.
    pub edition: DatabaseEdition,
    /// All entries.
    pub entries: Vec<GuidanceEntry>,
}

fn entry(
    id: &str,
    category: ErrorCategory,
    tag: Option<u32>,
    log: &str,
    guidance: &str,
    demo: Option<&str>,
) -> GuidanceEntry {
    let (grammar_hint, anti_patterns) = category_brief(category);
    GuidanceEntry {
        id: id.to_owned(),
        category: ErrorCategorySlug(category),
        error_tag: tag,
        log_exemplar: log.to_owned(),
        guidance: guidance.to_owned(),
        demonstration: demo.map(str::to_owned),
        grammar_hint: grammar_hint.to_owned(),
        anti_patterns: anti_patterns.iter().map(|s| (*s).to_owned()).collect(),
    }
}

impl GuidanceDatabase {
    /// A content fingerprint (FNV-1a over edition and entry texts), used to
    /// key per-database caches such as the shared TF-IDF index.
    ///
    /// Two databases with equal contents always fingerprint equally; a
    /// collision between *different* databases would only make a retrieval
    /// cache serve a wrong (but well-formed) index, and is astronomically
    /// unlikely at the handful of databases a process ever builds.
    pub fn fingerprint(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            hash ^= 0xff;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        };
        eat(match self.edition {
            DatabaseEdition::Iverilog => b"iverilog",
            DatabaseEdition::Quartus => b"quartus",
        });
        for entry in &self.entries {
            eat(entry.id.as_bytes());
            eat(entry.category.0.slug().as_bytes());
            eat(&entry.error_tag.unwrap_or(0).to_le_bytes());
            eat(entry.log_exemplar.as_bytes());
            eat(entry.guidance.as_bytes());
            eat(entry.demonstration.as_deref().unwrap_or("").as_bytes());
            eat(entry.grammar_hint.as_bytes());
            for pattern in &entry.anti_patterns {
                eat(pattern.as_bytes());
            }
        }
        hash
    }

    /// The process-wide shared Quartus database.
    ///
    /// Experiments run thousands of episodes, each of which needs the
    /// database read-only; sharing one `Arc` builds it once instead of
    /// allocating 45 entries per episode.
    pub fn quartus_shared() -> Arc<GuidanceDatabase> {
        static SHARED: OnceLock<Arc<GuidanceDatabase>> = OnceLock::new();
        Arc::clone(SHARED.get_or_init(|| Arc::new(GuidanceDatabase::quartus())))
    }

    /// The process-wide shared iverilog database (see [`Self::quartus_shared`]).
    pub fn iverilog_shared() -> Arc<GuidanceDatabase> {
        static SHARED: OnceLock<Arc<GuidanceDatabase>> = OnceLock::new();
        Arc::clone(SHARED.get_or_init(|| Arc::new(GuidanceDatabase::iverilog())))
    }

    /// Entries whose category is `category`.
    pub fn entries_for(&self, category: ErrorCategory) -> Vec<&GuidanceEntry> {
        self.entries.iter().filter(|e| e.category.0 == category).collect()
    }

    /// Distinct categories covered.
    pub fn categories(&self) -> Vec<ErrorCategory> {
        let mut cats: Vec<ErrorCategory> = self.entries.iter().map(|e| e.category.0).collect();
        cats.sort_by_key(|c| *c as u8);
        cats.dedup();
        cats
    }

    /// Serialises to pretty JSON (for inspection / the open-sourced
    /// artifact).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("database serialises")
    }

    /// Deserialises from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error on malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// The Quartus-curated database: 11 categories, 45 entries.
    pub fn quartus() -> Self {
        use ErrorCategory::*;
        let q = |c: ErrorCategory| Some(c.quartus_code());
        let entries = vec![
            // ---- undeclared identifier (5) — Figure 3, first example ----
            entry("q-undeclared-clk", UndeclaredIdentifier, q(UndeclaredIdentifier),
                "Object 'clk' is not declared. Verify the object name is correct. If the name is correct, declare the object.",
                "Check if 'clk' is an input. If not, and if 'clk' is used within the module, make sure the name is correct. If it's meant to trigger an 'always' block, replace 'posedge clk' with '*'.",
                Some("// before\nalways @(posedge clk) out <= in;\n// after (no clk port exists)\nalways @(*) out = in;")),
            entry("q-undeclared-generic", UndeclaredIdentifier, q(UndeclaredIdentifier),
                "object \"<name>\" is not declared",
                "Declare the missing signal as a wire or reg with the width implied by its use, immediately after the module header. If the name is a typo for an existing port, rename the use instead.",
                Some("// add after the header\nwire [7:0] missing_sig;")),
            entry("q-undeclared-genvar", UndeclaredIdentifier, q(UndeclaredIdentifier),
                "object \"i\" is not declared (generate loop)",
                "Generate-for loop variables must be declared with 'genvar i;' before the loop. Procedural for loops need 'integer i;' or an inline 'int i' declaration.",
                Some("genvar i;\nfor (i = 0; i < N; i = i + 1) begin : g ... end")),
            entry("q-undeclared-reset", UndeclaredIdentifier, q(UndeclaredIdentifier),
                "object \"reset\" is not declared",
                "If the problem statement mentions a reset, the port list probably names it differently (rst, rst_n, areset). Use the exact port name from the module header; do not invent new ports.",
                None),
            entry("q-undeclared-intermediate", UndeclaredIdentifier, q(UndeclaredIdentifier),
                "object used before any declaration in module body",
                "Intermediate values used across expressions must be declared first. Add 'wire' declarations for combinational intermediates, 'reg' for values assigned in always blocks.",
                None),
            // ---- index out of range (5) — Figure 3, second example ----
            entry("q-index-range", IndexOutOfRange, q(IndexOutOfRange),
                "Index cannot fall outside the declared range for vector",
                "Carefully examine the index values to prevent encountering 'index out of bound' errors in your code. When utilizing parameters for indexing, try to use binary strings for performing the indexing operation instead.",
                None),
            entry("q-index-msb", IndexOutOfRange, q(IndexOutOfRange),
                "index N cannot fall outside the declared range [N-1:0]",
                "A vector declared [N-1:0] has valid indices 0 through N-1; index N is one past the end. Off-by-one on the MSB is the most common cause — use N-1.",
                Some("// before\nassign y = v[8]; // v is [7:0]\n// after\nassign y = v[7];")),
            entry("q-index-reversal", IndexOutOfRange, q(IndexOutOfRange),
                "index out of range while reversing bit order",
                "When reversing an N-bit vector, the highest index used must be N-1 (e.g. out[i] = in[N-1-i]). Check the constant against the declared width.",
                Some("assign out[i] = in[7 - i]; // for [7:0]")),
            entry("q-index-partselect", IndexOutOfRange, q(IndexOutOfRange),
                "part-select bounds outside the declared range",
                "For a part select a[hi:lo], both hi and lo must lie within the declared range, and hi must be on the MSB side. For sliding windows prefer indexed selects a[base +: WIDTH].",
                Some("assign y = a[idx*8 +: 8];")),
            entry("q-index-concat", IndexOutOfRange, q(IndexOutOfRange),
                "index out of range inside a concatenation l-value",
                "Each bit referenced inside {..} must be in range. Count the elements: an 8-bit target needs exactly indices 0..7.",
                None),
            // ---- index arithmetic (4) — the hard Figure 6 class ----
            entry("q-idxarith-negative", IndexArithmetic, q(IndexArithmetic),
                "index -17 cannot fall outside the declared range [255:0]",
                "The index expression can go negative for small loop values (e.g. (i-1)*16 + (j-1) at i=j=0). Guard the boundary cases explicitly, or add the modulus before multiplying: ((i+15)%16)*16 + ((j+15)%16).",
                Some("wire [3:0] im1 = (i + 15) % 16;\nwire [3:0] jm1 = (j + 15) % 16;\nassign n = q[im1*16 + jm1];")),
            entry("q-idxarith-wrap", IndexArithmetic, q(IndexArithmetic),
                "computed index exceeds the declared range at loop extremes",
                "Evaluate the index expression at the smallest and largest loop values before writing it. Wrap with % WIDTH for toroidal neighbourhoods; clamp otherwise.",
                None),
            entry("q-idxarith-scale", IndexArithmetic, q(IndexArithmetic),
                "index scaled by element width overruns the vector",
                "When indexing a flattened 2-D array as row*COLS + col, the maximum is ROWS*COLS-1. Verify both factors; off-by-one in either overruns the vector.",
                None),
            entry("q-idxarith-param", IndexArithmetic, q(IndexArithmetic),
                "parameterised index expression out of range",
                "When utilizing parameters for indexing, expand the expression with the parameter's actual value and check the bounds numerically; prefer localparam derived bounds over repeated arithmetic.",
                None),
            // ---- illegal procedural lvalue (4) ----
            entry("q-proclv-wire", IllegalProceduralLvalue, q(IllegalProceduralLvalue),
                "object on left-hand side of assignment must have a variable data type",
                "Use assign statements instead of always block if possible. Otherwise change the declaration from wire to reg — anything assigned under always/initial must be a variable.",
                Some("// before\nwire y; always @* y = a;\n// after\nreg y; always @* y = a;  // or: wire y; assign y = a;")),
            entry("q-proclv-outputreg", IllegalProceduralLvalue, q(IllegalProceduralLvalue),
                "output port assigned in always block without reg",
                "Declare the output as 'output reg name' (or SystemVerilog 'output logic name') when it is written inside an always block.",
                Some("module m(..., output reg [7:0] q);")),
            entry("q-proclv-mixed", IllegalProceduralLvalue, q(IllegalProceduralLvalue),
                "signal driven both by assign and always",
                "A signal must have exactly one driver style: either a continuous assign (wire) or procedural writes (reg). Remove one of the drivers.",
                None),
            entry("q-proclv-porthdr", IllegalProceduralLvalue, q(IllegalProceduralLvalue),
                "ANSI port lacks variable kind for procedural write",
                "In ANSI headers the kind rides on the port: 'output reg [N-1:0] q'. Adding a separate 'reg q;' in the body also works for non-ANSI headers.",
                None),
            // ---- illegal continuous lvalue (4) ----
            entry("q-contlv-reg", IllegalContinuousLvalue, q(IllegalContinuousLvalue),
                "object of variable data type cannot be the target of a continuous assignment",
                "A reg cannot be driven by 'assign'. Either declare the target as a wire, or move the assignment into an always @(*) block.",
                Some("// before\noutput reg y; assign y = a;\n// after\noutput y; assign y = a;")),
            entry("q-contlv-alwayscomb", IllegalContinuousLvalue, q(IllegalContinuousLvalue),
                "assign to reg that is also written in always",
                "Pick one driver: delete the assign and write the value inside the existing always block, or delete the always write and keep the assign on a wire.",
                None),
            entry("q-contlv-logic", IllegalContinuousLvalue, q(IllegalContinuousLvalue),
                "assign target declared reg out of SystemVerilog habit",
                "In plain Verilog use wire for assign targets. (SystemVerilog 'logic' would accept both; plain 'reg' does not.)",
                None),
            entry("q-contlv-initial", IllegalContinuousLvalue, q(IllegalContinuousLvalue),
                "wire initialised procedurally",
                "To give a net a constant value use 'assign w = value;' or a declaration initialiser 'wire w = value;', not an initial block.",
                None),
            // ---- assign to input (3) ----
            entry("q-input-assigned", AssignToInput, q(AssignToInput),
                "input port cannot be assigned a value",
                "Input ports are driven from outside the module; never assign them. If the value must be produced here, the port direction is wrong — or you meant to assign a similarly-named internal signal.",
                Some("// before\ninput ack; assign ack = ready;\n// after\noutput ack; assign ack = ready;")),
            entry("q-input-loopback", AssignToInput, q(AssignToInput),
                "feedback written to an input port",
                "For feedback paths declare an internal wire/reg, assign that, and use it in expressions; leave the input untouched.",
                None),
            entry("q-input-swap", AssignToInput, q(AssignToInput),
                "assignment direction reversed",
                "Check whether the two sides of the assignment are swapped: 'assign input_sig = out_sig' usually meant 'assign out_sig = input_sig'.",
                None),
            // ---- port connection mismatch (4) ----
            entry("q-port-name", PortConnectionMismatch, q(PortConnectionMismatch),
                "Port does not exist in macrofunction",
                "Named connections must use the instantiated module's exact port names. Open the module declaration and copy the names; do not guess abbreviations.",
                Some("child c(.a(x), .y(z)); // ports are a and y, not in/out")),
            entry("q-port-count", PortConnectionMismatch, q(PortConnectionMismatch),
                "instance has wrong number of port connections",
                "Positional connection lists must match the declared port count and order. Prefer named connections (.port(sig)) to make the mapping explicit.",
                None),
            entry("q-port-order", PortConnectionMismatch, q(PortConnectionMismatch),
                "positional connections in wrong order",
                "Positional port lists bind strictly by declaration order. If the instance compiles but behaves wrongly, switch to named connections.",
                None),
            entry("q-port-missing", PortConnectionMismatch, q(PortConnectionMismatch),
                "required port left unconnected",
                "Clock and reset ports must be connected. Add the missing .clk(clk) style connection.",
                None),
            // ---- redeclaration (3) ----
            entry("q-redecl-dup", Redeclaration, q(Redeclaration),
                "object is already declared in the present scope",
                "Delete the duplicate declaration. With ANSI headers the port declaration already declares the signal — do not re-declare it in the body.",
                Some("// before\nmodule m(output reg q); reg q;\n// after\nmodule m(output reg q);")),
            entry("q-redecl-widths", Redeclaration, q(Redeclaration),
                "same name declared with two different widths",
                "Keep a single declaration with the correct width; update all uses to it.",
                None),
            entry("q-redecl-portbody", Redeclaration, q(Redeclaration),
                "ANSI port re-declared in body",
                "Non-ANSI style ('module m(q); output q; reg q;') needs the body declarations; ANSI style ('module m(output reg q)') must not repeat them. Use one style consistently.",
                None),
            // ---- syntax (5) ----
            entry("q-syntax-semi", SyntaxError, q(SyntaxError),
                "syntax error near text expecting ';'",
                "A statement is missing its terminating semicolon, usually on the line before the reported one. Add the ';'.",
                None),
            entry("q-syntax-near", SyntaxError, q(SyntaxError),
                "syntax error near text \"<token>\"",
                "Check for and fix any syntax errors that appear immediately before or at the specified keyword: unclosed parentheses, missing commas in port lists, or stray tokens.",
                None),
            entry("q-syntax-sensitivity", SyntaxError, q(SyntaxError),
                "always block missing sensitivity list",
                "Synthesisable always blocks need '@(*)' for combinational logic or '@(posedge clk)' for sequential logic. Plain 'always begin' is not accepted.",
                Some("always @(*) begin ... end")),
            entry("q-syntax-assign-eq", SyntaxError, q(SyntaxError),
                "expecting '=' or '<='",
                "Procedural assignments use '=' (blocking) or '<=' (non-blocking). Check the statement is an assignment and not an expression used as a statement.",
                None),
            entry("q-syntax-portlist", SyntaxError, q(SyntaxError),
                "syntax error in port list",
                "Port list entries are comma-separated 'direction [range] name' groups. Look for a missing comma or an extra direction keyword.",
                None),
            // ---- unbalanced blocks (3) ----
            entry("q-unbal-end", UnbalancedBlock, q(UnbalancedBlock),
                "missing \"end\" to balance begin",
                "Every 'begin' needs a matching 'end'. Count them — multi-statement always bodies and nested ifs are the usual culprits.",
                None),
            entry("q-unbal-endmodule", UnbalancedBlock, q(UnbalancedBlock),
                "unexpected end of file; missing \"endmodule\"",
                "Append 'endmodule' at the end of the module. If the code was cut off mid-generation, complete the final statement first.",
                None),
            entry("q-unbal-endcase", UnbalancedBlock, q(UnbalancedBlock),
                "missing \"endcase\"",
                "Every 'case' needs 'endcase' after the arms (and before the enclosing block's 'end').",
                None),
            // ---- C-style constructs (5) — the paper's 'confident in C/C++ syntax' class ----
            entry("q-cstyle-incr", CStyleConstruct, q(CStyleConstruct),
                "syntax error near \"++\"",
                "Verilog has no ++/-- operators. Write the loop step as 'i = i + 1'. This C/C++ habit is the usual cause.",
                Some("for (i = 0; i < N; i = i + 1)")),
            entry("q-cstyle-compound", CStyleConstruct, q(CStyleConstruct),
                "syntax error near \"+=\"",
                "Compound assignment (+=, -=, *=) is not Verilog-2001. Expand it: 'sum = sum + x;'.",
                Some("sum = sum + a[i];")),
            entry("q-cstyle-bool", CStyleConstruct, q(CStyleConstruct),
                "C type name used in declaration",
                "Use Verilog types: reg/wire/integer, not bool/int (outside SystemVerilog contexts). A 1-bit flag is 'reg flag;'.",
                None),
            entry("q-cstyle-braces", CStyleConstruct, q(CStyleConstruct),
                "curly braces used as statement block",
                "Verilog blocks use begin/end, not { }. Curly braces mean concatenation in expressions.",
                Some("if (en) begin q <= d; v <= 1; end")),
            entry("q-cstyle-ternary-assign", CStyleConstruct, q(CStyleConstruct),
                "expression statement is not valid Verilog",
                "Statements must be assignments, control flow, or tasks. Bare expressions (like a C function-call statement) are invalid; assign the result to a signal.",
                None),
        ];
        GuidanceDatabase { edition: DatabaseEdition::Quartus, entries }
    }

    /// The iverilog-curated database: 7 categories, 30 entries.
    ///
    /// iverilog logs carry no numeric tags, so `error_tag` is `None`
    /// everywhere — which is exactly why exact-tag retrieval degrades on
    /// this edition (§4.2, "Impact of RAG").
    pub fn iverilog() -> Self {
        use ErrorCategory::*;
        let entries = vec![
            // ---- undeclared (5) ----
            entry("i-undeclared-bind", UndeclaredIdentifier, None,
                "Unable to bind wire/reg/memory 'clk' in 'top_module'",
                "Check if 'clk' is an input. If not, and if 'clk' is used within the module, make sure the name is correct. If it's meant to trigger an 'always' block, replace 'posedge clk' with '*'.",
                Some("always @(*) out = in;")),
            entry("i-undeclared-generic", UndeclaredIdentifier, None,
                "Unable to bind wire/reg/memory '<name>'",
                "Declare the missing signal (wire for combinational, reg for procedural targets) right after the module header, or fix the typo against the port list.",
                None),
            entry("i-undeclared-event", UndeclaredIdentifier, None,
                "Failed to evaluate event expression 'posedge clk'",
                "The event expression references a signal that does not exist. Use an existing clock port, or make the block combinational with @(*).",
                None),
            entry("i-undeclared-genvar", UndeclaredIdentifier, None,
                "generate loop variable is not declared",
                "Add 'genvar i;' before generate-for loops; 'integer i;' for procedural loops.",
                None),
            entry("i-undeclared-hier", UndeclaredIdentifier, None,
                "Unable to bind wire/reg in nested scope",
                "Signals declared in one begin/end scope are not visible outside it; hoist the declaration to module level.",
                None),
            // ---- index out of range (5) ----
            entry("i-index-basic", IndexOutOfRange, None,
                "Index out[8] is out of range.",
                "A vector [7:0] has indices 0..7. Replace the out-of-range constant with the MSB index (width-1).",
                Some("assign {out[0],...,out[7]} = in;")),
            entry("i-index-loop", IndexOutOfRange, None,
                "Index is out of range inside for loop",
                "Check the loop bound against the vector width: 'i < WIDTH' with accesses at [i] and [WIDTH-1-i] stays in range.",
                None),
            entry("i-index-mem", IndexOutOfRange, None,
                "word index outside memory range",
                "A memory 'reg [7:0] m [0:D-1]' has words 0..D-1. Clamp or mask the address.",
                None),
            entry("i-index-partsel", IndexOutOfRange, None,
                "part select out of range",
                "Both bounds of [hi:lo] must be within the declaration; hi >= lo for descending ranges.",
                None),
            entry("i-index-arith", IndexOutOfRange, None,
                "computed index out of range",
                "Evaluate the index expression at the loop extremes; negative intermediate values overflow the range. Use modulo arithmetic for wrap-around neighbours.",
                None),
            // ---- procedural lvalue (5) ----
            entry("i-proclv-basic", IllegalProceduralLvalue, None,
                "out is not a valid l-value in top_module.",
                "Use assign statements instead of always block if possible. Otherwise declare the target as reg ('output reg out').",
                Some("output reg out;")),
            entry("i-proclv-wire", IllegalProceduralLvalue, None,
                "wire assigned in always block",
                "Wires cannot be written procedurally. Change 'wire' to 'reg' or convert the always block to an assign.",
                None),
            entry("i-proclv-port", IllegalProceduralLvalue, None,
                "output port written in always without reg",
                "Add reg to the port declaration: 'output reg [N-1:0] q;'.",
                None),
            entry("i-proclv-nba", IllegalProceduralLvalue, None,
                "non-blocking assignment to a net",
                "'<=' targets must be variables (reg). Declare the target as reg, or use assign with '='.",
                None),
            entry("i-proclv-both", IllegalProceduralLvalue, None,
                "signal has both assign and always drivers",
                "Remove one driver; a signal is either a continuously-assigned wire or a procedurally-assigned reg.",
                None),
            // ---- continuous lvalue (4) ----
            entry("i-contlv-basic", IllegalContinuousLvalue, None,
                "reg q; cannot be driven by primitives or continuous assignment.",
                "Drop the reg (make it a wire) or move the logic into an always block.",
                Some("output q; assign q = a; // or: output reg q; always @* q = a;")),
            entry("i-contlv-output", IllegalContinuousLvalue, None,
                "output reg driven by assign",
                "Remove 'reg' from the port declaration when the output is driven by assign.",
                None),
            entry("i-contlv-double", IllegalContinuousLvalue, None,
                "reg also written by always elsewhere",
                "Consolidate into the always block; delete the assign.",
                None),
            entry("i-contlv-init", IllegalContinuousLvalue, None,
                "continuous assignment to an integer",
                "Integers are variables; use a wire (with a width) for assign targets.",
                None),
            // ---- port mismatch (4) ----
            entry("i-port-name", PortConnectionMismatch, None,
                "port ``x'' is not a port of instance.",
                "Use the instantiated module's exact port names in named connections; open its declaration and copy them.",
                None),
            entry("i-port-count", PortConnectionMismatch, None,
                "Wrong number of ports",
                "Positional connections must cover every declared port, in order. Prefer named connections.",
                None),
            entry("i-port-dir", PortConnectionMismatch, None,
                "output port connected to an expression",
                "Output connections must be plain signals (or concatenations of them), not computed expressions.",
                None),
            entry("i-port-width", PortConnectionMismatch, None,
                "port width mismatch warning escalated",
                "Match the connected signal's width to the port's declaration; slice or pad explicitly.",
                None),
            // ---- unknown module (3) ----
            entry("i-unkmod-typo", UnknownModule, None,
                "Unknown module type: <name>",
                "The instantiated module name does not match any definition. Fix the spelling, or define the helper module in the same source.",
                None),
            entry("i-unkmod-helper", UnknownModule, None,
                "helper module not defined",
                "If the problem expects a single module, inline the helper's logic instead of instantiating an undefined module.",
                None),
            entry("i-unkmod-prim", UnknownModule, None,
                "unsupported primitive instantiated",
                "Write the logic with operators (&, |, ^, ~) instead of gate primitives when the flow does not provide them.",
                None),
            // ---- syntax (4) — covers all the bare 'syntax error' cases ----
            entry("i-syntax-giveup", SyntaxError, None,
                "syntax error / I give up.",
                "iverilog stops explaining after repeated parse failures. Re-check the basics in order: every statement ends with ';', every begin has an end, the module ends with 'endmodule', and no C operators (++, +=) appear.",
                None),
            entry("i-syntax-semi", SyntaxError, None,
                "syntax error (missing semicolon)",
                "Look at the line *before* the reported one for a missing ';'.",
                None),
            entry("i-syntax-cstyle", SyntaxError, None,
                "syntax error near C-style operator",
                "Replace ++/--/+=/-= with explicit Verilog arithmetic: 'i = i + 1'.",
                Some("for (i = 0; i < N; i = i + 1)")),
            entry("i-syntax-malformed", SyntaxError, None,
                "error: malformed statement",
                "The statement is not a legal Verilog form; common causes are assignments without '=' or '<=', and expressions used as statements.",
                None),
        ];
        GuidanceDatabase { edition: DatabaseEdition::Iverilog, entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quartus_shape_matches_paper() {
        let db = GuidanceDatabase::quartus();
        assert_eq!(db.entries.len(), 45, "paper: 45 Quartus entries");
        assert_eq!(db.categories().len(), 11, "paper: 11 Quartus categories");
        assert!(db.entries.iter().all(|e| e.error_tag.is_some()));
    }

    #[test]
    fn iverilog_shape_matches_paper() {
        let db = GuidanceDatabase::iverilog();
        assert_eq!(db.entries.len(), 30, "paper: 30 iverilog entries");
        assert_eq!(db.categories().len(), 7, "paper: 7 iverilog categories");
        assert!(db.entries.iter().all(|e| e.error_tag.is_none()));
    }

    #[test]
    fn ids_are_unique() {
        for db in [GuidanceDatabase::quartus(), GuidanceDatabase::iverilog()] {
            let mut ids: Vec<&str> = db.entries.iter().map(|e| e.id.as_str()).collect();
            ids.sort_unstable();
            let before = ids.len();
            ids.dedup();
            assert_eq!(ids.len(), before, "duplicate ids in {:?}", db.edition);
        }
    }

    #[test]
    fn figure3_entries_present() {
        let db = GuidanceDatabase::quartus();
        let clk = db.entries.iter().find(|e| e.id == "q-undeclared-clk").unwrap();
        assert!(clk.guidance.contains("replace 'posedge clk' with '*'"));
        let idx = db.entries.iter().find(|e| e.id == "q-index-range").unwrap();
        assert!(idx.guidance.contains("binary strings"));
    }

    #[test]
    fn entries_for_filters_by_category() {
        let db = GuidanceDatabase::quartus();
        let entries = db.entries_for(ErrorCategory::CStyleConstruct);
        assert_eq!(entries.len(), 5);
        assert!(entries.iter().all(|e| e.category.0 == ErrorCategory::CStyleConstruct));
    }

    #[test]
    fn json_round_trip() {
        let db = GuidanceDatabase::quartus();
        let json = db.to_json();
        let back = GuidanceDatabase::from_json(&json).unwrap();
        assert_eq!(db, back);
    }

    #[test]
    fn fingerprint_tracks_content() {
        let quartus = GuidanceDatabase::quartus();
        assert_eq!(quartus.fingerprint(), GuidanceDatabase::quartus().fingerprint());
        assert_ne!(quartus.fingerprint(), GuidanceDatabase::iverilog().fingerprint());
        let mut truncated = quartus.clone();
        truncated.entries.truncate(10);
        assert_ne!(quartus.fingerprint(), truncated.fingerprint());
    }

    #[test]
    fn shared_databases_are_singletons() {
        let a = GuidanceDatabase::quartus_shared();
        let b = GuidanceDatabase::quartus_shared();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(*a, GuidanceDatabase::quartus());
        assert_eq!(*GuidanceDatabase::iverilog_shared(), GuidanceDatabase::iverilog());
    }

    #[test]
    fn quartus_tags_match_categories() {
        let db = GuidanceDatabase::quartus();
        for entry in &db.entries {
            assert_eq!(entry.error_tag, Some(entry.category.0.quartus_code()), "{}", entry.id);
        }
    }
}
