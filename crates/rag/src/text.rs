//! Text utilities shared by the retrievers and (via this crate) the dataset
//! curation pipeline: tokenisation, Jaccard similarity and TF-IDF cosine.

use std::collections::{BTreeMap, HashSet};

/// Splits text into lowercase alphanumeric tokens; numbers survive as
/// tokens so error tags like `10161` are matchable.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for c in text.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            current.push(c.to_ascii_lowercase());
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Jaccard similarity of the token *sets* of two texts, in `[0, 1]`.
///
/// This is the distance the paper uses both for fuzzy retrieval and for the
/// DBSCAN clustering of the VerilogEval-syntax dataset (Jaccard distance =
/// `1 - similarity`).
///
/// # Examples
///
/// ```
/// use rtlfixer_rag::text::jaccard_similarity;
///
/// assert_eq!(jaccard_similarity("a b c", "a b c"), 1.0);
/// assert_eq!(jaccard_similarity("a b", "c d"), 0.0);
/// assert!((jaccard_similarity("a b c", "b c d") - 0.5).abs() < 1e-9);
/// ```
pub fn jaccard_similarity(a: &str, b: &str) -> f64 {
    let sa: HashSet<String> = tokenize(a).into_iter().collect();
    let sb: HashSet<String> = tokenize(b).into_iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    inter / union
}

/// Jaccard distance (`1 - similarity`).
pub fn jaccard_distance(a: &str, b: &str) -> f64 {
    1.0 - jaccard_similarity(a, b)
}

/// A small TF-IDF vector index over a fixed corpus, with cosine-similarity
/// queries — the "similarity search with a vector database" retriever
/// option the paper mentions in §3.3.
#[derive(Debug, Clone)]
pub struct TfIdfIndex {
    /// Per-document term-frequency vectors (L2-normalised lazily).
    /// Ordered maps keep summation order — and so the last float bits of
    /// every score — identical across index instances and process runs.
    docs: Vec<BTreeMap<String, f64>>,
    idf: BTreeMap<String, f64>,
}

impl TfIdfIndex {
    /// Builds an index over `corpus`.
    pub fn new<S: AsRef<str>>(corpus: &[S]) -> Self {
        let n = corpus.len().max(1) as f64;
        let mut doc_freq: BTreeMap<String, usize> = BTreeMap::new();
        let mut raw_docs = Vec::new();
        for doc in corpus {
            let tokens = tokenize(doc.as_ref());
            let mut tf: BTreeMap<String, f64> = BTreeMap::new();
            for token in &tokens {
                *tf.entry(token.clone()).or_insert(0.0) += 1.0;
            }
            for term in tf.keys() {
                *doc_freq.entry(term.clone()).or_insert(0) += 1;
            }
            raw_docs.push(tf);
        }
        let idf: BTreeMap<String, f64> = doc_freq
            .into_iter()
            .map(|(term, df)| (term, (n / (1.0 + df as f64)).ln() + 1.0))
            .collect();
        let docs = raw_docs
            .into_iter()
            .map(|tf| {
                tf.into_iter()
                    .map(|(term, count)| {
                        let weight = count * idf.get(&term).copied().unwrap_or(1.0);
                        (term, weight)
                    })
                    .collect()
            })
            .collect();
        TfIdfIndex { docs, idf }
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Cosine similarity of `query` against document `idx`.
    pub fn similarity(&self, idx: usize, query: &str) -> f64 {
        let Some(doc) = self.docs.get(idx) else { return 0.0 };
        let mut qv: BTreeMap<String, f64> = BTreeMap::new();
        for token in tokenize(query) {
            *qv.entry(token).or_insert(0.0) += 1.0;
        }
        for (term, weight) in qv.iter_mut() {
            *weight *= self.idf.get(term).copied().unwrap_or(1.0);
        }
        let dot: f64 = qv
            .iter()
            .filter_map(|(term, qw)| doc.get(term).map(|dw| qw * dw))
            .sum();
        let qn: f64 = qv.values().map(|w| w * w).sum::<f64>().sqrt();
        let dn: f64 = doc.values().map(|w| w * w).sum::<f64>().sqrt();
        if qn == 0.0 || dn == 0.0 {
            0.0
        } else {
            dot / (qn * dn)
        }
    }

    /// Indices of the `k` most similar documents with their scores,
    /// best first.
    pub fn top_k(&self, query: &str, k: usize) -> Vec<(usize, f64)> {
        let mut scored: Vec<(usize, f64)> =
            (0..self.docs.len()).map(|i| (i, self.similarity(i, query))).collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(k);
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_keeps_numbers_and_underscores() {
        assert_eq!(
            tokenize("Error (10161): top_module \"clk\""),
            vec!["error", "10161", "top_module", "clk"]
        );
    }

    #[test]
    fn jaccard_bounds() {
        assert_eq!(jaccard_similarity("", ""), 1.0);
        assert_eq!(jaccard_similarity("x", ""), 0.0);
        assert_eq!(jaccard_distance("a b", "a b"), 0.0);
    }

    #[test]
    fn jaccard_is_symmetric() {
        let a = "index out of range for vector";
        let b = "index 8 cannot fall outside range";
        assert_eq!(jaccard_similarity(a, b), jaccard_similarity(b, a));
    }

    #[test]
    fn tfidf_ranks_relevant_doc_first() {
        let corpus = [
            "object is not declared verify the object name",
            "index cannot fall outside the declared range for vector",
            "syntax error near text expecting",
        ];
        let index = TfIdfIndex::new(&corpus);
        assert_eq!(index.len(), 3);
        let top = index.top_k("index 5 cannot fall outside declared range", 1);
        assert_eq!(top[0].0, 1);
        assert!(top[0].1 > 0.5);
    }

    #[test]
    fn tfidf_zero_for_disjoint_query() {
        let index = TfIdfIndex::new(&["alpha beta", "gamma delta"]);
        assert_eq!(index.similarity(0, "zeta eta"), 0.0);
    }
}
