//! Property tests for the rag text layer — the tokenizer, the Jaccard
//! metric and the error-tag scanner that every retriever sits on. These
//! pin algebraic invariants (bounds, symmetry, token-set identity) rather
//! than specific values, so a refactor of the scanning loops can't quietly
//! bend the metric the fuzzy retrievers rank by.

use proptest::prelude::*;

use rtlfixer_rag::text::{jaccard_distance, jaccard_similarity, tokenize};
use rtlfixer_rag::RetrievalQuery;

/// Log-ish text: words, digit runs, and the punctuation compiler logs
/// actually contain — parens around error tags included.
const LOG_TEXT: &str = "([a-z_]{1,8}|[0-9]{1,8}|\\(|\\)|: |'|\\n| ){0,24}";

proptest! {
    #[test]
    fn tokens_are_lowercase_word_characters(text in ".{0,200}") {
        for token in tokenize(&text) {
            prop_assert!(!token.is_empty());
            prop_assert!(
                token.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "bad token {token:?} from {text:?}"
            );
        }
    }

    #[test]
    fn tokenize_is_idempotent_over_its_own_rendering(text in LOG_TEXT) {
        // Re-tokenizing the space-joined token stream must reproduce it:
        // tokenization is a projection.
        let tokens = tokenize(&text);
        prop_assert_eq!(tokenize(&tokens.join(" ")), tokens);
    }

    #[test]
    fn jaccard_is_bounded_and_symmetric(a in LOG_TEXT, b in LOG_TEXT) {
        let ab = jaccard_similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&ab), "out of bounds: {ab}");
        prop_assert_eq!(ab, jaccard_similarity(&b, &a));
        let d = jaccard_distance(&a, &b);
        prop_assert!((d - (1.0 - ab)).abs() < 1e-12);
    }

    #[test]
    fn jaccard_self_similarity_is_one(a in LOG_TEXT) {
        prop_assert_eq!(jaccard_similarity(&a, &a), 1.0);
    }

    #[test]
    fn jaccard_depends_only_on_the_token_set(a in LOG_TEXT, b in LOG_TEXT) {
        // Repetition and order are invisible: doubling one side and
        // reversing its token order must not move the similarity.
        let doubled = format!("{a} {a}");
        let reversed =
            tokenize(&a).into_iter().rev().collect::<Vec<_>>().join(" ");
        prop_assert_eq!(jaccard_similarity(&a, &b), jaccard_similarity(&doubled, &b));
        prop_assert_eq!(jaccard_similarity(&a, &b), jaccard_similarity(&reversed, &b));
    }

    #[test]
    fn tag_scanner_never_panics_and_reports_unique_in_log_tags(text in LOG_TEXT) {
        let query = RetrievalQuery::from_log(text.clone());
        let tags = query.tags();
        for tag in &tags {
            // Every reported tag's digits appear in the log (the scanner
            // only ever reads digit runs out of the text).
            prop_assert!(
                text.contains(&tag.to_string()),
                "tag {tag} not in {text:?}"
            );
        }
        let mut unique = tags.clone();
        unique.sort_unstable();
        unique.dedup();
        prop_assert_eq!(unique.len(), tags.len());
    }
}
