//! The distill loop must invalidate the shared TF-IDF index: merging a
//! brief changes the merged database's content fingerprint, which is the
//! cache key `shared_tfidf_index` lives under — so retrievers on the grown
//! database get an index covering the new entry, while retrievers still on
//! the base database keep their original index untouched. Exercised from
//! many threads at once, because that is how the serve daemon hits it.

use std::sync::Arc;
use std::thread;

use rtlfixer_rag::{
    shared_tfidf_index, DistilledEntry, DistilledStore, GuidanceDatabase, RetrievalQuery,
    Retriever, TfIdfRetriever,
};
use rtlfixer_verilog::diag::ErrorCategory;

#[test]
fn merged_database_gets_a_fresh_index_under_concurrency() {
    let base = Arc::new(GuidanceDatabase::quartus());
    let base_index = shared_tfidf_index(&base);
    assert_eq!(base_index.len(), base.entries.len());

    let store = DistilledStore::new();
    store.merge(&[DistilledEntry::from_episode(
        "syntax error near 'zorblefrazzle' on line 7",
        ErrorCategory::SyntaxError,
        2,
        1,
    )]);
    let merged = store.merged_database(&base);
    assert_ne!(merged.fingerprint(), base.fingerprint());

    // Many threads race the first build of the merged index; every one
    // must observe a coherent index covering the distilled entry, and the
    // cache must converge on a single shared Arc.
    let indexes: Vec<_> = {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let merged = Arc::clone(&merged);
                thread::spawn(move || shared_tfidf_index(&merged))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("no panics")).collect()
    };
    for index in &indexes {
        assert_eq!(index.len(), base.entries.len() + 1);
    }
    for pair in indexes.windows(2) {
        assert!(Arc::ptr_eq(&pair[0], &pair[1]), "cache did not converge");
    }

    // The base database's index is untouched — same Arc, same length.
    let base_again = shared_tfidf_index(&base);
    assert!(Arc::ptr_eq(&base_index, &base_again));
    assert_eq!(base_again.len(), base.entries.len());

    // And a lexical retriever over the merged database can actually reach
    // the distilled entry through the fresh index.
    let retriever = TfIdfRetriever::new();
    let query =
        RetrievalQuery::from_log("syntax error near 'zorblefrazzle' on line 12".to_owned());
    let hits = retriever.retrieve(&merged, &query);
    assert!(
        hits.iter().any(|h| h.entry.id.starts_with("distilled-")),
        "distilled entry unreachable: {:?}",
        hits.iter().map(|h| h.entry.id.as_str()).collect::<Vec<_>>()
    );
}
