//! Benchmark problem definitions and candidate verification.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use rtlfixer_sim::testbench::{random_stimuli, run_testbench, Clocking};
use rtlfixer_sim::value::LogicVec;
use rtlfixer_sim::ReferenceModel;

/// Which benchmark suite a problem belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// VerilogEval-Human analogue (high-level natural-language specs).
    VerilogEvalHuman,
    /// VerilogEval-Machine analogue (low-level generated descriptions).
    VerilogEvalMachine,
    /// RTLLM analogue (larger designs, generalisation test).
    Rtllm,
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Suite::VerilogEvalHuman => write!(f, "VerilogEval-Human"),
            Suite::VerilogEvalMachine => write!(f, "VerilogEval-Machine"),
            Suite::Rtllm => write!(f, "RTLLM"),
        }
    }
}

/// Difficulty split (the paper divides VerilogEval by a 0.1 pass-rate
/// threshold into 71 easy / 85 hard Human problems).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Difficulty {
    /// Above the paper's 0.1 pass-rate threshold.
    Easy,
    /// Below it.
    Hard,
}

/// Verdict for one candidate implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Candidate failed to compile (syntax/elaboration errors).
    CompileError,
    /// Candidate compiled but output mismatched the golden model.
    SimMismatch,
    /// Candidate compiled and matched on every cycle.
    Pass,
}

/// Factory producing a fresh golden model per test run.
pub type GoldenFactory = Arc<dyn Fn() -> Box<dyn ReferenceModel + Send> + Send + Sync>;

/// One benchmark problem.
#[derive(Clone)]
pub struct Problem {
    /// Stable id, e.g. `human/reverse8`.
    pub id: String,
    /// Suite membership.
    pub suite: Suite,
    /// Natural-language description (style depends on suite).
    pub description: String,
    /// Top module name the candidate must implement.
    pub top: String,
    /// Input ports as (name, width), excluding the clock.
    pub inputs: Vec<(String, u32)>,
    /// Output ports as (name, width).
    pub outputs: Vec<(String, u32)>,
    /// Clocking discipline.
    pub clocking: Clocking,
    /// Reference (correct) implementation.
    pub solution: String,
    /// Golden model factory.
    pub golden: GoldenFactory,
    /// Static difficulty label.
    pub difficulty: Difficulty,
    /// Number of stimulus cycles for functional checking.
    pub test_cycles: usize,
}

impl fmt::Debug for Problem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Problem")
            .field("id", &self.id)
            .field("suite", &self.suite)
            .field("difficulty", &self.difficulty)
            .field("top", &self.top)
            .finish_non_exhaustive()
    }
}

impl Problem {
    /// Deterministic stimulus for this problem. Reset-like inputs are held
    /// high for the first two cycles then mostly low, so sequential designs
    /// start from a defined state.
    pub fn stimuli(&self, seed: u64) -> Vec<BTreeMap<String, LogicVec>> {
        let mut stimuli = random_stimuli(&self.inputs, self.test_cycles, seed);
        // Structured corner patterns sharpen functional coverage beyond
        // random vectors: all-zeros, all-ones, and equal-operand cycles
        // (comparator/absdiff-style bugs only show on equal inputs).
        for (cycle, frame) in stimuli.iter_mut().enumerate() {
            match cycle % 11 {
                5 => {
                    for (name, width) in &self.inputs {
                        frame.insert(name.clone(), LogicVec::from_u64(*width, 0));
                    }
                }
                7 => {
                    for (name, width) in &self.inputs {
                        frame.insert(name.clone(), LogicVec::from_u128(*width, u128::MAX));
                    }
                }
                9 => {
                    // Copy the first input's value into every same-width input.
                    if let Some((first_name, first_width)) = self.inputs.first().cloned() {
                        let value = frame
                            .get(&first_name)
                            .cloned()
                            .unwrap_or_else(|| LogicVec::zeros(first_width.max(1)));
                        for (name, width) in &self.inputs {
                            if *width == first_width {
                                frame.insert(name.clone(), value.clone());
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        for (name, width) in &self.inputs {
            let lname = name.to_lowercase();
            let is_reset = lname.contains("reset") || lname == "rst" || lname.starts_with("rst_");
            let is_enable = lname == "en" || lname == "enable" || lname == "we";
            if is_reset {
                for (cycle, frame) in stimuli.iter_mut().enumerate() {
                    let value = if cycle < 2 {
                        1
                    } else {
                        // Occasional mid-run reset pulses exercise the reset
                        // path; keep them rare.
                        u64::from(cycle % 17 == 0)
                    };
                    frame.insert(name.clone(), LogicVec::from_u64(*width, value));
                }
            } else if is_enable {
                // Bias enables toward 1 so the datapath actually moves.
                for (cycle, frame) in stimuli.iter_mut().enumerate() {
                    if cycle % 4 != 3 {
                        frame.insert(name.clone(), LogicVec::from_u64(*width, 1));
                    }
                }
            }
        }
        stimuli
    }

    /// Compiles and simulates `code` against the golden model.
    pub fn check(&self, code: &str) -> Verdict {
        self.check_seeded(code, 0xC0FFEE)
    }

    /// [`check`](Problem::check) with an explicit stimulus seed.
    pub fn check_seeded(&self, code: &str, seed: u64) -> Verdict {
        // Shared compile: the §5 debugger and the pass@k harness check the
        // same candidates repeatedly; the frontend runs once per source.
        let analysis = rtlfixer_verilog::compile_shared(code);
        if !analysis.is_ok() {
            return Verdict::CompileError;
        }
        if analysis.file.module(&self.top).is_none() {
            return Verdict::CompileError;
        }
        let mut golden = (self.golden)();
        let stimuli = self.stimuli(seed);
        match run_testbench(&analysis, &self.top, golden.as_mut(), &stimuli, &self.clocking) {
            Ok(result) if result.passed => Verdict::Pass,
            Ok(_) => Verdict::SimMismatch,
            Err(_) => Verdict::CompileError,
        }
    }

    /// [`check_seeded`](Problem::check_seeded) over many seeds at once.
    ///
    /// Compiles once, then drives all seeds through
    /// [`rtlfixer_sim::run_testbench_seeds`], which packs eligible designs
    /// into the bit-parallel lane engine (up to 64 seeds per tape pass) and
    /// falls back to per-seed scalar runs otherwise. `result[i]` is
    /// identical to `check_seeded(code, seeds[i])`.
    pub fn check_seeds(&self, code: &str, seeds: &[u64]) -> Vec<Verdict> {
        let analysis = rtlfixer_verilog::compile_shared(code);
        if !analysis.is_ok() || analysis.file.module(&self.top).is_none() {
            return vec![Verdict::CompileError; seeds.len()];
        }
        let mut goldens: Vec<Box<dyn ReferenceModel>> =
            seeds.iter().map(|_| (self.golden)() as Box<dyn ReferenceModel>).collect();
        let stimuli: Vec<_> = seeds.iter().map(|&s| self.stimuli(s)).collect();
        rtlfixer_sim::run_testbench_seeds(
            &analysis,
            &self.top,
            &mut goldens,
            &stimuli,
            &self.clocking,
        )
        .into_iter()
        .map(|r| match r {
            Ok(result) if result.passed => Verdict::Pass,
            Ok(_) => Verdict::SimMismatch,
            Err(_) => Verdict::CompileError,
        })
        .collect()
    }

    /// Whether this is a clocked problem.
    pub fn is_sequential(&self) -> bool {
        matches!(self.clocking, Clocking::Sequential { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden::{input_u64, out1, Comb};

    fn inverter_problem() -> Problem {
        Problem {
            id: "test/inv".into(),
            suite: Suite::VerilogEvalHuman,
            description: "Invert the input.".into(),
            top: "top_module".into(),
            inputs: vec![("a".into(), 8)],
            outputs: vec![("y".into(), 8)],
            clocking: Clocking::Combinational,
            solution: "module top_module(input [7:0] a, output [7:0] y);\n\
                       assign y = ~a;\nendmodule"
                .into(),
            golden: Arc::new(|| {
                Box::new(Comb::new(|ins| out1("y", 8, u128::from(!input_u64(ins, "a") & 0xFF))))
            }),
            difficulty: Difficulty::Easy,
            test_cycles: 32,
        }
    }

    #[test]
    fn solution_passes_its_own_check() {
        let p = inverter_problem();
        assert_eq!(p.check(&p.solution.clone()), Verdict::Pass);
    }

    #[test]
    fn check_seeds_matches_per_seed_checks() {
        // The multi-seed path (lane-packed where eligible) must agree with
        // one check_seeded call per seed, across real suite problems.
        let seeds = [0xC0FFEE, 1, 7, 0xDEAD_BEEF, 42];
        for p in crate::suites::verilog_eval_human().iter().take(6) {
            let batched = p.check_seeds(&p.solution, &seeds);
            let solo: Vec<Verdict> =
                seeds.iter().map(|&s| p.check_seeded(&p.solution, s)).collect();
            assert_eq!(batched, solo, "problem {}", p.id);
            assert!(batched.iter().all(|v| *v == Verdict::Pass), "problem {}", p.id);
        }
    }

    #[test]
    fn check_seeds_flags_wrong_candidates_per_seed() {
        let p = inverter_problem();
        let wrong = "module top_module(input [7:0] a, output [7:0] y);\n\
                     assign y = ~a + 1;\nendmodule";
        let seeds = [3u64, 9, 27];
        let batched = p.check_seeds(wrong, &seeds);
        let solo: Vec<Verdict> = seeds.iter().map(|&s| p.check_seeded(wrong, s)).collect();
        assert_eq!(batched, solo);
        assert!(batched.iter().all(|v| *v == Verdict::SimMismatch));
        assert_eq!(
            p.check_seeds("module top_module(input a;", &seeds),
            vec![Verdict::CompileError; 3]
        );
    }

    #[test]
    fn broken_syntax_is_compile_error() {
        let p = inverter_problem();
        assert_eq!(
            p.check("module top_module(input [7:0] a, output [7:0] y);\nassign y = ~a\nendmodule"),
            Verdict::CompileError
        );
    }

    #[test]
    fn wrong_logic_is_sim_mismatch() {
        let p = inverter_problem();
        assert_eq!(
            p.check("module top_module(input [7:0] a, output [7:0] y);\nassign y = a;\nendmodule"),
            Verdict::SimMismatch
        );
    }

    #[test]
    fn wrong_module_name_is_compile_error() {
        let p = inverter_problem();
        assert_eq!(
            p.check("module wrong(input [7:0] a, output [7:0] y);\nassign y = ~a;\nendmodule"),
            Verdict::CompileError
        );
    }

    #[test]
    fn reset_stimulus_shaping() {
        let mut p = inverter_problem();
        p.inputs.push(("reset".into(), 1));
        let stimuli = p.stimuli(1);
        assert_eq!(stimuli[0]["reset"].to_u64(), Some(1));
        assert_eq!(stimuli[1]["reset"].to_u64(), Some(1));
        assert_eq!(stimuli[2]["reset"].to_u64(), Some(0));
    }
}
