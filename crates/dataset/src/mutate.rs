//! Syntax-error injection: the inverse of the repair operators.
//!
//! Each mutator takes a *correct* solution and introduces one error of a
//! given [`ErrorCategory`], producing the kind of flawed implementation the
//! VerilogEval-syntax dataset is made of (§3.4). Mutators verify their own
//! work: the result must fail compilation *with the intended category*, or
//! the mutator reports failure (`None`) so the caller can pick another.

use rand::rngs::StdRng;
use rand::Rng;

use rtlfixer_verilog::diag::ErrorCategory;

/// Applies the mutator for `category` to `source`. Returns the mutated code
/// only if it genuinely fails to compile with that category present.
pub fn inject(source: &str, category: ErrorCategory, rng: &mut StdRng) -> Option<String> {
    let mutated = match category {
        ErrorCategory::UndeclaredIdentifier => inject_undeclared(source, rng)?,
        ErrorCategory::IndexOutOfRange => inject_index_oob(source)?,
        ErrorCategory::IndexArithmetic => inject_index_arith(source)?,
        ErrorCategory::IllegalProceduralLvalue => inject_wire_lvalue(source)?,
        ErrorCategory::IllegalContinuousLvalue => inject_reg_assign(source)?,
        ErrorCategory::AssignToInput => inject_input_assign(source)?,
        ErrorCategory::PortConnectionMismatch => inject_port_rename(source)?,
        ErrorCategory::UnknownModule => inject_unknown_module(source)?,
        ErrorCategory::Redeclaration => inject_redeclaration(source)?,
        ErrorCategory::SyntaxError => inject_missing_semi(source, rng)?,
        ErrorCategory::UnbalancedBlock => inject_unbalanced(source)?,
        ErrorCategory::CStyleConstruct => inject_c_style(source)?,
        ErrorCategory::MisplacedDirective => inject_directive(source)?,
        ErrorCategory::KeywordAsIdentifier => inject_keyword_ident(source)?,
        ErrorCategory::WidthMismatch
        | ErrorCategory::InferredLatch
        | ErrorCategory::CaseMissingDefault
        | ErrorCategory::UnusedSignal => return None,
    };
    let analysis = rtlfixer_verilog::compile(&mutated);
    let has_category = analysis.errors().iter().any(|d| d.category == category);
    if has_category {
        Some(mutated)
    } else {
        None
    }
}

/// Categories that [`inject`] can introduce into `source`, probed cheaply.
pub fn applicable_categories(source: &str, rng: &mut StdRng) -> Vec<ErrorCategory> {
    ErrorCategory::ALL
        .iter()
        .copied()
        .filter(|&cat| inject(source, cat, rng).is_some())
        .collect()
}

// ---- individual injectors ---------------------------------------------------

/// Internal declarations (`wire [..] name;` / `reg [..] name;` lines) that
/// are not port-completing.
fn internal_decl_lines(source: &str) -> Vec<(usize, usize, String)> {
    let mut found = Vec::new();
    let mut offset = 0;
    for line in source.split_inclusive('\n') {
        let trimmed = line.trim_start();
        for kw in ["wire ", "reg ", "integer "] {
            if let Some(rest) = trimmed.strip_prefix(kw) {
                // `name` is the last identifier before `;` (skip ranges).
                if let Some(semi) = rest.find(';') {
                    let decl = &rest[..semi];
                    let name = decl
                        .rsplit(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                        .find(|s| !s.is_empty() && !s.chars().next().unwrap().is_ascii_digit());
                    if let Some(name) = name {
                        if !decl.contains('=') {
                            found.push((offset, offset + line.len(), name.to_owned()));
                        }
                    }
                }
            }
        }
        offset += line.len();
    }
    found
}

fn inject_undeclared(source: &str, rng: &mut StdRng) -> Option<String> {
    let decls = internal_decl_lines(source);
    if !decls.is_empty() {
        // Delete an internal declaration, leaving its uses dangling.
        let (start, end, _) = decls[rng.gen_range(0..decls.len())].clone();
        return Some(format!("{}{}", &source[..start], &source[end..]));
    }
    // No internal declarations: turn a combinational always into a clocked
    // one on a phantom clk (the classic Figure 5 error) — only when no clk
    // port exists.
    if !source.contains("clk") {
        for pattern in ["always @(*)", "always @*"] {
            if let Some(idx) = source.find(pattern) {
                let mut out = source.to_owned();
                out.replace_range(idx..idx + pattern.len(), "always @(posedge clk)");
                return Some(out);
            }
        }
    }
    None
}

fn inject_index_oob(source: &str) -> Option<String> {
    // AST-guided: find a literal index at its upper bound and bump it.
    let analysis = rtlfixer_verilog::compile(source);
    if !analysis.is_ok() {
        return None;
    }
    let module = analysis.file.modules.last()?;
    let symbols = analysis.symbols_for(&module.name)?;
    // Find `[<number>]` occurrences whose number equals some signal's msb.
    let bytes = source.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'[' {
            let mut j = i + 1;
            while j < bytes.len() && bytes[j].is_ascii_digit() {
                j += 1;
            }
            if j > i + 1 && j < bytes.len() && bytes[j] == b']' {
                let value: i64 = source[i + 1..j].parse().ok()?;
                // Identifier before the bracket.
                let before = source[..i].trim_end();
                let name_start = before
                    .rfind(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                    .map(|k| k + 1)
                    .unwrap_or(0);
                let name = &before[name_start..];
                if let Some(info) = symbols.signal(name) {
                    if info.msb == Some(value) && value > 0 {
                        let mut out = source.to_owned();
                        out.replace_range(i + 1..j, &(value + 1).to_string());
                        return Some(out);
                    }
                }
            }
            i = j;
        }
        i += 1;
    }
    None
}

fn inject_index_arith(source: &str) -> Option<String> {
    // Remove the modulo wrap from a wrapped index: `((i+15)%16)` → `(i-1)`,
    // reintroducing the Figure 6 out-of-range arithmetic.
    if source.contains("((i+15)%16)") {
        let out = source
            .replace("((i+15)%16)*16 + ((j+15)%16)", "(i-1)*16 + (j-1)")
            .replace("((i+15)%16)", "(i-1)")
            .replace("((j+15)%16)", "(j-1)");
        return Some(out);
    }
    // Generic: inside a full-range for loop body, shift an index by +1.
    let needle = "[i]";
    let idx = source.find("for (")?;
    let body = &source[idx..];
    let rel = body.find(needle)?;
    let abs = idx + rel;
    let mut out = source.to_owned();
    out.replace_range(abs..abs + needle.len(), "[i + 1]");
    Some(out)
}

fn inject_wire_lvalue(source: &str) -> Option<String> {
    // `output reg x` → `output x` where x is procedurally assigned.
    let idx = source.find("output reg ")?;
    let mut out = source.to_owned();
    out.replace_range(idx..idx + "output reg ".len(), "output ");
    Some(out)
}

fn inject_reg_assign(source: &str) -> Option<String> {
    // `output [..] y` driven by assign → `output reg [..] y`.
    let assign_idx = source.find("assign ")?;
    let target_start = assign_idx + "assign ".len();
    let rest = &source[target_start..];
    let name_end = rest
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .unwrap_or(rest.len());
    let name = &rest[..name_end];
    if name.is_empty() {
        return None;
    }
    // Find its output declaration without an existing reg.
    let decl_pat = "output [";
    let mut search = 0;
    while let Some(rel) = source[search..].find(decl_pat) {
        let abs = search + rel;
        let line_end = source[abs..].find([',', ')', ';']).map(|k| abs + k)?;
        if source[abs..line_end].ends_with(name) {
            let mut out = source.to_owned();
            out.insert_str(abs + "output".len(), " reg");
            return Some(out);
        }
        search = abs + decl_pat.len();
    }
    // Scalar form `output y`.
    let scalar = format!("output {name}");
    let abs = source.find(&scalar)?;
    let mut out = source.to_owned();
    out.insert_str(abs + "output".len(), " reg");
    Some(out)
}

fn inject_input_assign(source: &str) -> Option<String> {
    // Add a conflicting continuous assignment to the first input port.
    let analysis = rtlfixer_verilog::compile(source);
    let module = analysis.file.modules.last()?;
    let input = module
        .ports
        .iter()
        .find(|p| p.direction == rtlfixer_verilog::ast::Direction::Input && p.name != "clk")?;
    let header_end = source.find(';')? + 1;
    let mut out = source.to_owned();
    out.insert_str(header_end, &format!("\nassign {} = 1'b0;", input.name));
    Some(out)
}

fn inject_port_rename(source: &str) -> Option<String> {
    // Rename a named connection `.x(` to `.x_p(` (instantiations only).
    let idx = source.find("(.")?;
    let name_start = idx + 2;
    let name_end = source[name_start..]
        .find('(')
        .map(|k| name_start + k)?;
    let mut out = source.to_owned();
    out.insert_str(name_end, "_p");
    Some(out)
}

fn inject_unknown_module(source: &str) -> Option<String> {
    // Instantiate a module that does not exist.
    let endmodule = source.rfind("endmodule")?;
    let mut out = source.to_owned();
    out.insert_str(endmodule, "helper_unit u_helper(.a(1'b0));\n");
    Some(out)
}

fn inject_redeclaration(source: &str) -> Option<String> {
    let decls = internal_decl_lines(source);
    let (start, end, _) = decls.first()?.clone();
    let line = source[start..end].to_owned();
    let mut out = source.to_owned();
    let insertion = if line.ends_with('\n') { line } else { format!("{line}\n") };
    out.insert_str(end, &insertion);
    Some(out)
}

fn inject_missing_semi(source: &str, rng: &mut StdRng) -> Option<String> {
    let positions: Vec<usize> = source
        .char_indices()
        .filter(|(_, c)| *c == ';')
        .map(|(i, _)| i)
        .collect();
    // Skip the header semicolon (position 0): deleting it produces cascades
    // that read as port-list errors instead.
    if positions.len() < 2 {
        return None;
    }
    let pick = positions[rng.gen_range(1..positions.len())];
    let mut out = source.to_owned();
    out.remove(pick);
    Some(out)
}

fn inject_unbalanced(source: &str) -> Option<String> {
    // Remove the last `end` (not endmodule/endcase/endgenerate/endfunction).
    let mut best = None;
    let mut search = 0;
    while let Some(rel) = source[search..].find("end") {
        let abs = search + rel;
        let after = &source[abs + 3..];
        let standalone = !after.starts_with(|c: char| c.is_ascii_alphanumeric() || c == '_');
        let before_ok = abs == 0
            || !source[..abs]
                .ends_with(|c: char| c.is_ascii_alphanumeric() || c == '_');
        if standalone && before_ok {
            best = Some(abs);
        }
        search = abs + 3;
    }
    let abs = best?;
    let mut out = source.to_owned();
    out.replace_range(abs..abs + 3, "");
    Some(out)
}

fn inject_c_style(source: &str) -> Option<String> {
    for (verilog, c_style) in [
        (" = i + 1)", "++)"),
        (" = k + 1)", "++)"),
        (" = j + 1)", "++)"),
    ] {
        if let Some(idx) = source.find(verilog) {
            // `i = i + 1)` → `i++)`: delete back to the loop var.
            let before = source[..idx].trim_end();
            let var_start = before
                .rfind(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                .map(|k| k + 1)
                .unwrap_or(0);
            let mut out = source.to_owned();
            out.replace_range(var_start + (before.len() - var_start)..idx + verilog.len(), c_style);
            return Some(out);
        }
    }
    // `x = x + y;` → `x += y;`
    let mut i = 0;
    while let Some(rel) = source[i..].find(" = ") {
        let eq = i + rel;
        let lhs_end = eq;
        let lhs_start = source[..lhs_end]
            .rfind(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .map(|k| k + 1)
            .unwrap_or(0);
        let lhs = &source[lhs_start..lhs_end];
        let rhs_start = eq + 3;
        if !lhs.is_empty()
            && source[rhs_start..].starts_with(lhs)
            && source[rhs_start + lhs.len()..].starts_with(" + ")
        {
            let mut out = source.to_owned();
            out.replace_range(eq..rhs_start + lhs.len() + 3, " += ");
            return Some(out);
        }
        i = eq + 3;
    }
    None
}

fn inject_directive(source: &str) -> Option<String> {
    let header_end = source.find(';')? + 1;
    let mut out = source.to_owned();
    out.insert_str(header_end, "\n`timescale 1ns / 1ps");
    Some(out)
}

fn inject_keyword_ident(source: &str) -> Option<String> {
    // Rename an internal declaration's signal to a reserved word. Skip
    // single-letter names (loop variables) whose replacement would collide
    // with loop syntax.
    let decls = internal_decl_lines(source);
    let (_, _, name) = decls.iter().find(|(_, _, n)| n.len() >= 2)?.clone();
    // Whole-word replace with a "safe" keyword (one the code will not
    // otherwise use structurally).
    let replacement = "force";
    let mut out = String::with_capacity(source.len());
    let mut last = 0;
    let bytes = source.as_bytes();
    let mut search = 0;
    while let Some(rel) = source[search..].find(&name) {
        let idx = search + rel;
        let before_ok = idx == 0
            || !(bytes[idx - 1].is_ascii_alphanumeric() || bytes[idx - 1] == b'_');
        let after = idx + name.len();
        let after_ok =
            after >= bytes.len() || !(bytes[after].is_ascii_alphanumeric() || bytes[after] == b'_');
        if before_ok && after_ok {
            out.push_str(&source[last..idx]);
            out.push_str(replacement);
            last = after;
        }
        search = after;
    }
    out.push_str(&source[last..]);
    Some(out)
}

// ---- functional (non-syntax) bugs -------------------------------------------

/// Injects a *functional* bug: the result still compiles but computes the
/// wrong function. Used by the generation model to produce candidates whose
/// failure is a simulation mismatch rather than a syntax error.
pub fn inject_functional_bug(source: &str, rng: &mut StdRng) -> Option<String> {
    // Each operator is a (pattern, replacement) pair applied at the first
    // occurrence *after the module header* so port lists stay intact.
    let header_end = source.find(';').map(|i| i + 1)?;
    let body = &source[header_end..];
    let ops: &[(&str, &str)] = &[
        (" & ", " | "),
        (" | ", " & "),
        (" ^ ", " & "),
        (" + ", " - "),
        (" - ", " + "),
        ("~", ""),
        (" < ", " <= "),
        (" > ", " >= "),
        (" == ", " != "),
        ("<= 0;", "<= 1;"),
        ("? b : a", "? a : b"),
        ("q + 1", "q + 2"),
    ];
    let start = rng.gen_range(0..ops.len());
    for k in 0..ops.len() {
        let (pattern, replacement) = ops[(start + k) % ops.len()];
        if let Some(rel) = body.find(pattern) {
            let abs = header_end + rel;
            let mut out = source.to_owned();
            out.replace_range(abs..abs + pattern.len(), replacement);
            if rtlfixer_verilog::compile(&out).is_ok() && out != source {
                return Some(out);
            }
        }
    }
    None
}

/// Guaranteed functional degradation, used when no operator-level bug
/// applies: invert the first assignment's right-hand side. Always compiles
/// and (for any non-trivial design) fails the testbench.
pub fn degrade_output(source: &str) -> String {
    let header_end = source.find(';').map(|i| i + 1).unwrap_or(0);
    // Prefer a continuous assign; fall back to a procedural assignment.
    for pattern in ["assign ", " <= "] {
        let Some(rel) = source[header_end..].find(pattern) else { continue };
        let after = header_end + rel + pattern.len();
        // For `assign`, skip past `lhs = `.
        let rhs_start = if pattern == "assign " {
            match source[after..].find('=') {
                Some(eq) => after + eq + 1,
                None => continue,
            }
        } else {
            after
        };
        let Some(semi) = source[rhs_start..].find(';') else { continue };
        let rhs = source[rhs_start..rhs_start + semi].trim().to_owned();
        if rhs.is_empty() {
            continue;
        }
        let mut out = source.to_owned();
        out.replace_range(rhs_start..rhs_start + semi, &format!(" ~({rhs})"));
        if rtlfixer_verilog::compile(&out).is_ok() {
            return out;
        }
    }
    source.to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    const COMB: &str = "module top_module(input [7:0] in, output reg [7:0] out);\n\
                        integer i;\n\
                        wire [7:0] tmp;\n\
                        assign tmp = in;\n\
                        always @(*) begin\n\
                        for (i = 0; i < 8; i = i + 1) out[i] = tmp[7 - i];\nend\nendmodule";

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    fn assert_injects(source: &str, category: ErrorCategory) {
        let mutated = inject(source, category, &mut rng())
            .unwrap_or_else(|| panic!("{category:?} not injectable"));
        let analysis = rtlfixer_verilog::compile(&mutated);
        assert!(
            analysis.errors().iter().any(|d| d.category == category),
            "{category:?} missing from: {:?}",
            analysis.errors()
        );
    }

    #[test]
    fn injects_undeclared() {
        assert_injects(COMB, ErrorCategory::UndeclaredIdentifier);
    }

    #[test]
    fn injects_missing_semi() {
        assert_injects(COMB, ErrorCategory::SyntaxError);
    }

    #[test]
    fn injects_wire_lvalue() {
        assert_injects(COMB, ErrorCategory::IllegalProceduralLvalue);
    }

    #[test]
    fn injects_reg_assign() {
        let src = "module top_module(input [7:0] a, output [7:0] y);\nassign y = ~a;\nendmodule";
        assert_injects(src, ErrorCategory::IllegalContinuousLvalue);
    }

    #[test]
    fn injects_input_assign() {
        assert_injects(COMB, ErrorCategory::AssignToInput);
    }

    #[test]
    fn injects_redeclaration() {
        assert_injects(COMB, ErrorCategory::Redeclaration);
    }

    #[test]
    fn injects_unbalanced() {
        assert_injects(COMB, ErrorCategory::UnbalancedBlock);
    }

    #[test]
    fn injects_c_style() {
        assert_injects(COMB, ErrorCategory::CStyleConstruct);
    }

    #[test]
    fn injects_directive() {
        assert_injects(COMB, ErrorCategory::MisplacedDirective);
    }

    #[test]
    fn injects_keyword_ident() {
        assert_injects(COMB, ErrorCategory::KeywordAsIdentifier);
    }

    #[test]
    fn injects_index_oob() {
        let src = "module top_module(input [7:0] a, output [7:0] y);\n\
                   assign y[7] = a[0];\nassign y[6:0] = a[7:1];\nendmodule";
        assert_injects(src, ErrorCategory::IndexOutOfRange);
    }

    #[test]
    fn injects_index_arith_on_conway() {
        let conway = crate::archetypes::system::blueprints()
            .into_iter()
            .find(|b| b.name == "conwaylife")
            .unwrap();
        assert_injects(&conway.solution, ErrorCategory::IndexArithmetic);
    }

    #[test]
    fn injects_phantom_clk_on_pure_comb() {
        let src = "module top_module(input [7:0] a, output reg [7:0] y);\n\
                   always @(*) begin\ny = ~a;\nend\nendmodule";
        assert_injects(src, ErrorCategory::UndeclaredIdentifier);
    }

    #[test]
    fn injects_port_rename_on_hierarchical() {
        let hier = crate::archetypes::system::blueprints()
            .into_iter()
            .find(|b| b.name == "hieradd16")
            .unwrap();
        assert_injects(&hier.solution, ErrorCategory::PortConnectionMismatch);
    }

    #[test]
    fn injects_unknown_module() {
        assert_injects(COMB, ErrorCategory::UnknownModule);
    }

    #[test]
    fn width_mismatch_not_injectable() {
        assert!(inject(COMB, ErrorCategory::WidthMismatch, &mut rng()).is_none());
    }

    #[test]
    fn applicable_categories_nonempty() {
        let cats = applicable_categories(COMB, &mut rng());
        assert!(cats.len() >= 6, "{cats:?}");
    }

    #[test]
    fn functional_bug_compiles_but_differs() {
        let src = "module top_module(input [7:0] a, input [7:0] b, output [7:0] y);\n\
                   assign y = a & b;\nendmodule";
        let mut r = rng();
        let buggy = inject_functional_bug(src, &mut r).expect("bug injectable");
        assert_ne!(buggy, src);
        assert!(rtlfixer_verilog::compile(&buggy).is_ok(), "{buggy}");
    }

    #[test]
    fn functional_bug_actually_fails_simulation_mostly() {
        // Over the real problem set, a functional mutant should usually
        // fail its testbench.
        let problems = crate::suites::verilog_eval_human();
        let mut r = rng();
        let mut failing = 0;
        let mut total = 0;
        for problem in problems.iter().take(12) {
            if let Some(buggy) = inject_functional_bug(&problem.solution, &mut r) {
                total += 1;
                if problem.check(&buggy) != crate::problem::Verdict::Pass {
                    failing += 1;
                }
            }
        }
        assert!(total >= 8, "too few mutable problems: {total}");
        assert!(failing * 10 >= total * 7, "only {failing}/{total} mutants fail simulation");
    }
}
