//! DBSCAN clustering (Schubert et al., TODS 2017 formulation), used by the
//! dataset curation pipeline with Jaccard distance over code token sets
//! (§3.4 of the paper).

/// Cluster assignment for one point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assignment {
    /// Not density-reachable from any core point.
    Noise,
    /// Member of the given cluster (0-based).
    Cluster(usize),
}

/// Runs DBSCAN over `n` points with a pairwise distance function.
///
/// `eps` is the neighbourhood radius, `min_pts` the core-point density
/// threshold (including the point itself).
///
/// # Examples
///
/// ```
/// use rtlfixer_dataset::dbscan::{dbscan, Assignment};
///
/// let points = [0.0_f64, 0.1, 0.2, 5.0, 5.1, 9.9];
/// let assign = dbscan(points.len(), |a, b| (points[a] - points[b]).abs(), 0.3, 2);
/// assert_eq!(assign[0], assign[1]);
/// assert_eq!(assign[3], assign[4]);
/// assert_ne!(assign[0], assign[3]);
/// assert_eq!(assign[5], Assignment::Noise);
/// ```
pub fn dbscan(
    n: usize,
    distance: impl Fn(usize, usize) -> f64,
    eps: f64,
    min_pts: usize,
) -> Vec<Assignment> {
    let neighbours = |p: usize| -> Vec<usize> {
        (0..n).filter(|&q| distance(p, q) <= eps).collect()
    };
    let mut assignment = vec![None::<Assignment>; n];
    let mut cluster = 0usize;
    for point in 0..n {
        if assignment[point].is_some() {
            continue;
        }
        let hood = neighbours(point);
        if hood.len() < min_pts {
            assignment[point] = Some(Assignment::Noise);
            continue;
        }
        assignment[point] = Some(Assignment::Cluster(cluster));
        let mut frontier: Vec<usize> = hood;
        let mut idx = 0;
        while idx < frontier.len() {
            let q = frontier[idx];
            idx += 1;
            match assignment[q] {
                Some(Assignment::Noise) => {
                    assignment[q] = Some(Assignment::Cluster(cluster));
                }
                Some(Assignment::Cluster(_)) => continue,
                None => {
                    assignment[q] = Some(Assignment::Cluster(cluster));
                    let q_hood = neighbours(q);
                    if q_hood.len() >= min_pts {
                        for r in q_hood {
                            if !frontier.contains(&r) {
                                frontier.push(r);
                            }
                        }
                    }
                }
            }
        }
        cluster += 1;
    }
    assignment.into_iter().map(|a| a.expect("all points assigned")).collect()
}

/// Number of distinct clusters in an assignment.
pub fn cluster_count(assignment: &[Assignment]) -> usize {
    assignment
        .iter()
        .filter_map(|a| match a {
            Assignment::Cluster(c) => Some(*c),
            Assignment::Noise => None,
        })
        .max()
        .map_or(0, |max| max + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input() {
        assert!(dbscan(0, |_, _| 0.0, 0.5, 2).is_empty());
    }

    #[test]
    fn single_point_is_noise_with_min_pts_2() {
        assert_eq!(dbscan(1, |_, _| 0.0, 0.5, 2), vec![Assignment::Noise]);
    }

    #[test]
    fn all_identical_points_form_one_cluster() {
        let assign = dbscan(5, |_, _| 0.0, 0.5, 2);
        assert!(assign.iter().all(|a| *a == Assignment::Cluster(0)));
        assert_eq!(cluster_count(&assign), 1);
    }

    #[test]
    fn chain_density_connectivity() {
        // Points 0..5 spaced 0.2 apart chain into one cluster even though
        // the ends are far apart.
        let points: Vec<f64> = (0..6).map(|i| i as f64 * 0.2).collect();
        let assign = dbscan(points.len(), |a, b| (points[a] - points[b]).abs(), 0.25, 2);
        assert_eq!(cluster_count(&assign), 1);
        assert!(assign.iter().all(|a| matches!(a, Assignment::Cluster(0))));
    }

    #[test]
    fn border_point_joins_cluster() {
        // 0.0, 0.1, 0.2 core cluster; 0.45 is within eps of 0.2 only
        // (neighbourhood of size 2 = core with min_pts 2, actually); use
        // min_pts 3 to make it a border point.
        let points = [0.0_f64, 0.1, 0.2, 0.45];
        let assign = dbscan(points.len(), |a, b| (points[a] - points[b]).abs(), 0.3, 3);
        assert_eq!(assign[3], assign[2], "border point adopts the cluster");
    }

    #[test]
    fn two_clusters_and_noise() {
        let points = [0.0_f64, 0.1, 10.0, 10.1, 50.0];
        let assign = dbscan(points.len(), |a, b| (points[a] - points[b]).abs(), 0.5, 2);
        assert_eq!(cluster_count(&assign), 2);
        assert_eq!(assign[4], Assignment::Noise);
        assert_ne!(assign[0], assign[2]);
    }
}
