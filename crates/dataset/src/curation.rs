//! The VerilogEval-syntax curation pipeline (§3.4): sampling → filtering →
//! DBSCAN clustering → representative selection, producing exactly **212**
//! erroneous implementations.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rtlfixer_agent::prefixer;
use rtlfixer_rag::text::jaccard_distance;
use rtlfixer_verilog::diag::ErrorCategory;

use crate::dbscan::{dbscan, Assignment};
use crate::generation::{GenCapability, Generator};
use crate::problem::Problem;
use crate::suites;

/// Paper count: VerilogEval-syntax entries.
pub const SYNTAX_BENCH_COUNT: usize = 212;

/// DBSCAN neighbourhood radius in Jaccard distance.
const EPS: f64 = 0.25;
/// DBSCAN core density.
const MIN_PTS: usize = 2;
/// Candidates sampled per problem per round.
const SAMPLES_PER_PROBLEM: usize = 6;

/// One entry of the syntax debugging dataset: a problem description plus an
/// erroneous implementation with compile errors.
#[derive(Debug, Clone)]
pub struct SyntaxBenchEntry {
    /// Source problem id.
    pub problem_id: String,
    /// Problem description (included in fix prompts).
    pub description: String,
    /// The erroneous implementation (post rule-based normalisation).
    pub code: String,
    /// Error categories present at curation time (ground truth for
    /// analysis; never shown to the agent).
    pub categories: Vec<ErrorCategory>,
    /// Whether the underlying candidate was functionally correct before
    /// syntax injection (used by the pass@k experiments).
    pub latent_correct: bool,
}

/// Filtering stages of §3.4, applied to a raw sample.
///
/// Returns the normalised code if the sample survives: markdown extracted,
/// module statement validated, extraneous prose stripped, non-empty body.
pub fn filter_sample(raw: &str) -> Option<String> {
    let code = prefixer::extract_markdown(raw);
    let code = prefixer::strip_prose(&code);
    // Module statement validation.
    let module_pos = code.find("module")?;
    // Non-empty body: there must be content between the header `;` and the
    // final `endmodule` (if present).
    let header_semi = code[module_pos..].find(';').map(|i| module_pos + i)?;
    let body_end = code.rfind("endmodule").unwrap_or(code.len());
    if body_end <= header_semi {
        return None;
    }
    let body = code[header_semi + 1..body_end].trim();
    if body.is_empty() {
        return None;
    }
    Some(code.trim().to_owned())
}

/// Builds the VerilogEval-syntax dataset: exactly
/// [`SYNTAX_BENCH_COUNT`] entries, deterministically from `seed`.
///
/// Pipeline per §3.4: candidates are sampled from the VerilogEval problems
/// (the paper used One-shot and ReAct sampling with gpt-3.5-turbo; here the
/// generation model), only compile-failing samples are kept, the filter
/// stages run, and per-problem DBSCAN with Jaccard distance groups similar
/// implementations so one representative per cluster (plus noise points) is
/// selected.
pub fn verilog_eval_syntax(seed: u64) -> Vec<SyntaxBenchEntry> {
    verilog_eval_syntax_shared(seed).as_ref().clone()
}

/// Shared-handle variant of [`verilog_eval_syntax`].
///
/// Building the dataset compiles hundreds of candidates; experiments call
/// this repeatedly with the same seed, so the build is memoised per process
/// and returned behind an `Arc` so parallel evaluation shares one copy
/// instead of cloning 212 entries per caller.
pub fn verilog_eval_syntax_shared(seed: u64) -> std::sync::Arc<Vec<SyntaxBenchEntry>> {
    use std::collections::HashMap;
    use std::sync::{Arc, Mutex, OnceLock};
    static CACHE: OnceLock<Mutex<HashMap<u64, Arc<Vec<SyntaxBenchEntry>>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = cache.lock().expect("cache lock").get(&seed) {
        return Arc::clone(hit);
    }
    let built = Arc::new(build_verilog_eval_syntax(seed));
    Arc::clone(cache.lock().expect("cache lock").entry(seed).or_insert(built))
}

fn build_verilog_eval_syntax(seed: u64) -> Vec<SyntaxBenchEntry> {
    let problems = suites::verilog_eval_human();
    let mut entries: Vec<SyntaxBenchEntry> = Vec::new();
    let mut round = 0u64;
    while entries.len() < SYNTAX_BENCH_COUNT && round < 24 {
        for (pidx, problem) in problems.iter().enumerate() {
            if entries.len() >= SYNTAX_BENCH_COUNT {
                break;
            }
            let generator_seed = seed
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add(round * 10_007 + pidx as u64);
            let selected = curate_problem(problem, generator_seed);
            entries.extend(selected);
        }
        round += 1;
    }
    entries.truncate(SYNTAX_BENCH_COUNT);
    ensure_index_arithmetic_class(&mut entries, &problems);
    entries
}

/// The paper's Figure 6 failure class (arithmetic index errors, canonical
/// example `conwaylife`) must be represented in the dataset: the 98.5%
/// plateau of Table 1 exists precisely because this class resists fixing.
/// If the weighted sampling happened to produce none, one is derived
/// directly from the conwaylife problem, as in the paper's own dataset.
fn ensure_index_arithmetic_class(entries: &mut [SyntaxBenchEntry], problems: &[Problem]) {
    let present = entries
        .iter()
        .any(|e| e.categories.contains(&ErrorCategory::IndexArithmetic));
    if present {
        return;
    }
    let Some(conway) = problems.iter().find(|p| p.id.ends_with("conwaylife")) else {
        return;
    };
    let mut rng = StdRng::seed_from_u64(0xF166);
    let Some(code) = crate::mutate::inject(
        &conway.solution,
        ErrorCategory::IndexArithmetic,
        &mut rng,
    ) else {
        return;
    };
    if let Some(slot) = entries.last_mut() {
        *slot = SyntaxBenchEntry {
            problem_id: conway.id.clone(),
            description: conway.description.clone(),
            code,
            categories: vec![ErrorCategory::IndexArithmetic],
            latent_correct: true,
        };
    }
}

/// Runs the sample → filter → cluster → select pipeline for one problem.
fn curate_problem(problem: &Problem, seed: u64) -> Vec<SyntaxBenchEntry> {
    let _rng = StdRng::seed_from_u64(seed);
    let mut generator = Generator::new(GenCapability::Gpt35, seed);
    let mut pool: Vec<SyntaxBenchEntry> = Vec::new();
    for _ in 0..SAMPLES_PER_PROBLEM {
        let candidate = generator.sample(problem);
        let Some(code) = filter_sample(&candidate.code) else { continue };
        let analysis = rtlfixer_verilog::compile(&code);
        if analysis.is_ok() {
            continue; // only error-inducing samples are retained
        }
        let mut categories: Vec<ErrorCategory> =
            analysis.errors().iter().map(|d| d.category).collect();
        categories.sort_by_key(|c| *c as u8);
        categories.dedup();
        pool.push(SyntaxBenchEntry {
            problem_id: problem.id.clone(),
            description: problem.description.clone(),
            code,
            categories,
            latent_correct: candidate.latent_correct,
        });
    }
    if pool.is_empty() {
        return pool;
    }
    // Cluster near-duplicates, keep one representative per cluster plus all
    // noise points (they are diverse by definition).
    let assignment = dbscan(
        pool.len(),
        |a, b| jaccard_distance(&pool[a].code, &pool[b].code),
        EPS,
        MIN_PTS,
    );
    let mut kept = Vec::new();
    let mut seen_clusters = Vec::new();
    for (idx, assign) in assignment.iter().enumerate() {
        match assign {
            Assignment::Noise => kept.push(pool[idx].clone()),
            Assignment::Cluster(c) => {
                if !seen_clusters.contains(c) {
                    seen_clusters.push(*c);
                    kept.push(pool[idx].clone());
                }
            }
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_extracts_and_validates() {
        let raw = "Sure!\n```verilog\nmodule m(input a, output y);\nassign y = a\nendmodule\n```";
        let code = filter_sample(raw).expect("survives filtering");
        assert!(code.starts_with("module"));
        assert!(code.ends_with("endmodule"));
    }

    #[test]
    fn filter_rejects_empty_body() {
        assert!(filter_sample("module m(input a, output y);\nendmodule").is_none());
        assert!(filter_sample("no verilog here at all").is_none());
    }

    #[test]
    fn filter_rejects_missing_module() {
        assert!(filter_sample("assign y = a;").is_none());
    }

    #[test]
    fn dataset_has_exactly_212_entries() {
        let dataset = verilog_eval_syntax(7);
        assert_eq!(dataset.len(), SYNTAX_BENCH_COUNT);
    }

    #[test]
    fn every_entry_fails_compilation() {
        let dataset = verilog_eval_syntax(7);
        for entry in dataset.iter().step_by(9) {
            assert!(
                !rtlfixer_verilog::compile(&entry.code).is_ok(),
                "{} unexpectedly compiles",
                entry.problem_id
            );
            assert!(!entry.categories.is_empty());
        }
    }

    #[test]
    fn dataset_is_deterministic() {
        let a = verilog_eval_syntax(3);
        let b = verilog_eval_syntax(3);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x.code == y.code));
    }

    #[test]
    fn dataset_covers_many_categories() {
        let dataset = verilog_eval_syntax(7);
        let mut cats: Vec<ErrorCategory> =
            dataset.iter().flat_map(|e| e.categories.clone()).collect();
        cats.sort_by_key(|c| *c as u8);
        cats.dedup();
        assert!(cats.len() >= 8, "only {cats:?}");
    }

    #[test]
    fn dataset_category_mix_follows_injection_weights() {
        // The high-weight categories must dominate the curated dataset.
        let dataset = verilog_eval_syntax(7);
        let count = |cat: ErrorCategory| {
            dataset.iter().filter(|e| e.categories.contains(&cat)).count()
        };
        let undeclared = count(ErrorCategory::UndeclaredIdentifier);
        let syntax = count(ErrorCategory::SyntaxError);
        let index_arith = count(ErrorCategory::IndexArithmetic);
        assert!(undeclared >= 20, "undeclared {undeclared}");
        assert!(syntax >= 20, "syntax {syntax}");
        // The Figure 6 class stays rare but present.
        assert!(index_arith >= 1, "index arithmetic must appear");
        assert!(
            index_arith * 10 < undeclared + syntax,
            "index arithmetic must be rare: {index_arith}"
        );
    }

    #[test]
    fn dataset_mixes_latent_correct_and_wrong_bases() {
        // Fixing syntax should be able to *recover* some samples (latently
        // correct) but not all — both populations must exist.
        let dataset = verilog_eval_syntax(7);
        let correct = dataset.iter().filter(|e| e.latent_correct).count();
        assert!(correct > 20, "latently-correct entries: {correct}");
        assert!(correct < dataset.len() - 20, "latently-wrong entries missing");
    }

    #[test]
    fn dataset_spans_many_problems() {
        let dataset = verilog_eval_syntax(7);
        let mut problems: Vec<&str> =
            dataset.iter().map(|e| e.problem_id.as_str()).collect();
        problems.sort_unstable();
        problems.dedup();
        assert!(problems.len() >= 40, "only {} distinct problems", problems.len());
    }
}
