//! # rtlfixer-dataset
//!
//! The benchmark substrate of the RTLFixer reproduction:
//!
//! * [`archetypes`] — ~45 hand-written circuit archetypes (plus width
//!   variants), each with a correct Verilog solution and a Rust golden
//!   model, including the paper's named examples `vector100r` (Figure 5)
//!   and `conwaylife` (Figure 6).
//! * [`suites`] — VerilogEval-Human (156 problems, 71 easy / 85 hard),
//!   VerilogEval-Machine (143) and RTLLM (29) suites with the paper's exact
//!   shapes.
//! * [`mutate`] — syntax-error injectors (one per error category; each
//!   verifies the intended category actually appears) plus functional-bug
//!   injection.
//! * [`generation`] — the calibrated candidate generation model standing in
//!   for LLM sampling (DESIGN.md §1).
//! * [`dbscan`] + [`curation`] — the §3.4 pipeline producing the
//!   VerilogEval-syntax debugging dataset (exactly 212 entries).
//!
//! ## Example
//!
//! ```
//! use rtlfixer_dataset::suites;
//! use rtlfixer_dataset::problem::Verdict;
//!
//! let problem = suites::find_problem("human/vector100r").expect("exists");
//! // Reference solutions pass their own golden-model testbench.
//! let solution = problem.solution.clone();
//! assert_eq!(problem.check(&solution), Verdict::Pass);
//! ```

#![warn(missing_docs)]

pub mod archetypes;
pub mod curation;
pub mod dbscan;
pub mod generation;
pub mod golden;
pub mod mutate;
pub mod problem;
pub mod suites;

pub use curation::{
    verilog_eval_syntax, verilog_eval_syntax_shared, SyntaxBenchEntry, SYNTAX_BENCH_COUNT,
};
pub use problem::{Difficulty, Problem, Suite, Verdict};
pub use suites::{rtllm, verilog_eval_human, verilog_eval_machine};
