//! Problem archetypes: hand-written circuits with golden models.
//!
//! Each archetype module contributes [`Blueprint`]s — a correct Verilog
//! solution plus a Rust golden model and port metadata. `crate::suites`
//! instantiates blueprints into the benchmark suites with suite-specific
//! descriptions and exact paper-matching counts.
//!
//! Every blueprint is self-checked by the dataset test suite: its reference
//! solution must compile with the frontend and match its own golden model in
//! simulation.

pub mod arith;
pub mod comb;
pub mod fsm;
pub mod seq;
pub mod system;

use std::sync::Arc;

use rtlfixer_sim::testbench::Clocking;

use crate::problem::{Difficulty, GoldenFactory};

/// An uninstantiated problem: everything but the suite/id assignment.
#[derive(Clone)]
pub struct Blueprint {
    /// Short unique name, e.g. `reverse8`.
    pub name: String,
    /// High-level, human-style description (VerilogEval-Human flavour).
    pub description: String,
    /// Low-level functional detail used to synthesise the machine-style
    /// description.
    pub detail: String,
    /// Input ports (name, width), excluding any clock.
    pub inputs: Vec<(String, u32)>,
    /// Output ports (name, width).
    pub outputs: Vec<(String, u32)>,
    /// Clocking discipline.
    pub clocking: Clocking,
    /// Reference implementation (must pass its own golden model).
    pub solution: String,
    /// Golden model factory.
    pub golden: GoldenFactory,
    /// Difficulty label.
    pub difficulty: Difficulty,
    /// Stimulus length.
    pub test_cycles: usize,
}

impl Blueprint {
    /// Synthesises the VerilogEval-Machine style description: a mechanical,
    /// low-level restatement (port-by-port plus the functional detail).
    pub fn machine_description(&self) -> String {
        let mut text = String::from(
            "I want you to create a Verilog module named top_module with the following \
             interface.",
        );
        for (name, width) in &self.inputs {
            text.push_str(&format!(" Input port {name} is {width} bit{} wide.",
                if *width == 1 { "" } else { "s" }));
        }
        if self.is_sequential() {
            text.push_str(" Input port clk is the clock; all state updates on the positive edge of clk.");
        }
        for (name, width) in &self.outputs {
            text.push_str(&format!(" Output port {name} is {width} bit{} wide.",
                if *width == 1 { "" } else { "s" }));
        }
        text.push(' ');
        text.push_str(&self.detail);
        text
    }

    /// Whether the blueprint is clocked.
    pub fn is_sequential(&self) -> bool {
        matches!(self.clocking, Clocking::Sequential { .. })
    }
}

/// Shorthand for port lists.
pub fn ports(list: &[(&str, u32)]) -> Vec<(String, u32)> {
    list.iter().map(|(n, w)| (n.to_string(), *w)).collect()
}

/// Shorthand for a combinational blueprint.
#[allow(clippy::too_many_arguments)]
pub fn comb_blueprint(
    name: &str,
    description: &str,
    detail: &str,
    inputs: &[(&str, u32)],
    outputs: &[(&str, u32)],
    solution: String,
    golden: GoldenFactory,
    difficulty: Difficulty,
) -> Blueprint {
    Blueprint {
        name: name.to_owned(),
        description: description.to_owned(),
        detail: detail.to_owned(),
        inputs: ports(inputs),
        outputs: ports(outputs),
        clocking: Clocking::Combinational,
        solution,
        golden,
        difficulty,
        test_cycles: 48,
    }
}

/// Shorthand for a clocked blueprint (`clk` clock).
#[allow(clippy::too_many_arguments)]
pub fn seq_blueprint(
    name: &str,
    description: &str,
    detail: &str,
    inputs: &[(&str, u32)],
    outputs: &[(&str, u32)],
    solution: String,
    golden: GoldenFactory,
    difficulty: Difficulty,
) -> Blueprint {
    Blueprint {
        name: name.to_owned(),
        description: description.to_owned(),
        detail: detail.to_owned(),
        inputs: ports(inputs),
        outputs: ports(outputs),
        clocking: Clocking::Sequential { clock: "clk".to_owned() },
        solution,
        golden,
        difficulty,
        test_cycles: 64,
    }
}

/// Wraps a closure into a [`GoldenFactory`].
pub fn golden<F, M>(factory: F) -> GoldenFactory
where
    F: Fn() -> M + Send + Sync + 'static,
    M: rtlfixer_sim::ReferenceModel + Send + 'static,
{
    Arc::new(move || Box::new(factory()))
}

/// All blueprints from every archetype module.
pub fn all_blueprints() -> Vec<Blueprint> {
    let mut all = Vec::new();
    all.extend(comb::blueprints());
    all.extend(arith::blueprints());
    all.extend(seq::blueprints());
    all.extend(fsm::blueprints());
    all.extend(system::blueprints());
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blueprint_names_are_unique() {
        let mut names: Vec<String> = all_blueprints().into_iter().map(|b| b.name).collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate blueprint names");
    }

    #[test]
    fn machine_description_mentions_every_port() {
        for bp in all_blueprints().into_iter().take(10) {
            let text = bp.machine_description();
            for (name, _) in bp.inputs.iter().chain(&bp.outputs) {
                assert!(text.contains(name.as_str()), "{}: missing {name}", bp.name);
            }
        }
    }
}
