//! System-scale archetypes (RTLLM-style designs plus the paper's named
//! examples `vector100r` and `conwaylife`).

use crate::archetypes::{comb_blueprint, golden, seq_blueprint, Blueprint};
use crate::golden::{input_u128, out1, outs, Comb, Seq};
use crate::problem::Difficulty;
use rtlfixer_sim::value::LogicVec;

fn mask(width: u32) -> u128 {
    if width >= 128 {
        u128::MAX
    } else {
        (1u128 << width) - 1
    }
}

/// The paper's Figure 5 task: reverse a 100-bit vector (sequential wrapper,
/// matching the erroneous implementation shown in the paper).
fn vector100r() -> Blueprint {
    let width = 100u32;
    comb_blueprint(
        "vector100r",
        "Given a 100-bit input vector [99:0], reverse its bit ordering.",
        "out[i] = in[99 - i] for every bit i.",
        &[("in", width)],
        &[("out", width)],
        "module top_module(input [99:0] in, output reg [99:0] out);\n\
         integer i;\nalways @* begin\n\
         for (i = 0; i < 100; i = i + 1) out[i] = in[99 - i];\nend\nendmodule"
            .to_owned(),
        golden(move || {
            Comb::new(move |ins| {
                let v = input_u128(ins, "in");
                let mut r = 0u128;
                for i in 0..width {
                    if (v >> i) & 1 == 1 {
                        r |= 1 << (width - 1 - i);
                    }
                }
                out1("out", width, r)
            })
        }),
        Difficulty::Easy,
    )
}

/// Conway's Game of Life on a 16×16 toroidal grid — the paper's Figure 6
/// failure example (256-bit state, arithmetic neighbour indexing).
fn conwaylife() -> Blueprint {
    // Build the generate-loop solution with modulo-wrapped neighbours.
    let mut body = String::new();
    body.push_str(
        "module top_module(input clk, input load, input [255:0] data, output reg [255:0] q);\n\
         wire [255:0] next;\ngenvar i, j;\ngenerate\n\
         for (i = 0; i < 16; i = i + 1) begin : row\n\
           for (j = 0; j < 16; j = j + 1) begin : col\n\
             wire [3:0] count;\n\
             assign count = q[((i+15)%16)*16 + ((j+15)%16)] + q[((i+15)%16)*16 + j]\n\
                          + q[((i+15)%16)*16 + ((j+1)%16)]  + q[i*16 + ((j+15)%16)]\n\
                          + q[i*16 + ((j+1)%16)]            + q[((i+1)%16)*16 + ((j+15)%16)]\n\
                          + q[((i+1)%16)*16 + j]            + q[((i+1)%16)*16 + ((j+1)%16)];\n\
             assign next[i*16 + j] = (count == 3) | ((count == 2) & q[i*16 + j]);\n\
           end\n\
         end\nendgenerate\n\
         always @(posedge clk) begin\n  if (load) q <= data; else q <= next;\nend\nendmodule",
    );
    Blueprint {
        name: "conwaylife".to_owned(),
        description: "Implement one step per clock of Conway's Game of Life on a 16x16 \
                      toroidal grid stored as a 256-bit vector (row-major). A load input \
                      initialises the grid from data."
            .to_owned(),
        detail: "Cell (i,j) lives at bit i*16+j. Each cycle, a cell with exactly 3 live \
                 neighbours becomes alive; with 2 it keeps its state; otherwise it dies. \
                 Neighbourhoods wrap around the edges (torus)."
            .to_owned(),
        inputs: vec![("load".into(), 1), ("data".into(), 256)],
        outputs: vec![("q".into(), 256)],
        clocking: rtlfixer_sim::testbench::Clocking::Sequential { clock: "clk".into() },
        solution: body,
        golden: std::sync::Arc::new(|| {
            Box::new(Seq::new(ConwayState::default(), |state, ins| {
                let load = input_u128(ins, "load") == 1;
                if load {
                    state.grid = ins
                        .get("data")
                        .cloned()
                        .unwrap_or_else(|| LogicVec::zeros(256));
                } else {
                    state.grid = conway_step(&state.grid);
                }
                std::collections::BTreeMap::from([("q".to_owned(), state.grid.clone())])
            }))
        }),
        difficulty: Difficulty::Hard,
        test_cycles: 24,
    }
}

#[derive(Clone)]
struct ConwayState {
    grid: LogicVec,
}

impl Default for ConwayState {
    fn default() -> Self {
        ConwayState { grid: LogicVec::zeros(256) }
    }
}

fn conway_step(grid: &LogicVec) -> LogicVec {
    use rtlfixer_sim::value::Bit;
    let at = |i: usize, j: usize| -> u32 {
        let idx = (i % 16) * 16 + (j % 16);
        u32::from(grid.bit(idx as u32) == Bit::One)
    };
    let mut next = LogicVec::zeros(256);
    for i in 0..16usize {
        for j in 0..16usize {
            let count = at(i + 15, j + 15)
                + at(i + 15, j)
                + at(i + 15, j + 1)
                + at(i, j + 15)
                + at(i, j + 1)
                + at(i + 1, j + 15)
                + at(i + 1, j)
                + at(i + 1, j + 1);
            let alive = count == 3 || (count == 2 && at(i, j) == 1);
            if alive {
                next.set_bit((i * 16 + j) as u32, Bit::One);
            }
        }
    }
    next
}

/// Single-port synchronous-write, asynchronous-read RAM.
fn ram(addr_bits: u32, data_bits: u32) -> Blueprint {
    let depth = 1u32 << addr_bits;
    seq_blueprint(
        &format!("ram{depth}x{data_bits}"),
        &format!(
            "Build a {depth}x{data_bits} single-port RAM: synchronous write when we is \
             high, asynchronous read."
        ),
        "On posedge clk, if we then mem[addr] <= din. dout = mem[addr] combinationally.",
        &[("we", 1), ("addr", addr_bits), ("din", data_bits)],
        &[("dout", data_bits)],
        format!(
            "module top_module(input clk, input we, input [{aw}:0] addr, \
             input [{dw}:0] din, output [{dw}:0] dout);\n\
             reg [{dw}:0] mem [0:{top}];\n\
             always @(posedge clk) if (we) mem[addr] <= din;\n\
             assign dout = mem[addr];\nendmodule",
            aw = addr_bits - 1,
            dw = data_bits - 1,
            top = depth - 1
        ),
        golden(move || {
            Seq::new(vec![0u128; depth as usize], move |mem, ins| {
                let addr = input_u128(ins, "addr") as usize;
                if input_u128(ins, "we") == 1 {
                    mem[addr] = input_u128(ins, "din");
                }
                out1("dout", data_bits, mem[addr])
            })
        }),
        Difficulty::Hard,
    )
}

/// Two-read-one-write register file (write-first on read-after-write is
/// avoided by comparing post-edge, matching async reads of the new value).
fn register_file() -> Blueprint {
    seq_blueprint(
        "regfile8x8",
        "Build an 8-entry, 8-bit register file with one synchronous write port and two \
         asynchronous read ports. Register 0 is hardwired to zero.",
        "On posedge clk, if we and waddr != 0 then rf[waddr] <= wdata. \
         rdata1 = rf[raddr1], rdata2 = rf[raddr2], with rf[0] always 0.",
        &[("we", 1), ("waddr", 3), ("wdata", 8), ("raddr1", 3), ("raddr2", 3)],
        &[("rdata1", 8), ("rdata2", 8)],
        "module top_module(input clk, input we, input [2:0] waddr, input [7:0] wdata, \
         input [2:0] raddr1, input [2:0] raddr2, \
         output [7:0] rdata1, output [7:0] rdata2);\n\
         reg [7:0] rf [0:7];\n\
         always @(posedge clk) if (we && waddr != 0) rf[waddr] <= wdata;\n\
         assign rdata1 = (raddr1 == 0) ? 8'h00 : rf[raddr1];\n\
         assign rdata2 = (raddr2 == 0) ? 8'h00 : rf[raddr2];\nendmodule"
            .to_owned(),
        golden(|| {
            Seq::new([0u128; 8], |rf, ins| {
                let waddr = input_u128(ins, "waddr") as usize;
                if input_u128(ins, "we") == 1 && waddr != 0 {
                    rf[waddr] = input_u128(ins, "wdata");
                }
                let read = |addr: usize| if addr == 0 { 0 } else { rf[addr] };
                outs(&[
                    ("rdata1", 8, read(input_u128(ins, "raddr1") as usize)),
                    ("rdata2", 8, read(input_u128(ins, "raddr2") as usize)),
                ])
            })
        }),
        Difficulty::Hard,
    )
}

/// FIFO occupancy tracker with full/empty flags (the control half of a FIFO).
fn fifo_counter(depth_bits: u32) -> Blueprint {
    let depth = 1u128 << depth_bits;
    seq_blueprint(
        &format!("fifoctl{depth}"),
        &format!(
            "Build the occupancy controller of a depth-{depth} FIFO: track the element \
             count under push/pop and produce full and empty flags."
        ),
        "count increments on push (when not full), decrements on pop (when not empty); \
         simultaneous push+pop leaves it unchanged. full = (count == DEPTH), \
         empty = (count == 0).",
        &[("reset", 1), ("push", 1), ("pop", 1)],
        &[("count", depth_bits + 1), ("full", 1), ("empty", 1)],
        format!(
            "module top_module(input clk, input reset, input push, input pop, \
             output reg [{cw}:0] count, output full, output empty);\n\
             assign full = (count == {depth});\n\
             assign empty = (count == 0);\n\
             always @(posedge clk) begin\n\
               if (reset) count <= 0;\n\
               else if (push && !pop && !full) count <= count + 1;\n\
               else if (pop && !push && !empty) count <= count - 1;\n\
             end\nendmodule",
            cw = depth_bits
        ),
        golden(move || {
            Seq::new(0u128, move |count, ins| {
                let push = input_u128(ins, "push") == 1;
                let pop = input_u128(ins, "pop") == 1;
                if input_u128(ins, "reset") == 1 {
                    *count = 0;
                } else if push && !pop && *count < depth {
                    *count += 1;
                } else if pop && !push && *count > 0 {
                    *count -= 1;
                }
                outs(&[
                    ("count", depth_bits + 1, *count),
                    ("full", 1, u128::from(*count == depth)),
                    ("empty", 1, u128::from(*count == 0)),
                ])
            })
        }),
        Difficulty::Hard,
    )
}

/// Round-robin arbiter over 4 requesters with registered one-hot grants.
fn round_robin4() -> Blueprint {
    seq_blueprint(
        "rrarb4",
        "Build a 4-requester round-robin arbiter: each cycle grant the first requester \
         after the previously granted one (cyclically); grants are registered one-hot.",
        "Starting from (last+1) mod 4, scan requesters cyclically and grant the first \
         active one. If none request, no grant and the pointer holds.",
        &[("reset", 1), ("req", 4)],
        &[("gnt", 4)],
        "module top_module(input clk, input reset, input [3:0] req, output reg [3:0] gnt);\n\
         reg [1:0] last;\n\
         reg [1:0] pick;\n\
         reg hit;\n\
         integer k;\n\
         always @(posedge clk) begin\n\
           if (reset) begin gnt <= 0; last <= 3; end\n\
           else begin\n\
             hit = 0;\n\
             pick = 0;\n\
             for (k = 1; k <= 4; k = k + 1) begin\n\
               if (!hit && req[(last + k) % 4]) begin\n\
                 pick = (last + k) % 4;\n\
                 hit = 1;\n\
               end\n\
             end\n\
             if (hit) begin gnt <= 4'b0001 << pick; last <= pick; end\n\
             else gnt <= 4'b0000;\n\
           end\n\
         end\nendmodule"
            .to_owned(),
        golden(|| {
            Seq::new((3u128, 0u128), |state, ins| {
                let (mut last, mut gnt) = *state;
                let _ = gnt;
                if input_u128(ins, "reset") == 1 {
                    last = 3;
                    gnt = 0;
                } else {
                    let req = input_u128(ins, "req");
                    gnt = 0;
                    for k in 1..=4u128 {
                        let idx = (last + k) % 4;
                        if (req >> idx) & 1 == 1 {
                            gnt = 1 << idx;
                            last = idx;
                            break;
                        }
                    }
                }
                *state = (last, gnt);
                out1("gnt", 4, gnt)
            })
        }),
        Difficulty::Hard,
    )
}

/// Multiply-accumulate unit.
fn mac8() -> Blueprint {
    seq_blueprint(
        "mac8",
        "Build an 8x8 multiply-accumulate unit with a 24-bit accumulator and \
         synchronous clear.",
        "On posedge clk: if clear, acc <= 0; else acc <= acc + a * b.",
        &[("clear", 1), ("a", 8), ("b", 8)],
        &[("acc", 24)],
        "module top_module(input clk, input clear, input [7:0] a, input [7:0] b, \
         output reg [23:0] acc);\n\
         always @(posedge clk) begin\n\
           if (clear) acc <= 0;\n\
           else acc <= acc + a * b;\nend\nendmodule"
            .to_owned(),
        golden(|| {
            Seq::new(0u128, |acc, ins| {
                if input_u128(ins, "clear") == 1 {
                    *acc = 0;
                } else {
                    *acc = (*acc + input_u128(ins, "a") * input_u128(ins, "b")) & mask(24);
                }
                out1("acc", 24, *acc)
            })
        }),
        Difficulty::Hard,
    )
}

/// BCD (decimal) counter digit pair.
fn bcd_counter() -> Blueprint {
    seq_blueprint(
        "bcd2",
        "Build a two-digit BCD counter (00 to 99): each digit is a 4-bit decimal digit; \
         the ones digit wraps at 9 carrying into the tens digit.",
        "On posedge clk: if reset, both digits 0; ones counts 0-9, carrying into tens, \
         which also wraps at 9.",
        &[("reset", 1)],
        &[("ones", 4), ("tens", 4)],
        "module top_module(input clk, input reset, output reg [3:0] ones, \
         output reg [3:0] tens);\n\
         always @(posedge clk) begin\n\
           if (reset) begin ones <= 0; tens <= 0; end\n\
           else if (ones == 9) begin\n\
             ones <= 0;\n\
             if (tens == 9) tens <= 0; else tens <= tens + 1;\n\
           end\n\
           else ones <= ones + 1;\n\
         end\nendmodule"
            .to_owned(),
        golden(|| {
            Seq::new((0u128, 0u128), |state, ins| {
                let (mut ones, mut tens) = *state;
                if input_u128(ins, "reset") == 1 {
                    ones = 0;
                    tens = 0;
                } else if ones == 9 {
                    ones = 0;
                    tens = if tens == 9 { 0 } else { tens + 1 };
                } else {
                    ones += 1;
                }
                *state = (ones, tens);
                outs(&[("ones", 4, ones), ("tens", 4, tens)])
            })
        }),
        Difficulty::Hard,
    )
}

/// Gray-code counter (registered Gray output).
fn gray_counter(width: u32) -> Blueprint {
    seq_blueprint(
        &format!("grayctr{width}"),
        &format!(
            "Build a {width}-bit Gray-code counter: the output steps through the Gray \
             sequence, changing exactly one bit per cycle."
        ),
        "Maintain a binary counter b; output g = b ^ (b >> 1).",
        &[("reset", 1)],
        &[("g", width)],
        format!(
            "module top_module(input clk, input reset, output [{w}:0] g);\n\
             reg [{w}:0] b;\n\
             always @(posedge clk) begin\n\
               if (reset) b <= 0; else b <= b + 1;\nend\n\
             assign g = b ^ (b >> 1);\nendmodule",
            w = width - 1
        ),
        golden(move || {
            Seq::new(0u128, move |b, ins| {
                *b = if input_u128(ins, "reset") == 1 {
                    0
                } else {
                    b.wrapping_add(1) & mask(width)
                };
                out1("g", width, (*b ^ (*b >> 1)) & mask(width))
            })
        }),
        Difficulty::Hard,
    )
}

/// Baud-rate tick generator.
fn baud_gen(divisor: u128) -> Blueprint {
    let width = (128 - (divisor - 1).leading_zeros()).max(1);
    seq_blueprint(
        &format!("baud{divisor}"),
        &format!(
            "Build a baud tick generator: emit a registered one-cycle tick every \
             {divisor} clock cycles."
        ),
        &format!("A modulo-{divisor} counter; tick registers high on the wrap cycle."),
        &[("reset", 1)],
        &[("tick", 1)],
        format!(
            "module top_module(input clk, input reset, output reg tick);\n\
             reg [{w}:0] cnt;\n\
             always @(posedge clk) begin\n\
               if (reset) begin cnt <= 0; tick <= 0; end\n\
               else if (cnt == {top}) begin cnt <= 0; tick <= 1; end\n\
               else begin cnt <= cnt + 1; tick <= 0; end\n\
             end\nendmodule",
            w = width - 1,
            top = divisor - 1
        ),
        golden(move || {
            Seq::new((0u128, 0u128), move |state, ins| {
                let (mut cnt, mut tick) = *state;
                let _ = tick;
                if input_u128(ins, "reset") == 1 {
                    cnt = 0;
                    tick = 0;
                } else if cnt == divisor - 1 {
                    cnt = 0;
                    tick = 1;
                } else {
                    cnt += 1;
                    tick = 0;
                }
                *state = (cnt, tick);
                out1("tick", 1, tick)
            })
        }),
        Difficulty::Hard,
    )
}

/// Instantiation-based design: a 16-bit ripple adder built from two 8-bit
/// child adders (exercises the port-connection machinery end to end).
fn hierarchical_adder() -> Blueprint {
    comb_blueprint(
        "hieradd16",
        "Build a 16-bit adder out of two 8-bit adder submodules connected through the \
         intermediate carry.",
        "An add8 submodule adds the low halves producing a carry into a second add8 \
         for the high halves.",
        &[("a", 16), ("b", 16)],
        &[("sum", 16), ("cout", 1)],
        "module add8(input [7:0] x, input [7:0] y, input cin, output [7:0] s, output co);\n\
         assign {co, s} = x + y + cin;\nendmodule\n\
         module top_module(input [15:0] a, input [15:0] b, output [15:0] sum, output cout);\n\
         wire carry;\n\
         add8 lo(.x(a[7:0]), .y(b[7:0]), .cin(1'b0), .s(sum[7:0]), .co(carry));\n\
         add8 hi(.x(a[15:8]), .y(b[15:8]), .cin(carry), .s(sum[15:8]), .co(cout));\nendmodule"
            .to_owned(),
        golden(|| {
            Comb::new(|ins| {
                let total = input_u128(ins, "a") + input_u128(ins, "b");
                outs(&[("sum", 16, total & 0xFFFF), ("cout", 1, total >> 16)])
            })
        }),
        Difficulty::Hard,
    )
}

/// All system-scale blueprints.
pub fn blueprints() -> Vec<Blueprint> {
    vec![
        vector100r(),
        conwaylife(),
        ram(4, 8),
        ram(5, 16),
        register_file(),
        fifo_counter(3),
        fifo_counter(4),
        round_robin4(),
        mac8(),
        bcd_counter(),
        gray_counter(8),
        gray_counter(16),
        baud_gen(7),
        baud_gen(13),
        hierarchical_adder(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Suite, Verdict};
    use crate::suites::problem_from_blueprint;

    #[test]
    fn every_system_solution_passes_its_golden_model() {
        for bp in blueprints() {
            let problem = problem_from_blueprint(&bp, Suite::Rtllm, "t");
            assert_eq!(
                problem.check(&problem.solution.clone()),
                Verdict::Pass,
                "blueprint {} reference solution failed",
                bp.name
            );
        }
    }

    #[test]
    fn conway_blinker_oscillates() {
        // A horizontal blinker at row 8, cols 7..9 flips to vertical.
        use rtlfixer_sim::value::Bit;
        let mut grid = LogicVec::zeros(256);
        for j in 7..10 {
            grid = grid.with_bit(8 * 16 + j, Bit::One);
        }
        let next = conway_step(&grid);
        for i in 7..10u32 {
            assert_eq!(next.bit(i * 16 + 8), Bit::One, "row {i}");
        }
        assert_eq!(next.bit(8 * 16 + 7), Bit::Zero);
        let back = conway_step(&next);
        assert_eq!(back, grid, "blinker has period 2");
    }
}
