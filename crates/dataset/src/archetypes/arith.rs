//! Arithmetic archetypes: adders, comparators, ALUs, shifters.

use crate::archetypes::{comb_blueprint, golden, Blueprint};
use crate::golden::{input_u128, out1, outs, Comb};
use crate::problem::Difficulty;

fn mask(width: u32) -> u128 {
    if width >= 128 {
        u128::MAX
    } else {
        (1u128 << width) - 1
    }
}

fn adder(width: u32) -> Blueprint {
    comb_blueprint(
        &format!("add{width}"),
        &format!("Implement a {width}-bit adder with carry out."),
        "sum = a + b (low bits), cout = carry out of the top bit.",
        &[("a", width), ("b", width)],
        &[("sum", width), ("cout", 1)],
        format!(
            "module top_module(input [{w}:0] a, input [{w}:0] b, output [{w}:0] sum, output cout);\n\
             assign {{cout, sum}} = a + b;\nendmodule",
            w = width - 1
        ),
        golden(move || {
            Comb::new(move |ins| {
                let total = input_u128(ins, "a") + input_u128(ins, "b");
                outs(&[("sum", width, total & mask(width)), ("cout", 1, total >> width)])
            })
        }),
        Difficulty::Easy,
    )
}

fn adder_cin(width: u32) -> Blueprint {
    comb_blueprint(
        &format!("addc{width}"),
        &format!("Implement a {width}-bit full adder with carry in and carry out."),
        "Compute {cout, sum} = a + b + cin.",
        &[("a", width), ("b", width), ("cin", 1)],
        &[("sum", width), ("cout", 1)],
        format!(
            "module top_module(input [{w}:0] a, input [{w}:0] b, input cin, \
             output [{w}:0] sum, output cout);\n\
             assign {{cout, sum}} = a + b + cin;\nendmodule",
            w = width - 1
        ),
        golden(move || {
            Comb::new(move |ins| {
                let total =
                    input_u128(ins, "a") + input_u128(ins, "b") + input_u128(ins, "cin");
                outs(&[("sum", width, total & mask(width)), ("cout", 1, total >> width)])
            })
        }),
        Difficulty::Easy,
    )
}

fn subtractor(width: u32) -> Blueprint {
    comb_blueprint(
        &format!("sub{width}"),
        &format!("Implement a {width}-bit subtractor with borrow out."),
        "diff = a - b modulo 2^width; borrow = 1 when b > a.",
        &[("a", width), ("b", width)],
        &[("diff", width), ("borrow", 1)],
        format!(
            "module top_module(input [{w}:0] a, input [{w}:0] b, \
             output [{w}:0] diff, output borrow);\n\
             assign diff = a - b;\nassign borrow = b > a;\nendmodule",
            w = width - 1
        ),
        golden(move || {
            Comb::new(move |ins| {
                let a = input_u128(ins, "a");
                let b = input_u128(ins, "b");
                outs(&[
                    ("diff", width, a.wrapping_sub(b) & mask(width)),
                    ("borrow", 1, u128::from(b > a)),
                ])
            })
        }),
        Difficulty::Easy,
    )
}

fn addsub(width: u32) -> Blueprint {
    comb_blueprint(
        &format!("addsub{width}"),
        &format!(
            "Implement a {width}-bit adder/subtractor: when sub is 0 compute a+b, \
             when sub is 1 compute a-b (use the carry-in trick with inverted b)."
        ),
        "result = sub ? a - b : a + b (modulo 2^width).",
        &[("a", width), ("b", width), ("sub", 1)],
        &[("result", width)],
        format!(
            "module top_module(input [{w}:0] a, input [{w}:0] b, input sub, \
             output [{w}:0] result);\n\
             wire [{w}:0] bx;\nassign bx = b ^ {{{width}{{sub}}}};\n\
             assign result = a + bx + sub;\nendmodule",
            w = width - 1
        ),
        golden(move || {
            Comb::new(move |ins| {
                let a = input_u128(ins, "a");
                let b = input_u128(ins, "b");
                let value = if input_u128(ins, "sub") == 1 {
                    a.wrapping_sub(b)
                } else {
                    a.wrapping_add(b)
                };
                out1("result", width, value & mask(width))
            })
        }),
        Difficulty::Easy,
    )
}

fn incrementer(width: u32) -> Blueprint {
    comb_blueprint(
        &format!("inc{width}"),
        &format!("Output the {width}-bit input plus one (wrapping)."),
        "y = a + 1 modulo 2^width.",
        &[("a", width)],
        &[("y", width)],
        format!(
            "module top_module(input [{w}:0] a, output [{w}:0] y);\n\
             assign y = a + 1;\nendmodule",
            w = width - 1
        ),
        golden(move || {
            Comb::new(move |ins| {
                out1("y", width, input_u128(ins, "a").wrapping_add(1) & mask(width))
            })
        }),
        Difficulty::Easy,
    )
}

fn comparator(width: u32) -> Blueprint {
    comb_blueprint(
        &format!("cmp{width}"),
        &format!("Compare two unsigned {width}-bit numbers, producing eq/lt/gt flags."),
        "eq = (a==b), lt = (a<b), gt = (a>b), exactly one flag is ever high.",
        &[("a", width), ("b", width)],
        &[("eq", 1), ("lt", 1), ("gt", 1)],
        format!(
            "module top_module(input [{w}:0] a, input [{w}:0] b, \
             output eq, output lt, output gt);\n\
             assign eq = (a == b);\nassign lt = (a < b);\nassign gt = (a > b);\nendmodule",
            w = width - 1
        ),
        golden(move || {
            Comb::new(move |ins| {
                let a = input_u128(ins, "a");
                let b = input_u128(ins, "b");
                outs(&[
                    ("eq", 1, u128::from(a == b)),
                    ("lt", 1, u128::from(a < b)),
                    ("gt", 1, u128::from(a > b)),
                ])
            })
        }),
        Difficulty::Easy,
    )
}

fn min_max(width: u32) -> Blueprint {
    comb_blueprint(
        &format!("minmax{width}"),
        &format!("Output the minimum and maximum of two unsigned {width}-bit inputs."),
        "min = (a<b) ? a : b; max = (a<b) ? b : a.",
        &[("a", width), ("b", width)],
        &[("min", width), ("max", width)],
        format!(
            "module top_module(input [{w}:0] a, input [{w}:0] b, \
             output [{w}:0] min, output [{w}:0] max);\n\
             assign min = (a < b) ? a : b;\nassign max = (a < b) ? b : a;\nendmodule",
            w = width - 1
        ),
        golden(move || {
            Comb::new(move |ins| {
                let a = input_u128(ins, "a");
                let b = input_u128(ins, "b");
                outs(&[("min", width, a.min(b)), ("max", width, a.max(b))])
            })
        }),
        Difficulty::Easy,
    )
}

fn abs_diff(width: u32) -> Blueprint {
    comb_blueprint(
        &format!("absdiff{width}"),
        &format!("Compute the absolute difference |a - b| of two unsigned {width}-bit inputs."),
        "d = (a > b) ? a - b : b - a.",
        &[("a", width), ("b", width)],
        &[("d", width)],
        format!(
            "module top_module(input [{w}:0] a, input [{w}:0] b, output [{w}:0] d);\n\
             assign d = (a > b) ? a - b : b - a;\nendmodule",
            w = width - 1
        ),
        golden(move || {
            Comb::new(move |ins| {
                let a = input_u128(ins, "a");
                let b = input_u128(ins, "b");
                out1("d", width, a.abs_diff(b))
            })
        }),
        Difficulty::Easy,
    )
}

fn saturating_add(width: u32) -> Blueprint {
    comb_blueprint(
        &format!("satadd{width}"),
        &format!(
            "Implement a {width}-bit unsigned saturating adder: on overflow the output \
             clamps to the maximum value instead of wrapping."
        ),
        "s = min(a + b, 2^width - 1).",
        &[("a", width), ("b", width)],
        &[("s", width)],
        format!(
            "module top_module(input [{w}:0] a, input [{w}:0] b, output [{w}:0] s);\n\
             wire [{width}:0] full;\n\
             assign full = a + b;\n\
             assign s = full[{width}] ? {{{width}{{1'b1}}}} : full[{w}:0];\nendmodule",
            w = width - 1
        ),
        golden(move || {
            Comb::new(move |ins| {
                let total = input_u128(ins, "a") + input_u128(ins, "b");
                out1("s", width, total.min(mask(width)))
            })
        }),
        Difficulty::Hard,
    )
}

/// ALU opcodes: 0 add, 1 sub, 2 and, 3 or, 4 xor, 5 slt, 6 shl1, 7 shr1.
fn alu(width: u32) -> Blueprint {
    comb_blueprint(
        &format!("alu{width}"),
        &format!(
            "Implement a {width}-bit ALU with opcodes: 0 add, 1 subtract, 2 AND, 3 OR, \
             4 XOR, 5 set-less-than (unsigned), 6 shift left by one, 7 shift right by one. \
             Also produce a zero flag."
        ),
        "y = op(a,b) per the opcode table; zero = (y == 0).",
        &[("a", width), ("b", width), ("op", 3)],
        &[("y", width), ("zero", 1)],
        format!(
            "module top_module(input [{w}:0] a, input [{w}:0] b, input [2:0] op, \
             output reg [{w}:0] y, output zero);\n\
             always @* begin\n  case (op)\n\
             3'd0: y = a + b;\n    3'd1: y = a - b;\n    3'd2: y = a & b;\n\
             3'd3: y = a | b;\n    3'd4: y = a ^ b;\n    3'd5: y = (a < b) ? 1 : 0;\n\
             3'd6: y = a << 1;\n    default: y = a >> 1;\n  endcase\nend\n\
             assign zero = (y == 0);\nendmodule",
            w = width - 1
        ),
        golden(move || {
            Comb::new(move |ins| {
                let a = input_u128(ins, "a");
                let b = input_u128(ins, "b");
                let y = match input_u128(ins, "op") {
                    0 => a.wrapping_add(b),
                    1 => a.wrapping_sub(b),
                    2 => a & b,
                    3 => a | b,
                    4 => a ^ b,
                    5 => u128::from(a < b),
                    6 => a << 1,
                    _ => a >> 1,
                } & mask(width);
                outs(&[("y", width, y), ("zero", 1, u128::from(y == 0))])
            })
        }),
        Difficulty::Hard,
    )
}

fn barrel_shifter(width: u32, sh_bits: u32) -> Blueprint {
    comb_blueprint(
        &format!("barrel{width}"),
        &format!(
            "Implement a {width}-bit barrel rotator: rotate the input left by the \
             amount given (0..{})."
        , (1u32 << sh_bits) - 1),
        "out = (in << amt) | (in >> (WIDTH - amt)), a left rotation.",
        &[("in", width), ("amt", sh_bits)],
        &[("out", width)],
        format!(
            "module top_module(input [{w}:0] in, input [{sb}:0] amt, output [{w}:0] out);\n\
             wire [{dw}:0] doubled;\n\
             assign doubled = {{in, in}} << amt;\n\
             assign out = doubled[{dw}:{width}];\nendmodule",
            w = width - 1,
            sb = sh_bits - 1,
            dw = 2 * width - 1
        ),
        golden(move || {
            Comb::new(move |ins| {
                let v = input_u128(ins, "in");
                let amt = (input_u128(ins, "amt") as u32) % width;
                let rotated = if amt == 0 {
                    v
                } else {
                    ((v << amt) | (v >> (width - amt))) & mask(width)
                };
                out1("out", width, rotated)
            })
        }),
        Difficulty::Hard,
    )
}

fn multiplier(width: u32) -> Blueprint {
    comb_blueprint(
        &format!("mul{width}"),
        &format!("Multiply two unsigned {width}-bit numbers into a {}-bit product.", 2 * width),
        "p = a * b, full precision.",
        &[("a", width), ("b", width)],
        &[("p", 2 * width)],
        format!(
            "module top_module(input [{w}:0] a, input [{w}:0] b, output [{pw}:0] p);\n\
             assign p = a * b;\nendmodule",
            w = width - 1,
            pw = 2 * width - 1
        ),
        golden(move || {
            Comb::new(move |ins| {
                out1("p", 2 * width, input_u128(ins, "a") * input_u128(ins, "b"))
            })
        }),
        Difficulty::Easy,
    )
}

fn shifter(width: u32) -> Blueprint {
    comb_blueprint(
        &format!("shift{width}"),
        &format!(
            "Implement a {width}-bit logical shifter: shift in left or right by amt \
             bits depending on dir (0 = left, 1 = right)."
        ),
        "y = dir ? (in >> amt) : (in << amt).",
        &[("in", width), ("amt", 3), ("dir", 1)],
        &[("y", width)],
        format!(
            "module top_module(input [{w}:0] in, input [2:0] amt, input dir, \
             output [{w}:0] y);\n\
             assign y = dir ? (in >> amt) : (in << amt);\nendmodule",
            w = width - 1
        ),
        golden(move || {
            Comb::new(move |ins| {
                let v = input_u128(ins, "in");
                let amt = input_u128(ins, "amt") as u32;
                let y = if input_u128(ins, "dir") == 1 { v >> amt } else { v << amt };
                out1("y", width, y & mask(width))
            })
        }),
        Difficulty::Easy,
    )
}

fn clamp_add3() -> Blueprint {
    // Sum of three 8-bit values clamped to 8 bits — multi-operand carry
    // reasoning, hard-ish.
    comb_blueprint(
        "sum3sat8",
        "Add three unsigned 8-bit inputs and saturate the result to 8 bits.",
        "s = min(a + b + c, 255).",
        &[("a", 8), ("b", 8), ("c", 8)],
        &[("s", 8)],
        "module top_module(input [7:0] a, input [7:0] b, input [7:0] c, output [7:0] s);\n\
         wire [9:0] full;\nassign full = a + b + c;\n\
         assign s = (full > 255) ? 8'hFF : full[7:0];\nendmodule"
            .to_owned(),
        golden(|| {
            Comb::new(|ins| {
                let total =
                    input_u128(ins, "a") + input_u128(ins, "b") + input_u128(ins, "c");
                out1("s", 8, total.min(255))
            })
        }),
        Difficulty::Hard,
    )
}

/// All arithmetic blueprints.
pub fn blueprints() -> Vec<Blueprint> {
    vec![
        adder(4),
        adder(8),
        adder(16),
        adder_cin(8),
        adder_cin(16),
        subtractor(8),
        subtractor(16),
        addsub(8),
        addsub(16),
        incrementer(8),
        incrementer(12),
        comparator(4),
        comparator(8),
        comparator(16),
        min_max(8),
        min_max(16),
        abs_diff(8),
        abs_diff(16),
        saturating_add(8),
        saturating_add(16),
        alu(8),
        alu(16),
        barrel_shifter(8, 3),
        barrel_shifter(16, 4),
        multiplier(4),
        multiplier(8),
        shifter(8),
        shifter(16),
        clamp_add3(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Suite, Verdict};
    use crate::suites::problem_from_blueprint;

    #[test]
    fn every_arith_solution_passes_its_golden_model() {
        for bp in blueprints() {
            let problem = problem_from_blueprint(&bp, Suite::VerilogEvalHuman, "t");
            assert_eq!(
                problem.check(&problem.solution.clone()),
                Verdict::Pass,
                "blueprint {} reference solution failed",
                bp.name
            );
        }
    }
}
