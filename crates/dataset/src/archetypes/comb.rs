//! Combinational logic archetypes: wiring, gates, muxes, coders, bit
//! manipulation.

use crate::archetypes::{comb_blueprint, golden, Blueprint};
use crate::golden::{input_u128, out1, Comb};
use crate::problem::Difficulty;

fn mask(width: u32) -> u128 {
    if width >= 128 {
        u128::MAX
    } else {
        (1u128 << width) - 1
    }
}

fn wire_pass(width: u32) -> Blueprint {
    comb_blueprint(
        &format!("wire{width}"),
        &format!("Create a {width}-bit wire that connects input a to output y."),
        &format!("The output y must equal the input a combinationally ({width} bits)."),
        &[("a", width)],
        &[("y", width)],
        format!(
            "module top_module(input [{w}:0] a, output [{w}:0] y);\n\
             assign y = a;\nendmodule",
            w = width - 1
        ),
        golden(move || Comb::new(move |ins| out1("y", width, input_u128(ins, "a")))),
        Difficulty::Easy,
    )
}

fn inverter(width: u32) -> Blueprint {
    comb_blueprint(
        &format!("not{width}"),
        &format!("Output the bitwise complement of the {width}-bit input."),
        &format!("For each bit position i in 0..{width}, y[i] = ~a[i]."),
        &[("a", width)],
        &[("y", width)],
        format!(
            "module top_module(input [{w}:0] a, output [{w}:0] y);\n\
             assign y = ~a;\nendmodule",
            w = width - 1
        ),
        golden(move || {
            Comb::new(move |ins| out1("y", width, !input_u128(ins, "a") & mask(width)))
        }),
        Difficulty::Easy,
    )
}

fn gate2(op: &'static str, width: u32) -> Blueprint {
    let name_word = match op {
        "and" => "AND",
        "or" => "OR",
        "xor" => "XOR",
        "nand" => "NAND",
        "nor" => "NOR",
        _ => "XNOR",
    };
    let expr = match op {
        "and" => "a & b",
        "or" => "a | b",
        "xor" => "a ^ b",
        "nand" => "~(a & b)",
        "nor" => "~(a | b)",
        _ => "~(a ^ b)",
    };
    let op_owned = op.to_owned();
    comb_blueprint(
        &format!("{op}{width}"),
        &format!("Implement a {width}-bit bitwise {name_word} of inputs a and b."),
        &format!("y = {expr}, evaluated bitwise over {width} bits."),
        &[("a", width), ("b", width)],
        &[("y", width)],
        format!(
            "module top_module(input [{w}:0] a, input [{w}:0] b, output [{w}:0] y);\n\
             assign y = {expr};\nendmodule",
            w = width - 1
        ),
        golden(move || {
            let op = op_owned.clone();
            Comb::new(move |ins| {
                let a = input_u128(ins, "a");
                let b = input_u128(ins, "b");
                let value = match op.as_str() {
                    "and" => a & b,
                    "or" => a | b,
                    "xor" => a ^ b,
                    "nand" => !(a & b),
                    "nor" => !(a | b),
                    _ => !(a ^ b),
                };
                out1("y", width, value & mask(width))
            })
        }),
        Difficulty::Easy,
    )
}

fn mux2(width: u32) -> Blueprint {
    comb_blueprint(
        &format!("mux2_{width}"),
        &format!("Create a {width}-bit 2-to-1 multiplexer: when sel is 0 choose a, else b."),
        "y = sel ? b : a.",
        &[("a", width), ("b", width), ("sel", 1)],
        &[("y", width)],
        format!(
            "module top_module(input [{w}:0] a, input [{w}:0] b, input sel, output [{w}:0] y);\n\
             assign y = sel ? b : a;\nendmodule",
            w = width - 1
        ),
        golden(move || {
            Comb::new(move |ins| {
                let value = if input_u128(ins, "sel") == 1 {
                    input_u128(ins, "b")
                } else {
                    input_u128(ins, "a")
                };
                out1("y", width, value)
            })
        }),
        Difficulty::Easy,
    )
}

fn mux4(width: u32) -> Blueprint {
    comb_blueprint(
        &format!("mux4_{width}"),
        &format!("Create a {width}-bit 4-to-1 multiplexer selecting among a, b, c, d by sel."),
        "sel==0 selects a, 1 selects b, 2 selects c, 3 selects d.",
        &[("a", width), ("b", width), ("c", width), ("d", width), ("sel", 2)],
        &[("y", width)],
        format!(
            "module top_module(input [{w}:0] a, input [{w}:0] b, input [{w}:0] c, \
             input [{w}:0] d, input [1:0] sel, output reg [{w}:0] y);\n\
             always @* begin\n  case (sel)\n    2'd0: y = a;\n    2'd1: y = b;\n\
             2'd2: y = c;\n    default: y = d;\n  endcase\nend\nendmodule",
            w = width - 1
        ),
        golden(move || {
            Comb::new(move |ins| {
                let value = match input_u128(ins, "sel") {
                    0 => input_u128(ins, "a"),
                    1 => input_u128(ins, "b"),
                    2 => input_u128(ins, "c"),
                    _ => input_u128(ins, "d"),
                };
                out1("y", width, value)
            })
        }),
        Difficulty::Easy,
    )
}

fn decoder(sel_bits: u32) -> Blueprint {
    let out_width = 1u32 << sel_bits;
    comb_blueprint(
        &format!("dec{sel_bits}to{out_width}"),
        &format!("Implement a {sel_bits}-to-{out_width} one-hot decoder."),
        &format!("y has exactly one bit set: bit number sel (0..{})", out_width - 1),
        &[("sel", sel_bits)],
        &[("y", out_width)],
        format!(
            "module top_module(input [{sw}:0] sel, output [{ow}:0] y);\n\
             assign y = {out_width}'b1 << sel;\nendmodule",
            sw = sel_bits - 1,
            ow = out_width - 1
        ),
        golden(move || {
            Comb::new(move |ins| out1("y", out_width, 1u128 << input_u128(ins, "sel")))
        }),
        Difficulty::Easy,
    )
}

fn priority_encoder(in_width: u32) -> Blueprint {
    let out_bits = (64 - (in_width as u64 - 1).leading_zeros()).max(1);
    // Build the casez ladder for the lowest set bit.
    let mut arms = String::new();
    for i in 0..in_width {
        let mut pattern = String::new();
        for bit in (0..in_width).rev() {
            pattern.push(match bit.cmp(&i) {
                std::cmp::Ordering::Greater => 'z',
                std::cmp::Ordering::Equal => '1',
                std::cmp::Ordering::Less => '0',
            });
        }
        arms.push_str(&format!("    {in_width}'b{pattern}: pos = {out_bits}'d{i};\n"));
    }
    comb_blueprint(
        &format!("prienc{in_width}"),
        &format!(
            "Implement a {in_width}-bit priority encoder reporting the position of the \
             least-significant 1 bit (0 if the input is all zero)."
        ),
        "pos = index of the lowest set bit of in; pos = 0 when in == 0.",
        &[("in", in_width)],
        &[("pos", out_bits)],
        format!(
            "module top_module(input [{w}:0] in, output reg [{ob}:0] pos);\n\
             always @* begin\n  casez (in)\n{arms}    default: pos = 0;\n  endcase\nend\nendmodule",
            w = in_width - 1,
            ob = out_bits - 1
        ),
        golden(move || {
            Comb::new(move |ins| {
                let v = input_u128(ins, "in");
                let pos = if v == 0 { 0 } else { v.trailing_zeros() as u128 };
                out1("pos", out_bits, pos)
            })
        }),
        Difficulty::Easy,
    )
}

fn bit_reverse(width: u32) -> Blueprint {
    comb_blueprint(
        &format!("reverse{width}"),
        &format!("Given a {width}-bit input vector, reverse its bit ordering."),
        &format!("out[i] = in[{}-i] for every i.", width - 1),
        &[("in", width)],
        &[("out", width)],
        format!(
            "module top_module(input [{w}:0] in, output reg [{w}:0] out);\n\
             integer i;\nalways @* begin\n\
             for (i = 0; i < {width}; i = i + 1) out[i] = in[{w} - i];\nend\nendmodule",
            w = width - 1
        ),
        golden(move || {
            Comb::new(move |ins| {
                let v = input_u128(ins, "in");
                let mut r = 0u128;
                for i in 0..width {
                    if (v >> i) & 1 == 1 {
                        r |= 1 << (width - 1 - i);
                    }
                }
                out1("out", width, r)
            })
        }),
        if width > 32 { Difficulty::Hard } else { Difficulty::Easy },
    )
}

fn parity(width: u32) -> Blueprint {
    comb_blueprint(
        &format!("parity{width}"),
        &format!("Compute the even parity bit of a {width}-bit input."),
        "p = XOR reduction of all bits of a.",
        &[("a", width)],
        &[("p", 1)],
        format!(
            "module top_module(input [{w}:0] a, output p);\nassign p = ^a;\nendmodule",
            w = width - 1
        ),
        golden(move || {
            Comb::new(move |ins| out1("p", 1, u128::from(input_u128(ins, "a").count_ones() % 2)))
        }),
        Difficulty::Easy,
    )
}

fn popcount(width: u32) -> Blueprint {
    let out_bits = 32 - width.leading_zeros();
    comb_blueprint(
        &format!("popcount{width}"),
        &format!("Count the number of 1 bits in a {width}-bit input vector."),
        "count = number of set bits of in.",
        &[("in", width)],
        &[("count", out_bits)],
        format!(
            "module top_module(input [{w}:0] in, output reg [{ob}:0] count);\n\
             integer i;\nalways @* begin\n  count = 0;\n\
             for (i = 0; i < {width}; i = i + 1) count = count + in[i];\nend\nendmodule",
            w = width - 1,
            ob = out_bits - 1
        ),
        golden(move || {
            Comb::new(move |ins| {
                out1("count", out_bits, u128::from(input_u128(ins, "in").count_ones()))
            })
        }),
        Difficulty::Easy,
    )
}

fn byte_swap() -> Blueprint {
    comb_blueprint(
        "byteswap32",
        "Reverse the byte ordering of a 32-bit word (endianness swap).",
        "out[31:24]=in[7:0], out[23:16]=in[15:8], out[15:8]=in[23:16], out[7:0]=in[31:24].",
        &[("in", 32)],
        &[("out", 32)],
        "module top_module(input [31:0] in, output [31:0] out);\n\
         assign out = {in[7:0], in[15:8], in[23:16], in[31:24]};\nendmodule"
            .to_owned(),
        golden(|| {
            Comb::new(|ins| {
                let v = input_u128(ins, "in") as u32;
                out1("out", 32, u128::from(v.swap_bytes()))
            })
        }),
        Difficulty::Easy,
    )
}

fn majority3() -> Blueprint {
    comb_blueprint(
        "majority3",
        "Output 1 when at least two of the three 1-bit inputs a, b, c are 1.",
        "y = (a&b) | (b&c) | (a&c).",
        &[("a", 1), ("b", 1), ("c", 1)],
        &[("y", 1)],
        "module top_module(input a, input b, input c, output y);\n\
         assign y = (a & b) | (b & c) | (a & c);\nendmodule"
            .to_owned(),
        golden(|| {
            Comb::new(|ins| {
                let total = input_u128(ins, "a") + input_u128(ins, "b") + input_u128(ins, "c");
                out1("y", 1, u128::from(total >= 2))
            })
        }),
        Difficulty::Easy,
    )
}

fn onehot_check(width: u32) -> Blueprint {
    comb_blueprint(
        &format!("onehot{width}"),
        &format!("Detect whether the {width}-bit input is one-hot (exactly one bit set)."),
        "y = 1 iff in != 0 and in & (in-1) == 0.",
        &[("in", width)],
        &[("y", 1)],
        format!(
            "module top_module(input [{w}:0] in, output y);\n\
             assign y = (in != 0) && ((in & (in - 1)) == 0);\nendmodule",
            w = width - 1
        ),
        golden(move || {
            Comb::new(move |ins| {
                let v = input_u128(ins, "in");
                out1("y", 1, u128::from(v.count_ones() == 1))
            })
        }),
        Difficulty::Easy,
    )
}

fn gray_encode(width: u32) -> Blueprint {
    comb_blueprint(
        &format!("gray{width}"),
        &format!("Convert a {width}-bit binary number to Gray code."),
        "g = b ^ (b >> 1).",
        &[("b", width)],
        &[("g", width)],
        format!(
            "module top_module(input [{w}:0] b, output [{w}:0] g);\n\
             assign g = b ^ (b >> 1);\nendmodule",
            w = width - 1
        ),
        golden(move || {
            Comb::new(move |ins| {
                let b = input_u128(ins, "b");
                out1("g", width, (b ^ (b >> 1)) & mask(width))
            })
        }),
        Difficulty::Easy,
    )
}

fn gray_decode(width: u32) -> Blueprint {
    // b[i] = ^g[width-1:i]; harder reasoning than encode. Implemented as
    // b = g ^ (g>>1) ^ … ^ (g>>(W-1)) to keep the loop ascending.
    comb_blueprint(
        &format!("ungray{width}"),
        &format!("Convert a {width}-bit Gray-code value back to binary."),
        "b[i] = XOR of g's bits from the MSB down to position i.",
        &[("g", width)],
        &[("b", width)],
        format!(
            "module top_module(input [{w}:0] g, output reg [{w}:0] b);\n\
             integer i;\nalways @* begin\n  b = g;\n\
             for (i = 1; i < {width}; i = i + 1) b = b ^ (g >> i);\nend\nendmodule",
            w = width - 1
        ),
        golden(move || {
            Comb::new(move |ins| {
                let g = input_u128(ins, "g");
                let mut b = 0u128;
                let mut acc = 0u128;
                for i in (0..width).rev() {
                    acc ^= (g >> i) & 1;
                    b |= acc << i;
                }
                out1("b", width, b)
            })
        }),
        Difficulty::Hard,
    )
}

fn sign_extend(from: u32, to: u32) -> Blueprint {
    comb_blueprint(
        &format!("sext{from}to{to}"),
        &format!("Sign-extend a {from}-bit value to {to} bits."),
        &format!("Replicate bit {} of in across the upper bits of out.", from - 1),
        &[("in", from)],
        &[("out", to)],
        format!(
            "module top_module(input [{fw}:0] in, output [{tw}:0] out);\n\
             assign out = {{{{{n}{{in[{fw}]}}}}, in}};\nendmodule",
            fw = from - 1,
            tw = to - 1,
            n = to - from
        ),
        golden(move || {
            Comb::new(move |ins| {
                let v = input_u128(ins, "in");
                let sign = (v >> (from - 1)) & 1;
                let ext = if sign == 1 { (mask(to) >> from) << from } else { 0 };
                out1("out", to, ext | v)
            })
        }),
        Difficulty::Easy,
    )
}

fn split_halves(width: u32) -> Blueprint {
    let half = width / 2;
    comb_blueprint(
        &format!("split{width}"),
        &format!("Split a {width}-bit input into its upper and lower halves."),
        &format!("hi = in[{}:{}], lo = in[{}:0].", width - 1, half, half - 1),
        &[("in", width)],
        &[("hi", half), ("lo", half)],
        format!(
            "module top_module(input [{w}:0] in, output [{h}:0] hi, output [{h}:0] lo);\n\
             assign {{hi, lo}} = in;\nendmodule",
            w = width - 1,
            h = half - 1
        ),
        golden(move || {
            Comb::new(move |ins| {
                let v = input_u128(ins, "in");
                crate::golden::outs(&[
                    ("hi", half, v >> half),
                    ("lo", half, v & mask(half)),
                ])
            })
        }),
        Difficulty::Easy,
    )
}

/// gfedcba active-high seven-segment patterns for hex digits 0..15.
pub(crate) const SEVENSEG: [u128; 16] = [
    0x3F, 0x06, 0x5B, 0x4F, 0x66, 0x6D, 0x7D, 0x07, 0x7F, 0x6F, 0x77, 0x7C, 0x39, 0x5E, 0x79,
    0x71,
];

fn seven_seg() -> Blueprint {
    let mut arms = String::new();
    for (digit, pattern) in SEVENSEG.iter().enumerate() {
        arms.push_str(&format!("    4'h{digit:X}: seg = 7'h{pattern:02X};\n"));
    }
    comb_blueprint(
        "sevenseg",
        "Decode a 4-bit hex digit to an active-high seven-segment pattern (gfedcba).",
        "seg follows the standard gfedcba encoding for hex digits 0 through F.",
        &[("digit", 4)],
        &[("seg", 7)],
        format!(
            "module top_module(input [3:0] digit, output reg [6:0] seg);\n\
             always @* begin\n  case (digit)\n{arms}    default: seg = 7'h00;\n  endcase\nend\nendmodule"
        ),
        golden(|| {
            Comb::new(|ins| out1("seg", 7, SEVENSEG[(input_u128(ins, "digit") & 0xF) as usize]))
        }),
        Difficulty::Easy,
    )
}

fn thermometer(sel_bits: u32) -> Blueprint {
    let out_width = 1u32 << sel_bits;
    comb_blueprint(
        &format!("thermo{out_width}"),
        &format!("Produce a {out_width}-bit thermometer code with n low bits set."),
        "t = (1 << n) - 1.",
        &[("n", sel_bits)],
        &[("t", out_width)],
        format!(
            "module top_module(input [{sw}:0] n, output [{ow}:0] t);\n\
             assign t = ({out_width}'b1 << n) - 1;\nendmodule",
            sw = sel_bits - 1,
            ow = out_width - 1
        ),
        golden(move || {
            Comb::new(move |ins| {
                let n = input_u128(ins, "n");
                out1("t", out_width, (1u128 << n) - 1)
            })
        }),
        Difficulty::Easy,
    )
}

fn reductions(width: u32) -> Blueprint {
    comb_blueprint(
        &format!("reduce{width}"),
        &format!("Compute the AND, OR and XOR reductions of a {width}-bit input."),
        "all = &in, any = |in, odd = ^in.",
        &[("in", width)],
        &[("all", 1), ("any", 1), ("odd", 1)],
        format!(
            "module top_module(input [{w}:0] in, output all, output any, output odd);\n\
             assign all = &in;\nassign any = |in;\nassign odd = ^in;\nendmodule",
            w = width - 1
        ),
        golden(move || {
            Comb::new(move |ins| {
                let v = input_u128(ins, "in");
                crate::golden::outs(&[
                    ("all", 1, u128::from(v == mask(width))),
                    ("any", 1, u128::from(v != 0)),
                    ("odd", 1, u128::from(v.count_ones() % 2 == 1)),
                ])
            })
        }),
        Difficulty::Easy,
    )
}

fn zero_detect(width: u32) -> Blueprint {
    comb_blueprint(
        &format!("iszero{width}"),
        &format!("Output 1 when the {width}-bit input is exactly zero."),
        "z = (in == 0).",
        &[("in", width)],
        &[("z", 1)],
        format!(
            "module top_module(input [{w}:0] in, output z);\nassign z = (in == 0);\nendmodule",
            w = width - 1
        ),
        golden(move || {
            Comb::new(move |ins| out1("z", 1, u128::from(input_u128(ins, "in") == 0)))
        }),
        Difficulty::Easy,
    )
}

/// All combinational blueprints.
pub fn blueprints() -> Vec<Blueprint> {
    let mut all = vec![
        wire_pass(1),
        wire_pass(8),
        wire_pass(16),
        inverter(4),
        inverter(8),
        inverter(32),
        mux2(1),
        mux2(8),
        mux2(16),
        mux4(4),
        mux4(8),
        decoder(2),
        decoder(3),
        decoder(4),
        priority_encoder(4),
        priority_encoder(8),
        bit_reverse(8),
        bit_reverse(16),
        bit_reverse(32),
        parity(8),
        parity(16),
        popcount(8),
        popcount(16),
        popcount(32),
        byte_swap(),
        majority3(),
        onehot_check(8),
        onehot_check(16),
        gray_encode(8),
        gray_encode(16),
        gray_decode(8),
        gray_decode(16),
        sign_extend(8, 32),
        sign_extend(4, 16),
        split_halves(16),
        split_halves(32),
        seven_seg(),
        thermometer(3),
        thermometer(4),
        reductions(8),
        reductions(32),
        zero_detect(8),
        zero_detect(24),
    ];
    for op in ["and", "or", "xor", "nand", "nor", "xnor"] {
        all.push(gate2(op, 1));
        all.push(gate2(op, 8));
        all.push(gate2(op, 16));
    }
    all.extend([
        inverter(16),
        wire_pass(32),
        parity(32),
        onehot_check(24),
        gray_encode(24),
        mux2(24),
    ]);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Verdict;
    use crate::suites::problem_from_blueprint;
    use crate::problem::Suite;

    #[test]
    fn every_comb_solution_passes_its_golden_model() {
        for bp in blueprints() {
            let problem = problem_from_blueprint(&bp, Suite::VerilogEvalHuman, "t");
            assert_eq!(
                problem.check(&problem.solution.clone()),
                Verdict::Pass,
                "blueprint {} reference solution failed",
                bp.name
            );
        }
    }

    #[test]
    fn sevenseg_table_is_sane() {
        assert_eq!(SEVENSEG[0], 0x3F);
        assert_eq!(SEVENSEG[8], 0x7F);
        assert!(SEVENSEG.iter().all(|&p| p <= 0x7F));
    }
}
