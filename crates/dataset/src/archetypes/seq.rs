//! Sequential (clocked) archetypes: registers, counters, shifters.
//!
//! Convention: every observed output is registered (Moore style) and the
//! testbench compares outputs *after* each posedge, matching the golden
//! models' step semantics.

use crate::archetypes::{golden, seq_blueprint, Blueprint};
use crate::golden::{input_u128, out1, Seq};
use crate::problem::Difficulty;

fn mask(width: u32) -> u128 {
    if width >= 128 {
        u128::MAX
    } else {
        (1u128 << width) - 1
    }
}

fn dff(width: u32) -> Blueprint {
    seq_blueprint(
        &format!("dff{width}"),
        &format!("Create a {width}-bit D flip-flop clocked on the positive edge."),
        "On each posedge of clk, q takes the value of d.",
        &[("d", width)],
        &[("q", width)],
        format!(
            "module top_module(input clk, input [{w}:0] d, output reg [{w}:0] q);\n\
             always @(posedge clk) q <= d;\nendmodule",
            w = width - 1
        ),
        golden(move || {
            Seq::new(0u128, move |q, ins| {
                *q = input_u128(ins, "d");
                out1("q", width, *q)
            })
        }),
        Difficulty::Easy,
    )
}

fn dff_enable(width: u32) -> Blueprint {
    seq_blueprint(
        &format!("dffe{width}"),
        &format!("Create a {width}-bit register with a write-enable input."),
        "On posedge clk: if en is 1, q <= d; otherwise q keeps its value.",
        &[("d", width), ("en", 1)],
        &[("q", width)],
        format!(
            "module top_module(input clk, input [{w}:0] d, input en, output reg [{w}:0] q);\n\
             always @(posedge clk) if (en) q <= d;\nendmodule",
            w = width - 1
        ),
        golden(move || {
            Seq::new(0u128, move |q, ins| {
                if input_u128(ins, "en") == 1 {
                    *q = input_u128(ins, "d");
                }
                out1("q", width, *q)
            })
        }),
        Difficulty::Easy,
    )
}

fn dff_reset(width: u32) -> Blueprint {
    seq_blueprint(
        &format!("dffr{width}"),
        &format!("Create a {width}-bit register with synchronous active-high reset."),
        "On posedge clk: if reset is 1, q <= 0; else q <= d.",
        &[("d", width), ("reset", 1)],
        &[("q", width)],
        format!(
            "module top_module(input clk, input [{w}:0] d, input reset, output reg [{w}:0] q);\n\
             always @(posedge clk) begin\n  if (reset) q <= 0; else q <= d;\nend\nendmodule",
            w = width - 1
        ),
        golden(move || {
            Seq::new(0u128, move |q, ins| {
                *q = if input_u128(ins, "reset") == 1 { 0 } else { input_u128(ins, "d") };
                out1("q", width, *q)
            })
        }),
        Difficulty::Easy,
    )
}

fn counter(width: u32) -> Blueprint {
    seq_blueprint(
        &format!("counter{width}"),
        &format!("Build a {width}-bit up counter with synchronous reset."),
        "On posedge clk: if reset, q <= 0; else q <= q + 1 (wrapping).",
        &[("reset", 1)],
        &[("q", width)],
        format!(
            "module top_module(input clk, input reset, output reg [{w}:0] q);\n\
             always @(posedge clk) begin\n  if (reset) q <= 0; else q <= q + 1;\nend\nendmodule",
            w = width - 1
        ),
        golden(move || {
            Seq::new(0u128, move |q, ins| {
                *q = if input_u128(ins, "reset") == 1 {
                    0
                } else {
                    q.wrapping_add(1) & mask(width)
                };
                out1("q", width, *q)
            })
        }),
        Difficulty::Easy,
    )
}

fn up_down_counter(width: u32) -> Blueprint {
    seq_blueprint(
        &format!("updown{width}"),
        &format!("Build a {width}-bit up/down counter: up when dir is 1, down when 0."),
        "On posedge clk: if reset, q <= 0; else q <= dir ? q+1 : q-1 (wrapping).",
        &[("reset", 1), ("dir", 1)],
        &[("q", width)],
        format!(
            "module top_module(input clk, input reset, input dir, output reg [{w}:0] q);\n\
             always @(posedge clk) begin\n\
             if (reset) q <= 0;\n  else if (dir) q <= q + 1;\n  else q <= q - 1;\nend\nendmodule",
            w = width - 1
        ),
        golden(move || {
            Seq::new(0u128, move |q, ins| {
                *q = if input_u128(ins, "reset") == 1 {
                    0
                } else if input_u128(ins, "dir") == 1 {
                    q.wrapping_add(1) & mask(width)
                } else {
                    q.wrapping_sub(1) & mask(width)
                };
                out1("q", width, *q)
            })
        }),
        Difficulty::Easy,
    )
}

fn mod_counter(width: u32, modulus: u128) -> Blueprint {
    seq_blueprint(
        &format!("mod{modulus}counter"),
        &format!("Build a counter that counts 0 to {} and wraps (modulo {modulus}).", modulus - 1),
        &format!("On posedge clk: if reset, q <= 0; else q <= (q == {}) ? 0 : q + 1.", modulus - 1),
        &[("reset", 1)],
        &[("q", width)],
        format!(
            "module top_module(input clk, input reset, output reg [{w}:0] q);\n\
             always @(posedge clk) begin\n  if (reset) q <= 0;\n\
             else if (q == {top}) q <= 0;\n  else q <= q + 1;\nend\nendmodule",
            w = width - 1,
            top = modulus - 1
        ),
        golden(move || {
            Seq::new(0u128, move |q, ins| {
                *q = if input_u128(ins, "reset") == 1 || *q == modulus - 1 { 0 } else { *q + 1 };
                out1("q", width, *q)
            })
        }),
        Difficulty::Easy,
    )
}

fn saturating_counter(width: u32) -> Blueprint {
    seq_blueprint(
        &format!("satcounter{width}"),
        &format!(
            "Build a {width}-bit saturating counter: counts up with en and holds at the \
             maximum value instead of wrapping."
        ),
        "On posedge clk: if reset, q <= 0; else if en and q not at max, q <= q + 1.",
        &[("reset", 1), ("en", 1)],
        &[("q", width)],
        format!(
            "module top_module(input clk, input reset, input en, output reg [{w}:0] q);\n\
             always @(posedge clk) begin\n  if (reset) q <= 0;\n\
             else if (en && q != {{{width}{{1'b1}}}}) q <= q + 1;\nend\nendmodule",
            w = width - 1
        ),
        golden(move || {
            Seq::new(0u128, move |q, ins| {
                if input_u128(ins, "reset") == 1 {
                    *q = 0;
                } else if input_u128(ins, "en") == 1 && *q != mask(width) {
                    *q += 1;
                }
                out1("q", width, *q)
            })
        }),
        Difficulty::Easy,
    )
}

fn shift_register(width: u32) -> Blueprint {
    seq_blueprint(
        &format!("sipo{width}"),
        &format!(
            "Build a {width}-bit serial-in parallel-out shift register shifting toward \
             the MSB."
        ),
        "On posedge clk: q <= {q[WIDTH-2:0], sin}.",
        &[("sin", 1)],
        &[("q", width)],
        format!(
            "module top_module(input clk, input sin, output reg [{w}:0] q);\n\
             always @(posedge clk) q <= {{q[{w2}:0], sin}};\nendmodule",
            w = width - 1,
            w2 = width - 2
        ),
        golden(move || {
            Seq::new(0u128, move |q, ins| {
                *q = ((*q << 1) | input_u128(ins, "sin")) & mask(width);
                out1("q", width, *q)
            })
        }),
        Difficulty::Easy,
    )
}

fn shift_register_load(width: u32) -> Blueprint {
    seq_blueprint(
        &format!("shiftload{width}"),
        &format!(
            "Build a {width}-bit shift register with parallel load: when load is 1 take \
             d, otherwise shift left inserting sin."
        ),
        "On posedge clk: q <= load ? d : {q[WIDTH-2:0], sin}.",
        &[("d", width), ("load", 1), ("sin", 1)],
        &[("q", width)],
        format!(
            "module top_module(input clk, input [{w}:0] d, input load, input sin, \
             output reg [{w}:0] q);\n\
             always @(posedge clk) begin\n\
             if (load) q <= d;\n  else q <= {{q[{w2}:0], sin}};\nend\nendmodule",
            w = width - 1,
            w2 = width - 2
        ),
        golden(move || {
            Seq::new(0u128, move |q, ins| {
                *q = if input_u128(ins, "load") == 1 {
                    input_u128(ins, "d")
                } else {
                    ((*q << 1) | input_u128(ins, "sin")) & mask(width)
                };
                out1("q", width, *q)
            })
        }),
        Difficulty::Easy,
    )
}

fn rotator(width: u32) -> Blueprint {
    seq_blueprint(
        &format!("rotator{width}"),
        &format!(
            "Build a {width}-bit rotating register: when en is 1 rotate right by one \
             bit, with parallel load."
        ),
        "On posedge clk: if load, q <= d; else if en, q <= {q[0], q[WIDTH-1:1]}.",
        &[("d", width), ("load", 1), ("en", 1)],
        &[("q", width)],
        format!(
            "module top_module(input clk, input [{w}:0] d, input load, input en, \
             output reg [{w}:0] q);\n\
             always @(posedge clk) begin\n\
             if (load) q <= d;\n  else if (en) q <= {{q[0], q[{w}:1]}};\nend\nendmodule",
            w = width - 1
        ),
        golden(move || {
            Seq::new(0u128, move |q, ins| {
                if input_u128(ins, "load") == 1 {
                    *q = input_u128(ins, "d");
                } else if input_u128(ins, "en") == 1 {
                    let lsb = *q & 1;
                    *q = (*q >> 1) | (lsb << (width - 1));
                }
                out1("q", width, *q)
            })
        }),
        Difficulty::Easy,
    )
}

fn edge_detector(kind: &'static str) -> Blueprint {
    let (name, expr, desc) = match kind {
        "rise" => ("edgerise", "in & ~prev", "a 0→1 transition"),
        "fall" => ("edgefall", "~in & prev", "a 1→0 transition"),
        _ => ("edgeany", "in ^ prev", "any transition"),
    };
    let kind_owned = kind.to_owned();
    seq_blueprint(
        name,
        &format!(
            "Detect {desc} on the 1-bit input: output a registered one-cycle pulse the \
             cycle after the transition is sampled."
        ),
        &format!("On posedge clk: pulse <= {expr}; prev <= in."),
        &[("in", 1)],
        &[("pulse", 1)],
        format!(
            "module top_module(input clk, input in, output reg pulse);\n\
             reg prev;\n\
             always @(posedge clk) begin\n  pulse <= {expr};\n  prev <= in;\nend\nendmodule"
        ),
        golden(move || {
            let kind = kind_owned.clone();
            Seq::new((0u128, 0u128), move |state, ins| {
                let (prev, _pulse) = *state;
                let input = input_u128(ins, "in");
                let pulse = match kind.as_str() {
                    "rise" => input & !prev & 1,
                    "fall" => !input & prev & 1,
                    _ => (input ^ prev) & 1,
                };
                *state = (input, pulse);
                out1("pulse", 1, pulse)
            })
        }),
        Difficulty::Easy,
    )
}

fn toggle_ff() -> Blueprint {
    seq_blueprint(
        "togglff",
        "Build a toggle flip-flop: q inverts on every clock edge where t is 1, with \
         synchronous reset.",
        "On posedge clk: if reset, q <= 0; else if t, q <= ~q.",
        &[("reset", 1), ("t", 1)],
        &[("q", 1)],
        "module top_module(input clk, input reset, input t, output reg q);\n\
         always @(posedge clk) begin\n  if (reset) q <= 0;\n  else if (t) q <= ~q;\nend\nendmodule"
            .to_owned(),
        golden(|| {
            Seq::new(0u128, |q, ins| {
                if input_u128(ins, "reset") == 1 {
                    *q = 0;
                } else if input_u128(ins, "t") == 1 {
                    *q ^= 1;
                }
                out1("q", 1, *q)
            })
        }),
        Difficulty::Easy,
    )
}

fn johnson_counter(width: u32) -> Blueprint {
    seq_blueprint(
        &format!("johnson{width}"),
        &format!("Build a {width}-bit Johnson (twisted-ring) counter with synchronous reset."),
        "On posedge clk: if reset, q <= 0; else q <= {~q[0], q[WIDTH-1:1]}.",
        &[("reset", 1)],
        &[("q", width)],
        format!(
            "module top_module(input clk, input reset, output reg [{w}:0] q);\n\
             always @(posedge clk) begin\n\
             if (reset) q <= 0;\n  else q <= {{~q[0], q[{w}:1]}};\nend\nendmodule",
            w = width - 1
        ),
        golden(move || {
            Seq::new(0u128, move |q, ins| {
                *q = if input_u128(ins, "reset") == 1 {
                    0
                } else {
                    let inverted_lsb = (!*q & 1) << (width - 1);
                    (*q >> 1) | inverted_lsb
                };
                out1("q", width, *q)
            })
        }),
        Difficulty::Easy,
    )
}

fn ring_counter(width: u32) -> Blueprint {
    seq_blueprint(
        &format!("ring{width}"),
        &format!(
            "Build a {width}-bit one-hot ring counter: reset loads 1, then the single \
             hot bit rotates left each cycle."
        ),
        "On posedge clk: if reset, q <= 1; else q <= {q[WIDTH-2:0], q[WIDTH-1]}.",
        &[("reset", 1)],
        &[("q", width)],
        format!(
            "module top_module(input clk, input reset, output reg [{w}:0] q);\n\
             always @(posedge clk) begin\n\
             if (reset) q <= 1;\n  else q <= {{q[{w2}:0], q[{w}]}};\nend\nendmodule",
            w = width - 1,
            w2 = width - 2
        ),
        golden(move || {
            Seq::new(0u128, move |q, ins| {
                *q = if input_u128(ins, "reset") == 1 {
                    1
                } else {
                    let msb = (*q >> (width - 1)) & 1;
                    ((*q << 1) & mask(width)) | msb
                };
                out1("q", width, *q)
            })
        }),
        Difficulty::Easy,
    )
}

/// Galois LFSR with polynomial 0xB8 (x^8 + x^6 + x^5 + x^4 + 1).
fn lfsr8() -> Blueprint {
    seq_blueprint(
        "lfsr8",
        "Build an 8-bit Galois LFSR with taps 0xB8; reset loads 8'h01.",
        "On posedge clk: if reset, q <= 1; else q <= (q >> 1) ^ (q[0] ? 8'hB8 : 8'h00).",
        &[("reset", 1)],
        &[("q", 8)],
        "module top_module(input clk, input reset, output reg [7:0] q);\n\
         always @(posedge clk) begin\n\
         if (reset) q <= 8'h01;\n\
         else q <= (q >> 1) ^ (q[0] ? 8'hB8 : 8'h00);\nend\nendmodule"
            .to_owned(),
        golden(|| {
            Seq::new(1u128, |q, ins| {
                *q = if input_u128(ins, "reset") == 1 {
                    1
                } else {
                    let feedback = if *q & 1 == 1 { 0xB8 } else { 0 };
                    (*q >> 1) ^ feedback
                };
                out1("q", 8, *q)
            })
        }),
        Difficulty::Hard,
    )
}

fn accumulator(width: u32) -> Blueprint {
    seq_blueprint(
        &format!("accum{width}"),
        &format!("Build a {width}-bit accumulator: add the input to a running sum each cycle."),
        "On posedge clk: if reset, acc <= 0; else acc <= acc + in (wrapping).",
        &[("reset", 1), ("in", width)],
        &[("acc", width)],
        format!(
            "module top_module(input clk, input reset, input [{w}:0] in, \
             output reg [{w}:0] acc);\n\
             always @(posedge clk) begin\n\
             if (reset) acc <= 0;\n  else acc <= acc + in;\nend\nendmodule",
            w = width - 1
        ),
        golden(move || {
            Seq::new(0u128, move |acc, ins| {
                *acc = if input_u128(ins, "reset") == 1 {
                    0
                } else {
                    acc.wrapping_add(input_u128(ins, "in")) & mask(width)
                };
                out1("acc", width, *acc)
            })
        }),
        Difficulty::Easy,
    )
}

fn clock_divider(period: u128) -> Blueprint {
    let width = (128 - (period - 1).leading_zeros()).max(1);
    seq_blueprint(
        &format!("clkdiv{period}"),
        &format!("Build a clock divider: the output toggles every {period} cycles."),
        &format!(
            "A modulo-{period} counter; when it reaches {}, it wraps and the output \
             toggles.",
            period - 1
        ),
        &[("reset", 1)],
        &[("out", 1)],
        format!(
            "module top_module(input clk, input reset, output reg out);\n\
             reg [{w}:0] cnt;\n\
             always @(posedge clk) begin\n\
             if (reset) begin cnt <= 0; out <= 0; end\n\
             else if (cnt == {top}) begin cnt <= 0; out <= ~out; end\n\
             else cnt <= cnt + 1;\nend\nendmodule",
            w = width - 1,
            top = period - 1
        ),
        golden(move || {
            Seq::new((0u128, 0u128), move |state, ins| {
                let (mut cnt, mut out) = *state;
                if input_u128(ins, "reset") == 1 {
                    cnt = 0;
                    out = 0;
                } else if cnt == period - 1 {
                    cnt = 0;
                    out ^= 1;
                } else {
                    cnt += 1;
                }
                *state = (cnt, out);
                out1("out", 1, out)
            })
        }),
        Difficulty::Easy,
    )
}

fn sample_hold(width: u32) -> Blueprint {
    // Captures the input on a trigger and holds it.
    seq_blueprint(
        &format!("samplehold{width}"),
        &format!("Build a {width}-bit sample-and-hold register: capture in when trig is 1."),
        "On posedge clk: if trig, q <= in; else hold.",
        &[("in", width), ("trig", 1)],
        &[("q", width)],
        format!(
            "module top_module(input clk, input [{w}:0] in, input trig, \
             output reg [{w}:0] q);\n\
             always @(posedge clk) if (trig) q <= in;\nendmodule",
            w = width - 1
        ),
        golden(move || {
            Seq::new(0u128, move |q, ins| {
                if input_u128(ins, "trig") == 1 {
                    *q = input_u128(ins, "in");
                }
                out1("q", width, *q)
            })
        }),
        Difficulty::Easy,
    )
}

/// All sequential blueprints.
pub fn blueprints() -> Vec<Blueprint> {
    vec![
        dff(1),
        dff(8),
        dff(32),
        dff_enable(8),
        dff_enable(16),
        dff_reset(8),
        dff_reset(16),
        counter(4),
        counter(8),
        counter(16),
        up_down_counter(8),
        up_down_counter(16),
        mod_counter(4, 10),
        mod_counter(4, 12),
        mod_counter(6, 60),
        saturating_counter(4),
        saturating_counter(8),
        shift_register(8),
        shift_register(16),
        shift_register_load(8),
        shift_register_load(16),
        rotator(8),
        rotator(16),
        edge_detector("rise"),
        edge_detector("fall"),
        edge_detector("any"),
        toggle_ff(),
        johnson_counter(4),
        johnson_counter(8),
        ring_counter(4),
        ring_counter(8),
        lfsr8(),
        accumulator(8),
        accumulator(16),
        clock_divider(4),
        clock_divider(10),
        sample_hold(8),
        sample_hold(16),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Suite, Verdict};
    use crate::suites::problem_from_blueprint;

    #[test]
    fn every_seq_solution_passes_its_golden_model() {
        for bp in blueprints() {
            let problem = problem_from_blueprint(&bp, Suite::VerilogEvalHuman, "t");
            assert_eq!(
                problem.check(&problem.solution.clone()),
                Verdict::Pass,
                "blueprint {} reference solution failed",
                bp.name
            );
        }
    }
}
