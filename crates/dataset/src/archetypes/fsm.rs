//! Finite-state-machine archetypes: sequence detectors, Moore controllers.
//!
//! These populate the *hard* end of the benchmark — the paper observes that
//! FSM-style problems requiring multi-step reasoning dominate the residual
//! failures after syntax fixing (§4.2).

use crate::archetypes::{golden, seq_blueprint, Blueprint};
use crate::golden::{input_u128, out1, outs, Seq};
use crate::problem::Difficulty;

/// Overlapping "101" sequence detector (Moore, registered output).
fn detect101() -> Blueprint {
    seq_blueprint(
        "detect101",
        "Build an FSM that detects the overlapping bit pattern 101 on a serial input; \
         assert found for one cycle after the final 1 of each occurrence.",
        "States: idle, saw-1, saw-10. found registers high when in=1 arrives in saw-10. \
         Matching is overlapping: the trailing 1 may start a new pattern.",
        &[("reset", 1), ("in", 1)],
        &[("found", 1)],
        "module top_module(input clk, input reset, input in, output reg found);\n\
         reg [1:0] state;\n\
         always @(posedge clk) begin\n\
           if (reset) begin state <= 0; found <= 0; end\n\
           else begin\n\
             found <= (state == 2) && in;\n\
             case (state)\n\
               2'd0: state <= in ? 2'd1 : 2'd0;\n\
               2'd1: state <= in ? 2'd1 : 2'd2;\n\
               2'd2: state <= in ? 2'd1 : 2'd0;\n\
               default: state <= 2'd0;\n\
             endcase\n\
           end\n\
         end\nendmodule"
            .to_owned(),
        golden(|| {
            Seq::new((0u128, 0u128), |state, ins| {
                let (s, _found) = *state;
                if input_u128(ins, "reset") == 1 {
                    *state = (0, 0);
                    return out1("found", 1, 0);
                }
                let bit = input_u128(ins, "in");
                let found = u128::from(s == 2 && bit == 1);
                let next = match (s, bit) {
                    (0, 1) | (1, 1) | (2, 1) => 1,
                    (1, 0) => 2,
                    _ => 0,
                };
                *state = (next, found);
                out1("found", 1, found)
            })
        }),
        Difficulty::Hard,
    )
}

/// Non-overlapping "110" detector.
fn detect110() -> Blueprint {
    seq_blueprint(
        "detect110",
        "Build an FSM that detects the bit pattern 110 on a serial input \
         (non-overlapping); assert found for one cycle per occurrence.",
        "States: idle, saw-1, saw-11. After a match the FSM returns to idle.",
        &[("reset", 1), ("in", 1)],
        &[("found", 1)],
        "module top_module(input clk, input reset, input in, output reg found);\n\
         reg [1:0] state;\n\
         always @(posedge clk) begin\n\
           if (reset) begin state <= 0; found <= 0; end\n\
           else begin\n\
             found <= (state == 2) && !in;\n\
             case (state)\n\
               2'd0: state <= in ? 2'd1 : 2'd0;\n\
               2'd1: state <= in ? 2'd2 : 2'd0;\n\
               2'd2: state <= in ? 2'd2 : 2'd0;\n\
               default: state <= 2'd0;\n\
             endcase\n\
           end\n\
         end\nendmodule"
            .to_owned(),
        golden(|| {
            Seq::new((0u128, 0u128), |state, ins| {
                let (s, _) = *state;
                if input_u128(ins, "reset") == 1 {
                    *state = (0, 0);
                    return out1("found", 1, 0);
                }
                let bit = input_u128(ins, "in");
                let found = u128::from(s == 2 && bit == 0);
                let next = match (s, bit) {
                    (0, 1) => 1,
                    (1, 1) | (2, 1) => 2,
                    _ => 0,
                };
                *state = (next, found);
                out1("found", 1, found)
            })
        }),
        Difficulty::Hard,
    )
}

/// Fixed-schedule traffic-light controller (Moore, combinational outputs of
/// the registered state counter).
fn traffic_light() -> Blueprint {
    // green 4 cycles → yellow 2 → red 3 → repeat (period 9).
    seq_blueprint(
        "traffic",
        "Build a traffic-light controller cycling green for 4 cycles, yellow for 2, \
         red for 3, with synchronous reset to the start of green.",
        "A modulo-9 cycle counter; green while count<4, yellow while 4<=count<6, red \
         while count>=6.",
        &[("reset", 1)],
        &[("green", 1), ("yellow", 1), ("red", 1)],
        "module top_module(input clk, input reset, output green, output yellow, output red);\n\
         reg [3:0] count;\n\
         always @(posedge clk) begin\n\
           if (reset) count <= 0;\n\
           else if (count == 8) count <= 0;\n\
           else count <= count + 1;\n\
         end\n\
         assign green  = (count < 4);\n\
         assign yellow = (count >= 4) && (count < 6);\n\
         assign red    = (count >= 6);\nendmodule"
            .to_owned(),
        golden(|| {
            Seq::new(0u128, |count, ins| {
                *count = if input_u128(ins, "reset") == 1 || *count == 8 { 0 } else { *count + 1 };
                outs(&[
                    ("green", 1, u128::from(*count < 4)),
                    ("yellow", 1, u128::from(*count >= 4 && *count < 6)),
                    ("red", 1, u128::from(*count >= 6)),
                ])
            })
        }),
        Difficulty::Hard,
    )
}

/// One-hot-encoded 4-state sequencer advancing on `go`.
fn onehot_fsm() -> Blueprint {
    seq_blueprint(
        "onehotfsm",
        "Build a 4-state one-hot FSM that advances S0→S1→S2→S3→S0 whenever go is 1; \
         output done is high in S3. Reset enters S0.",
        "state is one-hot 4 bits; done = state[3].",
        &[("reset", 1), ("go", 1)],
        &[("done", 1)],
        "module top_module(input clk, input reset, input go, output done);\n\
         reg [3:0] state;\n\
         always @(posedge clk) begin\n\
           if (reset) state <= 4'b0001;\n\
           else if (go) state <= {state[2:0], state[3]};\n\
         end\n\
         assign done = state[3];\nendmodule"
            .to_owned(),
        golden(|| {
            Seq::new(1u128, |state, ins| {
                if input_u128(ins, "reset") == 1 {
                    *state = 1;
                } else if input_u128(ins, "go") == 1 {
                    *state = ((*state << 1) | (*state >> 3)) & 0xF;
                }
                out1("done", 1, (*state >> 3) & 1)
            })
        }),
        Difficulty::Hard,
    )
}

/// Debouncer: output goes high after the input has been 1 for 4 consecutive
/// sampled cycles, low as soon as the input drops.
fn debounce() -> Blueprint {
    seq_blueprint(
        "debounce4",
        "Build a debouncer: the output asserts only after the input has been high for \
         4 consecutive clock cycles, and deasserts immediately when the input falls.",
        "A saturating 2-bit-ish counter of consecutive highs; stable = (count >= 4).",
        &[("reset", 1), ("in", 1)],
        &[("stable", 1)],
        "module top_module(input clk, input reset, input in, output stable);\n\
         reg [2:0] count;\n\
         always @(posedge clk) begin\n\
           if (reset) count <= 0;\n\
           else if (!in) count <= 0;\n\
           else if (count != 4) count <= count + 1;\n\
         end\n\
         assign stable = (count == 4);\nendmodule"
            .to_owned(),
        golden(|| {
            Seq::new(0u128, |count, ins| {
                if input_u128(ins, "reset") == 1 || input_u128(ins, "in") == 0 {
                    *count = 0;
                } else if *count != 4 {
                    *count += 1;
                }
                out1("stable", 1, u128::from(*count == 4))
            })
        }),
        Difficulty::Hard,
    )
}

/// The classic "lemming walker": walks left/right, reverses on bumps.
fn walker() -> Blueprint {
    seq_blueprint(
        "walker",
        "Build a walker FSM: it walks left or right; bumping on the side it walks \
         toward makes it turn around (bump_left while walking left turns it right, and \
         vice versa). Reset starts walking left.",
        "Two states L and R; walk_left/walk_right are Moore outputs of the state.",
        &[("areset", 1), ("bump_left", 1), ("bump_right", 1)],
        &[("walk_left", 1), ("walk_right", 1)],
        "module top_module(input clk, input areset, input bump_left, input bump_right, \
         output walk_left, output walk_right);\n\
         reg state; // 0 = left, 1 = right\n\
         always @(posedge clk) begin\n\
           if (areset) state <= 0;\n\
           else if (state == 0 && bump_left) state <= 1;\n\
           else if (state == 1 && bump_right) state <= 0;\n\
         end\n\
         assign walk_left = (state == 0);\n\
         assign walk_right = (state == 1);\nendmodule"
            .to_owned(),
        golden(|| {
            Seq::new(0u128, |state, ins| {
                if input_u128(ins, "areset") == 1 {
                    *state = 0;
                } else if *state == 0 && input_u128(ins, "bump_left") == 1 {
                    *state = 1;
                } else if *state == 1 && input_u128(ins, "bump_right") == 1 {
                    *state = 0;
                }
                outs(&[
                    ("walk_left", 1, u128::from(*state == 0)),
                    ("walk_right", 1, u128::from(*state == 1)),
                ])
            })
        }),
        Difficulty::Hard,
    )
}

/// Two-request fixed-priority arbiter with registered grants.
fn arbiter2() -> Blueprint {
    seq_blueprint(
        "arbiter2",
        "Build a 2-request arbiter with registered grants: request 0 has priority; at \
         most one grant is high.",
        "On posedge clk: gnt <= req[0] ? 2'b01 : (req[1] ? 2'b10 : 2'b00).",
        &[("req", 2)],
        &[("gnt", 2)],
        "module top_module(input clk, input [1:0] req, output reg [1:0] gnt);\n\
         always @(posedge clk) begin\n\
           if (req[0]) gnt <= 2'b01;\n\
           else if (req[1]) gnt <= 2'b10;\n\
           else gnt <= 2'b00;\n\
         end\nendmodule"
            .to_owned(),
        golden(|| {
            Seq::new(0u128, |gnt, ins| {
                let req = input_u128(ins, "req");
                *gnt = if req & 1 == 1 {
                    0b01
                } else if req & 2 == 2 {
                    0b10
                } else {
                    0
                };
                out1("gnt", 2, *gnt)
            })
        }),
        Difficulty::Hard,
    )
}

/// All FSM blueprints.
pub fn blueprints() -> Vec<Blueprint> {
    vec![
        detect101(),
        detect110(),
        traffic_light(),
        onehot_fsm(),
        debounce(),
        walker(),
        arbiter2(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Suite, Verdict};
    use crate::suites::problem_from_blueprint;

    #[test]
    fn every_fsm_solution_passes_its_golden_model() {
        for bp in blueprints() {
            let problem = problem_from_blueprint(&bp, Suite::VerilogEvalHuman, "t");
            assert_eq!(
                problem.check(&problem.solution.clone()),
                Verdict::Pass,
                "blueprint {} reference solution failed",
                bp.name
            );
        }
    }
}
