//! Helpers for writing golden [`ReferenceModel`]s compactly.

use std::collections::BTreeMap;

use rtlfixer_sim::value::LogicVec;
use rtlfixer_sim::ReferenceModel;

/// Input/output signal maps exchanged with the testbench.
pub type Signals = BTreeMap<String, LogicVec>;

/// Reads an input as `u128`, defaulting to 0 (robust to missing ports).
pub fn input_u128(inputs: &Signals, name: &str) -> u128 {
    inputs.get(name).and_then(LogicVec::to_u128).unwrap_or(0)
}

/// Reads an input as `u64`.
pub fn input_u64(inputs: &Signals, name: &str) -> u64 {
    inputs.get(name).and_then(LogicVec::to_u64).unwrap_or(0)
}

/// Builds a single-output map.
pub fn out1(name: &str, width: u32, value: u128) -> Signals {
    BTreeMap::from([(name.to_owned(), LogicVec::from_u128(width, value))])
}

/// Builds an output map from (name, width, value) triples.
pub fn outs(entries: &[(&str, u32, u128)]) -> Signals {
    entries
        .iter()
        .map(|(n, w, v)| (n.to_string(), LogicVec::from_u128(*w, *v)))
        .collect()
}

/// A stateless golden model from a plain function.
pub struct Comb {
    f: Box<dyn FnMut(&Signals) -> Signals + Send>,
}

impl Comb {
    /// Wraps a combinational function.
    pub fn new(f: impl FnMut(&Signals) -> Signals + Send + 'static) -> Self {
        Comb { f: Box::new(f) }
    }
}

impl ReferenceModel for Comb {
    fn reset(&mut self) {}

    fn step(&mut self, inputs: &Signals) -> Signals {
        (self.f)(inputs)
    }
}

/// The boxed step function of a [`Seq`] model.
type SeqStepFn<S> = Box<dyn FnMut(&mut S, &Signals) -> Signals + Send>;

/// A stateful golden model: `state` is cloned from `initial` on reset, and
/// `step` receives `(state, inputs)` once per clock cycle.
pub struct Seq<S: Clone + Send> {
    initial: S,
    state: S,
    f: SeqStepFn<S>,
}

impl<S: Clone + Send> Seq<S> {
    /// Wraps a sequential step function with its initial state.
    pub fn new(initial: S, f: impl FnMut(&mut S, &Signals) -> Signals + Send + 'static) -> Self {
        Seq { state: initial.clone(), initial, f: Box::new(f) }
    }
}

impl<S: Clone + Send> ReferenceModel for Seq<S> {
    fn reset(&mut self) {
        self.state = self.initial.clone();
    }

    fn step(&mut self, inputs: &Signals) -> Signals {
        (self.f)(&mut self.state, inputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comb_wrapper_evaluates() {
        let mut model = Comb::new(|ins| {
            let a = input_u64(ins, "a");
            out1("y", 8, u128::from(!a & 0xFF))
        });
        let ins = outs(&[("a", 8, 0x0F)]);
        assert_eq!(model.step(&ins)["y"].to_u64(), Some(0xF0));
    }

    #[test]
    fn seq_wrapper_resets() {
        let mut model = Seq::new(0u64, |count, _ins| {
            *count += 1;
            out1("q", 8, u128::from(*count))
        });
        let ins = Signals::new();
        assert_eq!(model.step(&ins)["q"].to_u64(), Some(1));
        assert_eq!(model.step(&ins)["q"].to_u64(), Some(2));
        model.reset();
        assert_eq!(model.step(&ins)["q"].to_u64(), Some(1));
    }

    #[test]
    fn missing_input_defaults_to_zero() {
        assert_eq!(input_u128(&Signals::new(), "nope"), 0);
    }
}
