//! Benchmark suite assembly with the paper's exact shapes:
//!
//! * VerilogEval-Human: **156** problems, split **71 easy / 85 hard**
//!   (the paper's pass-rate-0.1 split).
//! * VerilogEval-Machine: **143** problems (low-level generated
//!   descriptions; a subset of the same circuits, as in the real benchmark
//!   where the two suites share problems).
//! * RTLLM: **29** larger designs.

use crate::archetypes::{all_blueprints, Blueprint};
use crate::problem::{Difficulty, Problem, Suite};

/// Paper count: VerilogEval-Human problems.
pub const HUMAN_COUNT: usize = 156;
/// Paper count: VerilogEval-Human easy subset.
pub const HUMAN_EASY: usize = 71;
/// Paper count: VerilogEval-Human hard subset.
pub const HUMAN_HARD: usize = 85;
/// Paper count: VerilogEval-Machine problems.
pub const MACHINE_COUNT: usize = 143;
/// Paper count: RTLLM problems.
pub const RTLLM_COUNT: usize = 29;

/// Instantiates a blueprint into a suite problem.
pub fn problem_from_blueprint(bp: &Blueprint, suite: Suite, prefix: &str) -> Problem {
    let description = match suite {
        Suite::VerilogEvalMachine => bp.machine_description(),
        _ => bp.description.clone(),
    };
    Problem {
        id: format!("{prefix}/{}", bp.name),
        suite,
        description,
        top: "top_module".to_owned(),
        inputs: bp.inputs.clone(),
        outputs: bp.outputs.clone(),
        clocking: bp.clocking.clone(),
        solution: bp.solution.clone(),
        golden: bp.golden.clone(),
        difficulty: bp.difficulty,
        test_cycles: bp.test_cycles,
    }
}

/// A proxy for how hard a problem is *for an LLM* (the paper's easy/hard
/// split is by measured pass rate, which this score orders).
fn hardness_score(bp: &Blueprint) -> u32 {
    let mut score = 0;
    if bp.difficulty == Difficulty::Hard {
        score += 8;
    }
    if bp.is_sequential() {
        score += 2;
    }
    if bp.outputs.len() > 1 {
        score += 2;
    }
    let max_width = bp
        .inputs
        .iter()
        .chain(&bp.outputs)
        .map(|(_, w)| *w)
        .max()
        .unwrap_or(1);
    if max_width >= 16 {
        score += 1;
    }
    if max_width >= 64 {
        score += 2;
    }
    if bp.solution.lines().count() > 10 {
        score += 2;
    }
    score
}

/// Blueprints ordered hardest-first (deterministic tie-break by name).
fn ordered_blueprints() -> Vec<Blueprint> {
    let mut all = all_blueprints();
    all.sort_by(|a, b| {
        hardness_score(b)
            .cmp(&hardness_score(a))
            .then_with(|| a.name.cmp(&b.name))
    });
    all
}

/// The VerilogEval-Human suite: 156 problems, 71 easy / 85 hard.
pub fn verilog_eval_human() -> Vec<Problem> {
    let ordered = ordered_blueprints();
    assert!(
        ordered.len() >= HUMAN_COUNT,
        "need {HUMAN_COUNT} blueprints, have {}",
        ordered.len()
    );
    ordered
        .iter()
        .take(HUMAN_COUNT)
        .enumerate()
        .map(|(rank, bp)| {
            let mut problem = problem_from_blueprint(bp, Suite::VerilogEvalHuman, "human");
            // The hardest HUMAN_HARD problems by rank are the hard split.
            problem.difficulty =
                if rank < HUMAN_HARD { Difficulty::Hard } else { Difficulty::Easy };
            problem
        })
        .collect()
}

/// The VerilogEval-Machine suite: 143 problems (drops the most trivial
/// circuits from the Human set, keeping the shared-core structure of the
/// real benchmarks).
pub fn verilog_eval_machine() -> Vec<Problem> {
    let ordered = ordered_blueprints();
    ordered
        .iter()
        .take(MACHINE_COUNT)
        .enumerate()
        .map(|(rank, bp)| {
            let mut problem = problem_from_blueprint(bp, Suite::VerilogEvalMachine, "machine");
            // Machine keeps the same global ordering; the hard fraction
            // follows the Human split boundary.
            problem.difficulty =
                if rank < HUMAN_HARD { Difficulty::Hard } else { Difficulty::Easy };
            problem
        })
        .collect()
}

/// The RTLLM suite: the 29 hardest (system-scale) designs.
pub fn rtllm() -> Vec<Problem> {
    let ordered = ordered_blueprints();
    ordered
        .iter()
        .take(RTLLM_COUNT)
        .map(|bp| {
            let mut problem = problem_from_blueprint(bp, Suite::Rtllm, "rtllm");
            problem.difficulty = bp.difficulty;
            problem
        })
        .collect()
}

/// Looks up a problem by id across all suites.
pub fn find_problem(id: &str) -> Option<Problem> {
    verilog_eval_human()
        .into_iter()
        .chain(verilog_eval_machine())
        .chain(rtllm())
        .find(|p| p.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_shape_matches_paper() {
        let suite = verilog_eval_human();
        assert_eq!(suite.len(), HUMAN_COUNT);
        let easy = suite.iter().filter(|p| p.difficulty == Difficulty::Easy).count();
        let hard = suite.iter().filter(|p| p.difficulty == Difficulty::Hard).count();
        assert_eq!(easy, HUMAN_EASY);
        assert_eq!(hard, HUMAN_HARD);
    }

    #[test]
    fn machine_shape_matches_paper() {
        assert_eq!(verilog_eval_machine().len(), MACHINE_COUNT);
    }

    #[test]
    fn rtllm_shape_matches_paper() {
        let suite = rtllm();
        assert_eq!(suite.len(), RTLLM_COUNT);
        // The named paper examples must be in scope.
        assert!(suite.iter().any(|p| p.id.ends_with("conwaylife")));
    }

    #[test]
    fn ids_are_unique_within_and_across_suites() {
        let mut ids: Vec<String> = verilog_eval_human()
            .into_iter()
            .chain(verilog_eval_machine())
            .chain(rtllm())
            .map(|p| p.id)
            .collect();
        let before = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }

    #[test]
    fn machine_descriptions_are_mechanical() {
        let suite = verilog_eval_machine();
        assert!(suite
            .iter()
            .all(|p| p.description.starts_with("I want you to create a Verilog module")));
    }

    #[test]
    fn hard_split_contains_the_hard_archetypes() {
        let suite = verilog_eval_human();
        let hard_ids: Vec<&str> = suite
            .iter()
            .filter(|p| p.difficulty == Difficulty::Hard)
            .map(|p| p.id.as_str())
            .collect();
        for name in ["conwaylife", "detect101", "rrarb4"] {
            assert!(
                hard_ids.iter().any(|id| id.ends_with(name)),
                "{name} should be hard: {hard_ids:?}"
            );
        }
    }

    #[test]
    fn find_problem_round_trips() {
        assert!(find_problem("human/vector100r").is_some());
        assert!(find_problem("rtllm/conwaylife").is_some());
        assert!(find_problem("nope/zzz").is_none());
    }
}
