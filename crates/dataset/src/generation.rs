//! The candidate generation model: simulates an LLM producing Verilog
//! solutions for benchmark problems.
//!
//! Per DESIGN.md §1, the *artifact* is always real code (the reference
//! solution, a functional mutant of it, or either with injected syntax
//! errors) and all downstream measurement is real compilation + simulation.
//! Only the choice of which artifact to emit is stochastic, with rates
//! calibrated per (suite, difficulty) against the `original` columns of the
//! paper's Table 2 and Table 3.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rtlfixer_verilog::diag::ErrorCategory;

use crate::mutate;
use crate::problem::{Difficulty, Problem, Suite};

/// Generation capability class (Table 2/3 use GPT-3.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenCapability {
    /// `gpt-3.5-turbo` analogue (all paper generation experiments).
    Gpt35,
    /// GPT-4 analogue (higher functional accuracy, fewer syntax errors).
    Gpt4,
}

/// Calibrated emission rates for one (suite, difficulty) cell.
///
/// Correctness is a *per-problem mixture*: VerilogEval's pass@5/pass@1
/// ratios show that problems are bimodal for an LLM — it either "knows" a
/// problem (and then most samples are right) or it does not (and almost
/// none are). A problem is solvable with probability
/// [`m_solvable`](Self::m_solvable) (decided deterministically per problem,
/// stable across samples and seeds); samples of solvable problems are
/// correct with probability [`p_hi`](Self::p_hi), others with
/// [`p_lo`](Self::p_lo).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenerationConfig {
    /// Fraction of problems the model "knows".
    pub m_solvable: f64,
    /// Per-sample correctness on solvable problems.
    pub p_hi: f64,
    /// Per-sample correctness on unsolvable problems (lucky guesses).
    pub p_lo: f64,
    /// Probability of syntax-error injection given a correct base.
    pub p_syntax_given_correct: f64,
    /// Probability of syntax-error injection given a buggy base.
    pub p_syntax_given_wrong: f64,
}

impl GenerationConfig {
    /// The calibrated table (GPT-3.5). `m_solvable`/`p_hi` are fit jointly
    /// to Table 2's pass@1 *and* pass@5 columns (original and fixed);
    /// `p_syntax_*` to the fixed−original gaps and the Human 55%
    /// syntax-share statistic (Figure 4); RTLLM from Table 3.
    pub fn for_cell(suite: Suite, difficulty: Difficulty) -> GenerationConfig {
        match (suite, difficulty) {
            (Suite::VerilogEvalHuman, Difficulty::Easy) => GenerationConfig {
                m_solvable: 0.85,
                p_hi: 0.786,
                p_lo: 0.01,
                p_syntax_given_correct: 0.22,
                p_syntax_given_wrong: 0.48,
            },
            (Suite::VerilogEvalHuman, Difficulty::Hard) => GenerationConfig {
                m_solvable: 0.30,
                p_hi: 0.40,
                p_lo: 0.005,
                p_syntax_given_correct: 0.56,
                p_syntax_given_wrong: 0.48,
            },
            (Suite::VerilogEvalMachine, Difficulty::Easy) => GenerationConfig {
                m_solvable: 0.90,
                p_hi: 0.93,
                p_lo: 0.01,
                p_syntax_given_correct: 0.32,
                p_syntax_given_wrong: 0.55,
            },
            (Suite::VerilogEvalMachine, Difficulty::Hard) => GenerationConfig {
                m_solvable: 0.90,
                p_hi: 0.86,
                p_lo: 0.01,
                p_syntax_given_correct: 0.526,
                p_syntax_given_wrong: 0.55,
            },
            (Suite::Rtllm, _) => GenerationConfig {
                m_solvable: 0.35,
                p_hi: 0.47,
                p_lo: 0.005,
                p_syntax_given_correct: 0.30,
                p_syntax_given_wrong: 0.264,
            },
        }
    }

    /// GPT-4 adjustment: better functional accuracy, fewer syntax errors.
    pub fn for_capability(self, capability: GenCapability) -> GenerationConfig {
        match capability {
            GenCapability::Gpt35 => self,
            GenCapability::Gpt4 => GenerationConfig {
                m_solvable: self.m_solvable + (1.0 - self.m_solvable) * 0.45,
                p_hi: self.p_hi + (1.0 - self.p_hi) * 0.45,
                p_lo: self.p_lo,
                p_syntax_given_correct: self.p_syntax_given_correct * 0.35,
                p_syntax_given_wrong: self.p_syntax_given_wrong * 0.35,
            },
        }
    }

    /// Per-sample correctness probability for `problem`, resolving the
    /// per-problem solvability latent from a stable hash of the problem id
    /// (the *problem* is hard for the model, not the individual sample).
    pub fn p_correct_for(&self, problem_id: &str) -> f64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in problem_id.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        let uniform = (hash >> 11) as f64 / (1u64 << 53) as f64;
        if uniform < self.m_solvable {
            self.p_hi
        } else {
            self.p_lo
        }
    }
}

/// One sampled candidate with its (hidden) generation latents, kept for
/// analysis only — measurement never reads them.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The emitted text (possibly markdown-wrapped, possibly with prose).
    pub code: String,
    /// Whether the base was the correct solution (before syntax injection).
    pub latent_correct: bool,
    /// Categories of the injected syntax errors, in injection order.
    pub injected: Vec<ErrorCategory>,
}

/// Injection weights per category (relative). `IndexArithmetic` appears only
/// where structurally applicable (e.g. `conwaylife`), keeping the Figure 6
/// class rare but present.
const CATEGORY_WEIGHTS: &[(ErrorCategory, u32)] = &[
    (ErrorCategory::UndeclaredIdentifier, 18),
    (ErrorCategory::SyntaxError, 16),
    (ErrorCategory::IllegalProceduralLvalue, 14),
    (ErrorCategory::CStyleConstruct, 12),
    (ErrorCategory::IndexOutOfRange, 9),
    (ErrorCategory::UnbalancedBlock, 8),
    (ErrorCategory::IllegalContinuousLvalue, 7),
    (ErrorCategory::Redeclaration, 5),
    (ErrorCategory::MisplacedDirective, 4),
    (ErrorCategory::KeywordAsIdentifier, 3),
    (ErrorCategory::AssignToInput, 2),
    (ErrorCategory::IndexArithmetic, 4),
    (ErrorCategory::UnknownModule, 1),
    (ErrorCategory::PortConnectionMismatch, 1),
];

/// The generation model. Deterministic per seed.
#[derive(Debug)]
pub struct Generator {
    rng: StdRng,
    capability: GenCapability,
}

impl Generator {
    /// Creates a generator with the given capability and seed.
    pub fn new(capability: GenCapability, seed: u64) -> Self {
        Generator { rng: StdRng::seed_from_u64(seed), capability }
    }

    /// Samples one candidate implementation for `problem`.
    pub fn sample(&mut self, problem: &Problem) -> Candidate {
        let config = GenerationConfig::for_cell(problem.suite, problem.difficulty)
            .for_capability(self.capability);
        let p_correct = config.p_correct_for(&problem.id);
        let latent_correct = self.rng.gen_bool(p_correct);
        let mut code = if latent_correct {
            problem.solution.clone()
        } else {
            mutate::inject_functional_bug(&problem.solution, &mut self.rng)
                .unwrap_or_else(|| mutate::degrade_output(&problem.solution))
        };

        let p_syntax = if latent_correct {
            config.p_syntax_given_correct
        } else {
            config.p_syntax_given_wrong
        };
        let mut injected = Vec::new();
        if self.rng.gen_bool(p_syntax) {
            let error_count = match self.rng.gen_range(0..100) {
                0..=77 => 1,
                78..=95 => 2,
                _ => 3,
            };
            for _ in 0..error_count {
                if let Some((category, mutated)) = self.inject_weighted(&code) {
                    code = mutated;
                    injected.push(category);
                }
            }
        }

        // Presentation noise the rule-based pre-fixer (§4) must strip.
        if self.rng.gen_bool(0.12) {
            code = format!("Here is the implementation:\n```verilog\n{code}\n```\n");
        } else if self.rng.gen_bool(0.08) {
            code = format!("{code}\nThis module implements the requested behavior.");
        }

        Candidate { code, latent_correct, injected }
    }

    /// Picks a category by weight among those that actually apply to this
    /// code, and injects it.
    fn inject_weighted(&mut self, code: &str) -> Option<(ErrorCategory, String)> {
        let mut attempts = 0;
        while attempts < 12 {
            attempts += 1;
            let total: u32 = CATEGORY_WEIGHTS.iter().map(|(_, w)| *w).sum();
            let mut pick = self.rng.gen_range(0..total);
            let chosen = CATEGORY_WEIGHTS
                .iter()
                .find_map(|(category, weight)| {
                    if pick < *weight {
                        Some(*category)
                    } else {
                        pick -= weight;
                        None
                    }
                })
                .unwrap_or(CATEGORY_WEIGHTS[0].0);
            if let Some(mutated) = mutate::inject(code, chosen, &mut self.rng) {
                return Some((chosen, mutated));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Verdict;
    use crate::suites;

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let problem = suites::find_problem("human/vector100r").unwrap();
        let a = Generator::new(GenCapability::Gpt35, 5).sample(&problem);
        let b = Generator::new(GenCapability::Gpt35, 5).sample(&problem);
        assert_eq!(a.code, b.code);
        let c = Generator::new(GenCapability::Gpt35, 6).sample(&problem);
        // Different seeds normally differ (both could be the clean solution,
        // but then latents still match deterministically).
        let _ = c;
    }

    #[test]
    fn injected_candidates_fail_compilation() {
        let problem = suites::find_problem("human/reverse8").unwrap();
        let mut generator = Generator::new(GenCapability::Gpt35, 11);
        let mut saw_injection = false;
        for _ in 0..40 {
            let candidate = generator.sample(&problem);
            if !candidate.injected.is_empty() {
                saw_injection = true;
                // Misplaced directives are exactly what the rule-based
                // pre-fixer strips, so a directive-only injection may
                // legitimately compile after cleaning; every other category
                // must survive the prefixer and still fail.
                let needs_llm = candidate
                    .injected
                    .iter()
                    .any(|c| *c != ErrorCategory::MisplacedDirective);
                let cleaned = rtlfixer_agent::prefixer::prefix_fix(&candidate.code);
                if needs_llm {
                    assert!(
                        !rtlfixer_verilog::compile(&cleaned).is_ok(),
                        "injected {:?} but compiles:\n{}",
                        candidate.injected,
                        cleaned
                    );
                }
            }
        }
        assert!(saw_injection, "no syntax injection in 40 samples");
    }

    #[test]
    fn clean_correct_candidates_pass() {
        let problem = suites::find_problem("human/mux2_8").unwrap();
        let mut generator = Generator::new(GenCapability::Gpt35, 13);
        for _ in 0..40 {
            let candidate = generator.sample(&problem);
            if candidate.latent_correct && candidate.injected.is_empty() {
                let cleaned = rtlfixer_agent::prefixer::prefix_fix(&candidate.code);
                assert_eq!(problem.check(&cleaned), Verdict::Pass);
                return;
            }
        }
        panic!("no clean correct candidate in 40 samples");
    }

    #[test]
    fn hard_problems_generate_fewer_correct_candidates() {
        let human = suites::verilog_eval_human();
        let easy = human.iter().find(|p| p.difficulty == Difficulty::Easy).unwrap();
        let hard = human.iter().find(|p| p.difficulty == Difficulty::Hard).unwrap();
        let mut generator = Generator::new(GenCapability::Gpt35, 17);
        let count_correct = |generator: &mut Generator, p: &Problem| {
            (0..200).filter(|_| generator.sample(p).latent_correct).count()
        };
        let easy_correct = count_correct(&mut generator, easy);
        let hard_correct = count_correct(&mut generator, hard);
        assert!(
            easy_correct > hard_correct + 40,
            "easy {easy_correct} vs hard {hard_correct}"
        );
    }

    #[test]
    fn gpt4_reduces_syntax_errors() {
        let problem = suites::find_problem("human/add8").unwrap();
        let mut g35 = Generator::new(GenCapability::Gpt35, 23);
        let mut g4 = Generator::new(GenCapability::Gpt4, 23);
        let count_injected = |generator: &mut Generator| {
            (0..200)
                .filter(|_| !generator.sample(&problem).injected.is_empty())
                .count()
        };
        let n35 = count_injected(&mut g35);
        let n4 = count_injected(&mut g4);
        assert!(n4 < n35, "gpt4 {n4} vs gpt35 {n35}");
    }
}
