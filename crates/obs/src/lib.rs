//! # rtlfixer-obs
//!
//! The zero-dependency observability layer under every other crate in the
//! workspace: structured spans, a process-wide metrics registry, and an
//! optional JSONL event sink.
//!
//! The ROADMAP's north star is a production-scale service, and a service is
//! only operable if a run can answer "where did this episode spend its
//! time?" without a debugger. This crate provides that window while keeping
//! the repo's core contract intact: **telemetry is strictly out-of-band**.
//! Experiment results are bit-identical with observability on or off, at
//! any worker count — the invariance suite asserts it.
//!
//! * **Spans** — [`span`] returns a guard that records a wall-clock
//!   duration into the registry (and the JSONL sink) when dropped. The
//!   canonical kinds are [`kind::EPISODE`], [`kind::TURN`],
//!   [`kind::COMPILE`], [`kind::RETRIEVE`], [`kind::SIMULATE`] and
//!   [`kind::RETRY`]. Layers on a *simulated* clock (the resilient
//!   transport's backoff) record spans with [`record_span_simulated`]
//!   instead of real sleeping, so timings stay realistic without slowing
//!   evaluation down.
//! * **Registry** — named [counters](counter_add), [gauges](gauge_set) and
//!   fixed-bucket (log₂) [histograms](observe), snapshotted with
//!   [`snapshot`] and summarised with [`Histogram::percentile`].
//! * **JSONL sink** — `RTLFIXER_TRACE=<path>` (mirroring the
//!   `RTLFIXER_CACHE` / `RTLFIXER_FAULTS` env conventions: unset, `0`,
//!   `off`, `false` or `no` disable it) streams one JSON object per line:
//!   span events plus per-episode counter summaries.
//! * **Episode capture** — the evaluation pool wraps each episode in
//!   [`episode_begin`] / [`episode_end`]; everything the episode records
//!   lands in a worker-local [`EpisodeTelemetry`] buffer instead of the
//!   shared registry. The pool [`merge`]s the buffers *at the barrier, in
//!   index order*, so the registry contents (and the JSONL line order) are
//!   independent of worker count and thread scheduling. Merging is
//!   commutative sums, so any merge order yields the same aggregate.
//!
//! When neither the sink nor the telemetry flag is active, every entry
//! point is a single relaxed atomic load and an early return — cheap enough
//! to leave instrumentation in the sim kernel's settle loop.

#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

/// Canonical span kinds. Free-form kinds are allowed; these are the ones
/// the workspace's instrumentation uses (and DESIGN.md §3f documents).
pub mod kind {
    /// One full fixing episode (agent loop entry to exit).
    pub const EPISODE: &str = "episode";
    /// One ReAct revision round (retrieve → propose → recompile).
    pub const TURN: &str = "turn";
    /// One compiler invocation (cached or not).
    pub const COMPILE: &str = "compile";
    /// One guidance-retrieval call.
    pub const RETRIEVE: &str = "retrieve";
    /// One testbench simulation run.
    pub const SIMULATE: &str = "simulate";
    /// One backoff-and-retry of the resilient LLM transport
    /// (simulated-clock duration).
    pub const RETRY: &str = "retry";
    /// One served request's worker-side handling (shed check, episode,
    /// fan-out) in the `rtlfixer-serve` daemon.
    pub const REQUEST: &str = "request";
}

// ---- global switches ----------------------------------------------------

// Cached "is any observability active" flag: 0 = uninitialised,
// 1 = inactive, 2 = active. Every record entry point loads this once.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

// Telemetry flag (`--telemetry` in the bench binaries): 0 = uninitialised,
// 1 = off, 2 = on. Independent of the trace sink.
static TELEMETRY: AtomicU8 = AtomicU8::new(0);

enum Sink {
    /// `RTLFIXER_TRACE` not yet consulted.
    Uninit,
    Off,
    On(BufWriter<File>),
}

static SINK: Mutex<Sink> = Mutex::new(Sink::Uninit);

fn lock_sink() -> MutexGuard<'static, Sink> {
    SINK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn sink_init(sink: &mut Sink) {
    if let Sink::Uninit = sink {
        *sink = match std::env::var("RTLFIXER_TRACE") {
            Ok(value)
                if !matches!(
                    value.to_ascii_lowercase().as_str(),
                    "" | "0" | "off" | "false" | "no"
                ) =>
            {
                match File::create(&value) {
                    Ok(file) => Sink::On(BufWriter::new(file)),
                    Err(_) => Sink::Off, // unwritable path: tracing is best-effort
                }
            }
            _ => Sink::Off,
        };
    }
}

fn recompute_active() {
    let trace = {
        let mut sink = lock_sink();
        sink_init(&mut sink);
        matches!(*sink, Sink::On(_))
    };
    let active = trace || telemetry_enabled();
    ACTIVE.store(if active { 2 } else { 1 }, Ordering::Relaxed);
}

/// Whether any observability output (trace sink or telemetry flag) is
/// active. The fast path of every recording function; a single relaxed
/// atomic load once initialised.
pub fn enabled() -> bool {
    match ACTIVE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => {
            recompute_active();
            ACTIVE.load(Ordering::Relaxed) == 2
        }
    }
}

/// Whether the in-memory telemetry registry was explicitly requested
/// (the bench binaries' `--telemetry` flag).
pub fn telemetry_enabled() -> bool {
    TELEMETRY.load(Ordering::Relaxed) == 2
}

/// Turns the telemetry registry on or off process-wide.
pub fn set_telemetry(on: bool) {
    TELEMETRY.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    recompute_active();
}

/// Whether the JSONL trace sink is open.
pub fn trace_enabled() -> bool {
    enabled(); // force lazy init
    matches!(*lock_sink(), Sink::On(_))
}

/// Overrides the trace sink programmatically (tests, A/B runs): `Some`
/// opens (truncating) the file at `path`, `None` closes the sink. Either
/// way the `RTLFIXER_TRACE` environment variable is no longer consulted.
pub fn set_trace_path(path: Option<&std::path::Path>) {
    {
        let mut sink = lock_sink();
        *sink = match path {
            Some(path) => match File::create(path) {
                Ok(file) => Sink::On(BufWriter::new(file)),
                Err(_) => Sink::Off,
            },
            None => Sink::Off,
        };
    }
    recompute_active();
}

fn emit_to_sink(line: &str) {
    let mut sink = lock_sink();
    sink_init(&mut sink);
    if let Sink::On(writer) = &mut *sink {
        let _ = writeln!(writer, "{line}");
        let _ = writer.flush();
    }
}

// ---- histograms ---------------------------------------------------------

/// Bucket count of [`Histogram`]: bucket 0 holds zeros, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i - 1]`.
pub const HIST_BUCKETS: usize = 65;

/// A fixed-bucket (log₂) histogram over `u64` samples.
///
/// Bucket boundaries are powers of two, so merging is element-wise
/// addition (commutative and associative — the property the pool-barrier
/// merge relies on) and percentile estimates are exact to within one
/// octave.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Box<[u64; HIST_BUCKETS]>,
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: Box::new([0; HIST_BUCKETS]), count: 0, sum: 0 }
    }
}

fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// The inclusive upper bound of bucket `index` (the value
/// [`Histogram::percentile`] reports).
fn bucket_upper(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn observe(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Adds every sample of `other` into `self` (element-wise).
    pub fn merge_from(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample value (`0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`), reported as the upper bound of
    /// the bucket containing it — a conservative (over-)estimate, exact to
    /// within one power of two. `0` when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket;
            if cumulative >= target {
                return bucket_upper(index);
            }
        }
        bucket_upper(HIST_BUCKETS - 1)
    }

    /// Non-empty `(bucket_upper_bound, count)` pairs, low to high.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, count)| **count > 0)
            .map(|(index, count)| (bucket_upper(index), *count))
            .collect()
    }
}

// ---- registry and episode capture ---------------------------------------

/// One coherent view of metric state: counters, gauges, histograms.
/// Used both as the global registry contents and as a snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Monotonic named counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins named gauges.
    pub gauges: BTreeMap<String, i64>,
    /// Named log₂ histograms.
    pub hists: BTreeMap<String, Histogram>,
}

static REGISTRY: Mutex<Option<Snapshot>> = Mutex::new(None);

fn with_registry<R>(f: impl FnOnce(&mut Snapshot) -> R) -> R {
    let mut guard = REGISTRY.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    f(guard.get_or_insert_with(Snapshot::default))
}

/// Worker-local telemetry of one episode: everything the episode recorded,
/// buffered away from the shared registry so the parallel pool can merge
/// per-episode data deterministically at its barrier (see the
/// [module docs](self)).
#[derive(Debug, Clone, Default)]
pub struct EpisodeTelemetry {
    /// Counter increments recorded during the episode.
    pub counters: BTreeMap<String, u64>,
    /// Histogram samples recorded during the episode.
    pub hists: BTreeMap<String, Histogram>,
    /// Pre-rendered JSONL event lines, in episode-local order.
    pub events: Vec<String>,
}

impl EpisodeTelemetry {
    /// Folds `other` into `self`. Counter and histogram merging are
    /// commutative sums; events append in call order.
    pub fn merge_from(&mut self, other: &EpisodeTelemetry) {
        for (name, delta) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += delta;
        }
        for (name, hist) in &other.hists {
            self.hists.entry(name.clone()).or_default().merge_from(hist);
        }
        self.events.extend(other.events.iter().cloned());
    }
}

thread_local! {
    static EPISODE: RefCell<Option<EpisodeTelemetry>> = const { RefCell::new(None) };
}

/// Starts buffering this thread's telemetry into a fresh episode capture.
/// No-op (and [`episode_end`] returns `None`) when observability is off.
pub fn episode_begin() {
    if !enabled() {
        return;
    }
    EPISODE.with(|slot| *slot.borrow_mut() = Some(EpisodeTelemetry::default()));
}

/// Ends the current episode capture and returns its buffer. Always clears
/// the capture, even if the episode body panicked and was contained.
pub fn episode_end() -> Option<EpisodeTelemetry> {
    EPISODE.with(|slot| slot.borrow_mut().take())
}

/// Merges one episode's buffered telemetry into the global registry and
/// flushes its buffered JSONL events to the sink (appending an
/// `{"ev":"episode",...}` summary line). The evaluation pool calls this at
/// its barrier, in episode-index order, so registry contents and trace
/// line order are scheduling-independent.
pub fn merge(telemetry: &EpisodeTelemetry) {
    with_registry(|registry| {
        for (name, delta) in &telemetry.counters {
            *registry.counters.entry(name.clone()).or_insert(0) += delta;
        }
        for (name, hist) in &telemetry.hists {
            registry.hists.entry(name.clone()).or_default().merge_from(hist);
        }
    });
    if trace_enabled() {
        for line in &telemetry.events {
            emit_to_sink(line);
        }
        let mut line = String::from("{\"ev\":\"episode\",\"counters\":{");
        for (index, (name, value)) in telemetry.counters.iter().enumerate() {
            if index > 0 {
                line.push(',');
            }
            let _ = write!(line, "{}:{value}", json_string(name));
        }
        line.push_str("}}");
        emit_to_sink(&line);
    }
}

/// Adds `delta` to the named counter (episode buffer if one is active on
/// this thread, the global registry otherwise).
pub fn counter_add(name: &str, delta: u64) {
    if !enabled() || delta == 0 {
        return;
    }
    let buffered = EPISODE.with(|slot| {
        if let Some(telemetry) = slot.borrow_mut().as_mut() {
            *telemetry.counters.entry(name.to_owned()).or_insert(0) += delta;
            true
        } else {
            false
        }
    });
    if !buffered {
        with_registry(|registry| {
            *registry.counters.entry(name.to_owned()).or_insert(0) += delta;
        });
    }
}

/// Sets the named gauge. Gauges are last-write-wins and therefore *not*
/// episode-buffered (a merge order would change the survivor); they are
/// meant for point-in-time process facts (resident entries, pool width).
pub fn gauge_set(name: &str, value: i64) {
    if !enabled() {
        return;
    }
    with_registry(|registry| {
        registry.gauges.insert(name.to_owned(), value);
    });
}

/// Records one sample into the named histogram (episode-buffered like
/// [`counter_add`]).
pub fn observe(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    let buffered = EPISODE.with(|slot| {
        if let Some(telemetry) = slot.borrow_mut().as_mut() {
            telemetry.hists.entry(name.to_owned()).or_default().observe(value);
            true
        } else {
            false
        }
    });
    if !buffered {
        with_registry(|registry| {
            registry.hists.entry(name.to_owned()).or_default().observe(value);
        });
    }
}

/// A point-in-time copy of the global registry.
pub fn snapshot() -> Snapshot {
    with_registry(|registry| registry.clone())
}

/// Compact summary of one span-duration histogram, the shape consumers
/// (the episode scheduler's cost model, the bench `--telemetry` block)
/// need without re-deriving it from raw buckets or re-parsing JSONL
/// traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanSummary {
    /// Spans recorded.
    pub count: u64,
    /// Median duration in microseconds (bucket upper bound).
    pub p50: u64,
    /// 95th-percentile duration in microseconds (bucket upper bound).
    pub p95: u64,
    /// Total duration in microseconds (saturating).
    pub sum: u64,
}

impl From<&Histogram> for SpanSummary {
    fn from(hist: &Histogram) -> Self {
        SpanSummary {
            count: hist.count(),
            p50: hist.percentile(0.50),
            p95: hist.percentile(0.95),
            sum: hist.sum(),
        }
    }
}

impl SpanSummary {
    /// Mean duration in microseconds (`0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Summarises the span histogram of one kind (`span.<kind>.us`), if any
/// samples were recorded. `kind` accepts the same free-form names [`span`]
/// does, including dotted per-category kinds such as
/// `episode.by_category.syntax_error`.
pub fn span_summary(kind: &str) -> Option<SpanSummary> {
    with_registry(|registry| {
        registry.hists.get(&format!("span.{kind}.us")).map(SpanSummary::from)
    })
}

/// Summarises every span histogram whose kind starts with `prefix`,
/// keyed by the remainder of the kind after the prefix. The scheduler's
/// cost model uses `span_summaries("episode.by_category.")` to read the
/// per-error-category episode-duration histograms directly from the
/// registry instead of re-parsing JSONL traces.
pub fn span_summaries(prefix: &str) -> BTreeMap<String, SpanSummary> {
    with_registry(|registry| {
        registry
            .hists
            .iter()
            .filter_map(|(name, hist)| {
                let kind = name.strip_prefix("span.")?.strip_suffix(".us")?;
                let rest = kind.strip_prefix(prefix)?;
                Some((rest.to_owned(), SpanSummary::from(hist)))
            })
            .collect()
    })
}

/// Zeroes the global registry (tests, A/B sweeps). The trace sink and
/// switches are untouched.
pub fn reset() {
    with_registry(|registry| *registry = Snapshot::default());
}

// ---- spans ---------------------------------------------------------------

/// A live span guard from [`span`]. Records its wall-clock duration (in
/// microseconds) when dropped: counter `span.<kind>.count`, histogram
/// `span.<kind>.us`, and — with the sink open — a
/// `{"ev":"span","kind":...,"us":...}` JSONL line.
#[must_use = "a span records on drop; binding it to _ drops it immediately"]
pub struct Span {
    kind: &'static str,
    start: Option<Instant>,
}

/// Opens a span of the given kind. A no-op guard when observability is off.
pub fn span(kind: &'static str) -> Span {
    Span { kind, start: enabled().then(Instant::now) }
}

impl Span {
    /// Whether this span is live (observability was on at creation).
    pub fn is_recording(&self) -> bool {
        self.start.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            let micros = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
            record_span(self.kind, micros, false);
        }
    }
}

/// Records a span whose duration comes from a *simulated* clock (e.g. the
/// resilient transport's backoff, which never really sleeps). Same
/// registry/sink treatment as a real span, with `"sim":true` on the JSONL
/// line.
pub fn record_span_simulated(kind: &str, micros: u64) {
    if !enabled() {
        return;
    }
    record_span(kind, micros, true);
}

fn record_span(kind: &str, micros: u64, simulated: bool) {
    counter_add(&format!("span.{kind}.count"), 1);
    observe(&format!("span.{kind}.us"), micros);
    // Per-span JSONL lines for the coarse kinds only: compile/retrieve
    // fire per turn and episode/turn/simulate/retry carry the shape of the
    // loop; all are low-rate relative to sim cycles.
    let line = format!(
        "{{\"ev\":\"span\",\"kind\":{},\"us\":{micros}{}}}",
        json_string(kind),
        if simulated { ",\"sim\":true" } else { "" }
    );
    emit_event(line);
}

/// Routes a pre-rendered JSONL line: episode buffer if active, else
/// straight to the sink.
fn emit_event(line: String) {
    let buffered = EPISODE.with(|slot| {
        if let Some(telemetry) = slot.borrow_mut().as_mut() {
            telemetry.events.push(line.clone());
            true
        } else {
            false
        }
    });
    if !buffered && trace_enabled() {
        emit_to_sink(&line);
    }
}

/// Writes one caller-supplied event object to the trace sink (or episode
/// buffer). `fields` are raw `key:value` JSON fragments; the `ev` field is
/// prepended. Values must already be valid JSON (use [`json_string`] for
/// strings).
pub fn trace_event(ev: &str, fields: &[(&str, String)]) {
    if !enabled() {
        return;
    }
    let mut line = format!("{{\"ev\":{}", json_string(ev));
    for (key, value) in fields {
        let _ = write!(line, ",{}:{value}", json_string(key));
    }
    line.push('}');
    emit_event(line);
}

/// Renders a string as a quoted, escaped JSON string literal.
pub fn json_string(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests mutate process-global switches; serialise them.
    fn switch_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn with_telemetry<R>(f: impl FnOnce() -> R) -> R {
        let _guard = switch_lock();
        set_telemetry(true);
        reset();
        let out = f();
        set_telemetry(false);
        reset();
        out
    }

    #[test]
    fn disabled_observability_records_nothing() {
        let _guard = switch_lock();
        set_telemetry(false);
        set_trace_path(None);
        reset();
        counter_add("x", 3);
        observe("h", 10);
        gauge_set("g", 1);
        let _span = span("compile");
        drop(_span);
        assert_eq!(snapshot(), Snapshot::default());
        episode_begin();
        assert!(episode_end().is_none(), "no capture when off");
    }

    #[test]
    fn counters_gauges_histograms_land_in_registry() {
        with_telemetry(|| {
            counter_add("agent.turns", 2);
            counter_add("agent.turns", 3);
            gauge_set("pool.jobs", 4);
            observe("lat", 100);
            observe("lat", 1_000);
            let snap = snapshot();
            assert_eq!(snap.counters.get("agent.turns"), Some(&5));
            assert_eq!(snap.gauges.get("pool.jobs"), Some(&4));
            let hist = snap.hists.get("lat").expect("histogram exists");
            assert_eq!(hist.count(), 2);
            assert_eq!(hist.sum(), 1_100);
        });
    }

    #[test]
    fn span_records_count_and_duration() {
        with_telemetry(|| {
            {
                let _span = span("compile");
                assert!(_span.is_recording());
            }
            record_span_simulated("retry", 250_000);
            let snap = snapshot();
            assert_eq!(snap.counters.get("span.compile.count"), Some(&1));
            assert_eq!(snap.counters.get("span.retry.count"), Some(&1));
            let retry = snap.hists.get("span.retry.us").expect("retry hist");
            assert_eq!(retry.sum(), 250_000);
        });
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let mut hist = Histogram::new();
        assert_eq!(hist.percentile(0.5), 0);
        for value in [0u64, 1, 2, 3, 4, 700, 700, 700, 700, 3_000] {
            hist.observe(value);
        }
        assert_eq!(hist.count(), 10);
        // p50 is the 5th-ranked sample (4) → bucket [4, 7].
        assert_eq!(hist.percentile(0.5), 7);
        // p80 falls among the 700s → bucket [512, 1023].
        assert_eq!(hist.percentile(0.8), 1023);
        // p95+ reaches the 3000 sample → bucket [2048, 4095].
        assert_eq!(hist.percentile(0.95), 4095);
        assert_eq!(hist.percentile(0.0), 0);
        assert!(hist.mean() > 0.0);
        let buckets = hist.nonzero_buckets();
        assert!(buckets.iter().any(|(upper, count)| *upper == 1023 && *count == 4));
    }

    #[test]
    fn span_summaries_expose_per_category_histograms() {
        with_telemetry(|| {
            for us in [100u64, 200, 400, 3_000] {
                observe("span.episode.by_category.syntax_error.us", us);
            }
            observe("span.episode.by_category.width_mismatch.us", 50);
            observe("span.compile.us", 10);
            let summary =
                span_summary("episode.by_category.syntax_error").expect("histogram recorded");
            assert_eq!(summary.count, 4);
            assert_eq!(summary.sum, 3_700);
            assert!((summary.mean() - 925.0).abs() < 1e-9);
            // p50/p95 are bucket upper bounds of the log2 histogram.
            assert_eq!(summary.p50, 255);
            assert_eq!(summary.p95, 4_095);

            let all = span_summaries("episode.by_category.");
            assert_eq!(all.len(), 2, "{all:?}");
            assert_eq!(all.get("syntax_error"), Some(&summary));
            assert_eq!(all.get("width_mismatch").map(|s| s.count), Some(1));
            assert!(span_summary("episode.by_category.nonsense").is_none());
            // The prefix filter must not leak unrelated span kinds.
            assert!(!all.contains_key("compile"), "{all:?}");
        });
    }

    #[test]
    fn episode_capture_diverts_from_registry() {
        with_telemetry(|| {
            episode_begin();
            counter_add("c", 7);
            observe("h", 9);
            let telemetry = episode_end().expect("capture active");
            assert_eq!(telemetry.counters.get("c"), Some(&7));
            assert!(snapshot().counters.is_empty(), "registry untouched until merge");
            merge(&telemetry);
            assert_eq!(snapshot().counters.get("c"), Some(&7));
            assert_eq!(snapshot().hists.get("h").map(Histogram::count), Some(1));
        });
    }

    #[test]
    fn merge_is_order_independent() {
        // The pool-barrier contract: whatever order worker-local buffers
        // merge in, the aggregate is identical.
        let make = |seed: u64| {
            let mut t = EpisodeTelemetry::default();
            *t.counters.entry("episodes".into()).or_insert(0) += 1;
            *t.counters.entry(format!("by_seed.{}", seed % 3)).or_insert(0) += seed;
            t.hists.entry("lat".into()).or_default().observe(seed * 17 % 2_000);
            t
        };
        let parts: Vec<EpisodeTelemetry> = (0..24).map(make).collect();
        let merge_all = |order: &[usize]| {
            let mut total = EpisodeTelemetry::default();
            for &index in order {
                total.merge_from(&parts[index]);
            }
            (total.counters, total.hists)
        };
        let forward: Vec<usize> = (0..24).collect();
        let backward: Vec<usize> = (0..24).rev().collect();
        let interleaved: Vec<usize> =
            (0..24).step_by(2).chain((1..24).step_by(2)).collect();
        let reference = merge_all(&forward);
        assert_eq!(merge_all(&backward), reference);
        assert_eq!(merge_all(&interleaved), reference);
    }

    #[test]
    fn trace_sink_writes_parseable_lines() {
        let _guard = switch_lock();
        let path = std::env::temp_dir().join(format!("obs_test_{}.jsonl", std::process::id()));
        set_trace_path(Some(&path));
        reset();
        {
            let _span = span("compile");
        }
        trace_event("custom", &[("answer", "42".to_owned()), ("name", json_string("a\"b"))]);
        episode_begin();
        counter_add("c", 1);
        let telemetry = episode_end().expect("capture");
        merge(&telemetry);
        set_trace_path(None);
        set_telemetry(false);
        reset();
        let text = std::fs::read_to_string(&path).expect("trace file written");
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 3, "span + custom + episode lines: {text}");
        for line in &lines {
            // Minimal shape check without a JSON parser (this crate has no
            // dependencies): balanced braces, quoted ev field first.
            assert!(line.starts_with("{\"ev\":\""), "{line}");
            assert!(line.ends_with('}'), "{line}");
        }
        assert!(text.contains("\"ev\":\"episode\""), "{text}");
        assert!(text.contains("\"answer\":42"), "{text}");
        assert!(text.contains("a\\\"b"), "{text}");
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
