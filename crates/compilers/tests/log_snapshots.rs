//! Snapshot tests: exact rendered logs for representative inputs, pinning
//! each personality's house style (these strings are what the RAG retriever
//! and the competence model key off, so silent drift matters).

use rtlfixer_compilers::CompilerKind;

const PHANTOM_CLK: &str = "module top_module(input [99:0] in, output reg [99:0] out);\n\
                           always @(posedge clk) out <= in;\nendmodule";

#[test]
fn iverilog_phantom_clk_snapshot() {
    let outcome = CompilerKind::Iverilog.build().compile(PHANTOM_CLK, "vector100r.sv");
    let expected = "vector100r.sv:2: error: Unable to bind wire/reg/memory 'clk' in 'top_module'\n\
                    vector100r.sv:2: error: Failed to elaborate expression referencing 'clk'.\n\
                    2 error(s) during elaboration.";
    assert_eq!(outcome.log, expected);
}

#[test]
fn quartus_phantom_clk_snapshot() {
    let outcome = CompilerKind::Quartus.build().compile(PHANTOM_CLK, "vector100r.sv");
    let expected = "Error (10161): Verilog HDL error at vector100r.sv(2): object \"clk\" is not \
                    declared. Verify the object name is correct. If the name is correct, declare \
                    the object. File: /tmp/tmpworkdir/vector100r.sv Line: 2\n\
                    Error: Quartus Prime Analysis & Synthesis was unsuccessful. 1 error, 0 warnings";
    assert_eq!(outcome.log, expected);
}

#[test]
fn simple_snapshot() {
    let outcome = CompilerKind::Simple.build().compile(PHANTOM_CLK, "main.sv");
    assert_eq!(outcome.log, "Correct the syntax error in the code.");
}

#[test]
fn iverilog_index_snapshot() {
    let source = "module top_module(input [7:0] in, output [7:0] out);\n\
                  assign out[8] = in[0];\nendmodule";
    let outcome = CompilerKind::Iverilog.build().compile(source, "main.v");
    assert_eq!(
        outcome.log,
        "main.v:2: error: Index out[8] is out of range.\n1 error(s) during elaboration."
    );
}

#[test]
fn quartus_success_snapshot() {
    let outcome = CompilerKind::Quartus
        .build()
        .compile("module m(input a, output y); assign y = a; endmodule", "main.sv");
    assert_eq!(
        outcome.log,
        "Info: Quartus Prime Analysis & Synthesis was successful. 0 errors, 0 warnings"
    );
}

#[test]
fn quartus_multiple_errors_counted() {
    let source = "module m(input [3:0] a, output [3:0] y);\n\
                  assign y[4] = a[5];\nassign y[0] = ghost;\nendmodule";
    let outcome = CompilerKind::Quartus.build().compile(source, "main.sv");
    assert!(outcome.log.contains("3 errors"), "{}", outcome.log);
    assert_eq!(outcome.log.matches("Error (").count(), 3, "{}", outcome.log);
}

#[test]
fn logs_are_line_number_accurate() {
    // The same error on different lines must render different line numbers.
    for (line, source) in [
        (2, "module m(input a, output y);\nassign y = ghost;\nendmodule"),
        (4, "module m(input a, output y);\nwire t;\nassign t = a;\nassign y = ghost;\nendmodule"),
    ] {
        let outcome = CompilerKind::Quartus.build().compile(source, "main.sv");
        assert!(
            outcome.log.contains(&format!("main.sv({line})")),
            "expected line {line} in: {}",
            outcome.log
        );
    }
}
