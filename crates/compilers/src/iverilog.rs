//! Icarus Verilog (`iverilog`) log personality.
//!
//! Modelled on the paper's Figure 5 example:
//!
//! ```text
//! vector100r.sv:5: error: Unable to bind wire/reg/memory 'clk' in 'top_module'
//! vector100r.sv:5: error: Failed to evaluate event expression 'posedge clk'.
//! 2 error(s) during elaboration.
//! ```
//!
//! Characteristics the paper calls out (§4.3.1): logs are terse, carry no
//! numeric tags, syntax errors collapse to a bare `syntax error`, and some
//! edge cases end with the famous `I give up.`

use rtlfixer_verilog::diag::{DiagData, Diagnostic, ErrorCategory, Severity};
use rtlfixer_verilog::{compile_shared, Analysis};

use crate::{enclosing_module, CompileOutcome, Compiler, FeedbackQuality};

/// The iverilog personality. See the [module docs](self).
#[derive(Debug, Clone, Copy, Default)]
pub struct IverilogCompiler {
    _private: (),
}

impl IverilogCompiler {
    /// Creates the personality.
    pub fn new() -> Self {
        IverilogCompiler { _private: () }
    }

    fn render_line(
        &self,
        diag: &Diagnostic,
        analysis: &Analysis,
        file_name: &str,
    ) -> Vec<String> {
        let line = analysis.source_map.line(diag.span.start);
        let module = enclosing_module(analysis, diag.span);
        let prefix = format!("{file_name}:{line}: ");
        match &diag.data {
            DiagData::Undeclared { name } => vec![
                format!("{prefix}error: Unable to bind wire/reg/memory '{name}' in '{module}'"),
                format!("{prefix}error: Failed to elaborate expression referencing '{name}'."),
            ],
            DiagData::IndexOob { target, index, .. } => {
                vec![format!("{prefix}error: Index {target}[{index}] is out of range.")]
            }
            DiagData::BadProceduralLvalue { name } => {
                vec![format!("{prefix}error: {name} is not a valid l-value in {module}.")]
            }
            DiagData::BadContinuousLvalue { name } => vec![format!(
                "{prefix}error: reg {name}; cannot be driven by primitives or continuous assignment."
            )],
            DiagData::InputAssigned { name } => {
                vec![format!("{prefix}error: {name} is not a valid l-value in {module}.")]
            }
            DiagData::PortMismatch { instance, port, expected, found, .. } => match port {
                Some(port) => {
                    vec![format!("{prefix}error: port ``{port}'' is not a port of {instance}.")]
                }
                None => vec![format!(
                    "{prefix}error: Wrong number of ports. Expecting {expected}, got {found}."
                )],
            },
            DiagData::ModuleNotFound { name } => {
                vec![format!("{prefix}error: Unknown module type: {name}")]
            }
            DiagData::Redeclared { name } => vec![format!(
                "{prefix}error: '{name}' has already been declared in this scope."
            )],
            // The information-poor cases: bare `syntax error`, subcategory
            // indistinguishable — this is what makes iverilog feedback worse
            // than Quartus for both the LLM and the retriever.
            DiagData::Syntax { .. }
            | DiagData::CStyle { .. }
            | DiagData::KeywordAsId { .. } => {
                vec![format!("{prefix}syntax error")]
            }
            DiagData::Unbalanced { construct } => vec![
                format!("{prefix}syntax error"),
                format!("{file_name}:{line}: error: Errors in '{construct}' region."),
            ],
            DiagData::Directive { directive } => vec![format!(
                "{prefix}error: `{directive} directive can not be inside a module declaration."
            )],
            // iverilog stays silent on warning-level lints — part of its
            // lower feedback informativeness.
            DiagData::Width { .. }
            | DiagData::Latch { .. }
            | DiagData::NoDefault
            | DiagData::Unused { .. } => Vec::new(),
        }
    }
}

impl Compiler for IverilogCompiler {
    fn name(&self) -> &str {
        "iverilog"
    }

    fn compile(&self, source: &str, file_name: &str) -> CompileOutcome {
        let analysis = compile_shared(source);
        let mut lines = Vec::new();
        let mut elab_errors = 0usize;
        let mut syntax_lines = 0usize;
        for diag in &analysis.diagnostics {
            if diag.severity != Severity::Error {
                continue;
            }
            let rendered = self.render_line(diag, &analysis, file_name);
            if rendered.iter().any(|l| l.contains("syntax error")) {
                syntax_lines += 1;
            } else {
                elab_errors += rendered.len();
            }
            lines.extend(rendered);
        }
        let success = analysis.is_ok();
        if !success {
            // iverilog's famous capitulation on parse-confused inputs.
            if syntax_lines >= 3 {
                lines.push("I give up.".to_owned());
            } else if elab_errors > 0 {
                lines.push(format!("{elab_errors} error(s) during elaboration."));
            }
        }
        let identified = analysis
            .diagnostics
            .iter()
            .filter(|d| d.is_error() && self.identifies(d.category))
            .map(|d| d.category)
            .collect();
        CompileOutcome { success, log: lines.join("\n"), diagnostics: analysis.diagnostics.clone(), identified, analysis }
    }

    fn quality(&self) -> FeedbackQuality {
        FeedbackQuality { carries_tags: false, informativeness: 0.55 }
    }

    fn identifies(&self, category: ErrorCategory) -> bool {
        !matches!(
            category,
            ErrorCategory::SyntaxError
                | ErrorCategory::CStyleConstruct
                | ErrorCategory::KeywordAsIdentifier
                | ErrorCategory::UnbalancedBlock
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_shape_undeclared_clk() {
        let outcome = IverilogCompiler::new().compile(
            "module top_module(input [99:0] in, output reg [99:0] out);\n\
             always @(posedge clk) begin\n\
               out <= in;\n\
             end\nendmodule",
            "vector100r.sv",
        );
        assert!(!outcome.success);
        assert!(outcome.log.contains("vector100r.sv:2: error: Unable to bind wire/reg/memory 'clk' in 'top_module'"));
        assert!(outcome.log.contains("error(s) during elaboration."));
        // No numeric tags anywhere.
        assert!(!outcome.log.contains("(10161)"));
    }

    #[test]
    fn figure2a_index_out_of_range() {
        let outcome = IverilogCompiler::new().compile(
            "module top_module(input [7:0] in, output [7:0] out);\n\
             assign {out[0],out[1],out[2],out[3],out[4],out[5],out[6],out[8]} = in;\nendmodule",
            "main.v",
        );
        assert!(outcome.log.contains("main.v:2: error: Index out[8] is out of range."));
        assert!(outcome.log.contains("1 error(s) during elaboration."));
    }

    #[test]
    fn syntax_errors_are_terse() {
        let outcome = IverilogCompiler::new().compile(
            "module m(input a, output y);\nassign y = a\nendmodule",
            "main.v",
        );
        assert!(outcome.log.contains("syntax error"));
        assert!(!outcome.log.contains("expecting"), "iverilog must not explain: {}", outcome.log);
    }

    #[test]
    fn gives_up_on_heavy_syntax_damage() {
        let outcome = IverilogCompiler::new().compile(
            "module m(input a, output y);\nwire w\nwire v\nwire u\nassign y = a\nendmodule",
            "main.v",
        );
        assert!(!outcome.success);
        assert!(outcome.log.contains("I give up."), "log: {}", outcome.log);
    }

    #[test]
    fn syntax_subcategories_not_identified() {
        let c = IverilogCompiler::new();
        assert!(!c.identifies(ErrorCategory::SyntaxError));
        assert!(!c.identifies(ErrorCategory::CStyleConstruct));
        assert!(c.identifies(ErrorCategory::UndeclaredIdentifier));
        assert!(c.identifies(ErrorCategory::IndexOutOfRange));
    }

    #[test]
    fn clean_compile_produces_empty_log() {
        let outcome = IverilogCompiler::new()
            .compile("module m(input a, output y); assign y = a; endmodule", "main.v");
        assert!(outcome.success);
        assert!(outcome.log.is_empty());
    }

    #[test]
    fn lvalue_message_matches_figure2c() {
        // Figure 2c observation: "main.v:15: error: out is not a valid
        // l-value in top_module."
        let outcome = IverilogCompiler::new().compile(
            "module top_module(input a, output out);\nalways @(a) out = a;\nendmodule",
            "main.v",
        );
        assert!(
            outcome.log.contains("error: out is not a valid l-value in top_module."),
            "log: {}",
            outcome.log
        );
    }
}
