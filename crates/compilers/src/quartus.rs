//! Intel Quartus Prime log personality.
//!
//! Modelled on the paper's Figure 5 example:
//!
//! ```text
//! Error (10161): Verilog HDL error at vector100r.sv(5): object "clk" is not
//! declared. Verify the object name is correct. If the name is correct,
//! declare the object. File: /tmp/tmp4u6ib9ig/vector100r.sv Line: 5
//! Error: Quartus Prime Analysis & Synthesis was unsuccessful. 1 error, 1 warning
//! ```
//!
//! Quartus logs are verbose, carry numeric error tags (which the exact-match
//! retriever keys on) and include suggestions — the highest-quality feedback
//! arm of the §4.3.1 ablation.

use rtlfixer_verilog::diag::{DiagData, Diagnostic, ErrorCategory, Severity};
use rtlfixer_verilog::{compile_shared, Analysis};

use crate::{CompileOutcome, Compiler, FeedbackQuality};

/// The Quartus personality. See the [module docs](self).
#[derive(Debug, Clone, Copy, Default)]
pub struct QuartusCompiler {
    _private: (),
}

impl QuartusCompiler {
    /// Creates the personality.
    pub fn new() -> Self {
        QuartusCompiler { _private: () }
    }

    fn render(&self, diag: &Diagnostic, analysis: &Analysis, file_name: &str) -> Option<String> {
        let line = analysis.source_map.line(diag.span.start);
        let code = diag.category.quartus_code();
        let suffix = format!(" File: /tmp/tmpworkdir/{file_name} Line: {line}");
        let head = match diag.severity {
            Severity::Error => format!("Error ({code}): Verilog HDL error at {file_name}({line}): "),
            Severity::Warning => {
                format!("Warning ({code}): Verilog HDL warning at {file_name}({line}): ")
            }
        };
        let body = match &diag.data {
            DiagData::Undeclared { name } => format!(
                "object \"{name}\" is not declared. Verify the object name is correct. \
                 If the name is correct, declare the object."
            ),
            DiagData::IndexOob { target, index, msb, lsb, .. } => format!(
                "index {index} cannot fall outside the declared range [{msb}:{lsb}] \
                 for vector \"{target}\""
            ),
            DiagData::BadProceduralLvalue { name } => format!(
                "object \"{name}\" on left-hand side of assignment must have a variable data type. \
                 Declare it as reg, or use a continuous assignment instead."
            ),
            DiagData::BadContinuousLvalue { name } => format!(
                "object \"{name}\" of variable data type cannot be the target of a continuous \
                 assignment. Drive it from an always block, or declare it as a wire."
            ),
            DiagData::InputAssigned { name } => format!(
                "object \"{name}\" declared as input port cannot be assigned a value. \
                 Check the port direction or assign a different object."
            ),
            DiagData::PortMismatch { instance, module, port, expected, found } => match port {
                Some(port) => format!(
                    "port \"{port}\" does not exist in module \"{module}\" instantiated as \
                     \"{instance}\". Verify the port name against the module declaration."
                ),
                None => format!(
                    "instance \"{instance}\" of module \"{module}\" has {found} port \
                     connections but the module declares {expected} ports."
                ),
            },
            DiagData::ModuleNotFound { name } => format!(
                "instantiated module \"{name}\" is not defined. Define the module or \
                 correct the instantiated name."
            ),
            DiagData::Redeclared { name } => format!(
                "object \"{name}\" is already declared in the present scope. Remove or rename \
                 the duplicate declaration."
            ),
            DiagData::Syntax { found, expected } => format!(
                "syntax error near text: \"{found}\"; expecting {expected}. \
                 Check for and fix any syntax errors that appear immediately before \
                 or at the specified keyword."
            ),
            DiagData::Unbalanced { construct } => format!(
                "unexpected end of construct; missing \"{construct}\". Insert the matching \
                 \"{construct}\" keyword to balance the block."
            ),
            DiagData::CStyle { construct } => format!(
                "syntax error near text: \"{construct}\"; \"{construct}\" is not a legal \
                 Verilog HDL operator. Rewrite the expression using Verilog syntax \
                 (for example \"i = i + 1\" instead of \"i++\")."
            ),
            DiagData::Directive { directive } => format!(
                "`{directive} directive is not allowed inside a design unit. Move the \
                 directive before the module declaration."
            ),
            DiagData::KeywordAsId { keyword } => format!(
                "\"{keyword}\" is an SystemVerilog reserved word and cannot be used as an \
                 identifier. Rename the object."
            ),
            DiagData::Width { lhs_width, rhs_width } => format!(
                "truncated value with size {rhs_width} to match size of target ({lhs_width})"
            ),
            DiagData::Latch { name } => format!(
                "inferring latch(es) for variable \"{name}\", which holds its previous value \
                 in one or more paths through the always construct"
            ),
            DiagData::NoDefault => "case statement does not cover all possible conditions and \
                 has no default condition"
                .to_owned(),
            DiagData::Unused { name } =>

                format!("object \"{name}\" assigned a value but never read"),
        };
        Some(format!("{head}{body}{suffix}"))
    }
}

impl Compiler for QuartusCompiler {
    fn name(&self) -> &str {
        "Quartus"
    }

    fn compile(&self, source: &str, file_name: &str) -> CompileOutcome {
        let analysis = compile_shared(source);
        let mut lines = Vec::new();
        let mut errors = 0usize;
        let mut warnings = 0usize;
        for diag in &analysis.diagnostics {
            if let Some(line) = self.render(diag, &analysis, file_name) {
                lines.push(line);
            }
            match diag.severity {
                Severity::Error => errors += 1,
                Severity::Warning => warnings += 1,
            }
        }
        let success = analysis.is_ok();
        if success {
            lines.push(format!(
                "Info: Quartus Prime Analysis & Synthesis was successful. 0 errors, \
                 {warnings} warning{}",
                if warnings == 1 { "" } else { "s" }
            ));
        } else {
            lines.push(format!(
                "Error: Quartus Prime Analysis & Synthesis was unsuccessful. {errors} error{}, \
                 {warnings} warning{}",
                if errors == 1 { "" } else { "s" },
                if warnings == 1 { "" } else { "s" }
            ));
        }
        let identified = analysis
            .diagnostics
            .iter()
            .filter(|d| d.is_error() && self.identifies(d.category))
            .map(|d| d.category)
            .collect();
        CompileOutcome {
            success,
            log: lines.join("\n"),
            diagnostics: analysis.diagnostics.clone(),
            identified,
            analysis,
        }
    }

    fn quality(&self) -> FeedbackQuality {
        FeedbackQuality { carries_tags: true, informativeness: 0.85 }
    }

    fn identifies(&self, _category: ErrorCategory) -> bool {
        true // every message carries its tag and an explanation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_shape_undeclared_clk() {
        let outcome = QuartusCompiler::new().compile(
            "module top_module(input [99:0] in, output reg [99:0] out);\n\
             always @(posedge clk) begin\n\
               out <= in;\n\
             end\nendmodule",
            "vector100r.sv",
        );
        assert!(!outcome.success);
        assert!(outcome.log.contains("Error (10161): Verilog HDL error at vector100r.sv(2): object \"clk\" is not declared."));
        assert!(outcome.log.contains("If the name is correct, declare the object."));
        assert!(outcome.log.contains("Error: Quartus Prime Analysis & Synthesis was unsuccessful."));
    }

    #[test]
    fn figure6_shape_index_arithmetic() {
        let outcome = QuartusCompiler::new().compile(
            "module conwaylife(input [255:0] q, output [255:0] next);\n\
             genvar i, j;\n\
             generate\n\
             for (i = 0; i < 16; i = i + 1) begin : row\n\
               for (j = 0; j < 16; j = j + 1) begin : col\n\
                 assign next[(i-1)*16 + (j-1)] = q[i*16 + j];\n\
               end\n\
             end\n\
             endgenerate\nendmodule",
            "conwaylife.sv",
        );
        assert!(!outcome.success);
        assert!(
            outcome
                .log
                .contains("Error (10232): Verilog HDL error at conwaylife.sv(6): index -17 cannot fall outside the declared range [255:0] for vector \"next\""),
            "log: {}",
            outcome.log
        );
    }

    #[test]
    fn syntax_error_names_offending_text() {
        let outcome = QuartusCompiler::new().compile(
            "module m(input a, output y);\nassign y = a\nendmodule",
            "main.sv",
        );
        assert!(outcome.log.contains("Error (10170)"));
        assert!(outcome.log.contains("near text: \"endmodule\""));
    }

    #[test]
    fn c_style_gets_guidance() {
        let outcome = QuartusCompiler::new().compile(
            "module m(input [7:0] a, output reg [7:0] y);\n\
             always @* begin\nfor (int i = 0; i < 8; i++) y[i] = a[i];\nend\nendmodule",
            "main.sv",
        );
        assert!(outcome.log.contains("\"++\" is not a legal"));
        assert!(outcome.log.contains("i = i + 1"));
    }

    #[test]
    fn warnings_counted_separately() {
        let outcome = QuartusCompiler::new().compile(
            "module m(input [15:0] a, output [7:0] y);\nassign y = a;\nendmodule",
            "main.sv",
        );
        assert!(outcome.success);
        assert!(outcome.log.contains("Warning (10230)"));
        assert!(outcome.log.contains("successful. 0 errors, 1 warning"));
    }

    #[test]
    fn identifies_everything() {
        let c = QuartusCompiler::new();
        for cat in ErrorCategory::ALL {
            assert!(c.identifies(cat));
        }
    }
}
