//! The "Simple" feedback arm: no compiler log at all.
//!
//! In the paper's ablation (§4.3.1), *Simple* feedback replaces the compiler
//! message with the bare instruction *"Correct the syntax error in the
//! code."* The underlying frontend still runs — the experiment harness needs
//! a pass/fail verdict — but nothing about the error reaches the LLM, and no
//! category is identifiable from the log.

use rtlfixer_verilog::compile_shared;
use rtlfixer_verilog::diag::ErrorCategory;

use crate::{CompileOutcome, Compiler, FeedbackQuality};

/// The instruction string shown instead of a compiler log.
pub const SIMPLE_INSTRUCTION: &str = "Correct the syntax error in the code.";

/// The Simple (no-feedback) personality. See the [module docs](self).
#[derive(Debug, Clone, Copy, Default)]
pub struct SimpleCompiler {
    _private: (),
}

impl SimpleCompiler {
    /// Creates the personality.
    pub fn new() -> Self {
        SimpleCompiler { _private: () }
    }
}

impl Compiler for SimpleCompiler {
    fn name(&self) -> &str {
        "Simple"
    }

    fn compile(&self, source: &str, _file_name: &str) -> CompileOutcome {
        let analysis = compile_shared(source);
        let success = analysis.is_ok();
        let log = if success { String::new() } else { SIMPLE_INSTRUCTION.to_owned() };
        CompileOutcome {
            success,
            log,
            diagnostics: analysis.diagnostics.clone(),
            identified: Vec::new(),
            analysis,
        }
    }

    fn quality(&self) -> FeedbackQuality {
        FeedbackQuality { carries_tags: false, informativeness: 0.0 }
    }

    fn identifies(&self, _category: ErrorCategory) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_is_always_the_instruction() {
        let outcome = SimpleCompiler::new().compile(
            "module m(output reg q); always @(posedge clk) q <= 1; endmodule",
            "main.v",
        );
        assert!(!outcome.success);
        assert_eq!(outcome.log, SIMPLE_INSTRUCTION);
        assert!(outcome.identified.is_empty());
        // The verdict machinery still sees the real diagnostics.
        assert!(!outcome.diagnostics.is_empty());
    }

    #[test]
    fn identifies_nothing() {
        let c = SimpleCompiler::new();
        for cat in ErrorCategory::ALL {
            assert!(!c.identifies(cat));
        }
    }

    #[test]
    fn success_log_is_empty() {
        let outcome = SimpleCompiler::new()
            .compile("module m(input a, output y); assign y = a; endmodule", "main.v");
        assert!(outcome.success);
        assert!(outcome.log.is_empty());
    }
}
