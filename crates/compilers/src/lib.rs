//! # rtlfixer-compilers
//!
//! Compiler *personalities* over the shared `rtlfixer-verilog` frontend.
//!
//! The paper's feedback-quality ablation (§4.3.1) compares three feedback
//! sources of increasing informativeness:
//!
//! 1. **Simple** — no compiler message at all, just the instruction
//!    *"Correct the syntax error in the code."* ([`simple::SimpleCompiler`]).
//! 2. **iverilog** — terse open-source logs; syntax errors collapse to a bare
//!    `syntax error` and hard cases end with `I give up.`
//!    ([`iverilog::IverilogCompiler`]).
//! 3. **Quartus** — verbose commercial logs with numeric error tags
//!    (`Error (10161): …`) and actionable suggestions
//!    ([`quartus::QuartusCompiler`]).
//!
//! All three personalities share one *verdict* (the frontend's diagnostics);
//! they differ only in what the rendered log reveals — which is exactly the
//! experimental variable the paper manipulates. The numeric tags in Quartus
//! logs are what the paper's exact-match retriever keys on (§3.3), so tag
//! presence is surfaced via [`FeedbackQuality::carries_tags`].
//!
//! ## Example
//!
//! ```
//! use rtlfixer_compilers::{Compiler, CompilerKind};
//!
//! let quartus = CompilerKind::Quartus.build();
//! let outcome = quartus.compile(
//!     "module m(output reg q); always @(posedge clk) q <= 1; endmodule",
//!     "main.sv",
//! );
//! assert!(!outcome.success);
//! assert!(outcome.log.contains("Error (10161)"));
//! assert!(outcome.log.contains("\"clk\" is not declared"));
//! ```

#![warn(missing_docs)]

pub mod iverilog;
pub mod quartus;
pub mod simple;

use std::fmt;
use std::sync::Arc;

use rtlfixer_verilog::diag::{Diagnostic, ErrorCategory};
use rtlfixer_verilog::Analysis;

/// How informative a compiler's log output is — the experimental axis of the
/// paper's §4.3.1 ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeedbackQuality {
    /// Whether logs carry machine-readable numeric error tags (Quartus does;
    /// iverilog does not). The exact-match RAG retriever needs these.
    pub carries_tags: bool,
    /// Informativeness in `[0, 1]`: how much a log helps localise and
    /// explain the error. Calibrated: Simple 0.0, iverilog 0.55, Quartus 0.85.
    pub informativeness: f64,
}

/// Result of one compile attempt.
#[derive(Debug, Clone)]
pub struct CompileOutcome {
    /// Whether the design elaborated without errors.
    pub success: bool,
    /// The rendered log in this compiler's house style (what the LLM sees).
    pub log: String,
    /// The structured diagnostics behind the log (what repair operators and
    /// metrics see; never shown to the simulated LLM directly).
    pub diagnostics: Vec<Diagnostic>,
    /// Error categories that the rendered log makes identifiable. A bare
    /// `syntax error` line does *not* identify its subcategory.
    pub identified: Vec<ErrorCategory>,
    /// Full frontend analysis, for downstream consumers (simulator, repair).
    /// Shared: identical sources resolve to one analysis process-wide (see
    /// [`rtlfixer_verilog::compile_shared`]).
    pub analysis: Arc<Analysis>,
}

impl CompileOutcome {
    /// Error categories present in the diagnostics (deduplicated, ordered).
    pub fn error_categories(&self) -> Vec<ErrorCategory> {
        let mut cats: Vec<ErrorCategory> = self
            .diagnostics
            .iter()
            .filter(|d| d.is_error())
            .map(|d| d.category)
            .collect();
        cats.sort_by_key(|c| *c as u8);
        cats.dedup();
        cats
    }

    /// The first error diagnostic, if any — the one the agent works on next.
    pub fn first_error(&self) -> Option<&Diagnostic> {
        self.diagnostics.iter().find(|d| d.is_error())
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.is_error()).count()
    }
}

/// A compiler personality: compiles source and renders a log in its house
/// style. Object-safe so the agent can hold `Box<dyn Compiler>`.
pub trait Compiler: Send + Sync {
    /// Tool name as it would appear in a report (`iverilog`, `Quartus`, …).
    fn name(&self) -> &str;

    /// Compiles `source` (conceptually written to `file_name`) and returns
    /// the outcome with a rendered log.
    fn compile(&self, source: &str, file_name: &str) -> CompileOutcome;

    /// [`compile`](Compiler::compile), memoised process-wide behind the
    /// content hash of `(personality, file_name, source)`.
    ///
    /// `compile` is a pure function of those three inputs, so the repair
    /// loop's dominant cost — re-compiling candidate sources the grid has
    /// already seen, across all workers of the episode pool — collapses to
    /// a shard lookup. Identical for every personality via this default
    /// method; behaviour is bit-identical to `compile` (the cache is
    /// invisible, see [`rtlfixer_cache::enabled`]).
    fn compile_cached(&self, source: &str, file_name: &str) -> Arc<CompileOutcome> {
        let key = (
            self.name().to_owned(),
            file_name.to_owned(),
            rtlfixer_verilog::source_fingerprint(source),
        );
        outcome_cache().get_or_insert_with(key, || Arc::new(self.compile(source, file_name)))
    }

    /// This personality's feedback quality.
    fn quality(&self) -> FeedbackQuality;

    /// Whether this personality's log makes `category` identifiable.
    fn identifies(&self, category: ErrorCategory) -> bool;
}

/// Key of the process-wide outcome cache: personality name, file name (it
/// appears verbatim in rendered logs) and source content hash.
type OutcomeKey = (String, String, u128);

fn outcome_cache() -> &'static rtlfixer_cache::ShardedCache<OutcomeKey, Arc<CompileOutcome>> {
    static CACHE: std::sync::OnceLock<
        rtlfixer_cache::ShardedCache<OutcomeKey, Arc<CompileOutcome>>,
    > = std::sync::OnceLock::new();
    CACHE.get_or_init(|| rtlfixer_cache::ShardedCache::named(64, 256, "outcomes"))
}

/// Hit/miss counters of the process-wide [`Compiler::compile_cached`] cache.
pub fn outcome_cache_stats() -> rtlfixer_cache::CacheStats {
    outcome_cache().stats()
}

/// Selector for the built-in compiler personalities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompilerKind {
    /// No log; the constant instruction string only.
    Simple,
    /// Icarus Verilog style.
    Iverilog,
    /// Intel Quartus Prime style.
    Quartus,
}

impl CompilerKind {
    /// All personalities in increasing feedback quality, as in Table 1.
    pub const ALL: [CompilerKind; 3] =
        [CompilerKind::Simple, CompilerKind::Iverilog, CompilerKind::Quartus];

    /// Instantiates the personality.
    pub fn build(self) -> Box<dyn Compiler> {
        match self {
            CompilerKind::Simple => Box::new(simple::SimpleCompiler::new()),
            CompilerKind::Iverilog => Box::new(iverilog::IverilogCompiler::new()),
            CompilerKind::Quartus => Box::new(quartus::QuartusCompiler::new()),
        }
    }

    /// Human-readable label used in result tables.
    pub fn label(self) -> &'static str {
        match self {
            CompilerKind::Simple => "Simple",
            CompilerKind::Iverilog => "iverilog",
            CompilerKind::Quartus => "Quartus",
        }
    }
}

impl fmt::Display for CompilerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Finds the name of the module enclosing a diagnostic, for messages such as
/// iverilog's ``'out' is not a valid l-value in top_module``.
pub(crate) fn enclosing_module(analysis: &Analysis, span: rtlfixer_verilog::span::Span) -> String {
    analysis
        .file
        .modules
        .iter()
        .find(|m| m.span.start <= span.start && span.end <= m.span.end)
        .map(|m| m.name.clone())
        .unwrap_or_else(|| {
            analysis
                .file
                .modules
                .first()
                .map(|m| m.name.clone())
                .unwrap_or_else(|| "top_module".to_owned())
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLEAN: &str = "module m(input a, output y); assign y = ~a; endmodule";
    const BROKEN: &str =
        "module m(output reg q); always @(posedge clk) q <= 1; endmodule";

    #[test]
    fn all_personalities_agree_on_verdict() {
        for kind in CompilerKind::ALL {
            let compiler = kind.build();
            assert!(compiler.compile(CLEAN, "main.v").success, "{kind} rejects clean code");
            assert!(!compiler.compile(BROKEN, "main.v").success, "{kind} accepts broken code");
        }
    }

    #[test]
    fn quality_is_strictly_increasing() {
        let q: Vec<f64> =
            CompilerKind::ALL.iter().map(|k| k.build().quality().informativeness).collect();
        assert!(q[0] < q[1] && q[1] < q[2], "{q:?}");
    }

    #[test]
    fn only_quartus_carries_tags() {
        assert!(!CompilerKind::Simple.build().quality().carries_tags);
        assert!(!CompilerKind::Iverilog.build().quality().carries_tags);
        assert!(CompilerKind::Quartus.build().quality().carries_tags);
    }

    #[test]
    fn error_categories_dedup() {
        let outcome = CompilerKind::Quartus.build().compile(
            "module m(input [3:0] a, output [3:0] y);\nassign y[4] = a[5];\nendmodule",
            "main.v",
        );
        assert_eq!(outcome.error_categories(), vec![ErrorCategory::IndexOutOfRange]);
        assert_eq!(outcome.error_count(), 2);
    }

    #[test]
    fn first_error_is_earliest() {
        let outcome = CompilerKind::Quartus.build().compile(BROKEN, "main.v");
        assert_eq!(
            outcome.first_error().map(|d| d.category),
            Some(ErrorCategory::UndeclaredIdentifier)
        );
    }

    #[test]
    fn compile_cached_memoises_per_personality_and_file_name() {
        rtlfixer_cache::set_enabled(true);
        let quartus = CompilerKind::Quartus.build();
        let iverilog = CompilerKind::Iverilog.build();
        let a = quartus.compile_cached(BROKEN, "cache_probe.sv");
        let b = quartus.compile_cached(BROKEN, "cache_probe.sv");
        assert!(Arc::ptr_eq(&a, &b), "same (personality, file, source) must share");
        // Different personality or file name renders a different log.
        let other = iverilog.compile_cached(BROKEN, "cache_probe.sv");
        assert!(!Arc::ptr_eq(&a, &other));
        assert_ne!(a.log, other.log);
        let renamed = quartus.compile_cached(BROKEN, "cache_probe_b.sv");
        assert!(!Arc::ptr_eq(&a, &renamed));
        assert!(renamed.log.contains("cache_probe_b.sv"), "{}", renamed.log);
    }

    #[test]
    fn compile_cached_matches_uncached_compile() {
        for kind in CompilerKind::ALL {
            let compiler = kind.build();
            for source in [CLEAN, BROKEN] {
                let cached = compiler.compile_cached(source, "main.v");
                let direct = compiler.compile(source, "main.v");
                assert_eq!(cached.success, direct.success, "{kind}");
                assert_eq!(cached.log, direct.log, "{kind}");
                assert_eq!(cached.identified, direct.identified, "{kind}");
                assert_eq!(cached.diagnostics.len(), direct.diagnostics.len(), "{kind}");
            }
        }
    }
}
