//! Shared simulator benchmark designs, used by both the Criterion
//! `sim/cycle_*` / `sim/tape_*` pairs in `benches/components.rs` and the
//! `simbench` binary so the two harnesses measure identical workloads.
//!
//! Each [`SimDesign`] bundles the Verilog source, the top module name and a
//! per-cycle drive function. The first three designs are the historical
//! PR 4 kernel benchmarks (tiny adder, 8-bit counter, 256-bit datapath);
//! `crc16_comb` and `alu_seq` are compute-bound designs added alongside the
//! tape backend, where per-cycle kernel work dominates harness overhead;
//! `wide_128` and `wide_256` exercise the 2- and 4-limb wide fast-path
//! register classes.

use rtlfixer_sim::{value::LogicVec, Simulator};

/// One benchmark design: source, top module and a per-cycle driver.
pub struct SimDesign {
    /// Row name used in benchmark output (`cycle_<name>` / `tape_<name>`).
    pub name: &'static str,
    /// Top-level module to elaborate.
    pub module: &'static str,
    /// Verilog source text.
    pub source: &'static str,
    /// Output signal peeked (and black-boxed) each cycle.
    pub watch: &'static str,
    /// One-time setup after elaboration (tie off resets, constants).
    pub init: fn(&mut Simulator),
    /// Advances the simulation by one cycle for iteration `i`.
    pub step: fn(&mut Simulator, u64),
}

const SMALL_COMB: &str = "module small(input [7:0] a, input [7:0] b,\n\
                          output [7:0] y, output carry);\n\
                          assign {carry, y} = a + b;\nendmodule";

const COUNTER: &str = "module ctr(input clk, input reset, output reg [7:0] q);\n\
                       always @(posedge clk) begin\n\
                       if (reset) q <= 0; else q <= q + 1;\nend\nendmodule";

const WIDE_256: &str = "module wide(input clk, input [7:0] d, output reg [255:0] acc);\n\
                        always @(posedge clk)\n\
                        acc <= {acc[247:0], d} ^ (acc >> 3);\nendmodule";

const WIDE_128: &str = "module wide128(input clk, input [7:0] d, output reg [127:0] acc);\n\
                        always @(posedge clk)\n\
                        acc <= ({acc[119:0], d} ^ (acc >> 5)) + {120'h0, acc[127:120]};\n\
                        endmodule";

const CRC16_COMB: &str = "module crc16(input [7:0] d, input [15:0] crc_in,\n\
                          output reg [15:0] crc_out);\n\
                          integer i;\n\
                          reg [15:0] c;\n\
                          always @* begin\n\
                            c = crc_in;\n\
                            for (i = 0; i < 8; i = i + 1) begin\n\
                              if (c[15] ^ d[7 - i])\n\
                                c = {c[14:0], 1'b0} ^ 16'h1021;\n\
                              else\n\
                                c = {c[14:0], 1'b0};\n\
                            end\n\
                            crc_out = c;\n\
                          end\nendmodule";

// Branch-free CRC: the `{16{bit}} & poly` idiom replaces the data-dependent
// `if`, so the unrolled loop compiles to straight-line dataflow — the shape
// the bit-parallel lane engine packs without ever diverging.
const CRC16_FLAT: &str = "module crc16f(input clk, input [7:0] d,\n\
                          output reg [15:0] crc);\n\
                          integer i;\n\
                          reg [15:0] c;\n\
                          always @(posedge clk) begin\n\
                            c = crc;\n\
                            for (i = 0; i < 8; i = i + 1)\n\
                              c = {c[14:0], 1'b0} ^ ({16{c[15] ^ d[7 - i]}} & 16'h1021);\n\
                            crc <= c ^ {8'h00, d};\n\
                          end\nendmodule";

const ALU_SEQ: &str ="module alu(input clk, input [7:0] a, input [7:0] b,\n\
                       input [2:0] op, output reg [15:0] y);\n\
                       always @(posedge clk) begin\n\
                         case (op)\n\
                           3'd0: y <= a + b;\n\
                           3'd1: y <= a - b;\n\
                           3'd2: y <= a & b;\n\
                           3'd3: y <= a | b;\n\
                           3'd4: y <= a ^ b;\n\
                           3'd5: y <= a * b;\n\
                           3'd6: y <= a << b[2:0];\n\
                           default: y <= (a < b) ? {8'h00, a} : {8'h00, b};\n\
                         endcase\n\
                       end\nendmodule";

fn init_none(_sim: &mut Simulator) {}

fn init_counter(sim: &mut Simulator) {
    sim.poke("reset", LogicVec::from_u64(1, 0)).expect("port");
}

fn init_wide(sim: &mut Simulator) {
    sim.poke("d", LogicVec::from_u64(8, 0xA5)).expect("port");
}

fn step_small(sim: &mut Simulator, i: u64) {
    sim.poke("a", LogicVec::from_u64(8, i & 0xFF)).expect("port");
    sim.poke("b", LogicVec::from_u64(8, (i >> 3) & 0xFF)).expect("port");
    sim.settle().expect("settles");
}

fn step_clock(sim: &mut Simulator, _i: u64) {
    sim.clock_cycle("clk").expect("cycle");
}

fn step_crc(sim: &mut Simulator, i: u64) {
    sim.poke("d", LogicVec::from_u64(8, i & 0xFF)).expect("port");
    sim.poke("crc_in", LogicVec::from_u64(16, (i >> 2) & 0xFFFF)).expect("port");
    sim.settle().expect("settles");
}

fn step_alu(sim: &mut Simulator, i: u64) {
    sim.poke("a", LogicVec::from_u64(8, i & 0xFF)).expect("port");
    sim.poke("b", LogicVec::from_u64(8, (i >> 5) & 0xFF)).expect("port");
    sim.poke("op", LogicVec::from_u64(3, i & 0x7)).expect("port");
    sim.clock_cycle("clk").expect("cycle");
}

/// The benchmark design set, in reporting order.
pub const SIM_DESIGNS: &[SimDesign] = &[
    SimDesign {
        name: "small_comb",
        module: "small",
        source: SMALL_COMB,
        watch: "y",
        init: init_none,
        step: step_small,
    },
    SimDesign {
        name: "medium_seq",
        module: "ctr",
        source: COUNTER,
        watch: "q",
        init: init_counter,
        step: step_clock,
    },
    SimDesign {
        name: "wide_256",
        module: "wide",
        source: WIDE_256,
        watch: "acc",
        init: init_wide,
        step: step_clock,
    },
    SimDesign {
        name: "wide_128",
        module: "wide128",
        source: WIDE_128,
        watch: "acc",
        init: init_wide,
        step: step_clock,
    },
    SimDesign {
        name: "crc16_comb",
        module: "crc16",
        source: CRC16_COMB,
        watch: "crc_out",
        init: init_none,
        step: step_crc,
    },
    SimDesign {
        name: "crc16_flat",
        module: "crc16f",
        source: CRC16_FLAT,
        watch: "crc",
        init: init_wide,
        step: step_clock,
    },
    SimDesign {
        name: "alu_seq",
        module: "alu",
        source: ALU_SEQ,
        watch: "y",
        init: init_none,
        step: step_alu,
    },
];

impl SimDesign {
    /// Elaborates a fresh simulator for this design and runs `init`.
    pub fn build(&self) -> Simulator {
        let analysis = rtlfixer_verilog::compile(self.source);
        let mut sim = Simulator::new(&analysis, self.module).expect("design elaborates");
        (self.init)(&mut sim);
        sim
    }
}
