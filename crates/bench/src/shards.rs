//! Shard fragment I/O for the bench binaries' multi-process mode.
//!
//! A `--shard i/n` run executes its stripe of the experiment grid and
//! writes the raw verdicts (not the derived rates) to
//! `<results_dir>/shards/<experiment>.shard<i>of<n>.json`. The
//! `merge-shards <n>` subcommand reads the complete fragment set back and
//! reassembles the full run through the *same* fold an unsharded run uses,
//! so merged output is byte-identical — fix rates and fingerprints are
//! recomputed from verdicts, never averaged from per-shard rates.
//!
//! Fragments are self-describing: each file records its experiment name
//! and shard coordinates, and the merge validates the set (all `n` files
//! present, coordinates matching the filename, consistent scale flags)
//! before the eval-layer merge validates episode coverage.

use rtlfixer_eval::{RunStats, SchedulerStats, Shard};
use serde::Content;
use serde_json::Value;

/// The directory shard fragments live in, under the results dir
/// (`RTLFIXER_RESULTS_DIR`, default `results`).
pub fn shards_dir() -> std::path::PathBuf {
    let dir = std::env::var("RTLFIXER_RESULTS_DIR").unwrap_or_else(|_| "results".to_owned());
    std::path::Path::new(&dir).join("shards")
}

/// Path of one experiment shard's fragment file.
pub fn fragment_path(experiment: &str, shard: Shard) -> std::path::PathBuf {
    shards_dir().join(format!("{experiment}.shard{}of{}.json", shard.index, shard.count))
}

/// Writes one shard's fragment, wrapping `payload` with the experiment
/// name and shard coordinates. Returns the written path.
pub fn write_fragment(experiment: &str, shard: Shard, payload: Value) -> std::path::PathBuf {
    let dir = shards_dir();
    std::fs::create_dir_all(&dir).expect("create shards directory");
    let wrapped = serde_json::json!({
        "experiment": experiment,
        "shard_index": shard.index,
        "shard_count": shard.count,
        "payload": payload,
    });
    let path = fragment_path(experiment, shard);
    let text = serde_json::to_string_pretty(&wrapped).expect("fragment serialises");
    std::fs::write(&path, text + "\n").expect("write fragment");
    path
}

/// Reads the complete fragment set (`0..count`) for `experiment`,
/// validating each file's recorded coordinates against its name. Returns
/// payloads by shard index.
pub fn read_fragments(experiment: &str, count: usize) -> Result<Vec<Value>, String> {
    if count == 0 {
        return Err("merge-shards expects a shard count >= 1".to_owned());
    }
    let mut payloads = Vec::with_capacity(count);
    for index in 0..count {
        let shard = Shard { index, count };
        let path = fragment_path(experiment, shard);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("missing fragment {}: {e}", path.display()))?;
        let value: Value = serde_json::from_str(&text)
            .map_err(|e| format!("unreadable fragment {}: {e}", path.display()))?;
        let recorded = (
            as_str(&value["experiment"]),
            value["shard_index"].as_u64(),
            value["shard_count"].as_u64(),
        );
        if recorded != (Some(experiment), Some(index as u64), Some(count as u64)) {
            return Err(format!(
                "fragment {} does not match its name (recorded {:?})",
                path.display(),
                recorded
            ));
        }
        payloads.push(value["payload"].clone());
    }
    Ok(payloads)
}

/// The value as a string, if it is one (the vendored `Value` has no
/// `as_str`; fragments need it for labels and policy names).
pub fn as_str(value: &Value) -> Option<&str> {
    match &value.0 {
        Content::Str(s) => Some(s),
        _ => None,
    }
}

/// The value as a bool, if it is one.
pub fn as_bool(value: &Value) -> Option<bool> {
    match value.0 {
        Content::Bool(b) => Some(b),
        _ => None,
    }
}

/// The value as a usize, if it is an unsigned integer.
pub fn as_usize(value: &Value) -> Option<usize> {
    value.as_u64().and_then(|v| usize::try_from(v).ok())
}

/// Decodes a fragment's serialised [`RunStats`] (the inverse of
/// `Value::from_serialize(&stats)` — the vendored serde has no
/// `Deserialize` derive, so fragments navigate the content tree).
pub fn stats_from_json(value: &Value) -> Result<RunStats, String> {
    let int = |key: &str| {
        value
            .get(key)
            .and_then(as_usize)
            .ok_or_else(|| format!("fragment stats missing `{key}`"))
    };
    let float = |key: &str| {
        value
            .get(key)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("fragment stats missing `{key}`"))
    };
    let scheduler = match value.get("scheduler") {
        Some(v) if v.is_object() => Some(scheduler_from_json(v)?),
        _ => None,
    };
    Ok(RunStats {
        episodes: int("episodes")?,
        seconds: float("seconds")?,
        episodes_per_sec: float("episodes_per_sec")?,
        failed_episodes: int("failed_episodes")?,
        scheduler,
    })
}

/// Decodes a fragment's serialised [`SchedulerStats`]. The policy label
/// maps back onto the static names; anything unrecognised reads as
/// `"mixed"` rather than failing the merge.
fn scheduler_from_json(value: &Value) -> Result<SchedulerStats, String> {
    let int = |key: &str| {
        value
            .get(key)
            .and_then(as_usize)
            .ok_or_else(|| format!("fragment scheduler stats missing `{key}`"))
    };
    let policy = match as_str(&value["policy"]) {
        Some("legacy") => "legacy",
        Some("grid") => "grid",
        Some("lpt") => "lpt",
        _ => "mixed",
    };
    Ok(SchedulerStats {
        policy,
        batches: int("batches")?,
        coalesced: int("coalesced")?,
        rank_correlation: value
            .get("rank_correlation")
            .and_then(Value::as_f64)
            .ok_or("fragment scheduler stats missing `rank_correlation`")?,
        barrier_idle_us: value
            .get("barrier_idle_us")
            .and_then(Value::as_u64)
            .ok_or("fragment scheduler stats missing `barrier_idle_us`")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // `RTLFIXER_RESULTS_DIR` is process-global; fragment round-trip tests
    // must not interleave their env mutations.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn fragments_round_trip_and_validate_coordinates() {
        let _guard = ENV_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        let dir = std::env::temp_dir().join(format!("rtlfixer-shards-{}", std::process::id()));
        std::env::set_var("RTLFIXER_RESULTS_DIR", &dir);
        let payload = |n: u64| serde_json::json!({ "verdicts": [n, n + 1] });
        write_fragment("t", Shard { index: 0, count: 2 }, payload(0));
        write_fragment("t", Shard { index: 1, count: 2 }, payload(10));
        let payloads = read_fragments("t", 2).expect("complete set");
        assert_eq!(payloads.len(), 2);
        assert_eq!(payloads[1]["verdicts"].as_array().unwrap()[0].as_u64(), Some(10));
        // Missing member of a larger set.
        let err = read_fragments("t", 3).unwrap_err();
        assert!(err.contains("missing fragment"), "{err}");
        // A fragment copied over another's name is caught by the recorded
        // coordinates, before any payload-level validation.
        std::fs::copy(
            fragment_path("t", Shard { index: 0, count: 2 }),
            fragment_path("t", Shard { index: 1, count: 2 }),
        )
        .unwrap();
        let err = read_fragments("t", 2).unwrap_err();
        assert!(err.contains("does not match its name"), "{err}");
        std::env::remove_var("RTLFIXER_RESULTS_DIR");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_round_trip_through_fragment_json() {
        let stats = RunStats::new(24, std::time::Duration::from_millis(500))
            .with_failed(2)
            .with_scheduler(SchedulerStats {
                policy: "lpt",
                batches: 7,
                coalesced: 3,
                rank_correlation: 0.75,
                barrier_idle_us: 42,
            });
        let decoded = stats_from_json(&Value::from_serialize(&stats)).expect("round trips");
        assert_eq!(decoded.episodes, 24);
        assert_eq!(decoded.failed_episodes, 2);
        assert_eq!(decoded.seconds.to_bits(), stats.seconds.to_bits());
        let sched = decoded.scheduler.expect("scheduler survives");
        assert_eq!(sched.policy, "lpt");
        assert_eq!(sched.batches, 7);
        assert_eq!(sched.barrier_idle_us, 42);
        // A scheduler-less run decodes to `None` (serialised as null).
        let bare = RunStats::new(1, std::time::Duration::from_millis(1));
        assert!(stats_from_json(&Value::from_serialize(&bare)).unwrap().scheduler.is_none());
    }
}
