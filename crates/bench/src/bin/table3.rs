//! Reproduces **Table 3**: syntax success rate and pass@1 on the RTLLM
//! benchmark, before vs after RTLFixer (ReAct + RAG + Quartus), testing
//! generalisation — no guidance entries were derived from RTLLM.
//!
//! Run with `cargo run --release -p rtlfixer-bench --bin table3`.

use rtlfixer_bench::{fmt3, record_run, render_table, RunScale};
use rtlfixer_eval::experiments::table2::{table3_timed, PassAtKConfig};

fn main() {
    let scale = RunScale::from_args();
    let config = if scale.quick {
        PassAtKConfig { samples: 6, max_problems: Some(12), seed: 11, jobs: scale.jobs }
    } else {
        PassAtKConfig { samples: 10, max_problems: None, seed: 11, jobs: scale.jobs }
    };
    eprintln!("Table 3: RTLLM generalisation (29 problems, n = {})", config.samples);
    let (result, stats) = table3_timed(&config);
    let rows = vec![
        vec![
            "GPT-3.5".to_owned(),
            fmt3(result.syntax_success_original),
            "0.73".to_owned(),
            fmt3(result.pass1_original),
            "0.11".to_owned(),
        ],
        vec![
            "GPT-3.5 + RTLFixer".to_owned(),
            fmt3(result.syntax_success_fixed),
            "0.93".to_owned(),
            fmt3(result.pass1_fixed),
            "0.16".to_owned(),
        ],
    ];
    println!(
        "{}",
        render_table(
            &["LLM", "syntax ok (measured)", "paper", "pass@1 (measured)", "paper"],
            &rows
        )
    );
    println!("{}", serde_json::to_string_pretty(&result).expect("serialises"));
    record_run("table3", scale.jobs, &stats);
}
