//! Load generator for the `rtlfixer-serve` daemon (DESIGN.md §3i): drives
//! an in-process daemon through an overload sweep, a coalescing batch and
//! a chaos pass, and records the latency/throughput/shed curves into
//! `results/bench_eval.json`.
//!
//! Phases:
//!
//! 1. **Overload sweep** — closed-loop clients at concurrency K ∈
//!    {1, 3, 6, 12} against capacity 6 (2 workers + 4 queue slots), so the
//!    top level offers 2× capacity. Per level: offered / accepted /
//!    completed / rejected / shed counts, client-measured p50/p99 latency
//!    and throughput. The binary enforces the overload contract: reject +
//!    shed counts rise monotonically with K, accepted p99 stays within 3×
//!    the uncontended p99, and no request ever sees an `error` event.
//! 2. **Coalesce batch** — K clients submit the identical request
//!    concurrently; every response stream must be byte-identical.
//! 3. **Chaos pass** — `FaultSpec::uniform(0.15)` switched on process-wide
//!    (LLM + compiler + server sites). Served results must equal an
//!    in-process `run_repair` baseline job for job: accepted requests keep
//!    their fix rate, overload machinery only ever sheds explicitly.
//!
//! `--daemon` delegates to [`rtlfixer_serve::daemon_main`] — cargo only
//! exposes `CARGO_BIN_EXE_*` for the package under test, so the bench
//! crate's subprocess tests reach the daemon through this binary.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use serde::Deserialize;

use rtlfixer_bench::{record_run_with, render_table, RunScale};
use rtlfixer_eval::{run_repair, RepairJob};
use rtlfixer_serve::{Daemon, ServeConfig};

/// The missing-`clk` archetype: broken as written, fixable by the
/// simulated model, unique per request via the module name.
fn broken_module(name: &str) -> String {
    format!(
        "module {name}(input [7:0] in, output reg [7:0] out);\n\
         always @(posedge clk) out <= in;\nendmodule"
    )
}

#[derive(Debug, Deserialize)]
struct Event {
    ev: String,
    success: Option<bool>,
}

/// How one request ended, as the client saw it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Fixed,
    Unfixed,
    Rejected,
    Shed,
    /// Connection dropped mid-stream (injected disconnect).
    Disconnected,
    /// `error` event: an episode escaped containment. Always a bug.
    Errored,
}

struct Client {
    port: u16,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(port: u16) -> Client {
        let stream = TcpStream::connect(("127.0.0.1", port)).expect("connect to daemon");
        stream.set_read_timeout(Some(Duration::from_secs(60))).expect("read timeout");
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client { port, reader, writer: stream }
    }

    fn reconnect(&mut self) {
        *self = Client::connect(self.port);
    }

    /// Sends one fix request and reads until a terminal event (or EOF).
    fn fix(&mut self, code: &str, seed: u64, deadline_ms: Option<u64>) -> Outcome {
        let deadline = deadline_ms.map(|d| format!(",\"deadline_ms\":{d}")).unwrap_or_default();
        let line = format!(
            "{{\"op\":\"fix\",\"code\":{},\"seed\":{seed}{deadline}}}",
            rtlfixer_obs::json_string(code)
        );
        if writeln!(self.writer, "{line}").and_then(|()| self.writer.flush()).is_err() {
            self.reconnect();
            writeln!(self.writer, "{line}").expect("send after reconnect");
            self.writer.flush().expect("flush after reconnect");
        }
        loop {
            let mut raw = String::new();
            let n = self.reader.read_line(&mut raw).expect("read response");
            if n == 0 {
                // Mid-stream disconnect: the daemon hung up on purpose.
                self.reconnect();
                return Outcome::Disconnected;
            }
            let event: Event = serde_json::from_str(raw.trim_end())
                .unwrap_or_else(|err| panic!("bad event `{raw}`: {err}"));
            match event.ev.as_str() {
                "accepted" | "trace" => {}
                "result" => {
                    return if event.success == Some(true) {
                        Outcome::Fixed
                    } else {
                        Outcome::Unfixed
                    };
                }
                "rejected" => return Outcome::Rejected,
                "shed" => return Outcome::Shed,
                "error" => return Outcome::Errored,
                other => panic!("unexpected event `{other}`"),
            }
        }
    }
}

#[derive(Debug, Default, Clone)]
struct LevelTally {
    offered: usize,
    fixed: usize,
    unfixed: usize,
    rejected: usize,
    shed: usize,
    disconnected: usize,
    errored: usize,
    /// Client-measured latency of completed (result-bearing) requests, µs.
    latencies_us: Vec<u64>,
}

impl LevelTally {
    fn absorb(&mut self, outcome: Outcome, latency_us: u64) {
        self.offered += 1;
        match outcome {
            Outcome::Fixed => {
                self.fixed += 1;
                self.latencies_us.push(latency_us);
            }
            Outcome::Unfixed => {
                self.unfixed += 1;
                self.latencies_us.push(latency_us);
            }
            Outcome::Rejected => self.rejected += 1,
            Outcome::Shed => self.shed += 1,
            Outcome::Disconnected => self.disconnected += 1,
            Outcome::Errored => self.errored += 1,
        }
    }

    fn merge(&mut self, other: LevelTally) {
        self.offered += other.offered;
        self.fixed += other.fixed;
        self.unfixed += other.unfixed;
        self.rejected += other.rejected;
        self.shed += other.shed;
        self.disconnected += other.disconnected;
        self.errored += other.errored;
        self.latencies_us.extend(other.latencies_us);
    }

    fn completed(&self) -> usize {
        self.fixed + self.unfixed
    }
}

fn percentile_us(latencies: &mut [u64], q: f64) -> u64 {
    if latencies.is_empty() {
        return 0;
    }
    latencies.sort_unstable();
    let rank = ((latencies.len() as f64 - 1.0) * q).round() as usize;
    latencies[rank.min(latencies.len() - 1)]
}

/// Runs one closed-loop level: `concurrency` clients, each submitting
/// `per_client` unique requests back to back.
fn run_level(
    port: u16,
    concurrency: usize,
    per_client: usize,
    seed_base: u64,
    deadline_ms: Option<u64>,
) -> (LevelTally, f64) {
    let start = Instant::now();
    let tallies: Vec<LevelTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..concurrency)
            .map(|client_index| {
                scope.spawn(move || {
                    let mut client = Client::connect(port);
                    let mut tally = LevelTally::default();
                    for request in 0..per_client {
                        let seed = seed_base + (client_index * per_client + request) as u64;
                        let code = broken_module(&format!("k{concurrency}c{client_index}r{request}"));
                        let sent = Instant::now();
                        let outcome = client.fix(&code, seed, deadline_ms);
                        tally.absorb(outcome, sent.elapsed().as_micros() as u64);
                    }
                    tally
                })
            })
            .collect();
        handles.into_iter().map(|handle| handle.join().expect("client thread")).collect()
    });
    let seconds = start.elapsed().as_secs_f64();
    let mut level = LevelTally::default();
    for tally in tallies {
        level.merge(tally);
    }
    (level, seconds)
}

/// Coalesce batch: every client submits the identical request; collects
/// each client's full line stream for the byte-identity check.
fn run_coalesce_batch(port: u16, clients: usize) -> Vec<Vec<String>> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(port);
                    let code = broken_module("coalesce_probe");
                    let line = format!(
                        "{{\"op\":\"fix\",\"code\":{},\"seed\":424242}}",
                        rtlfixer_obs::json_string(&code)
                    );
                    writeln!(client.writer, "{line}").expect("send");
                    client.writer.flush().expect("flush");
                    let mut lines = Vec::new();
                    loop {
                        let mut raw = String::new();
                        assert!(client.reader.read_line(&mut raw).expect("read") > 0);
                        let done = raw.contains("\"ev\":\"result\"");
                        lines.push(raw.trim_end().to_owned());
                        if done {
                            return lines;
                        }
                    }
                })
            })
            .collect();
        handles.into_iter().map(|handle| handle.join().expect("client thread")).collect()
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--daemon") {
        if let Err(err) = rtlfixer_serve::daemon_main(&args[1..]) {
            eprintln!("servebench --daemon: {err}");
            std::process::exit(2);
        }
        return;
    }
    let scale = RunScale::from_args();
    rtlfixer_faults::set_global_spec(None);
    // The chaos pass checks served outcomes job-for-job against an
    // in-process static-database baseline; a daemon that *learns* across
    // requests legitimately diverges from that baseline, so distillation
    // is pinned off for the comparison (the learning loop has its own
    // experiment: `table_learning`).
    std::env::set_var("RTLFIXER_RAG_DISTILL", "0");

    // Capacity 6: 2 workers + 4 queue slots. The 5 ms service floor stands
    // in for real LLM latency (simulated episodes alone finish in µs, so
    // overload would be unreachable); the 8 ms deadline bounds queue wait,
    // keeping accepted latency within the 3× contract while the excess is
    // shed explicitly.
    let workers = 2usize;
    let queue_limit = 4usize;
    let min_service_ms = 5u64;
    let deadline_ms = 8u64;
    let per_client = if scale.quick { 6 } else { 25 };
    let levels = [1usize, 3, 6, 12];

    eprintln!(
        "servebench: overload sweep K={levels:?} against capacity {} \
         ({workers} workers + {queue_limit} queue, {min_service_ms} ms floor, \
         {deadline_ms} ms deadline, {per_client} requests/client)",
        workers + queue_limit
    );

    let config = || ServeConfig {
        workers,
        queue_limit,
        min_service_us: min_service_ms * 1000,
        default_deadline_ms: Some(deadline_ms),
        ..ServeConfig::default()
    };

    let sweep_start = Instant::now();
    let mut rows = Vec::new();
    let mut level_entries = Vec::new();
    let mut pressure_curve = Vec::new();
    let mut uncontended_p99_us = 0u64;
    let mut overload_p99_us = 0u64;
    let mut total_completed = 0usize;
    let mut total_errors = 0usize;
    for (index, &concurrency) in levels.iter().enumerate() {
        // A fresh daemon per level: every level starts with an empty queue.
        let daemon = Daemon::start(config()).expect("daemon starts");
        let (mut level, seconds) =
            run_level(daemon.port(), concurrency, per_client, (index as u64 + 1) << 32, None);
        daemon.drain();
        let p50 = percentile_us(&mut level.latencies_us, 0.50);
        let p99 = percentile_us(&mut level.latencies_us, 0.99);
        if index == 0 {
            uncontended_p99_us = p99;
        }
        if index == levels.len() - 1 {
            overload_p99_us = p99;
        }
        let pressure = level.rejected + level.shed;
        let throughput = if seconds > 0.0 { level.completed() as f64 / seconds } else { 0.0 };
        rows.push(vec![
            concurrency.to_string(),
            level.offered.to_string(),
            level.completed().to_string(),
            level.rejected.to_string(),
            level.shed.to_string(),
            format!("{:.1}", p50 as f64 / 1000.0),
            format!("{:.1}", p99 as f64 / 1000.0),
            format!("{throughput:.0}"),
        ]);
        level_entries.push(serde_json::json!({
            "concurrency": concurrency,
            "offered": level.offered,
            "completed": level.completed(),
            "rejected": level.rejected,
            "shed": level.shed,
            "disconnected": level.disconnected,
            "errors": level.errored,
            "p50_us": p50,
            "p99_us": p99,
            "throughput_rps": throughput,
        }));
        pressure_curve.push(pressure);
        total_completed += level.completed();
        total_errors += level.errored;
    }
    println!(
        "{}",
        render_table(
            &["K", "offered", "completed", "rejected", "shed", "p50 ms", "p99 ms", "req/s"],
            &rows
        )
    );

    // The overload contract, enforced, not just reported.
    assert!(
        pressure_curve.windows(2).all(|pair| pair[0] <= pair[1]),
        "reject+shed pressure must rise monotonically with offered load: {pressure_curve:?}"
    );
    assert!(
        *pressure_curve.last().expect("levels ran") > 0,
        "2x capacity produced no backpressure — the queue bound is not binding"
    );
    let p99_ratio = overload_p99_us as f64 / uncontended_p99_us.max(1) as f64;
    assert!(
        p99_ratio <= 3.0,
        "accepted p99 under 2x overload is {p99_ratio:.2}x the uncontended p99 (contract: <= 3x)"
    );
    assert_eq!(total_errors, 0, "no episode may escape containment");
    println!(
        "overload: p99 {uncontended_p99_us}us -> {overload_p99_us}us ({p99_ratio:.2}x), \
         pressure curve {pressure_curve:?}"
    );

    // Coalesce batch: identical concurrent requests, byte-identical answers.
    let daemon = Daemon::start(config()).expect("daemon starts");
    let coalesce_clients = 6usize;
    let streams = run_coalesce_batch(daemon.port(), coalesce_clients);
    daemon.drain();
    for stream in &streams[1..] {
        assert_eq!(stream, &streams[0], "coalesced responses diverged");
    }
    println!("coalesce: {coalesce_clients} identical requests, byte-identical streams");

    // Chaos pass: uniform faults across all three sites. Served outcomes
    // must match the in-process baseline job for job — overload machinery
    // may shed or disconnect, but never silently change a result.
    let chaos_requests = if scale.quick { 12 } else { 60 };
    rtlfixer_faults::set_global_spec(Some(rtlfixer_faults::FaultSpec::uniform(0.15)));
    let daemon = Daemon::start(ServeConfig {
        workers,
        queue_limit: 16,
        min_service_us: min_service_ms * 1000,
        ..ServeConfig::default()
    })
    .expect("daemon starts");
    let port = daemon.port();
    let mut chaos = LevelTally::default();
    let mut mismatches = 0usize;
    let mut baseline_fixed = 0usize;
    {
        let mut client = Client::connect(port);
        for request in 0..chaos_requests {
            let seed = 0xC4A0_5000 + request as u64;
            let code = broken_module(&format!("chaos{request}"));
            let sent = Instant::now();
            let outcome = client.fix(&code, seed, None);
            chaos.absorb(outcome, sent.elapsed().as_micros() as u64);
            // The in-process baseline under the same global spec: episodes
            // are seed-deterministic, so a served result must agree.
            let baseline = run_repair(&RepairJob::new("", &code, seed));
            if baseline.success {
                baseline_fixed += 1;
            }
            match outcome {
                Outcome::Fixed if !baseline.success => mismatches += 1,
                Outcome::Unfixed if baseline.success => mismatches += 1,
                _ => {}
            }
        }
    }
    daemon.drain();
    rtlfixer_faults::set_global_spec(None);
    assert_eq!(
        mismatches, 0,
        "served results diverged from the batch baseline under chaos"
    );
    assert_eq!(chaos.errored, 0, "chaos must degrade smoothly, not panic");
    assert!(chaos.completed() > 0, "chaos pass completed no requests");
    let served_fix_rate = chaos.fixed as f64 / chaos.completed().max(1) as f64;
    let baseline_fix_rate = baseline_fixed as f64 / chaos_requests as f64;
    println!(
        "chaos: {}/{} completed (fix rate {served_fix_rate:.3}, baseline {baseline_fix_rate:.3}), \
         {} rejected, {} shed, {} disconnected, 0 mismatches",
        chaos.completed(),
        chaos.offered,
        chaos.rejected,
        chaos.shed,
        chaos.disconnected
    );

    let seconds = sweep_start.elapsed().as_secs_f64();
    let stats = rtlfixer_eval::RunStats {
        episodes: total_completed,
        seconds,
        episodes_per_sec: if seconds > 0.0 { total_completed as f64 / seconds } else { 0.0 },
        failed_episodes: 0,
        scheduler: None,
    };
    record_run_with(
        "servebench",
        scale.jobs,
        &stats,
        &[
            ("overload", serde_json::Value::from_serialize(&level_entries)),
            (
                "contract",
                serde_json::json!({
                    "uncontended_p99_us": uncontended_p99_us,
                    "overload_p99_us": overload_p99_us,
                    "p99_ratio": p99_ratio,
                    "errors": total_errors,
                }),
            ),
            (
                "coalesce",
                serde_json::json!({
                    "clients": coalesce_clients,
                    "byte_identical": true,
                }),
            ),
            (
                "chaos",
                serde_json::json!({
                    "offered": chaos.offered,
                    "completed": chaos.completed(),
                    "rejected": chaos.rejected,
                    "shed": chaos.shed,
                    "disconnected": chaos.disconnected,
                    "served_fix_rate": served_fix_rate,
                    "baseline_fix_rate": baseline_fix_rate,
                    "mismatches": mismatches,
                }),
            ),
        ],
    );
}
