//! Reproduces the §4.2 statistic: *"syntax errors constitute a significant
//! 55% of errors in GPT-3.5 generated Verilog code, surpassing simulation
//! errors"* (VerilogEval-Human).
//!
//! Run with `cargo run --release -p rtlfixer-bench --bin stats55`.

use rtlfixer_bench::{fmt3, record_run, RunScale};
use rtlfixer_eval::experiments::table2::{evaluate_suite, PassAtKConfig};

fn main() {
    let scale = RunScale::from_args();
    let config = if scale.quick {
        PassAtKConfig { samples: 8, max_problems: Some(40), seed: 11, jobs: scale.jobs }
    } else {
        PassAtKConfig { jobs: scale.jobs, ..Default::default() }
    };
    let evaluation =
        evaluate_suite("Human", &rtlfixer_dataset::verilog_eval_human(), &config);
    let shares = evaluation.shares_original;
    let error_total = shares.syntax_error + shares.sim_error;
    let syntax_share_of_errors =
        if error_total > 0.0 { shares.syntax_error / error_total } else { 0.0 };
    println!("VerilogEval-Human generated-sample outcomes (GPT-3.5):");
    println!("  pass:          {}", fmt3(shares.pass));
    println!("  syntax errors: {}", fmt3(shares.syntax_error));
    println!("  sim errors:    {}", fmt3(shares.sim_error));
    println!(
        "syntax share of all errors: {} (paper: 0.55)",
        fmt3(syntax_share_of_errors)
    );
    record_run("stats55", scale.jobs, &evaluation.stats);
}
