//! Reproduces **Figure 7**: the distribution of ReAct iterations required
//! to fix syntax errors (~90% resolved in a single revision).
//!
//! Run with `cargo run --release -p rtlfixer-bench --bin figure7`.

use rtlfixer_bench::{fmt3, record_run, RunScale};
use rtlfixer_eval::experiments::figure7::figure7;
use rtlfixer_eval::experiments::table1::FixRateConfig;

fn main() {
    let scale = RunScale::from_args();
    let config = if scale.quick {
        FixRateConfig { max_entries: Some(60), repeats: 2, jobs: scale.jobs, ..Default::default() }
    } else {
        FixRateConfig { jobs: scale.jobs, ..Default::default() }
    };
    eprintln!("Figure 7: ReAct iteration histogram (ReAct + RAG + Quartus)");
    let histogram = figure7(&config);
    let total = histogram.resolved.max(1);
    for (i, count) in histogram.counts.iter().enumerate() {
        let share = *count as f64 / total as f64;
        let bar = "#".repeat((share * 60.0).round() as usize);
        println!("{:>2} revision(s): {:>6} ({:>6}) {}", i + 1, count, fmt3(share), bar);
    }
    println!("unresolved within budget: {}", histogram.unresolved);
    println!(
        "single-revision share: {} (paper: ~0.90)",
        fmt3(histogram.single_revision_share())
    );
    println!(
        "{} episodes in {:.2}s ({:.0} episodes/s)",
        histogram.stats.episodes, histogram.stats.seconds, histogram.stats.episodes_per_sec
    );
    record_run("figure7", scale.jobs, &histogram.stats);
}
