//! Design-choice ablations called out in DESIGN.md §3: retriever choice,
//! ReAct iteration budget, pre-fixer contribution, guidance-database size.
//!
//! Run with `cargo run --release -p rtlfixer-bench --bin ablations`.

use rtlfixer_bench::{fmt3, record_run, render_table, RunScale};
use rtlfixer_eval::experiments::ablations;
use rtlfixer_eval::experiments::table1::FixRateConfig;

fn main() {
    let scale = RunScale::from_args();
    let config = if scale.quick {
        FixRateConfig { max_entries: Some(40), repeats: 2, jobs: scale.jobs, ..Default::default() }
    } else {
        FixRateConfig { repeats: 5, jobs: scale.jobs, ..Default::default() }
    };
    let mut episodes = 0usize;
    let mut seconds = 0.0f64;
    for (title, points) in [
        ("Retriever (ReAct + Quartus + RAG)", ablations::retriever_ablation(&config)),
        ("Retriever duel on tagless iverilog (ReAct + RAG)", ablations::iverilog_retriever_duel(&config)),
        ("ReAct iteration budget (Quartus, w/o RAG)", ablations::iteration_sweep(&config)),
        ("Rule-based pre-fixer (One-shot + Quartus + RAG)", ablations::prefixer_ablation(&config)),
        ("Guidance database size (ReAct + Quartus)", ablations::database_size_sweep(&config)),
    ] {
        println!("== {title} ==");
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                episodes += p.stats.episodes;
                seconds += p.stats.seconds;
                vec![
                    p.variant.clone(),
                    fmt3(p.fix_rate),
                    format!("{:.2}", p.stats.seconds),
                    format!("{:.0}", p.stats.episodes_per_sec),
                ]
            })
            .collect();
        println!("{}", render_table(&["variant", "fix rate", "secs", "eps/s"], &rows));
    }
    let stats = rtlfixer_eval::RunStats {
        episodes,
        seconds,
        episodes_per_sec: if seconds > 0.0 { episodes as f64 / seconds } else { 0.0 },
        failed_episodes: 0,
        scheduler: None,
    };
    record_run("ablations", scale.jobs, &stats);
}
