//! Steady-state simulator throughput: cycles/sec on the three designs the
//! Criterion `sim/cycle_*` benchmarks use (small combinational adder,
//! 8-bit sequential counter, 256-bit wide sequential datapath), driven
//! through the interned event-driven kernel. Complements Criterion with a
//! single recorded number per design so kernel regressions show up in
//! `results/bench_eval.json` next to the experiment throughput entries.
//!
//! Run with `cargo run --release -p rtlfixer-bench --bin simbench`
//! (`--quick` for the smoke-test cycle count).

use std::hint::black_box;
use std::time::{Duration, Instant};

use rtlfixer_bench::{record_run, render_table, RunScale};
use rtlfixer_sim::{value::LogicVec, Simulator};

const SMALL_COMB: &str = "module small(input [7:0] a, input [7:0] b,\n\
                          output [7:0] y, output carry);\n\
                          assign {carry, y} = a + b;\nendmodule";

const COUNTER: &str = "module ctr(input clk, input reset, output reg [7:0] q);\n\
                       always @(posedge clk) begin\n\
                       if (reset) q <= 0; else q <= q + 1;\nend\nendmodule";

const WIDE_256: &str = "module wide(input clk, input [7:0] d, output reg [255:0] acc);\n\
                        always @(posedge clk)\n\
                        acc <= {acc[247:0], d} ^ (acc >> 3);\nendmodule";

fn row(name: &str, cycles: usize, wall: Duration) -> Vec<String> {
    let seconds = wall.as_secs_f64();
    let per_sec = if seconds > 0.0 { cycles as f64 / seconds } else { 0.0 };
    vec![
        name.to_owned(),
        cycles.to_string(),
        format!("{seconds:.3}"),
        format!("{per_sec:.0}"),
    ]
}

fn main() {
    let scale = RunScale::from_args();
    let cycles: usize = if scale.quick { 20_000 } else { 2_000_000 };

    let mut rows = Vec::new();
    let mut total_cycles = 0usize;
    let mut total_wall = Duration::ZERO;

    // Small combinational adder: poke both inputs and settle each cycle.
    let small = rtlfixer_verilog::compile(SMALL_COMB);
    let mut sim = Simulator::new(&small, "small").expect("elaborates");
    let start = Instant::now();
    for i in 0..cycles as u64 {
        sim.poke("a", LogicVec::from_u64(8, i & 0xFF)).expect("port");
        sim.poke("b", LogicVec::from_u64(8, (i >> 3) & 0xFF)).expect("port");
        sim.settle().expect("settles");
        black_box(sim.peek("y"));
    }
    let wall = start.elapsed();
    rows.push(row("cycle_small_comb", cycles, wall));
    total_cycles += cycles;
    total_wall += wall;

    // Medium sequential counter: one full clock cycle per iteration.
    let counter = rtlfixer_verilog::compile(COUNTER);
    let mut sim = Simulator::new(&counter, "ctr").expect("elaborates");
    sim.poke("reset", LogicVec::from_u64(1, 0)).expect("port");
    let start = Instant::now();
    for _ in 0..cycles {
        sim.clock_cycle("clk").expect("cycle");
        black_box(sim.peek("q"));
    }
    let wall = start.elapsed();
    rows.push(row("cycle_medium_seq", cycles, wall));
    total_cycles += cycles;
    total_wall += wall;

    // Wide 256-bit sequential datapath: multi-limb shifts and xors.
    let wide = rtlfixer_verilog::compile(WIDE_256);
    let mut sim = Simulator::new(&wide, "wide").expect("elaborates");
    sim.poke("d", LogicVec::from_u64(8, 0xA5)).expect("port");
    let start = Instant::now();
    for _ in 0..cycles {
        sim.clock_cycle("clk").expect("cycle");
        black_box(sim.peek("acc"));
    }
    let wall = start.elapsed();
    rows.push(row("cycle_wide_256", cycles, wall));
    total_cycles += cycles;
    total_wall += wall;

    println!("Simulator cycle throughput ({cycles} cycles per design):");
    print!("{}", render_table(&["design", "cycles", "seconds", "cycles/s"], &rows));

    let stats = rtlfixer_eval::RunStats::new(total_cycles, total_wall);
    println!("total: {} cycles in {:.3}s ({:.0} eps/s)", stats.episodes, stats.seconds, stats.episodes_per_sec);
    record_run("simbench", 1, &stats);
}
