//! Steady-state simulator throughput: cycles/sec on the shared benchmark
//! design set (see `rtlfixer_bench::simdesigns`), measured under both
//! kernel backends — the tree-walking event kernel (`tree`) and the
//! compiled register-bytecode tape (`tape`) — in the same process via
//! `rtlfixer_sim::force_sim_backends`. Complements Criterion with recorded
//! numbers per design/backend so kernel regressions show up in
//! `results/bench_eval.json` next to the experiment throughput entries,
//! together with the tape compiler statistics (ops emitted / constant
//! folded / dead-eliminated) and the two-state fast-path hit ratio.
//!
//! Run with `cargo run --release -p rtlfixer-bench --bin simbench`
//! (`--quick` for the smoke-test cycle count).

use std::hint::black_box;
use std::time::{Duration, Instant};

use rtlfixer_bench::simdesigns::{SimDesign, SIM_DESIGNS};
use rtlfixer_bench::{record_run_with, render_table, RunScale};

/// Runs `design` for `cycles` cycles on a fresh simulator under the
/// currently forced backend; returns wall time plus the simulator's tape
/// runtime counters (fast-path hits / fallbacks, both 0 on the tree path).
fn measure(design: &SimDesign, cycles: usize) -> (Duration, u64, u64) {
    let mut sim = design.build();
    let start = Instant::now();
    for i in 0..cycles as u64 {
        (design.step)(&mut sim, i);
        black_box(sim.peek(design.watch));
    }
    let wall = start.elapsed();
    let (hits, falls) = sim.tape_runtime();
    (wall, hits, falls)
}

fn per_sec(cycles: usize, wall: Duration) -> f64 {
    let seconds = wall.as_secs_f64();
    if seconds > 0.0 {
        cycles as f64 / seconds
    } else {
        0.0
    }
}

fn main() {
    let scale = RunScale::from_args();
    let cycles: usize = if scale.quick { 20_000 } else { 2_000_000 };

    let mut rows = Vec::new();
    let mut extra: Vec<(String, serde_json::Value)> = Vec::new();
    let mut total_cycles = 0usize;
    let mut total_wall = Duration::ZERO;

    for design in SIM_DESIGNS {
        // Tree-walking event kernel first (tape forced off), then the
        // compiled tape, so the speedup column is a same-process A/B.
        rtlfixer_sim::force_sim_backends(None, Some(false));
        let (tree_wall, _, _) = measure(design, cycles);
        rtlfixer_sim::force_sim_backends(None, Some(true));
        let (tape_wall, fast_hits, fast_falls) = measure(design, cycles);
        rtlfixer_sim::force_sim_backends(None, None);

        let tree_cps = per_sec(cycles, tree_wall);
        let tape_cps = per_sec(cycles, tape_wall);
        let speedup = if tree_cps > 0.0 { tape_cps / tree_cps } else { 0.0 };
        let runs = fast_hits + fast_falls;
        let fast_ratio = if runs > 0 { fast_hits as f64 / runs as f64 } else { 0.0 };

        let stats = design.build().tape_stats();
        rows.push(vec![
            format!("cycle_{}", design.name),
            cycles.to_string(),
            format!("{tree_cps:.0}"),
            format!("{tape_cps:.0}"),
            format!("{speedup:.2}x"),
            format!("{:.0}%", fast_ratio * 100.0),
        ]);
        extra.push((
            format!("design.{}", design.name),
            serde_json::json!({
                "cycles": cycles,
                "tree_cycles_per_sec": tree_cps,
                "tape_cycles_per_sec": tape_cps,
                "speedup": speedup,
                "fast_hit_ratio": fast_ratio,
                "tape_ops_emitted": stats.ops_emitted,
                "tape_ops_folded": stats.ops_folded,
                "tape_ops_dead_eliminated": stats.ops_dead,
                "tape_procs": stats.taped,
                "tape_fast_procs": stats.fast,
            }),
        ));
        rtlfixer_obs::counter_add(
            &format!("simbench.{}.tape_ops_emitted", design.name),
            stats.ops_emitted,
        );
        rtlfixer_obs::counter_add(
            &format!("simbench.{}.tape_ops_folded", design.name),
            stats.ops_folded,
        );
        rtlfixer_obs::counter_add(
            &format!("simbench.{}.tape_ops_dead", design.name),
            stats.ops_dead,
        );

        // Both backend passes count toward recorded totals.
        total_cycles += cycles * 2;
        total_wall += tree_wall + tape_wall;
    }

    println!("Simulator cycle throughput ({cycles} cycles per design per backend):");
    print!(
        "{}",
        render_table(
            &["design", "cycles", "tree c/s", "tape c/s", "speedup", "fast-path"],
            &rows,
        )
    );

    let stats = rtlfixer_eval::RunStats::new(total_cycles, total_wall);
    println!(
        "total: {} cycles in {:.3}s ({:.0} eps/s)",
        stats.episodes, stats.seconds, stats.episodes_per_sec
    );
    let extra_refs: Vec<(&str, serde_json::Value)> =
        extra.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
    record_run_with("simbench", 1, &stats, &extra_refs);
}
