//! Steady-state simulator throughput: cycles/sec on the shared benchmark
//! design set (see `rtlfixer_bench::simdesigns`), measured under both
//! kernel backends — the tree-walking event kernel (`tree`) and the
//! compiled register-bytecode tape (`tape`) — in the same process via
//! `rtlfixer_sim::force_sim_backends`. Complements Criterion with recorded
//! numbers per design/backend so kernel regressions show up in
//! `results/bench_eval.json` next to the experiment throughput entries,
//! together with the tape compiler statistics (ops emitted / constant
//! folded / dead-eliminated) and the two-state fast-path hit ratio.
//!
//! Run with `cargo run --release -p rtlfixer-bench --bin simbench`
//! (`--quick` for the smoke-test cycle count). Multi-process mode:
//! `--shard i/n` measures the designs whose index strides onto shard `i`
//! and writes a fragment; `merge-shards n` reassembles the full design
//! table in canonical order (throughput numbers are wall-clock
//! measurements, so unlike table1/table2 they are not expected to be
//! bit-identical across runs — only the set of designs covered is).

use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::{Duration, Instant};

use rtlfixer_bench::shards::{as_bool, as_str, as_usize, read_fragments, write_fragment};
use rtlfixer_bench::simdesigns::{SimDesign, SIM_DESIGNS};
use rtlfixer_bench::{die, record_run_with, render_table, RunScale};
use rtlfixer_eval::Shard;
use rtlfixer_sim::{value::LogicVec, Clocking, ReferenceModel};

/// Runs `design` for `cycles` cycles on a fresh simulator under the
/// currently forced backend; returns wall time plus the simulator's tape
/// runtime counters (fast-path hits / fallbacks, both 0 on the tree path).
fn measure(design: &SimDesign, cycles: usize) -> (Duration, u64, u64) {
    let mut sim = design.build();
    let start = Instant::now();
    for i in 0..cycles as u64 {
        (design.step)(&mut sim, i);
        black_box(sim.peek(design.watch));
    }
    let wall = start.elapsed();
    let (hits, falls) = sim.tape_runtime();
    (wall, hits, falls)
}

fn per_sec(cycles: usize, wall: Duration) -> f64 {
    let seconds = wall.as_secs_f64();
    if seconds > 0.0 {
        cycles as f64 / seconds
    } else {
        0.0
    }
}

/// Seeds packed per lane-sweep measurement (one full lane group).
const SWEEP_SEEDS: usize = 16;

/// Output of the multi-seed lane sweep for one design.
struct SweepResult {
    /// Wall-time ratio of the 16-seed sweep to one single-seed run
    /// (16.0 = no packing win at all, 1.0 = perfect 16-way packing).
    seed_ratio: f64,
    /// Fraction of lane-steps completed inside the packed executor.
    occupancy: f64,
}

/// Measures the bit-parallel multi-seed path: one 16-seed sweep through
/// `run_testbench_seeds` (lane-packed when the design qualifies) against a
/// single-seed scalar run, over random stimulus on the design's inputs.
fn measure_sweep(design: &SimDesign, cycles: usize) -> SweepResult {
    let analysis = rtlfixer_verilog::compile(design.source);
    let sim = design.build();
    let ports: Vec<(String, u32)> = sim
        .design()
        .inputs
        .iter()
        .filter(|p| p.name != "clk")
        .map(|p| (p.name.clone(), p.width))
        .collect();
    let clocking = if sim.design().inputs.iter().any(|p| p.name == "clk") {
        Clocking::Sequential { clock: "clk".into() }
    } else {
        Clocking::Combinational
    };
    drop(sim);
    let null_model = || -> Box<dyn ReferenceModel> {
        Box::new(|_: &BTreeMap<String, LogicVec>| BTreeMap::<String, LogicVec>::new())
    };
    let stimuli: Vec<_> = (1..=SWEEP_SEEDS as u64)
        .map(|seed| rtlfixer_sim::testbench::random_stimuli(&ports, cycles, seed))
        .collect();

    let mut solo = null_model();
    let start = Instant::now();
    rtlfixer_sim::run_testbench(&analysis, design.module, solo.as_mut(), &stimuli[0], &clocking)
        .expect("single-seed run");
    let single_wall = start.elapsed();

    let mut models: Vec<Box<dyn ReferenceModel>> =
        (0..SWEEP_SEEDS).map(|_| null_model()).collect();
    let start = Instant::now();
    let (results, stats) = rtlfixer_sim::run_testbench_seeds_with_stats(
        &analysis,
        design.module,
        &mut models,
        &stimuli,
        &clocking,
    );
    let sweep_wall = start.elapsed();
    for result in results {
        result.expect("sweep lane runs");
    }
    SweepResult {
        seed_ratio: if single_wall.as_secs_f64() > 0.0 {
            sweep_wall.as_secs_f64() / single_wall.as_secs_f64()
        } else {
            0.0
        },
        occupancy: stats.occupancy(),
    }
}

/// One design's measurements: everything the final table, JSON record,
/// and totals need, independent of which process measured it.
struct DesignResult {
    index: usize,
    row: Vec<String>,
    extra: serde_json::Value,
    cycles: usize,
    wall_nanos: u64,
}

/// Measures one design under both backends (same-process A/B), plus the
/// 16-seed lane sweep.
fn run_design(index: usize, design: &SimDesign, cycles: usize) -> DesignResult {
    rtlfixer_sim::force_sim_backends(None, Some(false));
    let (tree_wall, _, _) = measure(design, cycles);
    rtlfixer_sim::force_sim_backends(None, Some(true));
    let (tape_wall, fast_hits, fast_falls) = measure(design, cycles);
    rtlfixer_sim::force_sim_backends(None, None);
    // The sweep is per-lane work over SWEEP_SEEDS lanes; scale it down so
    // the sweep costs about as much wall time as one backend pass.
    let sweep = measure_sweep(design, (cycles / SWEEP_SEEDS).max(100));

    let tree_cps = per_sec(cycles, tree_wall);
    let tape_cps = per_sec(cycles, tape_wall);
    let speedup = if tree_cps > 0.0 { tape_cps / tree_cps } else { 0.0 };
    let runs = fast_hits + fast_falls;
    let fast_ratio = if runs > 0 { fast_hits as f64 / runs as f64 } else { 0.0 };

    let stats = design.build().tape_stats();
    rtlfixer_obs::counter_add(
        &format!("simbench.{}.tape_ops_emitted", design.name),
        stats.ops_emitted,
    );
    rtlfixer_obs::counter_add(
        &format!("simbench.{}.tape_ops_folded", design.name),
        stats.ops_folded,
    );
    rtlfixer_obs::counter_add(&format!("simbench.{}.tape_ops_dead", design.name), stats.ops_dead);

    DesignResult {
        index,
        row: vec![
            format!("cycle_{}", design.name),
            cycles.to_string(),
            format!("{tree_cps:.0}"),
            format!("{tape_cps:.0}"),
            format!("{speedup:.2}x"),
            format!("{:.0}%", fast_ratio * 100.0),
            stats.limb_class.to_string(),
            format!("{:.2}x", sweep.seed_ratio),
            format!("{:.0}%", sweep.occupancy * 100.0),
        ],
        extra: serde_json::json!({
            "cycles": cycles,
            "tree_cycles_per_sec": tree_cps,
            "tape_cycles_per_sec": tape_cps,
            "speedup": speedup,
            "fast_hit_ratio": fast_ratio,
            "tape_ops_emitted": stats.ops_emitted,
            "tape_ops_folded": stats.ops_folded,
            "tape_ops_dead_eliminated": stats.ops_dead,
            "tape_procs": stats.taped,
            "tape_fast_procs": stats.fast,
            "limb_class": stats.limb_class,
            "fast_rejected_procs": stats.fast_rejected,
            "lane_sweep_seed_ratio": sweep.seed_ratio,
            "lane_occupancy": sweep.occupancy,
        }),
        // Both backend passes count toward recorded totals.
        cycles: cycles * 2,
        wall_nanos: (tree_wall + tape_wall).as_nanos() as u64,
    }
}

/// Renders and records a complete (unsharded or merged) design set.
fn finish(results: &[DesignResult], cycles: usize) {
    let rows: Vec<Vec<String>> = results.iter().map(|r| r.row.clone()).collect();
    println!("Simulator cycle throughput ({cycles} cycles per design per backend):");
    print!(
        "{}",
        render_table(
            &[
                "design",
                "cycles",
                "tree c/s",
                "tape c/s",
                "speedup",
                "fast-path",
                "limbs",
                "16-seed",
                "lane-occ",
            ],
            &rows,
        )
    );

    let total_cycles: usize = results.iter().map(|r| r.cycles).sum();
    let total_wall: Duration = results.iter().map(|r| Duration::from_nanos(r.wall_nanos)).sum();
    let stats = rtlfixer_eval::RunStats::new(total_cycles, total_wall);
    println!(
        "total: {} cycles in {:.3}s ({:.0} eps/s)",
        stats.episodes, stats.seconds, stats.episodes_per_sec
    );
    let extra_keyed: Vec<(String, serde_json::Value)> = results
        .iter()
        .map(|r| (format!("design.{}", SIM_DESIGNS[r.index].name), r.extra.clone()))
        .collect();
    let extra_refs: Vec<(&str, serde_json::Value)> =
        extra_keyed.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
    record_run_with("simbench", 1, &stats, &extra_refs);
}

fn results_json(quick: bool, results: &[DesignResult]) -> serde_json::Value {
    let designs: Vec<serde_json::Value> = results
        .iter()
        .map(|r| {
            serde_json::json!({
                "index": r.index as u64,
                "name": SIM_DESIGNS[r.index].name,
                "row": r.row.clone(),
                "extra": r.extra.clone(),
                "cycles": r.cycles as u64,
                "wall_nanos": r.wall_nanos,
            })
        })
        .collect();
    serde_json::json!({ "quick": quick, "designs": designs })
}

/// Decodes fragments back into design results, validating the set covers
/// every design exactly once.
fn results_from_fragments(
    quick: bool,
    payloads: &[serde_json::Value],
) -> Result<Vec<DesignResult>, String> {
    let mut slots: Vec<Option<DesignResult>> = (0..SIM_DESIGNS.len()).map(|_| None).collect();
    for payload in payloads {
        if as_bool(&payload["quick"]) != Some(quick) {
            return Err(
                "fragment scale does not match this invocation (run merge-shards with the same \
                 --quick flag the shards used)"
                    .to_owned(),
            );
        }
        let designs = payload["designs"].as_array().ok_or("fragment missing `designs`")?;
        for design in designs {
            let index = design
                .get("index")
                .and_then(as_usize)
                .ok_or("fragment design missing `index`")?;
            let slot = slots
                .get_mut(index)
                .ok_or_else(|| format!("fragment design index {index} is outside the set"))?;
            if slot.is_some() {
                return Err(format!("design index {index} is covered twice across fragments"));
            }
            if as_str(&design["name"]) != Some(SIM_DESIGNS[index].name) {
                return Err(format!("fragment design {index} name does not match the set"));
            }
            let row = design["row"]
                .as_array()
                .ok_or("fragment design missing `row`")?
                .iter()
                .map(|c| as_str(c).map(str::to_owned).ok_or("non-string row cell"))
                .collect::<Result<Vec<_>, _>>()?;
            *slot = Some(DesignResult {
                index,
                row,
                extra: design["extra"].clone(),
                cycles: design.get("cycles").and_then(as_usize).ok_or("missing `cycles`")?,
                wall_nanos: design["wall_nanos"].as_u64().ok_or("missing `wall_nanos`")?,
            });
        }
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(index, slot)| {
            slot.ok_or_else(|| {
                format!(
                    "design index {index} ({}) is missing from the merged fragments",
                    SIM_DESIGNS[index].name
                )
            })
        })
        .collect()
}

fn main() {
    let scale = RunScale::from_args();
    let cycles: usize = if scale.quick { 20_000 } else { 2_000_000 };

    if let Some(count) = scale.merge_shards {
        let payloads = read_fragments("simbench", count).unwrap_or_else(|e| die(e));
        let results = results_from_fragments(scale.quick, &payloads).unwrap_or_else(|e| die(e));
        eprintln!("simbench: merged {count} shards");
        finish(&results, cycles);
        return;
    }

    let shard = scale.shard.unwrap_or(Shard::FULL);
    let results: Vec<DesignResult> = SIM_DESIGNS
        .iter()
        .enumerate()
        .filter(|(index, _)| shard.owns(*index))
        .map(|(index, design)| run_design(index, design, cycles))
        .collect();

    if let Some(shard) = scale.shard {
        let path = write_fragment("simbench", shard, results_json(scale.quick, &results));
        println!("wrote fragment {} ({} designs)", path.display(), results.len());
        return;
    }
    finish(&results, cycles);
}
