//! Learning curve: fix rate vs episodes served as the distilled guidance
//! store grows (DESIGN.md §3k).
//!
//! Replays the same iverilog episode grid round after round against one
//! shared `DistilledStore`; seeds never change between rounds, so any
//! movement in the fix rate is the retrieval loop feeding successful
//! repairs back into the database. Run with
//! `cargo run --release -p rtlfixer-bench --bin table_learning`
//! (add `--quick` for a scaled-down smoke run).

use rtlfixer_bench::{fmt3, record_run_with, render_table, RunScale};
use rtlfixer_eval::experiments::table_learning::{run_learning, LearningConfig};

fn main() {
    let scale = RunScale::from_args();
    let mut config = if scale.quick { LearningConfig::quick() } else { LearningConfig::full() };
    config.episodes.jobs = scale.jobs;

    let points = run_learning(&config);

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.round.to_string(),
                fmt3(p.fix_rate),
                p.store_entries.to_string(),
                format!("{:.2}", p.stats.seconds),
                format!("{:.0}", p.stats.episodes_per_sec),
            ]
        })
        .collect();
    println!("== Learning curve (iverilog + ReAct ×10 + RAG, shared distilled store) ==");
    println!(
        "{}",
        render_table(&["round", "fix rate", "store", "secs", "eps/s"], &rows)
    );
    if let (Some(first), Some(last)) = (points.first(), points.last()) {
        println!(
            "fix rate {} -> {} over {} rounds ({} distilled briefs)",
            fmt3(first.fix_rate),
            fmt3(last.fix_rate),
            points.len(),
            last.store_entries
        );
    }

    let episodes: usize = points.iter().map(|p| p.stats.episodes).sum();
    let seconds: f64 = points.iter().map(|p| p.stats.seconds).sum();
    let stats = rtlfixer_eval::RunStats {
        episodes,
        seconds,
        episodes_per_sec: if seconds > 0.0 { episodes as f64 / seconds } else { 0.0 },
        failed_episodes: 0,
        scheduler: None,
    };
    record_run_with(
        "table_learning",
        scale.jobs,
        &stats,
        &[("curve", serde_json::Value::from_serialize(&points))],
    );
}
