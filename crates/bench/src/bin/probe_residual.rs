//! Diagnostic: which dataset entries resist ReAct+RAG+Quartus across many
//! seeds, and with which error categories? (Calibration aid, not a paper
//! experiment.)
use rtlfixer_agent::{RtlFixerBuilder, Strategy};
use rtlfixer_compilers::CompilerKind;
use rtlfixer_llm::{Capability, SimulatedLlm};

fn main() {
    let entries = rtlfixer_dataset::verilog_eval_syntax(7);
    let mut stubborn = 0;
    for (idx, entry) in entries.iter().enumerate() {
        let mut successes = 0;
        for seed in 0..5u64 {
            let llm = SimulatedLlm::new(Capability::Gpt4Class, seed * 977 + idx as u64);
            let mut fixer = RtlFixerBuilder::new()
                .compiler(CompilerKind::Quartus)
                .strategy(Strategy::React { max_iterations: 10 })
                .with_rag(true)
                .build(llm);
            if fixer.fix_problem(&entry.description, &entry.code).success {
                successes += 1;
            }
        }
        if successes == 0 {
            stubborn += 1;
            let analysis = rtlfixer_verilog::compile(&entry.code);
            let cats: Vec<_> = analysis.errors().iter().map(|d| d.category).collect();
            println!("NEVER-FIXED {} cats={:?}", entry.problem_id, cats);
            if stubborn <= 3 {
                println!("--- code ---\n{}\n-----------", entry.code);
            }
        }
    }
    println!("total never-fixed (GPT-4, 5 seeds): {stubborn}/212");
}
