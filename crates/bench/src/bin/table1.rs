//! Reproduces **Table 1**: fix rate for One-shot vs ReAct, w/ and w/o RAG,
//! across feedback sources and LLMs, on VerilogEval-syntax.
//!
//! Run with `cargo run --release -p rtlfixer-bench --bin table1`
//! (add `--quick` for a scaled-down smoke run). Multi-process mode:
//! `--shard i/n` runs one deterministic stripe of the grid and writes a
//! verdict fragment under `<results_dir>/shards/`; `merge-shards n` reads
//! the fragments back and reassembles output byte-identical to an
//! unsharded run (identical fix rates and verdict fingerprint — wall-clock
//! fields are the only legitimate difference).

use rtlfixer_bench::shards::{as_bool, as_usize, read_fragments, stats_from_json, write_fragment};
use rtlfixer_bench::{die, fmt3, record_run, render_table, RunScale};
use rtlfixer_eval::experiments::table1::{
    merge_table1_verdicts, table1_merged, table1_verdicts, CellVerdicts, FixRateConfig,
    Table1Merge,
};

fn config_for(scale: &RunScale) -> FixRateConfig {
    if scale.quick {
        FixRateConfig { max_entries: Some(40), repeats: 3, jobs: scale.jobs, ..Default::default() }
    } else {
        FixRateConfig { jobs: scale.jobs, ..Default::default() }
    }
}

/// Encodes one shard's verdicts as a fragment payload. Raw success bits by
/// grid position — never derived rates — so the merge recomputes exactly
/// what an unsharded run computes.
fn fragment_json(quick: bool, cells: &[CellVerdicts]) -> serde_json::Value {
    let cells: Vec<serde_json::Value> = cells
        .iter()
        .map(|cell| {
            let positions: Vec<u64> = cell.successes.iter().map(|&(p, _)| p as u64).collect();
            let fixed: Vec<u8> = cell.successes.iter().map(|&(_, s)| s as u8).collect();
            serde_json::json!({
                "positions": positions,
                "fixed": fixed,
                "stats": serde_json::Value::from_serialize(&cell.stats),
            })
        })
        .collect();
    serde_json::json!({ "quick": quick, "cells": cells })
}

fn fragment_from_json(
    quick: bool,
    payload: &serde_json::Value,
) -> Result<Vec<CellVerdicts>, String> {
    if as_bool(&payload["quick"]) != Some(quick) {
        return Err(
            "fragment scale does not match this invocation (run merge-shards with the same \
             --quick flag the shards used)"
                .to_owned(),
        );
    }
    let cells = payload["cells"].as_array().ok_or("fragment missing `cells`")?;
    cells
        .iter()
        .map(|cell| {
            let positions =
                cell["positions"].as_array().ok_or("fragment cell missing `positions`")?;
            let fixed = cell["fixed"].as_array().ok_or("fragment cell missing `fixed`")?;
            if positions.len() != fixed.len() {
                return Err("fragment cell positions/fixed length mismatch".to_owned());
            }
            let successes = positions
                .iter()
                .zip(fixed)
                .map(|(position, bit)| {
                    let position = as_usize(position).ok_or("non-integer grid position")?;
                    let success = match bit.as_u64() {
                        Some(0) => false,
                        Some(1) => true,
                        _ => return Err("fragment verdict is not a 0/1 bit".to_owned()),
                    };
                    Ok((position, success))
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok(CellVerdicts { successes, stats: stats_from_json(&cell["stats"])? })
        })
        .collect()
}

fn folded_stats(cells: &[CellVerdicts]) -> rtlfixer_eval::RunStats {
    let mut stats = rtlfixer_eval::RunStats::new(0, std::time::Duration::ZERO);
    for cell in cells {
        stats.accumulate(&cell.stats);
    }
    stats
}

/// Renders and records a complete (unsharded or merged) Table 1 run.
fn finish(scale: &RunScale, merged: &Table1Merge) {
    let rows: Vec<Vec<String>> = merged
        .cells
        .iter()
        .map(|cell| {
            vec![
                cell.strategy.clone(),
                if cell.rag { "w/" } else { "w/o" }.to_owned(),
                cell.compiler.clone(),
                cell.llm.clone(),
                fmt3(cell.fix_rate),
                fmt3(cell.paper),
                fmt3(cell.fix_rate - cell.paper),
                format!("{:.2}", cell.stats.seconds),
                format!("{:.0}", cell.stats.episodes_per_sec),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Prompt", "RAG", "Feedback", "LLM", "measured", "paper", "delta", "secs",
                "eps/s",
            ],
            &rows
        )
    );
    println!("verdict_fingerprint: {:032x}", merged.verdict_fingerprint);
    let mut stats = rtlfixer_eval::RunStats::new(0, std::time::Duration::ZERO);
    for cell in &merged.cells {
        stats.accumulate(&cell.stats);
    }
    record_run("table1", scale.jobs, &stats);
    println!("{}", serde_json::to_string_pretty(&merged.cells).expect("serialises"));
}

fn main() {
    let scale = RunScale::from_args();
    let config = config_for(&scale);
    if let Some(count) = scale.merge_shards {
        let payloads = read_fragments("table1", count).unwrap_or_else(|e| die(e));
        let shards: Vec<Vec<CellVerdicts>> = payloads
            .iter()
            .map(|payload| fragment_from_json(scale.quick, payload))
            .collect::<Result<_, _>>()
            .unwrap_or_else(|e| die(e));
        let merged = merge_table1_verdicts(&config, &shards).unwrap_or_else(|e| die(e));
        eprintln!("Table 1: merged {count} shards");
        finish(&scale, &merged);
        return;
    }
    if let Some(shard) = scale.shard {
        eprintln!(
            "Table 1 shard {shard}: fix rate on VerilogEval-syntax ({} entries x {} repeats \
             per cell, 14 cells, stripe only)",
            config.max_entries.map_or(212, |c| c),
            config.repeats
        );
        let verdicts = table1_verdicts(&config, shard);
        let stats = folded_stats(&verdicts);
        let path = write_fragment("table1", shard, fragment_json(scale.quick, &verdicts));
        record_run(&format!("table1.shard{}of{}", shard.index, shard.count), scale.jobs, &stats);
        println!(
            "wrote fragment {} ({} episodes in {:.2}s)",
            path.display(),
            stats.episodes,
            stats.seconds
        );
        return;
    }
    eprintln!(
        "Table 1: fix rate on VerilogEval-syntax ({} entries x {} repeats per cell, 14 cells)",
        config.max_entries.map_or(212, |c| c),
        config.repeats
    );
    let merged = table1_merged(&config);
    finish(&scale, &merged);
}
