//! Reproduces **Table 1**: fix rate for One-shot vs ReAct, w/ and w/o RAG,
//! across feedback sources and LLMs, on VerilogEval-syntax.
//!
//! Run with `cargo run --release -p rtlfixer-bench --bin table1`
//! (add `--quick` for a scaled-down smoke run).

use rtlfixer_bench::{fmt3, record_run, render_table, RunScale};
use rtlfixer_eval::experiments::table1::{table1, FixRateConfig};

fn main() {
    let scale = RunScale::from_args();
    let config = if scale.quick {
        FixRateConfig { max_entries: Some(40), repeats: 3, jobs: scale.jobs, ..Default::default() }
    } else {
        FixRateConfig { jobs: scale.jobs, ..Default::default() }
    };
    eprintln!(
        "Table 1: fix rate on VerilogEval-syntax ({} entries x {} repeats per cell, 14 cells)",
        config.max_entries.map_or(212, |c| c),
        config.repeats
    );
    let cells = table1(&config);
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|cell| {
            vec![
                cell.strategy.clone(),
                if cell.rag { "w/" } else { "w/o" }.to_owned(),
                cell.compiler.clone(),
                cell.llm.clone(),
                fmt3(cell.fix_rate),
                fmt3(cell.paper),
                fmt3(cell.fix_rate - cell.paper),
                format!("{:.2}", cell.stats.seconds),
                format!("{:.0}", cell.stats.episodes_per_sec),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Prompt", "RAG", "Feedback", "LLM", "measured", "paper", "delta", "secs",
                "eps/s",
            ],
            &rows
        )
    );
    let episodes: usize = cells.iter().map(|c| c.stats.episodes).sum();
    let seconds: f64 = cells.iter().map(|c| c.stats.seconds).sum();
    let stats = rtlfixer_eval::RunStats {
        episodes,
        seconds,
        episodes_per_sec: if seconds > 0.0 { episodes as f64 / seconds } else { 0.0 },
        failed_episodes: 0,
    };
    record_run("table1", scale.jobs, &stats);
    println!("{}", serde_json::to_string_pretty(&cells).expect("serialises"));
}
