//! Reproduces **Figure 4**: VerilogEval pass@1 outcome shares prior
//! (inner ring) and post (outer ring) syntax fixing — the pie charts.
//!
//! Run with `cargo run --release -p rtlfixer-bench --bin figure4`.

use rtlfixer_bench::{fmt3, record_run, render_table, RunScale};
use rtlfixer_eval::experiments::table2::{evaluate_suite, PassAtKConfig};

fn main() {
    let scale = RunScale::from_args();
    let config = if scale.quick {
        PassAtKConfig { samples: 8, max_problems: Some(30), seed: 11, jobs: scale.jobs }
    } else {
        PassAtKConfig { jobs: scale.jobs, ..Default::default() }
    };
    eprintln!("Figure 4: outcome shares before/after fixing");
    let mut rows = Vec::new();
    let mut episodes = 0usize;
    let mut seconds = 0.0f64;
    for (label, problems) in [
        ("Human", rtlfixer_dataset::verilog_eval_human()),
        ("Machine", rtlfixer_dataset::verilog_eval_machine()),
    ] {
        let evaluation = evaluate_suite(label, &problems, &config);
        episodes += evaluation.stats.episodes;
        seconds += evaluation.stats.seconds;
        for (ring, shares) in [
            ("prior (inner)", evaluation.shares_original),
            ("post (outer)", evaluation.shares_fixed),
        ] {
            rows.push(vec![
                label.to_owned(),
                ring.to_owned(),
                fmt3(shares.pass),
                fmt3(shares.syntax_error),
                fmt3(shares.sim_error),
            ]);
        }
    }
    println!(
        "{}",
        render_table(&["Suite", "Ring", "pass", "syntax error", "sim error"], &rows)
    );
    println!("Paper (Human): pass rises 0.267 -> 0.368 purely from syntax fixing.");
    let stats = rtlfixer_eval::RunStats {
        episodes,
        seconds,
        episodes_per_sec: if seconds > 0.0 { episodes as f64 / seconds } else { 0.0 },
        failed_episodes: 0,
        scheduler: None,
    };
    record_run("figure4", scale.jobs, &stats);
}
