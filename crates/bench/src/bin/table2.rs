//! Reproduces **Table 2**: pass@{1,5} on VerilogEval (Human and Machine),
//! original vs after syntax fixing, with the All/easy/hard splits.
//!
//! Run with `cargo run --release -p rtlfixer-bench --bin table2`
//! (add `--quick` for a scaled-down smoke run).

use rtlfixer_bench::{fmt3, record_run, render_table, RunScale};
use rtlfixer_eval::experiments::table2::{evaluate_suite, PassAtKConfig};

/// Paper values: (suite, set, pass1_orig, pass1_fixed, pass5_orig, pass5_fixed).
const PAPER: &[(&str, &str, f64, f64, f64, f64)] = &[
    ("Human", "All", 0.267, 0.368, 0.458, 0.506),
    ("Human", "easy", 0.521, 0.666, 0.808, 0.847),
    ("Human", "hard", 0.053, 0.120, 0.164, 0.221),
    ("Machine", "All", 0.467, 0.799, 0.691, 0.891),
    ("Machine", "easy", 0.568, 0.833, 0.782, 0.892),
    ("Machine", "hard", 0.367, 0.771, 0.601, 0.890),
];

fn main() {
    let scale = RunScale::from_args();
    let config = if scale.quick {
        PassAtKConfig { samples: 8, max_problems: Some(30), seed: 11, jobs: scale.jobs }
    } else {
        PassAtKConfig { jobs: scale.jobs, ..Default::default() }
    };
    eprintln!(
        "Table 2: pass@k on VerilogEval (n = {} samples/problem{})",
        config.samples,
        config.max_problems.map_or(String::new(), |c| format!(", first {c} problems"))
    );
    let human = evaluate_suite("Human", &rtlfixer_dataset::verilog_eval_human(), &config);
    let machine = evaluate_suite("Machine", &rtlfixer_dataset::verilog_eval_machine(), &config);

    let mut rows = Vec::new();
    for evaluation in [&human, &machine] {
        for row in &evaluation.rows {
            let paper = PAPER
                .iter()
                .find(|(suite, set, ..)| *suite == evaluation.suite && *set == row.set);
            let paper_cells = match paper {
                Some((_, _, p1o, p1f, p5o, p5f)) => {
                    (fmt3(*p1o), fmt3(*p1f), fmt3(*p5o), fmt3(*p5f))
                }
                None => ("-".into(), "-".into(), "-".into(), "-".into()),
            };
            rows.push(vec![
                evaluation.suite.clone(),
                row.set.clone(),
                format!("{}", row.problems),
                fmt3(row.pass1_original),
                fmt3(row.pass1_fixed),
                paper_cells.0,
                paper_cells.1,
                fmt3(row.pass5_original),
                fmt3(row.pass5_fixed),
                paper_cells.2,
                paper_cells.3,
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "Dataset", "Set", "#", "p@1 orig", "p@1 fixed", "paper orig", "paper fixed",
                "p@5 orig", "p@5 fixed", "paper orig", "paper fixed",
            ],
            &rows
        )
    );
    let stats = rtlfixer_eval::RunStats {
        episodes: human.stats.episodes + machine.stats.episodes,
        seconds: human.stats.seconds + machine.stats.seconds,
        episodes_per_sec: 0.0,
        failed_episodes: 0,
    };
    let stats = rtlfixer_eval::RunStats {
        episodes_per_sec: if stats.seconds > 0.0 {
            stats.episodes as f64 / stats.seconds
        } else {
            0.0
        },
        ..stats
    };
    record_run("table2", scale.jobs, &stats);
    println!("{}", serde_json::to_string_pretty(&[&human, &machine]).expect("serialises"));
}
