//! Reproduces **Table 2**: pass@{1,5} on VerilogEval (Human and Machine),
//! original vs after syntax fixing, with the All/easy/hard splits.
//!
//! Run with `cargo run --release -p rtlfixer-bench --bin table2`
//! (add `--quick` for a scaled-down smoke run). Multi-process mode:
//! `--shard i/n` evaluates one deterministic stripe of each suite's
//! problems and writes the raw per-problem counts as a fragment;
//! `merge-shards n` reassembles the fragments into the same rows an
//! unsharded run prints.

use rtlfixer_bench::shards::{as_bool, as_str, as_usize, read_fragments, stats_from_json};
use rtlfixer_bench::{die, fmt3, record_run, render_table, RunScale};
use rtlfixer_dataset::{Difficulty, Problem};
use rtlfixer_eval::experiments::table2::{
    evaluate_suite, evaluate_suite_counts, suite_from_counts, PassAtKConfig, ProblemCounts,
    SuiteEvaluation,
};

/// Paper values: (suite, set, pass1_orig, pass1_fixed, pass5_orig, pass5_fixed).
const PAPER: &[(&str, &str, f64, f64, f64, f64)] = &[
    ("Human", "All", 0.267, 0.368, 0.458, 0.506),
    ("Human", "easy", 0.521, 0.666, 0.808, 0.847),
    ("Human", "hard", 0.053, 0.120, 0.164, 0.221),
    ("Machine", "All", 0.467, 0.799, 0.691, 0.891),
    ("Machine", "easy", 0.568, 0.833, 0.782, 0.892),
    ("Machine", "hard", 0.367, 0.771, 0.601, 0.890),
];

fn config_for(scale: &RunScale) -> PassAtKConfig {
    if scale.quick {
        PassAtKConfig { samples: 8, max_problems: Some(30), seed: 11, jobs: scale.jobs }
    } else {
        PassAtKConfig { jobs: scale.jobs, ..Default::default() }
    }
}

/// Encodes one suite's sharded counts for a fragment payload.
fn suite_json(counts: &[(usize, ProblemCounts)], stats: rtlfixer_eval::RunStats) -> serde_json::Value {
    let problems: Vec<serde_json::Value> = counts
        .iter()
        .map(|(index, c)| {
            serde_json::json!({
                "index": *index as u64,
                "difficulty": match c.difficulty {
                    Difficulty::Easy => "easy",
                    Difficulty::Hard => "hard",
                },
                "pass_original": c.pass_original as u64,
                "pass_fixed": c.pass_fixed as u64,
                "samples": c.samples as u64,
                "syntax_original": c.syntax_original as u64,
                "syntax_fixed": c.syntax_fixed as u64,
                "sim_original": c.sim_original as u64,
                "sim_fixed": c.sim_fixed as u64,
            })
        })
        .collect();
    serde_json::json!({
        "problems": problems,
        "stats": serde_json::Value::from_serialize(&stats),
    })
}

fn suite_from_json(
    value: &serde_json::Value,
) -> Result<(Vec<(usize, ProblemCounts)>, rtlfixer_eval::RunStats), String> {
    let problems = value["problems"].as_array().ok_or("fragment suite missing `problems`")?;
    let counts = problems
        .iter()
        .map(|p| {
            let int = |key: &str| {
                p.get(key)
                    .and_then(as_usize)
                    .ok_or_else(|| format!("fragment problem missing `{key}`"))
            };
            let difficulty = match as_str(&p["difficulty"]) {
                Some("easy") => Difficulty::Easy,
                Some("hard") => Difficulty::Hard,
                other => return Err(format!("fragment problem difficulty `{other:?}`")),
            };
            Ok((
                int("index")?,
                ProblemCounts {
                    difficulty,
                    pass_original: int("pass_original")?,
                    pass_fixed: int("pass_fixed")?,
                    samples: int("samples")?,
                    syntax_original: int("syntax_original")?,
                    syntax_fixed: int("syntax_fixed")?,
                    sim_original: int("sim_original")?,
                    sim_fixed: int("sim_fixed")?,
                },
            ))
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok((counts, stats_from_json(&value["stats"])?))
}

/// Merges one suite across fragment payloads.
fn merge_suite(
    suite: &str,
    problems: &[Problem],
    config: &PassAtKConfig,
    payloads: &[serde_json::Value],
) -> Result<SuiteEvaluation, String> {
    let mut shards = Vec::with_capacity(payloads.len());
    let mut total: Option<rtlfixer_eval::RunStats> = None;
    for payload in payloads {
        let (counts, stats) = suite_from_json(&payload[suite])?;
        shards.push(counts);
        match &mut total {
            Some(total) => total.accumulate(&stats),
            None => total = Some(stats),
        }
    }
    let stats = total.ok_or("merge-shards needs at least one fragment")?;
    suite_from_counts(suite, problems, config, &shards, stats)
}

/// Renders and records a complete (unsharded or merged) Table 2 run.
fn finish(scale: &RunScale, human: &SuiteEvaluation, machine: &SuiteEvaluation) {
    let mut rows = Vec::new();
    for evaluation in [human, machine] {
        for row in &evaluation.rows {
            let paper = PAPER
                .iter()
                .find(|(suite, set, ..)| *suite == evaluation.suite && *set == row.set);
            let paper_cells = match paper {
                Some((_, _, p1o, p1f, p5o, p5f)) => {
                    (fmt3(*p1o), fmt3(*p1f), fmt3(*p5o), fmt3(*p5f))
                }
                None => ("-".into(), "-".into(), "-".into(), "-".into()),
            };
            rows.push(vec![
                evaluation.suite.clone(),
                row.set.clone(),
                format!("{}", row.problems),
                fmt3(row.pass1_original),
                fmt3(row.pass1_fixed),
                paper_cells.0,
                paper_cells.1,
                fmt3(row.pass5_original),
                fmt3(row.pass5_fixed),
                paper_cells.2,
                paper_cells.3,
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "Dataset", "Set", "#", "p@1 orig", "p@1 fixed", "paper orig", "paper fixed",
                "p@5 orig", "p@5 fixed", "paper orig", "paper fixed",
            ],
            &rows
        )
    );
    let mut stats = human.stats;
    stats.accumulate(&machine.stats);
    record_run("table2", scale.jobs, &stats);
    println!("{}", serde_json::to_string_pretty(&[human, machine]).expect("serialises"));
}

fn main() {
    let scale = RunScale::from_args();
    let config = config_for(&scale);
    let human_problems = rtlfixer_dataset::verilog_eval_human();
    let machine_problems = rtlfixer_dataset::verilog_eval_machine();
    if let Some(count) = scale.merge_shards {
        let payloads = read_fragments("table2", count).unwrap_or_else(|e| die(e));
        for payload in &payloads {
            if as_bool(&payload["quick"]) != Some(scale.quick) {
                die(
                    "fragment scale does not match this invocation (run merge-shards with the \
                     same --quick flag the shards used)"
                        .to_owned(),
                );
            }
        }
        let human = merge_suite("Human", &human_problems, &config, &payloads)
            .unwrap_or_else(|e| die(e));
        let machine = merge_suite("Machine", &machine_problems, &config, &payloads)
            .unwrap_or_else(|e| die(e));
        eprintln!("Table 2: merged {count} shards");
        finish(&scale, &human, &machine);
        return;
    }
    if let Some(shard) = scale.shard {
        eprintln!(
            "Table 2 shard {shard}: pass@k on VerilogEval (n = {} samples/problem, stripe only)",
            config.samples
        );
        let (human_counts, human_stats) =
            evaluate_suite_counts(&human_problems, &config, shard);
        let (machine_counts, machine_stats) =
            evaluate_suite_counts(&machine_problems, &config, shard);
        let payload = serde_json::json!({
            "quick": scale.quick,
            "Human": suite_json(&human_counts, human_stats),
            "Machine": suite_json(&machine_counts, machine_stats),
        });
        let path = rtlfixer_bench::shards::write_fragment("table2", shard, payload);
        let mut stats = human_stats;
        stats.accumulate(&machine_stats);
        record_run(&format!("table2.shard{}of{}", shard.index, shard.count), scale.jobs, &stats);
        println!(
            "wrote fragment {} ({} episodes in {:.2}s)",
            path.display(),
            stats.episodes,
            stats.seconds
        );
        return;
    }
    eprintln!(
        "Table 2: pass@k on VerilogEval (n = {} samples/problem{})",
        config.samples,
        config.max_problems.map_or(String::new(), |c| format!(", first {c} problems"))
    );
    let human = evaluate_suite("Human", &human_problems, &config);
    let machine = evaluate_suite("Machine", &machine_problems, &config);
    finish(&scale, &human, &machine);
}
