//! Reproduces the §5 preliminary study: simulation-error debugging with
//! waveform-style feedback helps on simple problems but not on hard ones.
//!
//! Run with `cargo run --release -p rtlfixer-bench --bin section5`.

use rtlfixer_bench::{render_table, RunScale};
use rtlfixer_eval::sim_debug::sim_debug_study_timed;

fn main() {
    let scale = RunScale::from_args();
    let problems = rtlfixer_dataset::verilog_eval_human();
    let problems: Vec<_> = if scale.quick {
        problems.into_iter().step_by(4).collect()
    } else {
        problems
    };
    eprintln!("Section 5 study: logic-error debugging over {} problems", problems.len());
    let (rows, stats) = sim_debug_study_timed(&problems, 11, scale.jobs);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let rate = if r.attempted == 0 {
                0.0
            } else {
                r.repaired as f64 / r.attempted as f64
            };
            vec![
                r.set.clone(),
                r.attempted.to_string(),
                r.repaired.to_string(),
                format!("{rate:.3}"),
            ]
        })
        .collect();
    println!("{}", render_table(&["set", "attempted", "repaired", "repair rate"], &table));
    println!(
        "Paper §5: \"only exhibited proficiency in fixing logic implementation errors for \
         simple problems but struggled with more complex questions.\""
    );
    rtlfixer_bench::record_run("section5", scale.jobs, &stats);
}
