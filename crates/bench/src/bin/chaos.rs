//! Chaos sweep (DESIGN.md §3d): fix rate and revision cost versus injected
//! fault rate, across ReAct / One-shot × RAG on/off, demonstrating that the
//! resilient transport degrades gracefully instead of falling off a cliff.
//!
//! Run with `cargo run --release -p rtlfixer-bench --bin chaos`
//! (add `--quick` for a scaled-down smoke run). The sweep always carries
//! its fault specs explicitly, so it neither reads nor disturbs the
//! process-wide `RTLFIXER_FAULTS` setting. One deliberately panicking
//! probe episode exercises the pool's failure containment; it is reported
//! in the `failed` column of the first row.

use rtlfixer_bench::{fmt3, record_run, render_table, RunScale};
use rtlfixer_eval::experiments::chaos::{chaos, ChaosConfig};
use rtlfixer_eval::experiments::table1::FixRateConfig;

fn main() {
    let scale = RunScale::from_args();
    let fix = if scale.quick {
        FixRateConfig { max_entries: Some(24), repeats: 2, jobs: scale.jobs, ..Default::default() }
    } else {
        FixRateConfig { max_entries: Some(100), repeats: 5, jobs: scale.jobs, ..Default::default() }
    };
    let config = ChaosConfig { fix, panic_probe: true, ..ChaosConfig::default() };
    eprintln!(
        "Chaos sweep: fix rate vs fault rate ({} entries x {} repeats, {} variants x {} rates)",
        config.fix.max_entries.map_or(212, |c| c),
        config.fix.repeats,
        rtlfixer_eval::experiments::chaos::VARIANTS.len(),
        config.rates.len(),
    );
    let cells = chaos(&config);
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|cell| {
            vec![
                cell.strategy.clone(),
                if cell.rag { "w/" } else { "w/o" }.to_owned(),
                format!("{:.0}%", cell.fault_rate * 100.0),
                fmt3(cell.fix_rate),
                format!("{:.2}", cell.mean_revisions),
                cell.degraded_episodes.to_string(),
                cell.fault_events.to_string(),
                cell.failed_episodes.to_string(),
                format!("{:.2}", cell.stats.seconds),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Prompt", "RAG", "faults", "fix rate", "revs", "degraded", "events", "failed",
                "secs",
            ],
            &rows
        )
    );
    let episodes: usize = cells.iter().map(|c| c.stats.episodes).sum();
    let seconds: f64 = cells.iter().map(|c| c.stats.seconds).sum();
    let failed: usize = cells.iter().map(|c| c.failed_episodes).sum();
    let stats = rtlfixer_eval::RunStats {
        episodes,
        seconds,
        episodes_per_sec: if seconds > 0.0 { episodes as f64 / seconds } else { 0.0 },
        failed_episodes: failed,
        scheduler: None,
    };
    record_run("chaos", scale.jobs, &stats);
    println!("{}", serde_json::to_string_pretty(&cells).expect("serialises"));
}
