//! # rtlfixer-bench
//!
//! The benchmark harness regenerating every table and figure of the paper
//! (see DESIGN.md §3 for the experiment index):
//!
//! | Binary      | Reproduces |
//! |-------------|-----------|
//! | `table1`    | Table 1 — fix rate grid on VerilogEval-syntax |
//! | `table2`    | Table 2 — pass@{1,5} before/after fixing |
//! | `table3`    | Table 3 — RTLLM generalisation |
//! | `figure4`   | Figure 4 — outcome shares before/after fixing |
//! | `figure7`   | Figure 7 — ReAct iteration histogram |
//! | `stats55`   | §4.2 — the "55% of errors are syntax" statistic |
//! | `ablations` | DESIGN.md ablations (retriever, budget, pre-fixer, DB size) |
//!
//! Each binary accepts `--quick` for a scaled-down run and prints
//! paper-vs-measured rows; full-scale outputs are recorded in
//! `EXPERIMENTS.md`. The `benches/` directory holds Criterion benchmarks of
//! the component layers (lexer, parser, simulator, retrieval, agent loop)
//! and per-experiment harness benchmarks.

#![warn(missing_docs)]

/// Formats a ratio with three decimals (`0.985`).
pub fn fmt3(value: f64) -> String {
    format!("{value:.3}")
}

/// Renders a simple aligned markdown-ish table: header plus rows.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (cell, width) in cells.iter().zip(widths) {
            line.push_str(&format!(" {cell:width$} |"));
        }
        line
    };
    let mut out = String::new();
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    let mut sep = String::from("|");
    for width in &widths {
        sep.push_str(&"-".repeat(width + 2));
        sep.push('|');
    }
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Common CLI flags shared by the reproduction binaries.
#[derive(Debug, Clone, Copy)]
pub struct RunScale {
    /// Scaled-down run (for smoke tests / CI).
    pub quick: bool,
}

impl RunScale {
    /// Reads `--quick` from the process arguments.
    pub fn from_args() -> Self {
        RunScale { quick: std::env::args().any(|a| a == "--quick") }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let out = render_table(
            &["name", "value"],
            &[vec!["alpha".into(), "1".into()], vec!["b".into(), "100".into()]],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn fmt3_rounds() {
        assert_eq!(fmt3(0.98549), "0.985");
    }
}
