//! # rtlfixer-bench
//!
//! The benchmark harness regenerating every table and figure of the paper
//! (see DESIGN.md §3 for the experiment index):
//!
//! | Binary      | Reproduces |
//! |-------------|-----------|
//! | `table1`    | Table 1 — fix rate grid on VerilogEval-syntax |
//! | `table2`    | Table 2 — pass@{1,5} before/after fixing |
//! | `table3`    | Table 3 — RTLLM generalisation |
//! | `figure4`   | Figure 4 — outcome shares before/after fixing |
//! | `figure7`   | Figure 7 — ReAct iteration histogram |
//! | `stats55`   | §4.2 — the "55% of errors are syntax" statistic |
//! | `ablations` | DESIGN.md ablations (retriever, budget, pre-fixer, DB size) |
//! | `chaos`     | DESIGN.md §3d — fix rate vs injected fault rate sweep |
//!
//! Each binary accepts `--quick` for a scaled-down run, `--jobs N` for
//! the episode pool width and `--telemetry` to record aggregated spans /
//! counters / histograms next to throughput; all print paper-vs-measured
//! rows and full-scale outputs are recorded in `EXPERIMENTS.md`. The `benches/` directory holds Criterion benchmarks of
//! the component layers (lexer, parser, simulator, retrieval, agent loop)
//! and per-experiment harness benchmarks.

#![warn(missing_docs)]

pub mod shards;
pub mod simdesigns;

/// Formats a ratio with three decimals (`0.985`).
pub fn fmt3(value: f64) -> String {
    format!("{value:.3}")
}

/// Renders a simple aligned markdown-ish table: header plus rows.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (cell, width) in cells.iter().zip(widths) {
            line.push_str(&format!(" {cell:width$} |"));
        }
        line
    };
    let mut out = String::new();
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    let mut sep = String::from("|");
    for width in &widths {
        sep.push_str(&"-".repeat(width + 2));
        sep.push('|');
    }
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Common CLI flags shared by the reproduction binaries.
#[derive(Debug, Clone, Copy)]
pub struct RunScale {
    /// Scaled-down run (for smoke tests / CI).
    pub quick: bool,
    /// Worker threads for episode execution (`0` = available parallelism).
    /// Results are identical for every value (see `rtlfixer_eval::runner`).
    pub jobs: usize,
    /// Aggregate in-memory telemetry (spans, counters, histograms) and
    /// record it alongside throughput in `results/bench_eval.json`.
    /// Telemetry is out-of-band: measured results are bit-identical with
    /// the flag on or off.
    pub telemetry: bool,
    /// Deterministic grid partition to run (`--shard i/n`): execute only
    /// the stripe of spec indices with `index % n == i` and write the raw
    /// verdicts as a fragment under `<results_dir>/shards/` instead of a
    /// full run. `None` = the whole grid.
    pub shard: Option<rtlfixer_eval::Shard>,
    /// The `merge-shards <n>` subcommand: skip execution, read the `n`
    /// fragments back and reassemble output byte-identical to an unsharded
    /// run.
    pub merge_shards: Option<usize>,
}

impl RunScale {
    /// Reads `--quick`, `--jobs N` (or `--jobs=N`), `--telemetry`,
    /// `--shard i/n` and the `merge-shards <n>` subcommand from the
    /// process arguments, and switches the process-wide telemetry registry
    /// on when `--telemetry` is present. `--jobs` defaults to `0`, meaning
    /// "use the machine's available parallelism". Invalid shard arguments
    /// exit with status 2 and a message on stderr.
    pub fn from_args() -> Self {
        let scale = Self::parse_args(std::env::args().skip(1)).unwrap_or_else(|message| {
            eprintln!("error: {message}");
            std::process::exit(2);
        });
        if scale.telemetry {
            rtlfixer_obs::set_telemetry(true);
        }
        scale
    }

    /// Argument parsing, separated from `std::env` (and from the
    /// process-wide telemetry switch) for testability.
    pub fn parse_args(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut scale =
            RunScale { quick: false, jobs: 0, telemetry: false, shard: None, merge_shards: None };
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            if arg == "--quick" {
                scale.quick = true;
            } else if arg == "--telemetry" {
                scale.telemetry = true;
            } else if arg == "--jobs" {
                if let Some(value) = args.next() {
                    scale.jobs = value.parse().unwrap_or(0);
                }
            } else if let Some(value) = arg.strip_prefix("--jobs=") {
                scale.jobs = value.parse().unwrap_or(0);
            } else if arg == "--shard" {
                let value = args.next().ok_or("--shard expects i/n (e.g. 0/2)")?;
                scale.shard = Some(rtlfixer_eval::Shard::parse(&value)?);
            } else if let Some(value) = arg.strip_prefix("--shard=") {
                scale.shard = Some(rtlfixer_eval::Shard::parse(value)?);
            } else if arg == "merge-shards" {
                let value = args.next().ok_or("merge-shards expects a shard count")?;
                let count: usize = value
                    .parse()
                    .map_err(|_| format!("merge-shards count is not a number: `{value}`"))?;
                if count == 0 {
                    return Err("merge-shards expects a shard count >= 1".to_owned());
                }
                scale.merge_shards = Some(count);
            }
        }
        if scale.shard.is_some() && scale.merge_shards.is_some() {
            return Err("--shard and merge-shards are mutually exclusive".to_owned());
        }
        Ok(scale)
    }
}

/// Exits with status 1 after printing a merge/fragment error — the shared
/// failure path of the binaries' `merge-shards` mode.
pub fn die(message: String) -> ! {
    eprintln!("error: {message}");
    std::process::exit(1);
}

/// Renders the telemetry registry snapshot as the `"telemetry"` block of
/// a `bench_eval.json` entry: every counter, per-span latency summaries
/// (p50/p95/mean over the log₂ histograms), revisions-per-error-category
/// and per-cache hit ratios.
fn telemetry_json() -> serde_json::Value {
    use std::collections::BTreeMap;
    let snap = rtlfixer_obs::snapshot();
    let mut spans: BTreeMap<String, serde_json::Value> = BTreeMap::new();
    for (name, hist) in &snap.hists {
        let Some(kind) = name.strip_prefix("span.").and_then(|s| s.strip_suffix(".us"))
        else {
            continue;
        };
        spans.insert(
            kind.to_owned(),
            serde_json::json!({
                "count": hist.count(),
                "p50_us": hist.percentile(0.50),
                "p95_us": hist.percentile(0.95),
                "mean_us": hist.mean(),
            }),
        );
    }
    let revisions: BTreeMap<String, u64> = snap
        .counters
        .iter()
        .filter_map(|(k, v)| {
            k.strip_prefix("agent.revisions.by_category.").map(|slug| (slug.to_owned(), *v))
        })
        .collect();
    let caches = rtlfixer_eval::cache_report();
    let cache_hit_ratio = serde_json::json!({
        "analyses": caches.analyses.hit_rate,
        "outcomes": caches.outcomes.hit_rate,
        "designs": caches.designs.hit_rate,
    });
    serde_json::json!({
        "counters": snap.counters,
        "spans": spans,
        "revisions_by_category": revisions,
        "cache_hit_ratio": cache_hit_ratio,
    })
}

/// Records one experiment's throughput into `results/bench_eval.json`.
///
/// The file is a JSON object keyed by experiment name; each call
/// merge-writes its entry so the binaries can run in any order or subset.
/// Each entry carries the wall-clock stats plus a snapshot of the
/// process-wide artifact caches (analysis / compile-outcome / elaborated
/// design hits and misses) and of the fault-injection counters
/// (injected / recovered / exhausted per kind), so throughput numbers are
/// interpretable next to the cache and fault behaviour that produced them.
///
/// With `--telemetry` (see [`RunScale`]) the entry additionally carries a
/// `"telemetry"` block: every registry counter, p50/p95/mean span
/// latencies, revisions-per-error-category and per-cache hit ratios.
///
/// Environment overrides:
/// * `RTLFIXER_RESULTS_DIR` — output directory (used by tests).
/// * `RTLFIXER_RECORD_AS` — record under this key instead of `experiment`
///   (used for A/B runs of one binary, e.g. cache on vs off).
pub fn record_run(experiment: &str, jobs: usize, stats: &rtlfixer_eval::RunStats) {
    record_run_with(experiment, jobs, stats, &[]);
}

/// [`record_run`] plus experiment-specific keys merged into the entry.
///
/// Each `(key, value)` pair in `extra` is inserted alongside the standard
/// throughput/cache/fault fields (`simbench` uses this to attach per-design
/// cycles/sec for both kernel backends and the tape compiler statistics).
pub fn record_run_with(
    experiment: &str,
    jobs: usize,
    stats: &rtlfixer_eval::RunStats,
    extra: &[(&str, serde_json::Value)],
) {
    let dir = std::env::var("RTLFIXER_RESULTS_DIR").unwrap_or_else(|_| "results".to_owned());
    let key = std::env::var("RTLFIXER_RECORD_AS").unwrap_or_else(|_| experiment.to_owned());
    let path = std::path::Path::new(&dir).join("bench_eval.json");
    let mut root = std::fs::read_to_string(&path)
        .ok()
        .and_then(|text| serde_json::from_str::<serde_json::Value>(&text).ok())
        .unwrap_or_else(|| serde_json::json!({}));
    if !root.is_object() {
        root = serde_json::json!({});
    }
    let caches = serde_json::Value::from_serialize(&rtlfixer_eval::cache_report());
    let faults = serde_json::Value::from_serialize(&rtlfixer_faults::fault_report());
    let mut entry = serde_json::json!({
        "jobs": rtlfixer_eval::resolve_jobs(jobs),
        "episodes": stats.episodes,
        "failed_episodes": stats.failed_episodes,
        "wall_seconds": stats.seconds,
        "episodes_per_sec": stats.episodes_per_sec,
        "caches": caches,
        "faults": faults,
    });
    // Scheduler metadata: the run's own stats if it went through the
    // planner, else the process-wide report (experiments that fold cells
    // publish their merged stats there).
    if let Some(scheduler) = stats.scheduler.or_else(rtlfixer_eval::scheduler_report) {
        if let Some(mut map) = entry.as_object_mut() {
            map.insert("scheduler".to_owned(), serde_json::Value::from_serialize(&scheduler));
        }
    }
    if rtlfixer_obs::telemetry_enabled() {
        if let Some(mut map) = entry.as_object_mut() {
            map.insert("telemetry".to_owned(), telemetry_json());
        }
    }
    if let Some(mut map) = entry.as_object_mut() {
        for (k, v) in extra {
            map.insert((*k).to_owned(), v.clone());
        }
    }
    if let Some(mut map) = root.as_object_mut() {
        map.insert(key, entry);
    }
    if std::fs::create_dir_all(&dir).is_err() {
        return; // read-only checkout: recording throughput is best-effort
    }
    let text = serde_json::to_string_pretty(&root).expect("serialises");
    let _ = std::fs::write(&path, text + "\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let out = render_table(
            &["name", "value"],
            &[vec!["alpha".into(), "1".into()], vec!["b".into(), "100".into()]],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn fmt3_rounds() {
        assert_eq!(fmt3(0.98549), "0.985");
    }

    #[test]
    fn run_scale_parses_jobs() {
        let args = |list: &[&str]| list.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let scale = RunScale::parse_args(args(&["--quick", "--jobs", "4"])).unwrap();
        assert!(scale.quick);
        assert_eq!(scale.jobs, 4);
        assert!(!scale.telemetry);
        let scale = RunScale::parse_args(args(&["--jobs=2"])).unwrap();
        assert!(!scale.quick);
        assert_eq!(scale.jobs, 2);
        let scale = RunScale::parse_args(args(&[])).unwrap();
        assert_eq!(scale.jobs, 0);
        assert_eq!(scale.shard, None);
        assert_eq!(scale.merge_shards, None);
    }

    #[test]
    fn run_scale_parses_telemetry_without_switching_it_on() {
        // `parse_args` is pure: only `from_args` flips the process-wide
        // registry, so tests can parse flags without global effects.
        let scale = RunScale::parse_args(["--telemetry".to_owned()]).unwrap();
        assert!(scale.telemetry);
        assert!(!rtlfixer_obs::telemetry_enabled());
    }

    #[test]
    fn run_scale_parses_shard_and_merge() {
        let args = |list: &[&str]| list.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let scale = RunScale::parse_args(args(&["--shard", "1/4", "--quick"])).unwrap();
        assert_eq!(scale.shard, Some(rtlfixer_eval::Shard { index: 1, count: 4 }));
        let scale = RunScale::parse_args(args(&["--shard=0/2"])).unwrap();
        assert_eq!(scale.shard, Some(rtlfixer_eval::Shard { index: 0, count: 2 }));
        let scale = RunScale::parse_args(args(&["merge-shards", "2"])).unwrap();
        assert_eq!(scale.merge_shards, Some(2));
        // Rejections: i >= n, n = 0, malformed, zero merge count, both modes.
        for bad in
            [&["--shard", "2/2"][..], &["--shard", "0/0"], &["--shard", "x"], &["--shard"]]
        {
            assert!(RunScale::parse_args(args(bad)).is_err(), "{bad:?}");
        }
        assert!(RunScale::parse_args(args(&["merge-shards", "0"])).is_err());
        assert!(RunScale::parse_args(args(&["merge-shards", "x"])).is_err());
        assert!(RunScale::parse_args(args(&["--shard", "0/2", "merge-shards", "2"])).is_err());
    }
}
