//! # rtlfixer-bench
//!
//! The benchmark harness regenerating every table and figure of the paper
//! (see DESIGN.md §3 for the experiment index):
//!
//! | Binary      | Reproduces |
//! |-------------|-----------|
//! | `table1`    | Table 1 — fix rate grid on VerilogEval-syntax |
//! | `table2`    | Table 2 — pass@{1,5} before/after fixing |
//! | `table3`    | Table 3 — RTLLM generalisation |
//! | `figure4`   | Figure 4 — outcome shares before/after fixing |
//! | `figure7`   | Figure 7 — ReAct iteration histogram |
//! | `stats55`   | §4.2 — the "55% of errors are syntax" statistic |
//! | `ablations` | DESIGN.md ablations (retriever, budget, pre-fixer, DB size) |
//! | `chaos`     | DESIGN.md §3d — fix rate vs injected fault rate sweep |
//!
//! Each binary accepts `--quick` for a scaled-down run and prints
//! paper-vs-measured rows; full-scale outputs are recorded in
//! `EXPERIMENTS.md`. The `benches/` directory holds Criterion benchmarks of
//! the component layers (lexer, parser, simulator, retrieval, agent loop)
//! and per-experiment harness benchmarks.

#![warn(missing_docs)]

/// Formats a ratio with three decimals (`0.985`).
pub fn fmt3(value: f64) -> String {
    format!("{value:.3}")
}

/// Renders a simple aligned markdown-ish table: header plus rows.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (cell, width) in cells.iter().zip(widths) {
            line.push_str(&format!(" {cell:width$} |"));
        }
        line
    };
    let mut out = String::new();
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    let mut sep = String::from("|");
    for width in &widths {
        sep.push_str(&"-".repeat(width + 2));
        sep.push('|');
    }
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Common CLI flags shared by the reproduction binaries.
#[derive(Debug, Clone, Copy)]
pub struct RunScale {
    /// Scaled-down run (for smoke tests / CI).
    pub quick: bool,
    /// Worker threads for episode execution (`0` = available parallelism).
    /// Results are identical for every value (see `rtlfixer_eval::runner`).
    pub jobs: usize,
}

impl RunScale {
    /// Reads `--quick` and `--jobs N` (or `--jobs=N`) from the process
    /// arguments. `--jobs` defaults to `0`, meaning "use the machine's
    /// available parallelism".
    pub fn from_args() -> Self {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Argument parsing, separated from `std::env` for testability.
    pub fn from_iter(args: impl IntoIterator<Item = String>) -> Self {
        let mut scale = RunScale { quick: false, jobs: 0 };
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            if arg == "--quick" {
                scale.quick = true;
            } else if arg == "--jobs" {
                if let Some(value) = args.next() {
                    scale.jobs = value.parse().unwrap_or(0);
                }
            } else if let Some(value) = arg.strip_prefix("--jobs=") {
                scale.jobs = value.parse().unwrap_or(0);
            }
        }
        scale
    }
}

/// Records one experiment's throughput into `results/bench_eval.json`.
///
/// The file is a JSON object keyed by experiment name; each call
/// merge-writes its entry so the binaries can run in any order or subset.
/// Each entry carries the wall-clock stats plus a snapshot of the
/// process-wide artifact caches (analysis / compile-outcome / elaborated
/// design hits and misses) and of the fault-injection counters
/// (injected / recovered / exhausted per kind), so throughput numbers are
/// interpretable next to the cache and fault behaviour that produced them.
///
/// Environment overrides:
/// * `RTLFIXER_RESULTS_DIR` — output directory (used by tests).
/// * `RTLFIXER_RECORD_AS` — record under this key instead of `experiment`
///   (used for A/B runs of one binary, e.g. cache on vs off).
pub fn record_run(experiment: &str, jobs: usize, stats: &rtlfixer_eval::RunStats) {
    let dir = std::env::var("RTLFIXER_RESULTS_DIR").unwrap_or_else(|_| "results".to_owned());
    let key = std::env::var("RTLFIXER_RECORD_AS").unwrap_or_else(|_| experiment.to_owned());
    let path = std::path::Path::new(&dir).join("bench_eval.json");
    let mut root = std::fs::read_to_string(&path)
        .ok()
        .and_then(|text| serde_json::from_str::<serde_json::Value>(&text).ok())
        .unwrap_or_else(|| serde_json::json!({}));
    if !root.is_object() {
        root = serde_json::json!({});
    }
    let caches = serde_json::Value::from_serialize(&rtlfixer_eval::cache_report());
    let faults = serde_json::Value::from_serialize(&rtlfixer_faults::fault_report());
    let entry = serde_json::json!({
        "jobs": rtlfixer_eval::resolve_jobs(jobs),
        "episodes": stats.episodes,
        "failed_episodes": stats.failed_episodes,
        "wall_seconds": stats.seconds,
        "episodes_per_sec": stats.episodes_per_sec,
        "caches": caches,
        "faults": faults,
    });
    if let Some(mut map) = root.as_object_mut() {
        map.insert(key, entry);
    }
    if std::fs::create_dir_all(&dir).is_err() {
        return; // read-only checkout: recording throughput is best-effort
    }
    let text = serde_json::to_string_pretty(&root).expect("serialises");
    let _ = std::fs::write(&path, text + "\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let out = render_table(
            &["name", "value"],
            &[vec!["alpha".into(), "1".into()], vec!["b".into(), "100".into()]],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn fmt3_rounds() {
        assert_eq!(fmt3(0.98549), "0.985");
    }

    #[test]
    fn run_scale_parses_jobs() {
        let args = |list: &[&str]| list.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let scale = RunScale::from_iter(args(&["--quick", "--jobs", "4"]));
        assert!(scale.quick);
        assert_eq!(scale.jobs, 4);
        let scale = RunScale::from_iter(args(&["--jobs=2"]));
        assert!(!scale.quick);
        assert_eq!(scale.jobs, 2);
        let scale = RunScale::from_iter(args(&[]));
        assert_eq!(scale.jobs, 0);
    }
}
