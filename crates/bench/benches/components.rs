//! Criterion benchmarks of the component layers: frontend, simulator,
//! retrieval, repair operators and the full agent loop.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rtlfixer_agent::{RtlFixerBuilder, Strategy};
use rtlfixer_bench::simdesigns::SIM_DESIGNS;
use rtlfixer_compilers::CompilerKind;
use rtlfixer_llm::{Capability, SimulatedLlm};
use rtlfixer_rag::text::TfIdfIndex;
use rtlfixer_rag::{
    tfidf_corpus, DefaultRetriever, GuidanceDatabase, RetrievalQuery, Retriever, TfIdfRetriever,
};
use rtlfixer_sim::{value::LogicVec, Simulator};

const COUNTER: &str = "module ctr(input clk, input reset, output reg [7:0] q);\n\
                       always @(posedge clk) begin\n\
                       if (reset) q <= 0; else q <= q + 1;\nend\nendmodule";

const BROKEN: &str = "module m(input [7:0] in, output reg [7:0] out);\n\
                      always @(posedge clk) out <= in;\nendmodule";

fn bench_frontend(c: &mut Criterion) {
    let source = rtlfixer_dataset::suites::find_problem("rtllm/conwaylife")
        .expect("problem exists")
        .solution;
    c.bench_function("lexer/conwaylife", |b| {
        b.iter(|| rtlfixer_verilog::lexer::lex(black_box(&source)))
    });
    c.bench_function("parser/conwaylife", |b| {
        b.iter(|| rtlfixer_verilog::parser::parse(black_box(&source)))
    });
    c.bench_function("compile/counter", |b| {
        b.iter(|| rtlfixer_verilog::compile(black_box(COUNTER)))
    });
    c.bench_function("compile/broken", |b| {
        b.iter(|| rtlfixer_verilog::compile(black_box(BROKEN)))
    });
}

fn bench_compilers(c: &mut Criterion) {
    for kind in CompilerKind::ALL {
        let compiler = kind.build();
        c.bench_function(&format!("compiler_log/{kind}"), |b| {
            b.iter(|| compiler.compile(black_box(BROKEN), "main.sv"))
        });
    }
}

fn bench_simulator(c: &mut Criterion) {
    let analysis = rtlfixer_verilog::compile(COUNTER);
    c.bench_function("sim/counter_64_cycles", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&analysis, "ctr").expect("elaborates");
            sim.poke("reset", LogicVec::from_u64(1, 1)).expect("port");
            sim.clock_cycle("clk").expect("cycle");
            sim.poke("reset", LogicVec::from_u64(1, 0)).expect("port");
            for _ in 0..64 {
                sim.clock_cycle("clk").expect("cycle");
            }
            black_box(sim.peek("q"))
        })
    });
    let conway = rtlfixer_dataset::suites::find_problem("rtllm/conwaylife").expect("exists");
    let conway_analysis = rtlfixer_verilog::compile(&conway.solution);
    c.bench_function("sim/conway_elaborate", |b| {
        b.iter(|| Simulator::new(black_box(&conway_analysis), "top_module"))
    });

    // Steady-state per-cycle throughput on the shared design set (see
    // `rtlfixer_bench::simdesigns`). Each design is measured twice in the
    // same process: `sim/cycle_*` forces the tree-walking event kernel
    // (comparable to the pre-tape history of these benchmark names) and
    // `sim/tape_*` forces the compiled register-bytecode tape. The
    // simulator is built once per pair; each iteration is exactly one cycle.
    for design in SIM_DESIGNS {
        rtlfixer_sim::force_sim_backends(None, Some(false));
        let mut sim = design.build();
        let mut i = 0u64;
        c.bench_function(&format!("sim/cycle_{}", design.name), |b| {
            b.iter(|| {
                i = i.wrapping_add(1);
                (design.step)(&mut sim, i);
                black_box(sim.peek(design.watch))
            })
        });
        rtlfixer_sim::force_sim_backends(None, Some(true));
        let mut sim = design.build();
        let mut i = 0u64;
        c.bench_function(&format!("sim/tape_{}", design.name), |b| {
            b.iter(|| {
                i = i.wrapping_add(1);
                (design.step)(&mut sim, i);
                black_box(sim.peek(design.watch))
            })
        });
        // Threaded-dispatch A/B on the compute-dense designs: `sim/tape_*`
        // above runs the default closure-threaded dispatcher, this pins
        // the interpreted dispatch loop for the same tape. Short tapes are
        // dispatch-trivial either way, so the pair is only measured where
        // the opcode loop dominates.
        if design.name.starts_with("crc16") {
            rtlfixer_sim::force_sim_threaded(Some(false));
            let mut sim = design.build();
            let mut i = 0u64;
            c.bench_function(&format!("sim/tape_interp_{}", design.name), |b| {
                b.iter(|| {
                    i = i.wrapping_add(1);
                    (design.step)(&mut sim, i);
                    black_box(sim.peek(design.watch))
                })
            });
            rtlfixer_sim::force_sim_threaded(None);
        }
        rtlfixer_sim::force_sim_backends(None, None);
    }

    // Bit-parallel multi-seed sweep A/B on the lane-eligible CRC: one
    // 16-seed `run_testbench_seeds` call against 16 solo `run_testbench`
    // runs over identical stimulus (null reference models, so the numbers
    // isolate the engines). Each iteration is a full 256-cycle testbench.
    let flat = SIM_DESIGNS.iter().find(|d| d.name == "crc16_flat").expect("design set");
    let analysis = rtlfixer_verilog::compile(flat.source);
    let ports = vec![("d".to_owned(), 8u32)];
    let clocking = rtlfixer_sim::Clocking::Sequential { clock: "clk".into() };
    let stimuli: Vec<_> = (1..=16u64)
        .map(|seed| rtlfixer_sim::testbench::random_stimuli(&ports, 256, seed))
        .collect();
    let null_model = || -> Box<dyn rtlfixer_sim::ReferenceModel> {
        Box::new(|_: &std::collections::BTreeMap<String, LogicVec>| {
            std::collections::BTreeMap::<String, LogicVec>::new()
        })
    };
    c.bench_function("sim/seeds16_packed_crc16_flat", |b| {
        b.iter(|| {
            let mut models: Vec<Box<dyn rtlfixer_sim::ReferenceModel>> =
                (0..16).map(|_| null_model()).collect();
            black_box(rtlfixer_sim::run_testbench_seeds(
                black_box(&analysis),
                flat.module,
                &mut models,
                &stimuli,
                &clocking,
            ))
        })
    });
    c.bench_function("sim/seeds16_scalar_crc16_flat", |b| {
        b.iter(|| {
            for stim in &stimuli {
                let mut model = null_model();
                black_box(
                    rtlfixer_sim::run_testbench(
                        black_box(&analysis),
                        flat.module,
                        model.as_mut(),
                        stim,
                        &clocking,
                    )
                    .expect("solo run"),
                );
            }
        })
    });
}

fn bench_retrieval(c: &mut Criterion) {
    let db = GuidanceDatabase::quartus();
    let retriever = DefaultRetriever::new();
    let query = RetrievalQuery::from_log(
        "Error (10161): Verilog HDL error at main.sv(2): object \"clk\" is not declared.",
    );
    c.bench_function("rag/exact_tag_retrieve", |b| {
        b.iter(|| retriever.retrieve(black_box(&db), black_box(&query)))
    });
    let iv_db = GuidanceDatabase::iverilog();
    let iv_query =
        RetrievalQuery::from_log("main.v:2: error: Unable to bind wire/reg/memory 'clk'");
    c.bench_function("rag/jaccard_fallback", |b| {
        b.iter(|| retriever.retrieve(black_box(&iv_db), black_box(&iv_query)))
    });

    // Before/after datapoint for the shared-index cache: the old
    // TfIdfRetriever rebuilt the index on every retrieve; the cached path
    // looks it up by database fingerprint.
    let tfidf = TfIdfRetriever::new();
    let tfidf_query = RetrievalQuery::from_log(
        "Error (10170): Verilog HDL syntax error at main.sv(3) near text \"endmodule\"",
    );
    c.bench_function("rag/tfidf_cold_index_per_call", |b| {
        b.iter(|| {
            let index = TfIdfIndex::new(&tfidf_corpus(black_box(&db)));
            black_box(index.top_k(&tfidf_query.log, tfidf.top_k))
        })
    });
    // Warm the cache outside the timed loop, as a retrieval-heavy run does.
    let _ = tfidf.retrieve(&db, &tfidf_query);
    c.bench_function("rag/tfidf_cached_index", |b| {
        b.iter(|| tfidf.retrieve(black_box(&db), black_box(&tfidf_query)))
    });
}

fn bench_artifact_cache(c: &mut Criterion) {
    // The cold/cached pairs below are the before/after datapoints for the
    // content-addressed artifact caches: cold = the full computation the
    // episode pool used to repeat, cached = the fingerprint lookup it does
    // now when a candidate source recurs.
    rtlfixer_cache::set_enabled(true);
    let source = rtlfixer_dataset::suites::find_problem("rtllm/conwaylife")
        .expect("problem exists")
        .solution;

    // Analysis cache: full frontend pass vs content-addressed lookup.
    c.bench_function("cache/compile_cold", |b| {
        b.iter(|| rtlfixer_verilog::compile(black_box(&source)))
    });
    let _ = rtlfixer_verilog::compile_shared(&source);
    c.bench_function("cache/compile_cached", |b| {
        b.iter(|| rtlfixer_verilog::compile_shared(black_box(&source)))
    });

    // Outcome cache: personality log render vs lookup.
    let quartus = CompilerKind::Quartus.build();
    c.bench_function("cache/outcome_cold", |b| {
        b.iter(|| quartus.compile(black_box(BROKEN), "main.sv"))
    });
    let _ = quartus.compile_cached(BROKEN, "main.sv");
    c.bench_function("cache/outcome_cached", |b| {
        b.iter(|| quartus.compile_cached(black_box(BROKEN), "main.sv"))
    });

    // Design cache: elaboration vs reuse of the shared `Arc<Design>`.
    let analysis = rtlfixer_verilog::compile(&source);
    c.bench_function("cache/elaborate_cold", |b| {
        b.iter(|| rtlfixer_sim::elab::elaborate(black_box(&analysis), "top_module"))
    });
    let _ = rtlfixer_sim::elab::elaborate_shared(&analysis, "top_module");
    c.bench_function("cache/elaborate_reused", |b| {
        b.iter(|| rtlfixer_sim::elab::elaborate_shared(black_box(&analysis), "top_module"))
    });
}

fn bench_repair(c: &mut Criterion) {
    let analysis = rtlfixer_verilog::compile(BROKEN);
    let diag = analysis.errors()[0].clone();
    c.bench_function("repair/undeclared_clk", |b| {
        b.iter(|| rtlfixer_llm::repair::repair(black_box(BROKEN), &diag, &analysis))
    });
}

fn bench_agent(c: &mut Criterion) {
    c.bench_function("agent/react_episode_gpt4", |b| {
        b.iter(|| {
            let llm = SimulatedLlm::new(Capability::Gpt4Class, 7);
            let mut fixer = RtlFixerBuilder::new()
                .compiler(CompilerKind::Quartus)
                .strategy(Strategy::React { max_iterations: 10 })
                .with_rag(true)
                .build(llm);
            black_box(fixer.fix(BROKEN))
        })
    });
}

criterion_group!(
    benches,
    bench_frontend,
    bench_compilers,
    bench_simulator,
    bench_retrieval,
    bench_artifact_cache,
    bench_repair,
    bench_agent
);
criterion_main!(benches);
