//! Criterion benchmarks of the per-experiment harnesses (scaled-down: one
//! iteration already runs dozens of fixing episodes). One benchmark per
//! paper table/figure, so `cargo bench` exercises every regeneration path.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rtlfixer_agent::Strategy;
use rtlfixer_compilers::CompilerKind;
use rtlfixer_eval::experiments::figure7::figure7;
use rtlfixer_eval::experiments::table1::{load_entries, run_cell, FixRateConfig};
use rtlfixer_eval::experiments::table2::{evaluate_suite, table3, PassAtKConfig};
use rtlfixer_llm::Capability;

fn tiny_fix_config() -> FixRateConfig {
    FixRateConfig { max_entries: Some(12), repeats: 1, dataset_seed: 7, base_seed: 1, jobs: 1 }
}

fn bench_table1(c: &mut Criterion) {
    let config = tiny_fix_config();
    let entries = load_entries(&config);
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("react_quartus_rag_cell", |b| {
        b.iter(|| {
            black_box(run_cell(
                &entries,
                Strategy::React { max_iterations: 10 },
                CompilerKind::Quartus,
                true,
                Capability::Gpt35Class,
                &config,
                0,
            ))
        })
    });
    group.bench_function("one_shot_simple_cell", |b| {
        b.iter(|| {
            black_box(run_cell(
                &entries,
                Strategy::OneShot,
                CompilerKind::Simple,
                false,
                Capability::Gpt35Class,
                &config,
                1,
            ))
        })
    });
    group.finish();
}

fn bench_table2(c: &mut Criterion) {
    let problems = rtlfixer_dataset::verilog_eval_human();
    let config = PassAtKConfig { samples: 4, max_problems: Some(8), seed: 11, jobs: 1 };
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("human_subset", |b| {
        b.iter(|| black_box(evaluate_suite("Human", &problems, &config)))
    });
    group.finish();
}

fn bench_table3(c: &mut Criterion) {
    let config = PassAtKConfig { samples: 3, max_problems: Some(6), seed: 11, jobs: 1 };
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    group.bench_function("rtllm_subset", |b| b.iter(|| black_box(table3(&config))));
    group.finish();
}

fn bench_figure7(c: &mut Criterion) {
    let config = tiny_fix_config();
    let mut group = c.benchmark_group("figure7");
    group.sample_size(10);
    group.bench_function("iteration_histogram", |b| {
        b.iter(|| black_box(figure7(&config)))
    });
    group.finish();
}

fn bench_dataset(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataset");
    group.sample_size(10);
    group.bench_function("suites_build", |b| {
        b.iter(|| {
            black_box(rtlfixer_dataset::verilog_eval_human().len())
                + black_box(rtlfixer_dataset::rtllm().len())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_table2,
    bench_table3,
    bench_figure7,
    bench_dataset
);
criterion_main!(benches);
