//! Smoke tests for the reproduction binaries: a scaled-down parallel run
//! must succeed end-to-end and record its throughput artifact.

use std::path::Path;
use std::process::Command;

#[test]
fn table1_quick_parallel_smoke() {
    let results_dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("cli_smoke_results");
    let _ = std::fs::remove_dir_all(&results_dir);

    let output = Command::new(env!("CARGO_BIN_EXE_table1"))
        .args(["--quick", "--jobs", "2"])
        .env("RTLFIXER_RESULTS_DIR", &results_dir)
        .output()
        .expect("table1 binary runs");
    assert!(
        output.status.success(),
        "table1 --quick --jobs 2 failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );

    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("Prompt"), "table header missing:\n{stdout}");
    assert!(stdout.contains("eps/s"), "throughput column missing:\n{stdout}");
    // All 14 grid cells present in the JSON dump.
    assert_eq!(stdout.matches("\"fix_rate\"").count(), 14, "{stdout}");

    // The run recorded its throughput into bench_eval.json.
    let artifact = results_dir.join("bench_eval.json");
    let text = std::fs::read_to_string(&artifact).expect("bench_eval.json written");
    let json: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
    let entry = &json["table1"];
    assert_eq!(entry["jobs"].as_u64(), Some(2), "{text}");
    assert!(entry["episodes"].as_u64().unwrap_or(0) > 0, "{text}");
    assert!(entry["episodes_per_sec"].as_f64().unwrap_or(0.0) > 0.0, "{text}");
}
