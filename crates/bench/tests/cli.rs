//! Smoke tests for the reproduction binaries: a scaled-down parallel run
//! must succeed end-to-end and record its throughput artifact, and the
//! artifact caches must be invisible in the experiment outputs.

use std::path::Path;
use std::process::Command;

#[test]
fn table1_quick_parallel_smoke() {
    let results_dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("cli_smoke_results");
    let _ = std::fs::remove_dir_all(&results_dir);

    let output = Command::new(env!("CARGO_BIN_EXE_table1"))
        .args(["--quick", "--jobs", "2"])
        .env("RTLFIXER_RESULTS_DIR", &results_dir)
        .output()
        .expect("table1 binary runs");
    assert!(
        output.status.success(),
        "table1 --quick --jobs 2 failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );

    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("Prompt"), "table header missing:\n{stdout}");
    assert!(stdout.contains("eps/s"), "throughput column missing:\n{stdout}");
    // All 14 grid cells present in the JSON dump.
    assert_eq!(stdout.matches("\"fix_rate\"").count(), 14, "{stdout}");

    // The run recorded its throughput into bench_eval.json.
    let artifact = results_dir.join("bench_eval.json");
    let text = std::fs::read_to_string(&artifact).expect("bench_eval.json written");
    let json: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
    let entry = &json["table1"];
    assert_eq!(entry["jobs"].as_u64(), Some(2), "{text}");
    assert!(entry["episodes"].as_u64().unwrap_or(0) > 0, "{text}");
    assert!(entry["episodes_per_sec"].as_f64().unwrap_or(0.0) > 0.0, "{text}");
    // The entry carries the artifact-cache snapshot alongside throughput.
    assert!(
        entry["caches"]["outcomes"]["misses"].as_u64().unwrap_or(0) > 0,
        "cache counters missing: {text}"
    );
}

/// The scientific outputs of a `table1` run: every `fix_rate` line of the
/// JSON cell dump, in order. Wall-clock fields are deliberately excluded —
/// they are the only thing caching is allowed to change.
fn table1_fix_rates(cache: &str, jobs: &str, results_dir: &Path) -> Vec<String> {
    let output = Command::new(env!("CARGO_BIN_EXE_table1"))
        .args(["--quick", "--jobs", jobs])
        .env("RTLFIXER_CACHE", cache)
        .env("RTLFIXER_RESULTS_DIR", results_dir)
        .output()
        .expect("table1 binary runs");
    assert!(
        output.status.success(),
        "table1 --quick --jobs {jobs} (RTLFIXER_CACHE={cache}) failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    let rates: Vec<String> = stdout
        .lines()
        .filter(|line| line.contains("\"fix_rate\""))
        .map(str::to_owned)
        .collect();
    assert_eq!(rates.len(), 14, "expected all 14 grid cells:\n{stdout}");
    rates
}

#[test]
fn table1_outputs_invariant_to_cache_and_jobs() {
    let results_dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("cli_invariance_results");
    let _ = std::fs::remove_dir_all(&results_dir);

    // Reference semantics: cache off, serial.
    let reference = table1_fix_rates("0", "1", &results_dir);
    for (cache, jobs) in [("0", "4"), ("1", "1"), ("1", "4")] {
        assert_eq!(
            table1_fix_rates(cache, jobs, &results_dir),
            reference,
            "fix rates diverged at RTLFIXER_CACHE={cache} --jobs {jobs}"
        );
    }
}
