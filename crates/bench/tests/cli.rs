//! Smoke tests for the reproduction binaries: a scaled-down parallel run
//! must succeed end-to-end and record its throughput artifact, and the
//! artifact caches must be invisible in the experiment outputs.

use std::path::Path;
use std::process::Command;

#[test]
fn table1_quick_parallel_smoke() {
    let results_dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("cli_smoke_results");
    let _ = std::fs::remove_dir_all(&results_dir);

    let output = Command::new(env!("CARGO_BIN_EXE_table1"))
        .args(["--quick", "--jobs", "2"])
        .env("RTLFIXER_RESULTS_DIR", &results_dir)
        .output()
        .expect("table1 binary runs");
    assert!(
        output.status.success(),
        "table1 --quick --jobs 2 failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );

    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("Prompt"), "table header missing:\n{stdout}");
    assert!(stdout.contains("eps/s"), "throughput column missing:\n{stdout}");
    // All 14 grid cells present in the JSON dump.
    assert_eq!(stdout.matches("\"fix_rate\"").count(), 14, "{stdout}");

    // The run recorded its throughput into bench_eval.json.
    let artifact = results_dir.join("bench_eval.json");
    let text = std::fs::read_to_string(&artifact).expect("bench_eval.json written");
    let json: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
    let entry = &json["table1"];
    assert_eq!(entry["jobs"].as_u64(), Some(2), "{text}");
    assert!(entry["episodes"].as_u64().unwrap_or(0) > 0, "{text}");
    assert!(entry["episodes_per_sec"].as_f64().unwrap_or(0.0) > 0.0, "{text}");
    // The entry carries the artifact-cache snapshot alongside throughput.
    assert!(
        entry["caches"]["outcomes"]["misses"].as_u64().unwrap_or(0) > 0,
        "cache counters missing: {text}"
    );
    // ... and the scheduler metadata (default policy is LPT with
    // fingerprint batching, so repeats coalesce into shared batches).
    let scheduler = &entry["scheduler"];
    assert_eq!(rtlfixer_bench::shards::as_str(&scheduler["policy"]), Some("lpt"), "{text}");
    assert!(scheduler["batches"].as_u64().unwrap_or(0) > 0, "{text}");
    assert!(scheduler["coalesced"].as_u64().unwrap_or(0) > 0, "{text}");
    assert!(scheduler["rank_correlation"].as_f64().is_some(), "{text}");
}

/// The scientific outputs of a `table1` run under the given environment:
/// every `fix_rate` line of the JSON cell dump, in order. Wall-clock fields
/// are deliberately excluded — they are the only thing caching is allowed
/// to change. `RTLFIXER_FAULTS` is scrubbed unless explicitly passed, so an
/// ambient spec cannot leak into the comparisons.
fn table1_fix_rates_with(jobs: &str, results_dir: &Path, envs: &[(&str, &str)]) -> Vec<String> {
    table1_fix_rates_full(jobs, results_dir, envs, &[])
}

/// [`table1_fix_rates_with`], plus extra CLI flags (e.g. `--telemetry`).
fn table1_fix_rates_full(
    jobs: &str,
    results_dir: &Path,
    envs: &[(&str, &str)],
    extra_args: &[&str],
) -> Vec<String> {
    let mut command = Command::new(env!("CARGO_BIN_EXE_table1"));
    command
        .args(["--quick", "--jobs", jobs])
        .args(extra_args)
        .env_remove("RTLFIXER_FAULTS")
        .env_remove("RTLFIXER_TRACE")
        .env("RTLFIXER_RESULTS_DIR", results_dir);
    for (key, value) in envs {
        command.env(key, value);
    }
    let output = command.output().expect("table1 binary runs");
    assert!(
        output.status.success(),
        "table1 --quick --jobs {jobs} ({envs:?}) failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    let rates: Vec<String> = stdout
        .lines()
        .filter(|line| line.contains("\"fix_rate\""))
        .map(str::to_owned)
        .collect();
    assert_eq!(rates.len(), 14, "expected all 14 grid cells:\n{stdout}");
    rates
}

fn table1_fix_rates(cache: &str, jobs: &str, results_dir: &Path) -> Vec<String> {
    table1_fix_rates_with(jobs, results_dir, &[("RTLFIXER_CACHE", cache)])
}

#[test]
fn table1_outputs_invariant_to_cache_and_jobs() {
    let results_dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("cli_invariance_results");
    let _ = std::fs::remove_dir_all(&results_dir);

    // Reference semantics: cache off, serial.
    let reference = table1_fix_rates("0", "1", &results_dir);
    for (cache, jobs) in [("0", "4"), ("1", "1"), ("1", "4")] {
        assert_eq!(
            table1_fix_rates(cache, jobs, &results_dir),
            reference,
            "fix rates diverged at RTLFIXER_CACHE={cache} --jobs {jobs}"
        );
    }
}

#[test]
fn faults_kill_switch_is_bit_identical_to_unset() {
    let results_dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("cli_faults_off_results");
    let _ = std::fs::remove_dir_all(&results_dir);

    // RTLFIXER_FAULTS unset is the reference; every spelling of "off" must
    // match it bit-for-bit, and so must a malformed spec (a typo in a
    // tuning variable disables faults, it does not change results or
    // abort the run).
    let unset = table1_fix_rates_with("2", &results_dir, &[]);
    for spec in ["off", "0", "false", "not-a-spec"] {
        assert_eq!(
            table1_fix_rates_with("2", &results_dir, &[("RTLFIXER_FAULTS", spec)]),
            unset,
            "fix rates diverged at RTLFIXER_FAULTS={spec}"
        );
    }
}

#[test]
fn faulted_outputs_are_jobs_invariant() {
    let results_dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("cli_faults_jobs_results");
    let _ = std::fs::remove_dir_all(&results_dir);

    // Fault placement derives from episode seeds, so a fixed spec is
    // bit-identical across worker counts — and visibly different from the
    // faultless run (the injection is not a no-op at 15%).
    let faults = [("RTLFIXER_FAULTS", "0.15")];
    let serial = table1_fix_rates_with("1", &results_dir, &faults);
    assert_eq!(
        table1_fix_rates_with("4", &results_dir, &faults),
        serial,
        "fix rates diverged across --jobs under RTLFIXER_FAULTS=0.15"
    );
    assert_ne!(
        table1_fix_rates_with("1", &results_dir, &[]),
        serial,
        "15% faults left every one of the 14 grid cells untouched"
    );
}

#[test]
fn chaos_quick_smoke_contains_its_panic_probe() {
    let results_dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("cli_chaos_results");
    let _ = std::fs::remove_dir_all(&results_dir);

    let output = Command::new(env!("CARGO_BIN_EXE_chaos"))
        .args(["--quick", "--jobs", "2"])
        .env_remove("RTLFIXER_FAULTS")
        .env("RTLFIXER_RESULTS_DIR", &results_dir)
        .output()
        .expect("chaos binary runs");
    assert!(
        output.status.success(),
        "chaos --quick --jobs 2 failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );

    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("fault rate") || stdout.contains("faults"), "{stdout}");

    // The JSON dump holds the full 4-variant × 5-rate sweep.
    let json_start = stdout.find('[').expect("JSON cell dump present");
    let cells: serde_json::Value =
        serde_json::from_str(&stdout[json_start..]).expect("valid cell JSON");
    let cells = cells.as_array().expect("array of cells");
    assert_eq!(cells.len(), 20, "expected 4 variants x 5 rates");

    // The deliberate panic probe is contained in the first cell and
    // reported as a failed episode; the rest of the sweep is clean.
    assert_eq!(cells[0]["failed_episodes"].as_u64(), Some(1), "{stdout}");
    assert!(cells[1..].iter().all(|c| c["failed_episodes"].as_u64() == Some(0)), "{stdout}");

    // Faulted cells report degradation activity; clean cells report none.
    for cell in cells {
        let rate = cell["fault_rate"].as_f64().expect("rate");
        let events = cell["fault_events"].as_u64().expect("events");
        if rate == 0.0 {
            assert_eq!(events, 0, "clean cell saw faults: {cell}");
        } else {
            assert!(events > 0, "faulted cell saw no faults: {cell}");
        }
    }

    // The run recorded its throughput, fault counters included.
    let text = std::fs::read_to_string(results_dir.join("bench_eval.json"))
        .expect("bench_eval.json written");
    let json: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
    let entry = &json["chaos"];
    assert!(entry["episodes"].as_u64().unwrap_or(0) > 0, "{text}");
    assert_eq!(entry["failed_episodes"].as_u64(), Some(1), "{text}");
    assert!(entry["faults"]["injected"].as_u64().unwrap_or(0) > 0, "{text}");
}

#[test]
fn telemetry_and_trace_are_out_of_band() {
    let results_dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("cli_obs_results");
    let _ = std::fs::remove_dir_all(&results_dir);
    std::fs::create_dir_all(&results_dir).expect("results dir");

    // Reference semantics: observability fully off.
    let reference = table1_fix_rates_with("1", &results_dir, &[]);

    // The explicit kill switch matches unset bit-for-bit.
    assert_eq!(table1_fix_rates_with("1", &results_dir, &[("RTLFIXER_TRACE", "0")]), reference);

    // JSONL tracing + --telemetry on, serial and parallel: the fix-rate
    // grid must stay bit-identical — observability is out-of-band.
    for jobs in ["1", "4"] {
        let trace_path = results_dir.join(format!("trace_jobs{jobs}.jsonl"));
        let trace = trace_path.to_string_lossy().into_owned();
        assert_eq!(
            table1_fix_rates_full(
                jobs,
                &results_dir,
                &[("RTLFIXER_TRACE", trace.as_str())],
                &["--telemetry"],
            ),
            reference,
            "fix rates diverged with telemetry + trace at --jobs {jobs}"
        );

        // The trace file is non-empty JSONL: every line parses and carries
        // the event tag.
        let text = std::fs::read_to_string(&trace_path).expect("trace file written");
        let lines: Vec<&str> = text.lines().collect();
        assert!(!lines.is_empty(), "trace file is empty at --jobs {jobs}");
        for line in &lines {
            let event: serde_json::Value =
                serde_json::from_str(line).unwrap_or_else(|e| panic!("bad JSONL `{line}`: {e}"));
            assert!(event.get("ev").is_some(), "missing ev tag: {line}");
        }
        // Per-episode summaries appear once per episode, independent of
        // worker count (merged in index order at the pool barrier).
        let episodes =
            lines.iter().filter(|l| l.contains("\"ev\":\"episode\"")).count();
        assert!(episodes > 0, "no episode summaries in trace at --jobs {jobs}");
    }

    // The --telemetry run recorded its aggregate block next to throughput.
    let text = std::fs::read_to_string(results_dir.join("bench_eval.json"))
        .expect("bench_eval.json written");
    let json: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
    let telemetry = &json["table1"]["telemetry"];
    assert!(
        telemetry["counters"]["agent.episodes"].as_u64().unwrap_or(0) > 0,
        "agent.episodes counter missing: {text}"
    );
    assert!(
        telemetry["spans"]["turn"]["count"].as_u64().unwrap_or(0) > 0,
        "turn span summary missing: {text}"
    );
    assert!(
        telemetry["spans"]["episode"]["p95_us"].as_u64().is_some(),
        "episode span percentiles missing: {text}"
    );
    assert!(
        telemetry["revisions_by_category"].is_object(),
        "revisions_by_category missing: {text}"
    );
}

#[test]
fn simbench_quick_smoke_records_throughput() {
    let results_dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("cli_simbench_results");
    let _ = std::fs::remove_dir_all(&results_dir);

    let output = Command::new(env!("CARGO_BIN_EXE_simbench"))
        .arg("--quick")
        .env("RTLFIXER_RESULTS_DIR", &results_dir)
        .output()
        .expect("simbench binary runs");
    assert!(
        output.status.success(),
        "simbench --quick failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );

    // Every design appears with both backend throughput columns.
    let stdout = String::from_utf8_lossy(&output.stdout);
    for design in [
        "cycle_small_comb",
        "cycle_medium_seq",
        "cycle_wide_256",
        "cycle_wide_128",
        "cycle_crc16_comb",
        "cycle_crc16_flat",
        "cycle_alu_seq",
    ] {
        assert!(stdout.contains(design), "{design} row missing:\n{stdout}");
    }
    assert!(stdout.contains("tree c/s"), "tree throughput column missing:\n{stdout}");
    assert!(stdout.contains("tape c/s"), "tape throughput column missing:\n{stdout}");
    assert!(stdout.contains("speedup"), "speedup column missing:\n{stdout}");
    assert!(stdout.contains("limbs"), "limb-class column missing:\n{stdout}");
    assert!(stdout.contains("16-seed"), "seed-sweep column missing:\n{stdout}");
    assert!(stdout.contains("lane-occ"), "lane-occupancy column missing:\n{stdout}");

    // The run recorded its aggregate cycle throughput (7 designs x 2
    // backends x 20k cycles) plus the per-design backend comparison and
    // tape compiler statistics.
    let text = std::fs::read_to_string(results_dir.join("bench_eval.json"))
        .expect("bench_eval.json written");
    let json: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
    let entry = &json["simbench"];
    assert_eq!(entry["episodes"].as_u64(), Some(280_000), "{text}");
    assert_eq!(entry["failed_episodes"].as_u64(), Some(0), "{text}");
    assert!(entry["episodes_per_sec"].as_f64().unwrap_or(0.0) > 0.0, "{text}");
    let crc = &entry["design.crc16_comb"];
    assert!(crc["tree_cycles_per_sec"].as_f64().unwrap_or(0.0) > 0.0, "{text}");
    assert!(crc["tape_cycles_per_sec"].as_f64().unwrap_or(0.0) > 0.0, "{text}");
    assert!(crc["speedup"].as_f64().unwrap_or(0.0) > 0.0, "{text}");
    // The CRC design's loop unrolls, its cone stays x-free (100% fast-path
    // hits) and the compiler reports emitted/folded/dead-eliminated ops.
    assert_eq!(crc["fast_hit_ratio"].as_f64(), Some(1.0), "{text}");
    assert!(crc["tape_ops_emitted"].as_u64().unwrap_or(0) > 0, "{text}");
    assert!(crc["tape_ops_folded"].as_u64().unwrap_or(0) > 0, "{text}");
    // The wide designs exceed the 64-bit word but stay on the multi-limb
    // two-state fast path: 4 limbs at 256 bits, 2 at 128, zero rejected
    // processes, 100% hits.
    for (design, limbs) in [("design.wide_256", 4), ("design.wide_128", 2)] {
        let wide = &entry[design];
        assert_eq!(wide["fast_hit_ratio"].as_f64(), Some(1.0), "{design}: {text}");
        assert_eq!(wide["limb_class"].as_u64(), Some(limbs), "{design}: {text}");
        assert_eq!(wide["fast_rejected_procs"].as_u64(), Some(0), "{design}: {text}");
    }
    // The branch-free CRC is lane-eligible: the 16-seed sweep runs fully
    // packed (occupancy 1.0) and finishes in less wall time than 16 solo
    // runs would (ratio < 16). The ratio itself is wall-clock and noisy,
    // so the bound is deliberately loose.
    let flat = &entry["design.crc16_flat"];
    assert_eq!(flat["lane_occupancy"].as_f64(), Some(1.0), "{text}");
    let ratio = flat["lane_sweep_seed_ratio"].as_f64().unwrap_or(0.0);
    assert!(ratio > 0.0 && ratio < 16.0, "seed ratio {ratio} out of range: {text}");
    // The data-dependent-branch CRC diverges per seed almost immediately:
    // nearly every lane-step falls back to a solo run.
    let comb_occ = entry["design.crc16_comb"]["lane_occupancy"].as_f64().unwrap_or(1.0);
    assert!(comb_occ < 0.5, "divergent design stayed packed ({comb_occ}): {text}");
}

#[test]
fn sched_kill_switch_is_bit_identical_to_unset() {
    let results_dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("cli_sched_off_results");
    let _ = std::fs::remove_dir_all(&results_dir);

    // RTLFIXER_SCHED unset runs the LPT-planned executor; the kill switch
    // (every spelling of "off") must restore the legacy mpsc pool
    // bit-for-bit, and the `grid` policy (planned executor, no reordering)
    // must also agree — scheduling only moves wall-clock, never verdicts.
    // This is the subprocess complement of the in-process policy matrix in
    // `sched_invariance.rs`.
    let unset = table1_fix_rates_with("4", &results_dir, &[]);
    for spec in ["off", "0", "false", "grid", "lpt"] {
        assert_eq!(
            table1_fix_rates_with("4", &results_dir, &[("RTLFIXER_SCHED", spec)]),
            unset,
            "fix rates diverged at RTLFIXER_SCHED={spec}"
        );
    }
}

#[test]
fn rag_distill_spellings_are_bit_identical_on_batch_grids() {
    let results_dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("cli_rag_distill_results");
    let _ = std::fs::remove_dir_all(&results_dir);

    // Batch experiments never wire a distilled store, so the distillation
    // loop must be unobservable there under *every* spelling of the switch
    // — `RTLFIXER_RAG_DISTILL=0` reproducing the static-database results
    // bit for bit is the contract, and "on" spellings must not differ
    // either (there is no store to learn into).
    let unset = table1_fix_rates_with("2", &results_dir, &[]);
    for spec in ["0", "off", "false", "no", "1", "on"] {
        assert_eq!(
            table1_fix_rates_with("2", &results_dir, &[("RTLFIXER_RAG_DISTILL", spec)]),
            unset,
            "fix rates diverged at RTLFIXER_RAG_DISTILL={spec}"
        );
    }
}

#[test]
fn rag_hybrid_kill_switch_spellings_agree() {
    let results_dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("cli_rag_hybrid_results");
    let _ = std::fs::remove_dir_all(&results_dir);

    // Every "off" spelling restores the legacy default retriever — they
    // must agree with each other bit for bit; an unrecognized value is
    // treated as "on" and must match unset (hybrid is the default).
    let off = table1_fix_rates_with("2", &results_dir, &[("RTLFIXER_RAG_HYBRID", "0")]);
    for spec in ["off", "false", "no"] {
        assert_eq!(
            table1_fix_rates_with("2", &results_dir, &[("RTLFIXER_RAG_HYBRID", spec)]),
            off,
            "fix rates diverged at RTLFIXER_RAG_HYBRID={spec}"
        );
    }
    let unset = table1_fix_rates_with("2", &results_dir, &[]);
    assert_eq!(
        table1_fix_rates_with("2", &results_dir, &[("RTLFIXER_RAG_HYBRID", "not-a-spec")]),
        unset,
        "unrecognized RTLFIXER_RAG_HYBRID spelling must behave as unset (on)"
    );
}

#[test]
fn table_learning_quick_smoke_records_curve() {
    let results_dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("cli_learning_results");
    let _ = std::fs::remove_dir_all(&results_dir);

    let output = Command::new(env!("CARGO_BIN_EXE_table_learning"))
        .arg("--quick")
        .env_remove("RTLFIXER_FAULTS")
        .env_remove("RTLFIXER_TRACE")
        .env("RTLFIXER_RESULTS_DIR", &results_dir)
        .output()
        .expect("table_learning binary runs");
    assert!(
        output.status.success(),
        "table_learning --quick failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("Learning curve"), "{stdout}");

    let text = std::fs::read_to_string(results_dir.join("bench_eval.json"))
        .expect("bench_eval.json written");
    let json: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
    let curve = json["table_learning"]["curve"].as_array().expect("curve recorded");
    assert_eq!(curve.len(), 3, "{text}");
    let first = curve.first().unwrap()["fix_rate"].as_f64().unwrap();
    let last = curve.last().unwrap()["fix_rate"].as_f64().unwrap();
    assert!(last >= first, "learning curve regressed: {first} -> {last}\n{text}");
    assert!(
        curve.last().unwrap()["store_entries"].as_u64().unwrap() > 0,
        "no briefs distilled:\n{text}"
    );
}

/// Runs the table1 binary with raw args and returns (status ok, stdout,
/// stderr) without asserting success — shard-validation tests need the
/// failure paths.
fn table1_raw(args: &[&str], results_dir: &Path) -> (bool, String, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_table1"))
        .args(args)
        .env_remove("RTLFIXER_FAULTS")
        .env_remove("RTLFIXER_TRACE")
        .env("RTLFIXER_RESULTS_DIR", results_dir)
        .output()
        .expect("table1 binary runs");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

#[test]
fn shard_flag_rejects_malformed_specs() {
    let results_dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("cli_shard_args_results");
    let _ = std::fs::remove_dir_all(&results_dir);

    for (args, needle) in [
        // Index must be strictly below the count.
        (&["--quick", "--shard", "2/2"][..], "must be <"),
        (&["--quick", "--shard", "5/2"][..], "must be <"),
        // Zero shards is meaningless.
        (&["--quick", "--shard", "0/0"][..], ">= 1"),
        // Malformed spellings.
        (&["--quick", "--shard", "1"][..], "i/n"),
        (&["--quick", "--shard", "a/b"][..], "not a number"),
        // merge-shards needs a positive count.
        (&["--quick", "merge-shards", "0"][..], ">= 1"),
        (&["--quick", "merge-shards", "x"][..], "count"),
        // Producing and consuming fragments in one invocation is a
        // contradiction.
        (&["--quick", "--shard", "0/2", "merge-shards", "2"][..], "mutually exclusive"),
    ] {
        let (ok, _, stderr) = table1_raw(args, &results_dir);
        assert!(!ok, "{args:?} unexpectedly succeeded");
        assert!(stderr.contains(needle), "{args:?} stderr missing `{needle}`:\n{stderr}");
    }
}

#[test]
fn sharded_merge_is_byte_identical_to_unsharded() {
    let results_dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("cli_shard_merge_results");
    let _ = std::fs::remove_dir_all(&results_dir);
    std::fs::create_dir_all(&results_dir).expect("results dir");

    // The scientific outputs of a run: fix-rate lines plus the verdict
    // fingerprint (wall-clock fields are the only legitimate difference).
    let science = |stdout: &str| -> Vec<String> {
        stdout
            .lines()
            .filter(|l| l.contains("\"fix_rate\"") || l.contains("verdict_fingerprint"))
            .map(str::to_owned)
            .collect()
    };

    let (ok, reference_out, stderr) = table1_raw(&["--quick", "--jobs", "2"], &results_dir);
    assert!(ok, "unsharded run failed:\n{stderr}");
    let reference = science(&reference_out);
    assert_eq!(reference.len(), 15, "14 fix rates + 1 fingerprint:\n{reference_out}");

    // An incomplete fragment set is rejected, not silently merged.
    let (ok, _, stderr) =
        table1_raw(&["--quick", "--shard", "0/2", "--jobs", "2"], &results_dir);
    assert!(ok, "shard 0/2 failed:\n{stderr}");
    let (ok, _, stderr) = table1_raw(&["--quick", "merge-shards", "2"], &results_dir);
    assert!(!ok, "merge accepted an incomplete fragment set");
    assert!(stderr.contains("missing fragment"), "{stderr}");

    let (ok, _, stderr) =
        table1_raw(&["--quick", "--shard", "1/2", "--jobs", "2"], &results_dir);
    assert!(ok, "shard 1/2 failed:\n{stderr}");

    // A fragment copied over another's name (overlapping coverage) is
    // rejected by its recorded coordinates.
    let shards_dir = results_dir.join("shards");
    let shard0 = shards_dir.join("table1.shard0of2.json");
    let shard1 = shards_dir.join("table1.shard1of2.json");
    let shard1_bytes = std::fs::read(&shard1).expect("shard 1 fragment written");
    std::fs::copy(&shard0, &shard1).expect("overwrite for overlap probe");
    let (ok, _, stderr) = table1_raw(&["--quick", "merge-shards", "2"], &results_dir);
    assert!(!ok, "merge accepted overlapping fragments");
    assert!(stderr.contains("does not match its name"), "{stderr}");
    std::fs::write(&shard1, shard1_bytes).expect("restore shard 1");

    // Complete set: merged output reproduces the unsharded science exactly.
    let (ok, merged_out, stderr) = table1_raw(&["--quick", "merge-shards", "2"], &results_dir);
    assert!(ok, "merge-shards 2 failed:\n{stderr}");
    assert_eq!(
        science(&merged_out),
        reference,
        "merged shards diverged from the unsharded run"
    );

    // Mismatched scale flags are caught before any verdict-level merge.
    let (ok, _, stderr) = table1_raw(&["merge-shards", "2"], &results_dir);
    assert!(!ok, "merge accepted fragments from a different scale");
    assert!(stderr.contains("does not match this invocation"), "{stderr}");
}

/// Spawns the serve daemon as a subprocess (via `servebench --daemon`,
/// since `CARGO_BIN_EXE_*` only covers this package's binaries) and
/// returns the child plus the ephemeral port it announced on stdout.
fn spawn_daemon(extra_args: &[&str]) -> (std::process::Child, u16) {
    use std::io::BufRead;
    let mut child = Command::new(env!("CARGO_BIN_EXE_servebench"))
        .arg("--daemon")
        .args(extra_args)
        .env_remove("RTLFIXER_FAULTS")
        .env_remove("RTLFIXER_TRACE")
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("daemon subprocess starts");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    std::io::BufReader::new(stdout).read_line(&mut line).expect("listening line");
    let announce: serde_json::Value =
        serde_json::from_str(line.trim()).expect("listening line is JSON");
    let port = announce["port"].as_u64().expect("announced port") as u16;
    (child, port)
}

/// A line-delimited JSON client for the daemon subprocess tests.
struct ServeClient {
    reader: std::io::BufReader<std::net::TcpStream>,
    writer: std::net::TcpStream,
}

impl ServeClient {
    fn connect(port: u16) -> ServeClient {
        let stream =
            std::net::TcpStream::connect(("127.0.0.1", port)).expect("connect to daemon");
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(30)))
            .expect("read timeout");
        let reader = std::io::BufReader::new(stream.try_clone().expect("clone stream"));
        ServeClient { reader, writer: stream }
    }

    fn send(&mut self, line: &str) {
        use std::io::Write;
        writeln!(self.writer, "{line}").expect("send request");
        self.writer.flush().expect("flush request");
    }

    fn recv(&mut self) -> serde_json::Value {
        use std::io::BufRead;
        let mut line = String::new();
        assert!(self.reader.read_line(&mut line).expect("read event") > 0, "daemon hung up");
        serde_json::from_str(line.trim()).unwrap_or_else(|e| panic!("bad event `{line}`: {e}"))
    }

    fn ev(value: &serde_json::Value) -> String {
        // The vendored Value has no as_str; round-trip the tag via JSON.
        serde_json::to_string(&value["ev"]).expect("ev tag").trim_matches('"').to_owned()
    }
}

const SERVE_BROKEN: &str = "module m(input [7:0] in, output reg [7:0] out);\n\
                            always @(posedge clk) out <= in;\nendmodule";

fn serve_fix_request(code: &str) -> String {
    format!("{{\"op\":\"fix\",\"code\":{}}}", rtlfixer_obs::json_string(code))
}

#[test]
fn serve_daemon_subprocess_fixes_over_the_wire() {
    let (mut child, port) = spawn_daemon(&[]);
    let mut client = ServeClient::connect(port);
    client.send("{\"op\":\"ping\"}");
    assert_eq!(ServeClient::ev(&client.recv()), "pong");
    client.send(&serve_fix_request(SERVE_BROKEN));
    let (mut accepted, mut traces) = (false, 0usize);
    loop {
        let event = client.recv();
        match ServeClient::ev(&event).as_str() {
            "accepted" => accepted = true,
            "trace" => traces += 1,
            "result" => {
                // The streamed trace ends in a fix that compiled.
                assert_eq!(serde_json::to_string(&event["success"]).unwrap(), "true", "{event:?}");
                break;
            }
            other => panic!("unexpected event `{other}`"),
        }
    }
    assert!(accepted && traces > 0, "accepted={accepted} traces={traces}");
    // A client-initiated shutdown drains the daemon to a clean exit.
    client.send("{\"op\":\"shutdown\"}");
    assert_eq!(ServeClient::ev(&client.recv()), "shutdown-ack");
    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "daemon exit status {status:?}");
}

#[test]
fn serve_daemon_sigterm_drains_gracefully() {
    // A 400 ms service floor keeps the first request in flight while the
    // signal lands.
    let (mut child, port) = spawn_daemon(&["--workers", "1", "--min-service-ms", "400"]);
    let mut client = ServeClient::connect(port);
    client.send(&serve_fix_request(SERVE_BROKEN));
    let event = client.recv();
    assert_eq!(ServeClient::ev(&event), "accepted");

    let term = Command::new("/usr/bin/kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("kill -TERM runs");
    assert!(term.success(), "kill -TERM failed");
    // Give the daemon's 10 ms signal poll time to flip into draining.
    std::thread::sleep(std::time::Duration::from_millis(150));

    // A late request is rejected with `draining` — not silently dropped,
    // not a connection refusal.
    let late = SERVE_BROKEN.replace("module m(", "module late(");
    client.send(&serve_fix_request(&late));
    let mut saw_draining_reject = false;
    let mut saw_result = false;
    while !(saw_draining_reject && saw_result) {
        let event = client.recv();
        match ServeClient::ev(&event).as_str() {
            "trace" => {}
            "rejected" => {
                assert_eq!(
                    serde_json::to_string(&event["reason"]).unwrap(),
                    "\"draining\"",
                    "{event:?}"
                );
                saw_draining_reject = true;
            }
            "result" => {
                // The in-flight episode still completed: graceful drain.
                assert_eq!(serde_json::to_string(&event["success"]).unwrap(), "true", "{event:?}");
                saw_result = true;
            }
            other => panic!("unexpected event `{other}`"),
        }
    }
    let status = child.wait().expect("daemon exits after drain");
    assert!(status.success(), "daemon exit status {status:?}");
}

#[test]
fn servebench_quick_smoke_records_overload_curve() {
    let results_dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("cli_servebench_results");
    let _ = std::fs::remove_dir_all(&results_dir);

    let output = Command::new(env!("CARGO_BIN_EXE_servebench"))
        .arg("--quick")
        .env_remove("RTLFIXER_FAULTS")
        .env("RTLFIXER_RESULTS_DIR", &results_dir)
        .output()
        .expect("servebench binary runs");
    assert!(
        output.status.success(),
        "servebench --quick failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("byte-identical streams"), "{stdout}");
    assert!(stdout.contains("0 mismatches"), "{stdout}");

    let text = std::fs::read_to_string(results_dir.join("bench_eval.json"))
        .expect("bench_eval.json written");
    let json: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
    let entry = &json["servebench"];
    let levels = entry["overload"].as_array().expect("overload sweep");
    assert_eq!(levels.len(), 4, "{text}");
    // Bounded queue under 2x capacity: backpressure rises monotonically
    // and the top level actually rejects/sheds.
    let pressure: Vec<u64> = levels
        .iter()
        .map(|l| l["rejected"].as_u64().unwrap() + l["shed"].as_u64().unwrap())
        .collect();
    assert!(pressure.windows(2).all(|p| p[0] <= p[1]), "{pressure:?}");
    assert!(*pressure.last().unwrap() > 0, "{pressure:?}");
    // Accepted latency stays bounded and nothing panicked.
    assert!(entry["contract"]["p99_ratio"].as_f64().unwrap() <= 3.0, "{text}");
    assert_eq!(entry["contract"]["errors"].as_u64(), Some(0), "{text}");
    assert_eq!(entry["chaos"]["mismatches"].as_u64(), Some(0), "{text}");
    assert_eq!(serde_json::to_string(&entry["coalesce"]["byte_identical"]).unwrap(), "true", "{text}");
}

#[test]
fn sim_tape_kill_switch_is_bit_identical_to_unset() {
    let results_dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("cli_tape_off_results");
    let _ = std::fs::remove_dir_all(&results_dir);

    // RTLFIXER_SIM_TAPE unset runs the compiled tape; every spelling of
    // "off" must restore the tree-walking kernel bit-for-bit, and an
    // unrecognised spelling leaves the tape on — also bit-identical, since
    // the backends agree. This is the subprocess complement of the
    // in-process three-way matrix in `sim_kernel_invariance.rs`.
    let unset = table1_fix_rates_with("2", &results_dir, &[]);
    for spec in ["off", "0", "false", "not-a-spec"] {
        assert_eq!(
            table1_fix_rates_with("2", &results_dir, &[("RTLFIXER_SIM_TAPE", spec)]),
            unset,
            "fix rates diverged at RTLFIXER_SIM_TAPE={spec}"
        );
    }
    // Both kernel kill switches together: the original full-sweep walker.
    assert_eq!(
        table1_fix_rates_with(
            "2",
            &results_dir,
            &[("RTLFIXER_SIM_TAPE", "0"), ("RTLFIXER_SIM_EVENT", "0")],
        ),
        unset,
        "fix rates diverged with both sim kill switches off"
    );
}

#[test]
fn sim_kernel_30_kill_switches_are_bit_identical_to_unset() {
    let results_dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("cli_kernel30_off_results");
    let _ = std::fs::remove_dir_all(&results_dir);

    // The three kernel-3.0 layers — closure-threaded dispatch, the
    // multi-limb wide fast path and the bit-parallel lane engine — are
    // pure execution strategies: every spelling of each kill switch (and
    // an unrecognised spelling, which leaves the layer on) must reproduce
    // the default run bit-for-bit. This is the subprocess complement of
    // the in-process four-way matrix in `sim_kernel_invariance.rs`.
    let unset = table1_fix_rates_with("2", &results_dir, &[]);
    for switch in ["RTLFIXER_SIM_THREADED", "RTLFIXER_SIM_WIDE", "RTLFIXER_SIM_LANES"] {
        for spec in ["off", "0", "false", "not-a-spec"] {
            assert_eq!(
                table1_fix_rates_with("2", &results_dir, &[(switch, spec)]),
                unset,
                "fix rates diverged at {switch}={spec}"
            );
        }
    }
    // All kernel-3.0 layers off at once: the plain interpreted tape.
    assert_eq!(
        table1_fix_rates_with(
            "2",
            &results_dir,
            &[
                ("RTLFIXER_SIM_THREADED", "0"),
                ("RTLFIXER_SIM_WIDE", "0"),
                ("RTLFIXER_SIM_LANES", "0"),
            ],
        ),
        unset,
        "fix rates diverged with every kernel-3.0 switch off"
    );
}
