//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace uses: structs with named fields and enums with
//! unit variants (serialized as the variant-name string, matching real
//! serde's JSON encoding). Written against `proc_macro` directly — no
//! `syn`/`quote`, since the build container has no crates-io access.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving type.
enum Shape {
    /// Struct with named fields.
    Struct { name: String, fields: Vec<String> },
    /// Enum whose variants all carry no data.
    UnitEnum { name: String, variants: Vec<String> },
}

/// Skips one attribute (`#` already consumed ⇒ consume the bracket group;
/// also tolerates the inner-attribute `!`).
fn skip_attr(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '!') {
        iter.next();
    }
    iter.next(); // the [...] group
}

/// Parses the item the derive is attached to.
fn parse_shape(input: TokenStream) -> Shape {
    let mut iter = input.into_iter().peekable();
    let mut kind = None;
    let mut name = None;
    while let Some(token) = iter.next() {
        match token {
            TokenTree::Punct(p) if p.as_char() == '#' => skip_attr(&mut iter),
            TokenTree::Ident(ident) => {
                let text = ident.to_string();
                match text.as_str() {
                    "pub" => {
                        // Swallow a visibility scope like `pub(crate)`.
                        if matches!(iter.peek(), Some(TokenTree::Group(g))
                            if g.delimiter() == Delimiter::Parenthesis)
                        {
                            iter.next();
                        }
                    }
                    "struct" | "enum" => {
                        kind = Some(text);
                        match iter.next() {
                            Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                            other => panic!("expected type name, found {other:?}"),
                        }
                        break;
                    }
                    other => panic!("unsupported item prefix `{other}`"),
                }
            }
            other => panic!("unexpected token before item: {other}"),
        }
    }
    let kind = kind.expect("derive target must be a struct or enum");
    let name = name.expect("derive target must be named");
    // Find the brace-delimited body (skipping generics would go here; the
    // workspace derives only on non-generic types).
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                break group.stream();
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("generic types are not supported by the vendored serde_derive")
            }
            Some(_) => continue,
            None => panic!("expected a braced body on `{name}`"),
        }
    };
    if kind == "struct" {
        Shape::Struct { name, fields: parse_named_fields(body) }
    } else {
        Shape::UnitEnum { name, variants: parse_unit_variants(body) }
    }
}

/// Collects field names from a named-struct body, skipping attributes,
/// visibility and the type tokens after each `:`.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Field prelude: attributes and visibility.
        let ident = loop {
            match iter.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => skip_attr(&mut iter),
                Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                    if matches!(iter.peek(), Some(TokenTree::Group(g))
                        if g.delimiter() == Delimiter::Parenthesis)
                    {
                        iter.next();
                    }
                }
                Some(TokenTree::Ident(ident)) => break ident.to_string(),
                Some(other) => panic!("unexpected token in struct body: {other}"),
            }
        };
        fields.push(ident);
        // Consume `:` then the type, up to a top-level comma.
        let mut depth = 0i32;
        for token in iter.by_ref() {
            match token {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
    }
}

/// Collects variant names from an enum body, rejecting data-carrying
/// variants.
fn parse_unit_variants(body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    while let Some(token) = iter.next() {
        match token {
            TokenTree::Punct(p) if p.as_char() == '#' => skip_attr(&mut iter),
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            TokenTree::Ident(ident) => {
                if matches!(iter.peek(), Some(TokenTree::Group(_))) {
                    panic!(
                        "variant `{ident}` carries data; the vendored serde_derive only \
                         supports unit variants"
                    );
                }
                variants.push(ident.to_string());
            }
            other => panic!("unexpected token in enum body: {other}"),
        }
    }
    variants
}

/// `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let generated = match parse_shape(input) {
        Shape::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__entries.push((\"{f}\".to_string(), \
                         ::serde::ser::to_content(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize<S: ::serde::Serializer>(&self, serializer: S) \
                         -> ::std::result::Result<S::Ok, S::Error> {{\n\
                         let mut __entries: ::std::vec::Vec<(::std::string::String, \
                             ::serde::Content)> = ::std::vec::Vec::new();\n\
                         {pushes}\
                         serializer.serialize_content(::serde::Content::Map(__entries))\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\",\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize<S: ::serde::Serializer>(&self, serializer: S) \
                         -> ::std::result::Result<S::Ok, S::Error> {{\n\
                         serializer.serialize_str(match self {{ {arms} }})\n\
                     }}\n\
                 }}"
            )
        }
    };
    generated.parse().expect("derived Serialize impl parses")
}

/// `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let generated = match parse_shape(input) {
        Shape::Struct { name, fields } => {
            let field_inits: String = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::de::take_field(&mut __entries, \"{f}\")?,\n")
                })
                .collect();
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D) \
                         -> ::std::result::Result<Self, D::Error> {{\n\
                         match deserializer.take_content()? {{\n\
                             ::serde::Content::Map(mut __entries) => \
                                 ::std::result::Result::Ok({name} {{ {field_inits} }}),\n\
                             __other => ::std::result::Result::Err(\
                                 <D::Error as ::serde::de::Error>::custom(\
                                     format!(\"expected a map for `{name}`, found {{__other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D) \
                         -> ::std::result::Result<Self, D::Error> {{\n\
                         let __variant = <::std::string::String as \
                             ::serde::Deserialize>::deserialize(deserializer)?;\n\
                         match __variant.as_str() {{\n\
                             {arms}\
                             __other => ::std::result::Result::Err(\
                                 <D::Error as ::serde::de::Error>::custom(\
                                     format!(\"unknown variant `{{__other}}` for `{name}`\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    generated.parse().expect("derived Deserialize impl parses")
}
