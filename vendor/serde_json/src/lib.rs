//! Offline stand-in for `serde_json`: renders and parses JSON against the
//! vendored serde's content tree. Supports the workspace's surface:
//! [`to_string`], [`to_string_pretty`], [`from_str`], [`json!`] and a
//! displayable [`Value`].

use std::fmt;

use serde::ser::{to_content, Content};
use serde::{Deserialize, Serialize};

/// JSON error (parse or shape mismatch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// A JSON value: a displayable wrapper over the serde content tree.
#[derive(Debug, Clone, PartialEq)]
#[repr(transparent)]
pub struct Value(pub Content);

/// `Value::get` / indexing fallback for absent keys.
const NULL_VALUE: &Value = &Value(Content::Null);

impl Value {
    /// Builds a value from any serializable type.
    pub fn from_serialize<T: Serialize + ?Sized>(value: &T) -> Value {
        Value(to_content(value))
    }

    fn wrap(content: &Content) -> &Value {
        // SAFETY: Value is #[repr(transparent)] over Content.
        unsafe { &*(content as *const Content as *const Value) }
    }

    /// Whether this value is a JSON object.
    pub fn is_object(&self) -> bool {
        matches!(self.0, Content::Map(_))
    }

    /// Looks up an object key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match &self.0 {
            Content::Map(entries) => entries
                .iter()
                .find(|(name, _)| name == key)
                .map(|(_, content)| Value::wrap(content)),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match &self.0 {
            Content::Seq(items) => {
                // SAFETY: Value is #[repr(transparent)] over Content.
                Some(unsafe { &*(items.as_slice() as *const [Content] as *const [Value]) })
            }
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            Content::U64(v) => Some(v),
            Content::I64(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as a float (integers widen), if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self.0 {
            Content::F64(v) => Some(v),
            Content::U64(v) => Some(v as f64),
            Content::I64(v) => Some(v as f64),
            _ => None,
        }
    }

    /// Mutable view of this value as an object, if it is one.
    pub fn as_object_mut(&mut self) -> Option<ObjectMut<'_>> {
        match &mut self.0 {
            Content::Map(entries) => Some(ObjectMut(entries)),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(NULL_VALUE)
    }
}

/// Mutable object access: `Value::as_object_mut`'s view, supporting the
/// insert-or-replace surface of serde_json's `Map`.
pub struct ObjectMut<'a>(&'a mut Vec<(String, Content)>);

impl ObjectMut<'_> {
    /// Inserts `value` under `key`, replacing any existing entry.
    pub fn insert(&mut self, key: String, value: Value) {
        match self.0.iter_mut().find(|(name, _)| *name == key) {
            Some(entry) => entry.1 = value.0,
            None => self.0.push((key, value.0)),
        }
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(Value(deserializer.take_content()?))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_content(&mut out, &self.0, None, 0);
        f.write_str(&out)
    }
}

impl Serialize for Value {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(self.0.clone())
    }
}

/// Builds a [`Value`] from JSON-shaped syntax. Supports one level of
/// object/array literal with expression values (nested literals can use
/// nested `json!` calls), which is the surface the workspace uses.
#[macro_export]
macro_rules! json {
    ({ $($key:tt : $value:expr),* $(,)? }) => {
        $crate::Value($crate::__content_map(vec![
            $( ($key.to_string(), $crate::__to_content(&$value)) ),*
        ]))
    };
    ([ $($value:expr),* $(,)? ]) => {
        $crate::Value($crate::__content_seq(vec![
            $( $crate::__to_content(&$value) ),*
        ]))
    };
    (null) => { $crate::Value($crate::__content_null()) };
    ($other:expr) => { $crate::Value($crate::__to_content(&$other)) };
}

// ---- macro support (public, hidden) -----------------------------------

#[doc(hidden)]
pub fn __to_content<T: Serialize + ?Sized>(value: &T) -> Content {
    to_content(value)
}

#[doc(hidden)]
pub fn __content_map(entries: Vec<(String, Content)>) -> Content {
    Content::Map(entries)
}

#[doc(hidden)]
pub fn __content_seq(items: Vec<Content>) -> Content {
    Content::Seq(items)
}

#[doc(hidden)]
pub fn __content_null() -> Content {
    Content::Null
}

// ---- rendering ---------------------------------------------------------

fn escape_into(out: &mut String, text: &str) {
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, value: f64) {
    if value.is_finite() {
        if value == value.trunc() && value.abs() < 1e15 {
            // Keep a decimal point so the value reads as a float (matches
            // serde_json's `1.0`).
            out.push_str(&format!("{value:.1}"));
        } else {
            out.push_str(&format!("{value}"));
        }
    } else {
        // JSON has no inf/NaN; serde_json errors, we degrade to null.
        out.push_str("null");
    }
}

/// Renders `content`; `indent = None` is compact, `Some(step)` pretty.
fn write_content(out: &mut String, content: &Content, indent: Option<usize>, level: usize) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(out, *v),
        Content::Str(s) => escape_into(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(step) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(step * (level + 1)));
                }
                write_content(out, item, indent, level + 1);
            }
            if let Some(step) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(step * level));
            }
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(step) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(step * (level + 1)));
                }
                escape_into(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, value, indent, level + 1);
            }
            if let Some(step) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(step * level));
            }
            out.push('}');
        }
    }
}

/// Serializes to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &to_content(value), None, 0);
    Ok(out)
}

/// Serializes to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &to_content(value), Some(2), 0);
    Ok(out)
}

// ---- parsing -----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser { bytes: text.as_bytes(), pos: 0 }
    }

    fn error(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Content::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Content::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Content::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{word}`")))
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("bad \\u code point"))?,
                            );
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => {
                    // Re-scan the full UTF-8 character.
                    let start = self.pos - 1;
                    let text = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    let ch = text.chars().next().ok_or_else(|| self.error("empty char"))?;
                    self.pos = start + ch.len_utf8();
                    out.push(ch);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("bad number"))?;
        if !is_float {
            if let Ok(value) = text.parse::<u64>() {
                return Ok(Content::U64(value));
            }
            if let Ok(value) = text.parse::<i64>() {
                return Ok(Content::I64(value));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.error("bad number"))
    }
}

/// Parses a JSON document into any deserializable type.
pub fn from_str<'a, T: Deserialize<'a>>(text: &str) -> Result<T, Error> {
    let mut parser = Parser::new(text);
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters"));
    }
    serde::de::from_content(content)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&"a\n\"b\"").unwrap(), "\"a\\n\\\"b\\\"\"");
        assert_eq!(to_string(&Option::<u32>::None).unwrap(), "null");
    }

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, -2, 3.5], "b": {"c": "x\ny"}, "d": null}"#;
        let value: Vec<(String, Content)> = match Parser::new(doc).parse_value().unwrap() {
            Content::Map(entries) => entries,
            other => panic!("{other:?}"),
        };
        assert_eq!(value.len(), 3);
        assert_eq!(
            value[0].1,
            Content::Seq(vec![Content::U64(1), Content::I64(-2), Content::F64(3.5)])
        );
    }

    #[test]
    fn from_str_into_vec() {
        let parsed: Vec<u64> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(parsed, vec![1, 2, 3]);
        let parsed: Option<String> = from_str("null").unwrap();
        assert_eq!(parsed, None);
    }

    #[test]
    fn pretty_print_indents() {
        let value = json!({"k": vec![1u32, 2], "s": "v"});
        let pretty = to_string_pretty(&value).unwrap();
        assert!(pretty.contains("\n  \"k\": [\n    1,\n    2\n  ]"), "{pretty}");
        assert_eq!(value.to_string(), r#"{"k":[1,2],"s":"v"}"#);
    }

    #[test]
    fn json_macro_shapes() {
        let value = json!({"id": "x", "n": 3u32});
        let text = value.to_string();
        assert!(text.starts_with('{') && text.ends_with('}'));
        assert!(text.contains("\"id\":\"x\""));
    }
}
