//! Offline stand-in for the `rand` crate.
//!
//! The build container has no crates-io access, so the workspace vendors
//! the tiny PRNG surface it actually uses: [`rngs::StdRng`] seeded with
//! [`SeedableRng::seed_from_u64`], plus [`Rng::gen_range`] and
//! [`Rng::gen_bool`]. The generator is xoshiro256++ (public domain
//! reference algorithm) seeded through SplitMix64 — deterministic across
//! platforms and process runs, which is all the reproduction needs.
//!
//! The stream differs from upstream `rand`'s ChaCha-based `StdRng`, so
//! absolute experiment numbers differ from runs made with the real crate;
//! every test in this workspace asserts distributional/qualitative
//! properties, not stream-exact values.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 uniform mantissa bits in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// A range that can be sampled from, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start() + unit * (self.end() - self.start())
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let state = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen_range(0..u64::MAX) == b.gen_range(0..u64::MAX)).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20usize);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
