//! Offline stand-in for `criterion`.
//!
//! Implements the surface this workspace's benches use — `Criterion`,
//! `bench_function`, `benchmark_group` + `sample_size` + `finish`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!` macros —
//! with a simple self-calibrating wall-clock measurement loop. Median and
//! spread are printed per benchmark; there is no HTML report or statistical
//! regression machinery.
//!
//! Positional CLI arguments act as substring filters on benchmark names,
//! matching cargo's `cargo bench -- <filter>` convention. `--bench`,
//! `--profile-time`, and other harness flags are accepted and ignored.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers keep working.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// Target time one benchmark spends measuring.
const TARGET_MEASURE: Duration = Duration::from_millis(300);
/// Warm-up budget before measurement.
const WARM_UP: Duration = Duration::from_millis(100);

/// Benchmark harness entry point.
pub struct Criterion {
    filters: Vec<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filters = Vec::new();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                // Harness flags cargo/criterion pass through; consume values
                // for the ones that take them.
                "--bench" | "--test" | "--quiet" | "--verbose" | "--noplot" | "--exact" => {}
                "--profile-time" | "--sample-size" | "--measurement-time" | "--warm-up-time"
                | "--save-baseline" | "--baseline" | "--color" => {
                    let _ = args.next();
                }
                flag if flag.starts_with("--") => {}
                filter => filters.push(filter.to_string()),
            }
        }
        Criterion { filters, default_sample_size: 50 }
    }
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        self.run_one(name, sample_size, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    fn matches(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f.as_str()))
    }

    fn run_one<F>(&mut self, name: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if !self.matches(name) {
            return;
        }
        let mut bencher = Bencher::calibrating();
        // Warm-up: run until the budget is spent, letting the bencher pick
        // its iterations-per-sample so one sample lasts roughly
        // TARGET_MEASURE / sample_size.
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARM_UP {
            f(&mut bencher);
        }
        let per_sample = (TARGET_MEASURE / sample_size.max(1) as u32).max(Duration::from_micros(50));
        bencher.freeze(per_sample);

        let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
        for _ in 0..sample_size {
            bencher.sample_total = Duration::ZERO;
            bencher.sample_iters = 0;
            f(&mut bencher);
            if bencher.sample_iters > 0 {
                samples
                    .push(bencher.sample_total.as_secs_f64() / bencher.sample_iters as f64);
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let median = samples.get(samples.len() / 2).copied().unwrap_or(0.0);
        let low = samples.first().copied().unwrap_or(0.0);
        let high = samples.last().copied().unwrap_or(0.0);
        println!(
            "{:<48} time: [{} {} {}]",
            name,
            format_seconds(low),
            format_seconds(median),
            format_seconds(high),
        );
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark, named `group/name`.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        let sample_size = self.sample_size.unwrap_or(self.criterion.default_sample_size);
        self.criterion.run_one(&full, sample_size, f);
        self
    }

    /// Ends the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`; `iter` runs the
/// benchmarked routine.
pub struct Bencher {
    /// Iterations `iter` runs per call once frozen; during calibration this
    /// grows adaptively.
    iters_per_call: u64,
    calibrating: bool,
    per_sample: Duration,
    sample_total: Duration,
    sample_iters: u64,
}

impl Bencher {
    fn calibrating() -> Self {
        Bencher {
            iters_per_call: 1,
            calibrating: true,
            per_sample: Duration::from_millis(1),
            sample_total: Duration::ZERO,
            sample_iters: 0,
        }
    }

    fn freeze(&mut self, per_sample: Duration) {
        self.calibrating = false;
        self.per_sample = per_sample;
    }

    /// Times `routine`, running it enough times for a stable wall-clock
    /// sample.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters_per_call {
            std_black_box(routine());
        }
        let elapsed = start.elapsed();
        if self.calibrating {
            // Grow until one call takes at least ~the per-sample budget.
            if elapsed < self.per_sample && self.iters_per_call < 1 << 30 {
                self.iters_per_call *= 2;
            }
        } else {
            self.sample_total += elapsed;
            self.sample_iters += self.iters_per_call;
        }
    }
}

fn format_seconds(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} µs", secs * 1e6)
    } else {
        format!("{:.4} ns", secs * 1e9)
    }
}

/// Declares a benchmark group function list.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_prints() {
        let mut c = Criterion { filters: Vec::new(), default_sample_size: 5 };
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn group_sample_size_applies() {
        let mut c = Criterion { filters: Vec::new(), default_sample_size: 5 };
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_function("inner", |b| b.iter(|| calls += 1));
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn filters_exclude_nonmatching() {
        let mut c = Criterion {
            filters: vec!["wanted".to_string()],
            default_sample_size: 3,
        };
        let mut ran = false;
        c.bench_function("other", |b| {
            ran = true;
            b.iter(|| ());
        });
        assert!(!ran);
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(format_seconds(1.5), "1.5000 s");
        assert_eq!(format_seconds(0.0015), "1.5000 ms");
        assert_eq!(format_seconds(0.0000015), "1.5000 µs");
    }
}
