//! Deserialization: the [`Deserialize`] trait, the [`Deserializer`] source
//! trait and the content-tree adapter used by derived impls.

use std::fmt;
use std::marker::PhantomData;

use crate::ser::Content;

/// Deserialization error constraint, mirroring `serde::de::Error`.
pub trait Error: Sized + fmt::Debug + fmt::Display {
    /// Builds an error from a message.
    fn custom<T: fmt::Display>(msg: T) -> Self;
}

/// A deserialization source. The reduced data model is self-describing, so
/// the only method hands over the parsed content tree.
pub trait Deserializer<'de>: Sized {
    /// Failure value.
    type Error: Error;

    /// Yields the underlying content tree.
    fn take_content(self) -> Result<Content, Self::Error>;
}

/// A deserializable value.
pub trait Deserialize<'de>: Sized {
    /// Builds `Self` from the given source.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Adapter: deserializes from an in-memory content tree with any error
/// type (the trick serde itself uses for nested field decoding).
pub struct ContentDeserializer<E> {
    content: Content,
    marker: PhantomData<E>,
}

impl<E> ContentDeserializer<E> {
    /// Wraps a content tree.
    pub fn new(content: Content) -> Self {
        ContentDeserializer { content, marker: PhantomData }
    }
}

impl<'de, E: Error> Deserializer<'de> for ContentDeserializer<E> {
    type Error = E;

    fn take_content(self) -> Result<Content, E> {
        Ok(self.content)
    }
}

/// Deserializes a value from a content tree.
pub fn from_content<'de, T: Deserialize<'de>, E: Error>(content: Content) -> Result<T, E> {
    T::deserialize(ContentDeserializer::new(content))
}

/// Pulls one named field out of a map's entries, used by derived struct
/// impls. Missing fields deserialize from `Null` so `Option` fields default
/// to `None`; other types report the missing field.
pub fn take_field<'de, T: Deserialize<'de>, E: Error>(
    entries: &mut Vec<(String, Content)>,
    name: &str,
) -> Result<T, E> {
    match entries.iter().position(|(key, _)| key == name) {
        Some(index) => from_content(entries.remove(index).1),
        None => from_content(Content::Null)
            .map_err(|_: E| E::custom(format!("missing field `{name}`"))),
    }
}

fn type_error<E: Error>(expected: &str, got: &Content) -> E {
    E::custom(format!("expected {expected}, found {got:?}"))
}

// ---- Deserialize impls for std types ----------------------------------

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::Str(value) => Ok(value),
            other => Err(type_error("a string", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::Bool(value) => Ok(value),
            other => Err(type_error("a boolean", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::F64(value) => Ok(value),
            Content::U64(value) => Ok(value as f64),
            Content::I64(value) => Ok(value as f64),
            other => Err(type_error("a number", &other)),
        }
    }
}

macro_rules! impl_deserialize_uint {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.take_content()? {
                    Content::U64(value) => <$t>::try_from(value)
                        .map_err(|_| Error::custom(format!("integer {value} out of range"))),
                    other => Err(type_error("an unsigned integer", &other)),
                }
            }
        }
    )*};
}

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let content = deserializer.take_content()?;
                let wide: i64 = match content {
                    Content::U64(value) => i64::try_from(value)
                        .map_err(|_| Error::custom(format!("integer {value} out of range")))?,
                    Content::I64(value) => value,
                    other => return Err(type_error("an integer", &other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("integer {wide} out of range")))
            }
        }
    )*};
}

impl_deserialize_uint!(u8, u16, u32, u64, usize);
impl_deserialize_int!(i8, i16, i32, i64, isize);

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::Null => Ok(None),
            content => from_content(content).map(Some),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::Seq(items) => items.into_iter().map(from_content).collect(),
            other => Err(type_error("a sequence", &other)),
        }
    }
}
