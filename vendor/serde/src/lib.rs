//! Offline stand-in for `serde`.
//!
//! The build container has no crates-io access, so the workspace vendors a
//! reduced serde: the same trait names and signatures the codebase uses
//! (`Serialize`, `Deserialize`, `Serializer`, `Deserializer`,
//! `de::Error::custom`), backed by a simple self-describing content tree
//! ([`Content`]) instead of serde's visitor machinery. The derive macros
//! (re-exported from the vendored `serde_derive`) generate impls against
//! this content model, and the vendored `serde_json` renders/parses it.

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Content, Serialize, Serializer};
pub use serde_derive::{Deserialize, Serialize};

/// Serialization half: the content tree and the `Serialize`/`Serializer`
/// traits.
pub mod content {
    pub use crate::ser::Content;
}
