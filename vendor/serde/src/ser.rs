//! Serialization: the [`Content`] tree, the [`Serialize`] trait and the
//! [`Serializer`] sink trait.

/// A self-describing serialized value — the data model every `Serialize`
/// impl lowers into and every `Serializer` consumes.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` / Rust `None` / unit.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer (only used for negative values).
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Content>),
    /// Ordered key/value map (field order preserved).
    Map(Vec<(String, Content)>),
}

/// A serialization sink. The only required method is
/// [`Serializer::serialize_content`]; the scalar helpers are provided so
/// hand-written impls read like real serde (`s.serialize_str(...)`).
pub trait Serializer: Sized {
    /// Success value.
    type Ok;
    /// Failure value.
    type Error;

    /// Consumes a full content tree.
    fn serialize_content(self, content: Content) -> Result<Self::Ok, Self::Error>;

    /// Serializes a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::Str(v.to_owned()))
    }

    /// Serializes a boolean.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::Bool(v))
    }

    /// Serializes an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::U64(v))
    }

    /// Serializes a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error> {
        if v >= 0 {
            self.serialize_content(Content::U64(v as u64))
        } else {
            self.serialize_content(Content::I64(v))
        }
    }

    /// Serializes a float.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::F64(v))
    }

    /// Serializes unit / null.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::Null)
    }
}

/// A serializable value.
pub trait Serialize {
    /// Lowers `self` into the given sink.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Uninhabited error type for infallible serializers.
#[derive(Debug)]
pub enum Impossible {}

/// The canonical sink: captures the content tree itself.
pub struct ContentSerializer;

impl Serializer for ContentSerializer {
    type Ok = Content;
    type Error = Impossible;

    fn serialize_content(self, content: Content) -> Result<Content, Impossible> {
        Ok(content)
    }
}

/// Lowers any serializable value to its content tree.
pub fn to_content<T: Serialize + ?Sized>(value: &T) -> Content {
    match value.serialize(ContentSerializer) {
        Ok(content) => content,
        Err(impossible) => match impossible {},
    }
}

// ---- Serialize impls for std types ------------------------------------

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(f64::from(*self))
    }
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_u64(*self as u64)
            }
        }
    )*};
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_i64(*self as i64)
            }
        }
    )*};
}

impl_serialize_uint!(u8, u16, u32, u64, usize);
impl_serialize_int!(i8, i16, i32, i64, isize);

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(value) => value.serialize(serializer),
            None => serializer.serialize_unit(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Seq(self.iter().map(to_content).collect()))
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Map(
            self.iter().map(|(k, v)| (k.clone(), to_content(v))).collect(),
        ))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}
