//! Deterministic RNG for test-case generation (xorshift-based; no
//! dependencies so the stand-in is self-contained).

/// Deterministic test RNG.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed | 1 }
    }

    /// Next 64 random bits (splitmix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
