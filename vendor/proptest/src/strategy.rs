//! Value-generation strategies: integer/float ranges and a regex-subset
//! string sampler.

use std::ops::{Range, RangeInclusive};

use crate::rng::TestRng;

/// A source of sampled values.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let pattern = Pattern::parse(self);
        let mut out = String::new();
        pattern.generate(rng, &mut out, 0);
        out
    }
}

impl<T: Strategy> Strategy for &T {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (**self).sample(rng)
    }
}

// ---- regex-subset sampler ----------------------------------------------

/// Repetition bounds attached to an atom.
#[derive(Debug, Clone, Copy)]
struct Repeat {
    min: u32,
    max: u32,
}

const DEFAULT_UNBOUNDED_MAX: u32 = 8;

#[derive(Debug, Clone)]
enum Atom {
    /// A literal character.
    Literal(char),
    /// `.` — any printable-ish character.
    AnyChar,
    /// `[...]` — one of an explicit character set.
    Class(Vec<char>),
    /// `( alt | alt | ... )`.
    Group(Vec<Pattern>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    repeat: Repeat,
}

/// A parsed pattern: a sequence of repeated atoms.
#[derive(Debug, Clone)]
pub(crate) struct Pattern {
    pieces: Vec<Piece>,
}

/// Characters `.` samples from: printable ASCII plus a sprinkle of
/// control/unicode so totality properties see awkward inputs.
fn any_char(rng: &mut TestRng) -> char {
    match rng.below(32) {
        0 => '\n',
        1 => '\r',
        2 => '\t',
        3 => '\u{0}',
        4 => 'é',
        5 => '中',
        _ => char::from(b' ' + rng.below(95) as u8),
    }
}

impl Pattern {
    /// Parses the supported regex subset; unsupported syntax degrades to
    /// literal characters rather than failing.
    pub(crate) fn parse(pattern: &str) -> Pattern {
        let chars: Vec<char> = pattern.chars().collect();
        let (pattern, _) = Self::parse_alternatives(&chars, 0, None);
        pattern_from_alternatives(pattern)
    }

    /// Parses alternatives until `end_delim` (or end of input). Returns the
    /// alternative list and the position after the closing delimiter.
    fn parse_alternatives(
        chars: &[char],
        mut pos: usize,
        end_delim: Option<char>,
    ) -> (Vec<Pattern>, usize) {
        let mut alternatives = Vec::new();
        let mut pieces = Vec::new();
        loop {
            if pos >= chars.len() {
                alternatives.push(Pattern { pieces });
                return (alternatives, pos);
            }
            let c = chars[pos];
            if Some(c) == end_delim {
                alternatives.push(Pattern { pieces });
                return (alternatives, pos + 1);
            }
            match c {
                '|' => {
                    alternatives.push(Pattern { pieces: std::mem::take(&mut pieces) });
                    pos += 1;
                }
                '(' => {
                    let (inner, after) = Self::parse_alternatives(chars, pos + 1, Some(')'));
                    let (repeat, after) = parse_repeat(chars, after);
                    pieces.push(Piece { atom: Atom::Group(inner), repeat });
                    pos = after;
                }
                '[' => {
                    let (set, after) = parse_class(chars, pos + 1);
                    let (repeat, after) = parse_repeat(chars, after);
                    pieces.push(Piece { atom: Atom::Class(set), repeat });
                    pos = after;
                }
                '.' => {
                    let (repeat, after) = parse_repeat(chars, pos + 1);
                    pieces.push(Piece { atom: Atom::AnyChar, repeat });
                    pos = after;
                }
                '\\' => {
                    let escaped = chars.get(pos + 1).copied().unwrap_or('\\');
                    let literal = match escaped {
                        'n' => '\n',
                        'r' => '\r',
                        't' => '\t',
                        other => other,
                    };
                    let (repeat, after) = parse_repeat(chars, pos + 2);
                    pieces.push(Piece { atom: Atom::Literal(literal), repeat });
                    pos = after;
                }
                literal => {
                    let (repeat, after) = parse_repeat(chars, pos + 1);
                    pieces.push(Piece { atom: Atom::Literal(literal), repeat });
                    pos = after;
                }
            }
        }
    }

    fn generate(&self, rng: &mut TestRng, out: &mut String, depth: u32) {
        for piece in &self.pieces {
            let count = if piece.repeat.min == piece.repeat.max {
                piece.repeat.min
            } else {
                let span = u64::from(piece.repeat.max - piece.repeat.min) + 1;
                piece.repeat.min + rng.below(span) as u32
            };
            for _ in 0..count {
                match &piece.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::AnyChar => out.push(any_char(rng)),
                    Atom::Class(set) => {
                        if !set.is_empty() {
                            out.push(set[rng.below(set.len() as u64) as usize]);
                        }
                    }
                    Atom::Group(alternatives) => {
                        if depth < 16 && !alternatives.is_empty() {
                            let pick = rng.below(alternatives.len() as u64) as usize;
                            alternatives[pick].generate(rng, out, depth + 1);
                        }
                    }
                }
            }
        }
    }
}

fn pattern_from_alternatives(alternatives: Vec<Pattern>) -> Pattern {
    if alternatives.len() == 1 {
        alternatives.into_iter().next().expect("one alternative")
    } else {
        Pattern {
            pieces: vec![Piece {
                atom: Atom::Group(alternatives),
                repeat: Repeat { min: 1, max: 1 },
            }],
        }
    }
}

/// Parses `[...]` contents (supports ranges and escapes; no negation).
fn parse_class(chars: &[char], mut pos: usize) -> (Vec<char>, usize) {
    let mut set = Vec::new();
    while pos < chars.len() && chars[pos] != ']' {
        let c = match chars[pos] {
            '\\' => {
                pos += 1;
                match chars.get(pos).copied().unwrap_or('\\') {
                    'n' => '\n',
                    'r' => '\r',
                    't' => '\t',
                    other => other,
                }
            }
            other => other,
        };
        if chars.get(pos + 1) == Some(&'-') && chars.get(pos + 2).is_some_and(|&e| e != ']') {
            let end = chars[pos + 2];
            let (lo, hi) = (c as u32, end as u32);
            for code in lo..=hi {
                if let Some(ch) = char::from_u32(code) {
                    set.push(ch);
                }
            }
            pos += 3;
        } else {
            set.push(c);
            pos += 1;
        }
    }
    (set, pos + 1)
}

/// Parses an optional postfix quantifier at `pos`.
fn parse_repeat(chars: &[char], pos: usize) -> (Repeat, usize) {
    match chars.get(pos) {
        Some('{') => {
            let mut end = pos + 1;
            while end < chars.len() && chars[end] != '}' {
                end += 1;
            }
            let body: String = chars[pos + 1..end].iter().collect();
            let repeat = match body.split_once(',') {
                Some((min, max)) => Repeat {
                    min: min.trim().parse().unwrap_or(0),
                    max: max.trim().parse().unwrap_or(DEFAULT_UNBOUNDED_MAX),
                },
                None => {
                    let n = body.trim().parse().unwrap_or(1);
                    Repeat { min: n, max: n }
                }
            };
            (repeat, (end + 1).min(chars.len() + 1))
        }
        Some('+') => (Repeat { min: 1, max: DEFAULT_UNBOUNDED_MAX }, pos + 1),
        Some('*') => (Repeat { min: 0, max: DEFAULT_UNBOUNDED_MAX }, pos + 1),
        Some('?') => (Repeat { min: 0, max: 1 }, pos + 1),
        _ => (Repeat { min: 1, max: 1 }, pos),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::new(7)
    }

    #[test]
    fn class_with_ranges() {
        let mut r = rng();
        for _ in 0..50 {
            let s = Strategy::sample(&"[a-c0-2]{4}", &mut r);
            assert_eq!(s.chars().count(), 4);
            assert!(s.chars().all(|c| "abc012".contains(c)), "{s}");
        }
    }

    #[test]
    fn group_repetition_shapes() {
        let mut r = rng();
        for _ in 0..30 {
            let s = Strategy::sample(&"(ab){2,3}", &mut r);
            assert!(s == "abab" || s == "ababab", "{s}");
        }
    }

    #[test]
    fn verilog_shaped_pattern_generates() {
        let mut r = rng();
        let s = Strategy::sample(&"(assign [a-z]+ = [a-z0-9&|^~ ]+;\n){1,3}", &mut r);
        assert!(s.contains("assign "), "{s}");
        assert!(s.ends_with(";\n"), "{s:?}");
    }

    #[test]
    fn dot_bounds_length() {
        let mut r = rng();
        for _ in 0..20 {
            let s = Strategy::sample(&".{0,40}", &mut r);
            assert!(s.chars().count() <= 40);
        }
    }
}
