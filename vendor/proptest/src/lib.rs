//! Offline stand-in for `proptest`.
//!
//! Supports the surface this workspace's property tests use:
//!
//! * the `proptest! { #![proptest_config(...)] #[test] fn f(a in strat, b: ty) {...} }` macro
//! * range strategies (`0usize..156`, `1u32..=64`, `0.0f64..=1.0`)
//! * regex-subset string strategies (`".{0,400}"`, `"[a-z0-9 ]{0,60}"`,
//!   groups with `{m,n}` repetition, `+`, `*`, `?`, escapes)
//! * `any::<T>()` / bare `name: type` arguments for integers and floats
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`
//!
//! Cases are sampled deterministically from the test name and case index —
//! no shrinking, no persistence files; a failure panics with the case
//! number so it can be replayed by rerunning the test.

pub mod arbitrary;
pub mod rng;
pub mod strategy;

pub use arbitrary::{any, Arbitrary};
pub use rng::TestRng;
pub use strategy::Strategy;

/// Run configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Builds the deterministic RNG for one test case.
pub fn test_rng(test_name: &str, case: u32) -> TestRng {
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for byte in test_name.bytes() {
        seed ^= u64::from(byte);
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::new(seed ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// The property-test macro.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr); $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_rng(stringify!($name), __case);
                let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $crate::__proptest_bind! { rng = __rng; $($params)* }
                    $body
                }));
                if let Err(panic) = __result {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed",
                        __case + 1,
                        __config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    (rng = $rng:ident;) => {};
    (rng = $rng:ident; $arg:ident in $strat:expr) => {
        let $arg = $crate::Strategy::sample(&($strat), &mut $rng);
    };
    (rng = $rng:ident; $arg:ident in $strat:expr, $($rest:tt)*) => {
        let $arg = $crate::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bind! { rng = $rng; $($rest)* }
    };
    (rng = $rng:ident; $arg:ident : $ty:ty) => {
        let $arg: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
    };
    (rng = $rng:ident; $arg:ident : $ty:ty, $($rest:tt)*) => {
        let $arg: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bind! { rng = $rng; $($rest)* }
    };
}

/// Asserting macro (plain assert with case reporting handled by the
/// harness).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_arbitrary(width in 1u32..=64, value: u64, frac in 0.0f64..=1.0) {
            prop_assert!((1..=64).contains(&width));
            prop_assert!((0.0..=1.0).contains(&frac));
            let _ = value;
        }

        #[test]
        fn string_strategies(s in "[a-z0-9 ]{0,60}", t in "(ab|c){1,3}") {
            prop_assert!(s.len() <= 60);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == ' '));
            prop_assert!(!t.is_empty());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_rng("x", 3);
        let mut b = crate::test_rng("x", 3);
        let sa = crate::Strategy::sample(&".{0,40}", &mut a);
        let sb = crate::Strategy::sample(&".{0,40}", &mut b);
        assert_eq!(sa, sb);
    }
}
