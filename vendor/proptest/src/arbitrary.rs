//! `any::<T>()` / bare-typed argument support.

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Types with a default generation strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Bias an eighth of draws toward edge values; uniform
                // otherwise.
                if rng.below(8) == 0 {
                    const EDGES: &[u64] = &[0, 1, 2, 3, u64::MAX, u64::MAX - 1, 1 << 31, 1 << 63];
                    EDGES[rng.below(EDGES.len() as u64) as usize] as $t
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.below(2) == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite floats across magnitudes.
        let mantissa = rng.unit_f64() * 2.0 - 1.0;
        let exponent = rng.below(61) as i32 - 30;
        mantissa * (2.0f64).powi(exponent)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from(b' ' + rng.below(95) as u8)
    }
}

/// The `any::<T>()` strategy constructor.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy wrapper produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
