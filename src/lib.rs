//! # rtlfixer
//!
//! Umbrella crate for the RTLFixer reproduction (Tsai, Liu, Ren — DAC 2024:
//! *"RTLFixer: Automatically Fixing RTL Syntax Errors with Large Language
//! Models"*).
//!
//! RTLFixer is an autonomous-agent debugging loop: a language model revises
//! erroneous Verilog, a compiler provides feedback, and a retrieval database
//! of human expert guidance (RAG) is consulted for hard error categories.
//! This workspace implements the full system in Rust — see `DESIGN.md` for
//! the architecture and the substitution notes.
//!
//! Each subsystem lives in its own crate, re-exported here under a short
//! name:
//!
//! * [`verilog`] — lexer / parser / semantic analysis substrate
//! * [`compilers`] — iverilog- and Quartus-style diagnostic personalities
//! * [`sim`] — cycle-level simulator and golden-model testbench harness
//! * [`llm`] — the simulated language model (repair operators + competence)
//! * [`rag`] — error-category guidance database and retrievers
//! * [`agent`] — the RTLFixer loop itself (One-shot and ReAct strategies)
//! * [`dataset`] — VerilogEval-style benchmarks and the syntax-error dataset
//! * [`eval`] — metrics (fix rate, pass@k) and per-table experiment drivers
//!
//! ## Quickstart
//!
//! ```
//! use rtlfixer::agent::{RtlFixerBuilder, Strategy};
//! use rtlfixer::compilers::CompilerKind;
//! use rtlfixer::llm::{Capability, SimulatedLlm};
//!
//! let broken = "module m(input [7:0] in, output reg [7:0] out);
//!               always @(posedge clk) out <= in;
//!               endmodule";
//! let llm = SimulatedLlm::new(Capability::Gpt35Class, 42);
//! let mut fixer = RtlFixerBuilder::new()
//!     .compiler(CompilerKind::Quartus)
//!     .strategy(Strategy::React { max_iterations: 10 })
//!     .with_rag(true)
//!     .build(llm);
//! let outcome = fixer.fix(broken);
//! assert!(outcome.success);
//! ```

pub use rtlfixer_agent as agent;
pub use rtlfixer_compilers as compilers;
pub use rtlfixer_dataset as dataset;
pub use rtlfixer_eval as eval;
pub use rtlfixer_llm as llm;
pub use rtlfixer_rag as rag;
pub use rtlfixer_sim as sim;
pub use rtlfixer_verilog as verilog;
