//! `rtlfixer` — command-line syntax fixing for Verilog files.
//!
//! ```text
//! USAGE:
//!   rtlfixer fix <file.v> [--compiler simple|iverilog|quartus]
//!                         [--one-shot | --react <N>] [--no-rag]
//!                         [--llm gpt35|gpt4] [--seed <u64>]
//!                         [--trace] [--in-place | -o <out.v>]
//!   rtlfixer check <file.v> [--compiler iverilog|quartus]
//!   rtlfixer dataset [--seed <u64>] [--limit <N>]
//! ```
//!
//! `fix` runs the RTLFixer loop on a file and prints (or writes) the fixed
//! source; the exit code is 0 on success, 1 when errors remain. `check`
//! just compiles and prints the personality's log. `dataset` dumps
//! VerilogEval-syntax entries as JSON lines.

use std::path::PathBuf;
use std::process::ExitCode;

use rtlfixer::agent::{RtlFixerBuilder, Strategy};
use rtlfixer::compilers::CompilerKind;
use rtlfixer::llm::{Capability, SimulatedLlm};

struct Args {
    positional: Vec<String>,
    flags: Vec<String>,
}

impl Args {
    fn parse() -> Self {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        for arg in std::env::args().skip(1) {
            if arg.starts_with('-') {
                flags.push(arg);
            } else {
                positional.push(arg);
            }
        }
        Args { positional, flags }
    }

    fn has(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }

    fn value_of(&self, flag: &str) -> Option<String> {
        // Flags take values as `--flag=value` or via the next positional.
        self.flags
            .iter()
            .find_map(|f| f.strip_prefix(&format!("{flag}=")).map(str::to_owned))
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  rtlfixer fix <file.v> [--compiler=simple|iverilog|quartus] \
         [--one-shot] [--react=N] [--no-rag] [--llm=gpt35|gpt4] [--seed=N] \
         [--trace] [--in-place] [--out=FILE]\n  rtlfixer check <file.v> \
         [--compiler=iverilog|quartus]\n  rtlfixer dataset [--seed=N] [--limit=N]"
    );
    ExitCode::from(2)
}

fn compiler_kind(args: &Args) -> CompilerKind {
    match args.value_of("--compiler").as_deref() {
        Some("simple") => CompilerKind::Simple,
        Some("iverilog") => CompilerKind::Iverilog,
        _ => CompilerKind::Quartus,
    }
}

fn main() -> ExitCode {
    let args = Args::parse();
    match args.positional.first().map(String::as_str) {
        Some("fix") => cmd_fix(&args),
        Some("check") => cmd_check(&args),
        Some("dataset") => cmd_dataset(&args),
        _ => usage(),
    }
}

fn cmd_fix(args: &Args) -> ExitCode {
    let Some(path) = args.positional.get(1).map(PathBuf::from) else {
        return usage();
    };
    let source = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("rtlfixer: cannot read {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
    };

    let strategy = if args.has("--one-shot") {
        Strategy::OneShot
    } else {
        let n = args
            .value_of("--react")
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        Strategy::React { max_iterations: n }
    };
    let capability = match args.value_of("--llm").as_deref() {
        Some("gpt4") => Capability::Gpt4Class,
        _ => Capability::Gpt35Class,
    };
    let seed = args.value_of("--seed").and_then(|v| v.parse().ok()).unwrap_or(42);

    let llm = SimulatedLlm::new(capability, seed);
    let mut fixer = RtlFixerBuilder::new()
        .compiler(compiler_kind(args))
        .strategy(strategy)
        .with_rag(!args.has("--no-rag"))
        .build(llm);
    let outcome = fixer.fix(&source);

    if args.has("--trace") {
        eprintln!("{}", outcome.trace);
    }
    eprintln!(
        "rtlfixer: {} after {} revision(s); initial categories: {:?}",
        if outcome.success { "fixed" } else { "NOT fixed" },
        outcome.revisions,
        outcome.initial_categories
    );

    if args.has("--in-place") {
        if let Err(err) = std::fs::write(&path, &outcome.final_code) {
            eprintln!("rtlfixer: cannot write {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
    } else if let Some(out) = args.value_of("--out") {
        if let Err(err) = std::fs::write(&out, &outcome.final_code) {
            eprintln!("rtlfixer: cannot write {out}: {err}");
            return ExitCode::FAILURE;
        }
    } else {
        print!("{}", outcome.final_code);
    }
    if outcome.success {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_check(args: &Args) -> ExitCode {
    let Some(path) = args.positional.get(1).map(PathBuf::from) else {
        return usage();
    };
    let source = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("rtlfixer: cannot read {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let compiler = compiler_kind(args).build();
    let file_name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "main.sv".to_owned());
    let outcome = compiler.compile(&source, &file_name);
    println!("{}", outcome.log);
    if outcome.success {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_dataset(args: &Args) -> ExitCode {
    let seed = args.value_of("--seed").and_then(|v| v.parse().ok()).unwrap_or(7);
    let limit = args.value_of("--limit").and_then(|v| v.parse().ok()).unwrap_or(usize::MAX);
    for entry in rtlfixer::dataset::verilog_eval_syntax(seed).into_iter().take(limit) {
        println!(
            "{}",
            serde_json::json!({
                "problem_id": entry.problem_id,
                "description": entry.description,
                "code": entry.code,
                "categories": entry.categories.iter().map(|c| c.slug()).collect::<Vec<_>>(),
            })
        );
    }
    ExitCode::SUCCESS
}
