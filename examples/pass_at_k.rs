//! Measures pass@1 before and after syntax fixing on a slice of
//! VerilogEval-Human — a miniature of the Table 2 experiment.
//!
//! Run with `cargo run --release --example pass_at_k`.

use rtlfixer::eval::experiments::table2::{evaluate_suite, PassAtKConfig};

fn main() {
    let problems = rtlfixer::dataset::verilog_eval_human();
    let config = PassAtKConfig { samples: 10, max_problems: Some(24), seed: 11, jobs: 0 };
    let result = evaluate_suite("Human", &problems, &config);
    for row in &result.rows {
        println!(
            "{:<5} ({} problems): pass@1 {:.3} -> {:.3}, pass@5 {:.3} -> {:.3}",
            row.set,
            row.problems,
            row.pass1_original,
            row.pass1_fixed,
            row.pass5_original,
            row.pass5_fixed
        );
    }
    println!(
        "syntax-failure share of generated samples: {:.3} -> {:.3}",
        result.syntax_failure_rate, result.syntax_failure_rate_fixed
    );
}
