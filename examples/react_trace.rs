//! Prints a full ReAct Thought / Action / Observation transcript in the
//! style of the paper's Figure 2c, for the phantom-`clk` bug of Figure 5.
//!
//! Run with `cargo run --example react_trace`.

use rtlfixer::agent::{RtlFixerBuilder, Strategy};
use rtlfixer::agent::prompts::REACT_INSTRUCTION;
use rtlfixer::compilers::CompilerKind;
use rtlfixer::llm::{Capability, SimulatedLlm};

fn main() {
    let erroneous = "module top_module (\n\
                     \u{20}   input [99:0] in,\n\
                     \u{20}   output reg [99:0] out\n\
                     );\n\
                     always @(posedge clk) begin\n\
                     \u{20}   out <= in;\n\
                     end\n\
                     endmodule\n";

    println!("=== ReAct instruction (system prompt, Figure 2b) ===\n{REACT_INSTRUCTION}\n");

    let llm = SimulatedLlm::new(Capability::Gpt35Class, 7);
    let mut fixer = RtlFixerBuilder::new()
        .compiler(CompilerKind::Quartus)
        .strategy(Strategy::React { max_iterations: 10 })
        .with_rag(true)
        .build(llm);
    let outcome = fixer.fix_problem(
        "Reverse the bit ordering of a 100-bit vector on each clock cycle.",
        erroneous,
    );

    println!("=== Episode transcript (Figure 2c style) ===\n{}", outcome.trace);
    println!("final: success={} after {} revision(s)", outcome.success, outcome.revisions);
}
