//! Exports a VCD waveform of a counter run — open the output in GTKWave or
//! any VCD viewer. Demonstrates the simulator's waveform tooling, which the
//! §5 study uses for its text-formatted comparisons.
//!
//! Run with `cargo run --example waveform_dump [out.vcd]`.

use rtlfixer::sim::vcd::VcdRecorder;
use rtlfixer::sim::{value::LogicVec, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let analysis = rtlfixer::verilog::compile(
        "module ctr(input clk, input reset, input en, output reg [7:0] q, output wrap);\n\
         always @(posedge clk) begin\n\
           if (reset) q <= 0;\n\
           else if (en) q <= q + 1;\n\
         end\n\
         assign wrap = (q == 8'hFF);\nendmodule",
    );
    let mut sim = Simulator::new(&analysis, "ctr")?;
    let mut recorder = VcdRecorder::for_ports("ctr", &sim);

    sim.poke("reset", LogicVec::from_u64(1, 1))?;
    sim.clock_cycle("clk")?;
    recorder.sample(&sim);
    sim.poke("reset", LogicVec::from_u64(1, 0))?;
    for cycle in 0..32u64 {
        // Enable three of every four cycles.
        sim.poke("en", LogicVec::from_u64(1, u64::from(cycle % 4 != 3)))?;
        sim.clock_cycle("clk")?;
        recorder.sample(&sim);
    }

    let vcd = recorder.render();
    let path = std::env::args().nth(1).unwrap_or_else(|| "counter.vcd".to_owned());
    std::fs::write(&path, &vcd)?;
    println!("wrote {} bytes of VCD to {path}", vcd.len());
    println!("final q = {}", sim.peek("q").expect("q exists"));
    Ok(())
}
