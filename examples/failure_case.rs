//! Reproduces the paper's **Figure 6** failure case: an index-arithmetic
//! error (`q[(i-1)*16 + (j-1)]` going to -17) that the LLM cannot solve
//! even with ReAct and RAG — the residual 1.5% of Table 1's best cell.
//!
//! Run with `cargo run --example failure_case`.

use rtlfixer::agent::{RtlFixerBuilder, Strategy};
use rtlfixer::compilers::CompilerKind;
use rtlfixer::llm::{Capability, SimulatedLlm};

fn main() {
    let erroneous = "module top_module(input [255:0] q, output [255:0] next);\n\
                     genvar i, j;\n\
                     generate\n\
                     for (i = 0; i < 16; i = i + 1) begin : row\n\
                     \u{20} for (j = 0; j < 16; j = j + 1) begin : col\n\
                     \u{20}   assign next[i*16 + j] = q[(i-1)*16 + (j-1)];\n\
                     \u{20} end\n\
                     end\n\
                     endgenerate\n\
                     endmodule\n";

    let compiler = CompilerKind::Quartus.build();
    let log = rtlfixer::compilers::Compiler::compile(compiler.as_ref(), erroneous, "conwaylife.sv");
    println!("=== Compile Error (Figure 6) ===\n{}\n", log.log);

    let mut failures = 0;
    let runs = 10;
    for seed in 0..runs {
        let llm = SimulatedLlm::new(Capability::Gpt35Class, seed);
        let mut fixer = RtlFixerBuilder::new()
            .compiler(CompilerKind::Quartus)
            .strategy(Strategy::React { max_iterations: 10 })
            .with_rag(true)
            .build(llm);
        if !fixer.fix(erroneous).success {
            failures += 1;
        }
    }
    println!("ReAct + RAG + Quartus failed {failures}/{runs} episodes on this sample.");
    println!("(\"LLM failed to calculate array indices in the for loop\" — §5)");
}
