//! Reproduces the paper's **Figure 5**: the same bug (undeclared `clk` in
//! `vector100r`) through the iverilog and Quartus log personalities,
//! showing the informativeness gap that drives the §4.3.1 ablation.
//!
//! Run with `cargo run --example compare_compilers`.

use rtlfixer::compilers::CompilerKind;

fn main() {
    let erroneous = "module top_module (\n\
                     \u{20}   input [99:0] in,\n\
                     \u{20}   output reg [99:0] out\n\
                     );\n\
                     always @(posedge clk) begin\n\
                     \u{20}   for (int i = 0; i < 100; i = i + 1) begin\n\
                     \u{20}       out[i] <= in[99 - i];\n\
                     \u{20}   end\n\
                     end\n\
                     endmodule\n";

    println!("Task ID: vector100r\n\n=== Erroneous Implementation ===\n{erroneous}");
    for kind in [CompilerKind::Iverilog, CompilerKind::Quartus] {
        let compiler = kind.build();
        let outcome = compiler.compile(erroneous, "vector100r.sv");
        println!("=== {} ===\n{}\n", compiler.name(), outcome.log);
        println!(
            "(carries tags: {}, informativeness: {:.2})\n",
            compiler.quality().carries_tags,
            compiler.quality().informativeness
        );
    }
}
