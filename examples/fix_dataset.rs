//! Runs RTLFixer over a slice of the VerilogEval-syntax dataset and prints
//! the fix rate — a miniature of the Table 1 experiment.
//!
//! Run with `cargo run --release --example fix_dataset`.

use rtlfixer::agent::{RtlFixerBuilder, Strategy};
use rtlfixer::compilers::CompilerKind;
use rtlfixer::llm::{Capability, SimulatedLlm};

fn main() {
    let entries = rtlfixer::dataset::verilog_eval_syntax(7);
    let subset = &entries[..40.min(entries.len())];
    println!("dataset: {} entries (using {})", entries.len(), subset.len());

    let mut fixed = 0;
    for (idx, entry) in subset.iter().enumerate() {
        let llm = SimulatedLlm::new(Capability::Gpt35Class, idx as u64);
        let mut fixer = RtlFixerBuilder::new()
            .compiler(CompilerKind::Quartus)
            .strategy(Strategy::React { max_iterations: 10 })
            .with_rag(true)
            .build(llm);
        let outcome = fixer.fix_problem(&entry.description, &entry.code);
        if outcome.success {
            fixed += 1;
        } else {
            println!(
                "  unfixed: {} (categories {:?})",
                entry.problem_id, outcome.remaining_categories
            );
        }
    }
    println!(
        "fixed {fixed}/{} ({:.1}%)",
        subset.len(),
        100.0 * fixed as f64 / subset.len() as f64
    );
}
