//! Quickstart: fix the paper's Figure 2a bug (an out-of-range index) with
//! the default RTLFixer configuration (ReAct + RAG + Quartus feedback).
//!
//! Run with `cargo run --example quickstart`.

use rtlfixer::agent::{RtlFixerBuilder, Strategy};
use rtlfixer::compilers::CompilerKind;
use rtlfixer::llm::{Capability, SimulatedLlm};

fn main() {
    // Figure 2a: "Given an 8-bit input vector [7:0], reverse its bit
    // ordering." — the erroneous implementation indexes out[8].
    let problem = "Given an 8-bit input vector [7:0], reverse its bit ordering.";
    let erroneous = "module top_module (\n\
                     \u{20}   input [7:0] in,\n\
                     \u{20}   output [7:0] out\n\
                     );\n\
                     assign {out[0],out[1],out[2],out[3],out[4],out[5],out[6],out[8]} = in;\n\
                     endmodule\n";

    println!("=== Erroneous implementation ===\n{erroneous}");

    // What the compiler says about it (Figure 2a's feedback section):
    let compiler = CompilerKind::Iverilog.build();
    let outcome = rtlfixer::compilers::Compiler::compile(compiler.as_ref(), erroneous, "main.v");
    println!("=== iverilog feedback ===\n{}\n", outcome.log);

    // The full RTLFixer loop.
    let llm = SimulatedLlm::new(Capability::Gpt35Class, 2024);
    let mut fixer = RtlFixerBuilder::new()
        .compiler(CompilerKind::Quartus)
        .strategy(Strategy::React { max_iterations: 10 })
        .with_rag(true)
        .build(llm);
    let outcome = fixer.fix_problem(problem, erroneous);

    println!("=== RTLFixer outcome ===");
    println!("success:   {}", outcome.success);
    println!("revisions: {}", outcome.revisions);
    println!("initial error categories: {:?}", outcome.initial_categories);
    println!("\n=== Fixed implementation ===\n{}", outcome.final_code);

    assert!(outcome.success, "the quickstart bug should always be fixable");
}
